"""AddressSpace: permissions, ELRANGE semantics, untrusted writes."""

import pytest

from repro.errors import MemoryFault
from repro.sgx import (
    AddressSpace, PAGE_SIZE, PERM_R, PERM_W, PERM_X,
)

BASE = 0x7000_0000_0000
SIZE = 16 * PAGE_SIZE


@pytest.fixture
def space():
    sp = AddressSpace(BASE, SIZE)
    sp.set_page_perms(BASE, 4 * PAGE_SIZE, PERM_R | PERM_W)
    sp.set_page_perms(BASE + 4 * PAGE_SIZE, PAGE_SIZE,
                      PERM_R | PERM_X)
    # page 5 left with no permissions (guard page)
    return sp


def test_elrange_alignment_required():
    with pytest.raises(ValueError):
        AddressSpace(BASE + 1, SIZE)
    with pytest.raises(ValueError):
        AddressSpace(BASE, SIZE + 100)


def test_load_store_roundtrip(space):
    space.store_u64(BASE + 8, 0xDEADBEEF_CAFEBABE)
    assert space.load_u64(BASE + 8) == 0xDEADBEEF_CAFEBABE
    space.store_u8(BASE + 100, 0x7F)
    assert space.load_u8(BASE + 100) == 0x7F


def test_store_to_guard_page_faults(space):
    with pytest.raises(MemoryFault, match="store"):
        space.store_u64(BASE + 5 * PAGE_SIZE, 1)


def test_load_from_guard_page_faults(space):
    with pytest.raises(MemoryFault, match="load"):
        space.load_u64(BASE + 5 * PAGE_SIZE)


def test_store_to_executable_page_faults(space):
    with pytest.raises(MemoryFault):
        space.store_u64(BASE + 4 * PAGE_SIZE, 1)


def test_fetch_requires_x(space):
    space.write_raw(BASE + 4 * PAGE_SIZE, b"\x90" * 16)
    assert bytes(space.fetch(BASE + 4 * PAGE_SIZE, 4)) == b"\x90" * 4
    with pytest.raises(MemoryFault, match="fetch"):
        space.fetch(BASE, 4)  # RW page, not X


def test_writes_outside_elrange_succeed_and_are_logged(space):
    # SGX does NOT prevent an enclave writing out — P1's whole point
    outside = BASE - 0x10000
    space.store_u64(outside, 0x1122334455667788)
    assert space.load_u64(outside) == 0x1122334455667788
    assert (outside, 8) in space.untrusted_writes


def test_execute_outside_elrange_faults(space):
    with pytest.raises(MemoryFault, match="execute outside"):
        space.check_exec(BASE - PAGE_SIZE, 4)


def test_straddling_boundary_faults(space):
    with pytest.raises(MemoryFault, match="straddles"):
        space.load_u64(BASE - 4)


def test_perms_sealed_after_einit(space):
    space.seal()
    assert space.sealed
    with pytest.raises(MemoryFault, match="sealed"):
        space.set_page_perms(BASE, PAGE_SIZE, PERM_R)


def test_perms_must_be_page_aligned(space):
    with pytest.raises(MemoryFault, match="aligned"):
        space.set_page_perms(BASE + 8, PAGE_SIZE, PERM_R)


def test_perms_outside_elrange_rejected(space):
    with pytest.raises(MemoryFault):
        space.set_page_perms(BASE - PAGE_SIZE, PAGE_SIZE, PERM_R)


def test_code_watch_bumps_version(space):
    space.watch_code_range(BASE, PAGE_SIZE)
    v0 = space.code_version
    space.store_u64(BASE + PAGE_SIZE, 1)      # outside watch
    assert space.code_version == v0
    space.store_u64(BASE + 16, 1)             # inside watch
    assert space.code_version == v0 + 1


def test_raw_access_ignores_permissions(space):
    space.write_raw(BASE + 5 * PAGE_SIZE, b"abc")   # guard page
    assert space.read_raw(BASE + 5 * PAGE_SIZE, 3) == b"abc"


def test_raw_access_outside_elrange(space):
    space.write_raw(0x1234, b"hello")
    assert space.read_raw(0x1234, 5) == b"hello"


def test_page_perms_lookup(space):
    assert space.page_perms(BASE) == PERM_R | PERM_W
    assert space.page_perms(BASE + 4 * PAGE_SIZE) == PERM_R | PERM_X
    # untrusted memory reads back as RW (never X in enclave mode)
    assert space.page_perms(BASE - PAGE_SIZE) == PERM_R | PERM_W
