"""The provisioning-latency (delegation) benchmark."""

import json

from repro.bench.provision import (
    STAGES, ProvisionMatrix, ProvisionResult, measure_cell,
)
from repro.cli import main
from repro.core.bootstrap import BootstrapEnclave
from repro.bench.harness import compile_workload
from repro.policy import PolicySet


def test_measure_cell_times_both_pipelines():
    cell = measure_cell("numeric_sort", "P1+P2", repeats=1)
    assert cell.ok
    assert cell.identical
    assert set(cell.legacy_stages) == set(STAGES)
    assert set(cell.new_stages) == set(STAGES)
    assert cell.legacy_cold_s > 0
    assert cell.new_cold_s > 0
    assert cell.warm_s > 0
    assert cell.speedup > 0
    assert cell.instructions > 0
    assert cell.text_bytes > 0


def test_matrix_shape_and_document():
    matrix = ProvisionMatrix.collect(
        ["numeric_sort"], settings=("baseline", "P1"), repeats=1)
    doc = matrix.to_json()
    assert doc["schema"] == "deflection-provision/1"
    assert set(doc["workloads"]["numeric_sort"]) == {"baseline", "P1"}
    totals = doc["totals"]
    assert totals["cells"] == 2
    assert totals["divergent_cells"] == []
    assert totals["failed_cells"] == []
    assert totals["cold_speedup"] > 0
    assert matrix.incomplete_cells == []
    cell = doc["workloads"]["numeric_sort"]["P1"]
    assert set(cell["legacy_stages_ms"]) == set(STAGES)
    assert set(cell["new_stages_ms"]) == set(STAGES)
    # the sweep document must survive a JSON round trip
    assert json.loads(json.dumps(doc)) == doc


def test_non_strict_records_bad_cell():
    matrix = ProvisionMatrix.collect(
        ["no_such_workload"], settings=("baseline",), repeats=1,
        strict=False)
    cell = matrix["no_such_workload"]["baseline"]
    assert cell.status == "error"
    assert matrix.failures == ["no_such_workload/baseline"]


def test_incomplete_cells_flags_missing_stage():
    matrix = ProvisionMatrix()
    cell = ProvisionResult(workload="w", setting="P1",
                           legacy_stages={s: 1.0 for s in STAGES},
                           new_stages={"parse": 1.0})
    matrix["w"] = {"P1": cell}
    assert matrix.incomplete_cells == ["w/P1"]


def test_run_outcome_carries_provision_stages():
    policies = PolicySet.parse("P1+P2")
    boot = BootstrapEnclave(policies=policies)
    boot.receive_binary(compile_workload("numeric_sort", "P1+P2", None))
    assert set(boot.provision_stages) == set(STAGES)
    outcome = boot.run(max_steps=50_000_000)
    assert outcome.ok
    assert set(outcome.provision_stages) == set(STAGES)
    assert all(t >= 0 for t in outcome.provision_stages.values())


def test_cli_provision_smoke(tmp_path, capsys):
    out = tmp_path / "prov.json"
    assert main(["bench", "--provision", "--smoke", "--json",
                 "-o", str(out),
                 "--workloads", "numeric_sort",
                 "--settings", "baseline", "P1"]) == 0
    doc = json.loads(out.read_text())
    assert doc["schema"] == "deflection-provision/1"
    assert doc["totals"]["divergent_cells"] == []
    captured = capsys.readouterr().out
    assert "aggregate cold speedup" in captured
    assert "byte-identical" in captured
