"""Lexer, parser and sema: features and rejection paths."""

import pytest

from repro.compiler.lexer import tokenize
from repro.compiler.parser import parse
from repro.compiler.sema import analyze
from repro.compiler import astnodes as ast
from repro.compiler.ctypes import Array, CHAR, INT, Pointer
from repro.errors import CompileError


# -- lexer -------------------------------------------------------------------

def test_lexer_numbers_and_idents():
    toks = tokenize("int x = 0x1F + 42;")
    kinds = [(t.kind, t.value) for t in toks[:6]]
    assert kinds == [("kw", "int"), ("ident", "x"), ("op", "="),
                     ("int", 31), ("op", "+"), ("int", 42)]


def test_lexer_char_and_string_escapes():
    toks = tokenize(r"'a' '\n' '\x41' " + r'"hi\t"')
    assert [t.value for t in toks[:3]] == [97, 10, 65]
    assert toks[3].value == b"hi\t"


def test_lexer_comments_skipped():
    toks = tokenize("a // line\n /* block\nmore */ b")
    assert [t.value for t in toks[:2]] == ["a", "b"]


def test_lexer_errors():
    with pytest.raises(CompileError):
        tokenize("@")
    with pytest.raises(CompileError):
        tokenize('"unterminated')
    with pytest.raises(CompileError):
        tokenize("/* unterminated")
    with pytest.raises(CompileError):
        tokenize(r"'\q'")


def test_lexer_tracks_positions():
    toks = tokenize("a\n  b")
    assert (toks[0].line, toks[0].col) == (1, 1)
    assert (toks[1].line, toks[1].col) == (2, 3)


# -- parser ---------------------------------------------------------------------

def test_parser_function_and_globals():
    prog = parse("""
        int g = 5;
        int arr[3] = {1, 2, 3};
        char msg[] = "hey";
        int add(int a, int b) { return a + b; }
    """)
    kinds = [type(d).__name__ for d in prog.decls]
    assert kinds == ["GlobalDecl", "GlobalDecl", "GlobalDecl", "FuncDef"]
    assert prog.decls[1].ctype == Array(INT, 3)
    assert prog.decls[2].ctype == Array(CHAR, 4)   # includes NUL


def test_parser_function_pointer_declarator():
    prog = parse("int apply(int (*f)(int, int)) { return f(1, 2); }")
    param = prog.decls[0].params[0]
    assert isinstance(param.ctype, Pointer)
    assert param.ctype.elem.params == (INT, INT)


def test_parser_const_dim_expressions():
    prog = parse("int m[4 * 4 + 2];")
    assert prog.decls[0].ctype.count == 18


def test_parser_precedence():
    prog = parse("int f() { return 1 + 2 * 3 == 7; }")
    ret = prog.decls[0].body.statements[0]
    assert ret.value.op == "=="


def test_parser_prototype_then_definition():
    prog = parse("int f(int x); int f(int x) { return x; }")
    assert prog.decls[0].body is None
    assert prog.decls[1].body is not None


def test_parser_errors():
    for bad in ("int f() { return 1 }",        # missing semicolon
                "int f( { }",                   # bad params
                "int f() { if x } ",            # missing parens
                "float f() { }"):               # unknown type
        with pytest.raises(CompileError):
            parse(bad)


def test_parser_comma_decls_share_scope():
    prog = parse("int f() { int i, j = 2; return j; }")
    group = prog.decls[0].body.statements[0]
    assert isinstance(group, ast.DeclGroup)
    assert [d.name for d in group.decls] == ["i", "j"]


# -- sema -----------------------------------------------------------------------

def _analyze(src):
    return analyze(parse(src))


def test_sema_undefined_identifier():
    with pytest.raises(CompileError, match="undefined identifier"):
        _analyze("int f() { return nope; }")


def test_sema_duplicate_local():
    with pytest.raises(CompileError, match="redefinition"):
        _analyze("int f() { int a; int a; return 0; }")


def test_sema_shadowing_in_nested_block_allowed():
    _analyze("int f() { int a = 1; { int a = 2; } return a; }")


def test_sema_arg_count_checked():
    with pytest.raises(CompileError, match="arguments"):
        _analyze("int g(int a) { return a; } int f() { return g(); }")


def test_sema_call_non_function():
    with pytest.raises(CompileError, match="non-function"):
        _analyze("int f() { int x; return x(); }")


def test_sema_assign_needs_lvalue():
    with pytest.raises(CompileError, match="lvalue"):
        _analyze("int f() { 3 = 4; return 0; }")


def test_sema_deref_non_pointer():
    with pytest.raises(CompileError, match="non-pointer"):
        _analyze("int f() { int x; return *x; }")


def test_sema_index_non_pointer():
    with pytest.raises(CompileError, match="non-pointer"):
        _analyze("int f() { int x; return x[0]; }")


def test_sema_declared_but_never_defined():
    with pytest.raises(CompileError, match="never defined"):
        _analyze("int g(int x); int f() { return g(1); }")


def test_sema_conflicting_prototypes():
    with pytest.raises(CompileError, match="conflicting"):
        _analyze("int g(int x); int g() { return 0; }")


def test_sema_frame_slots_assigned():
    result = _analyze(
        "int f() { int a; int b[4]; { int c; } return 0; }")
    func = result.functions[0]
    assert func.frame_slots >= 6   # a(1) + b(4) + c(1)


def test_sema_block_scopes_reuse_frame_space():
    result = _analyze(
        "int f() { { int a[8]; } { int b[8]; } return 0; }")
    # disjoint blocks may overlay the same slots
    assert result.functions[0].frame_slots == 8


def test_sema_string_interning_dedups():
    result = _analyze(
        'int f() { return "abc"[0] + "abc"[1]; }')
    strings = [g for g in result.globals if g.name.startswith("__str_")]
    assert len(strings) == 1
    assert strings[0].init == b"abc\x00"


def test_sema_pointer_arith_scaling_annotated():
    result = _analyze("int f(int *p) { return *(p + 2); }")
    ret = result.functions[0].body.statements[0]
    add = ret.value.operand
    assert add.ptr_scale == 8


def test_sema_global_initializer_bounds():
    with pytest.raises(CompileError, match="too many"):
        _analyze("int a[2] = {1, 2, 3};")


def test_sema_unnamed_param_in_definition_rejected():
    with pytest.raises(CompileError, match="unnamed"):
        _analyze("int f(int) { return 0; }")


def test_sema_break_outside_loop():
    with pytest.raises(CompileError, match="outside"):
        _analyze("int f() { break; return 0; }")
