"""Tier-2 JIT: superblock chaining, indirect-branch inline caches,
page-indexed invalidation and the LRU-bounded block cache.

Everything here is differential at heart: whatever the chained
executor does — link chains, fill and poison inline caches, sever
edges on self-modifying code, evict under a tiny cache bound — the
retired (steps, cycles, rip, result) account must match the unchained
tier-1 translator and the single-step oracle bit for bit.
"""

import pytest

from repro.isa import (
    Instruction, Label, LabelDef, Mem, assemble,
    RAX, RBX, RCX, RDX,
)
from repro.isa.instructions import Op
from repro.sgx import Enclave
from repro.vm import CPU, AexSchedule, CostModel

_U64 = (1 << 64) - 1

R8 = 8


def _machine():
    enclave = Enclave()
    enclave.load_bootstrap_image(b"img")
    enclave.einit()
    return enclave


def _load(items, enclave=None):
    enclave = enclave or _machine()
    layout = enclave.layout
    asm = assemble(list(items) + [Instruction(Op.HLT)])
    code = layout.regions["code"].start
    enclave.space.write_raw(code, asm.code)
    enclave.space.watch_code_range(code, len(asm.code))
    return enclave, asm


def _cpu(enclave, executor="translate", cost_model=None, **kwargs):
    layout = enclave.layout
    cm = cost_model or CostModel.for_executor(executor)
    return CPU(enclave.space, layout.regions["code"].start,
               initial_rsp=layout.initial_rsp,
               ssa_addr=layout.ssa_addr,
               cost_model=cm,
               executor="step" if executor == "step" else "translate",
               **kwargs)


def _run(items, executor, regs=None, aex=None, **kwargs):
    enclave, asm = _load(items)
    cpu = _cpu(enclave, executor, **kwargs)
    for reg, value in (regs or {}).items():
        cpu.regs[reg] = value & _U64
    if aex is not None:
        cpu.aex_schedule = aex
        from repro.vm.interrupts import AexTimer
        cpu._aex_timer = AexTimer(cpu.aex_schedule)
    result = cpu.run()
    return result, cpu


def _nested_loops(outer=30, inner=20):
    """Two nested counted loops plus a diamond — enough control flow
    for chains to form, sever and re-link."""
    return [
        Instruction(Op.MOV_RI, RAX, 0),
        Instruction(Op.MOV_RI, RCX, outer),
        LabelDef("outer"),
        Instruction(Op.MOV_RI, RDX, inner),
        LabelDef("inner"),
        Instruction(Op.ADD_RI, RAX, 1),
        Instruction(Op.MOV_RI, RBX, 1),
        Instruction(Op.TEST_RR, RAX, RBX),
        Instruction(Op.JE, Label("even")),
        Instruction(Op.ADD_RI, RAX, 2),
        Instruction(Op.JMP, Label("join")),
        LabelDef("even"),
        Instruction(Op.ADD_RI, RAX, 4),
        LabelDef("join"),
        Instruction(Op.SUB_RI, RDX, 1),
        Instruction(Op.CMP_RI, RDX, 0),
        Instruction(Op.JG, Label("inner")),
        Instruction(Op.SUB_RI, RCX, 1),
        Instruction(Op.CMP_RI, RCX, 0),
        Instruction(Op.JG, Label("outer")),
    ]


def _call_loop(n=60, leaf_addr=0):
    """A loop that CALLs a tiny leaf both directly and through a
    register — exercises the RET inline cache and a guarded CALL_R
    site.  ``leaf_addr`` is patched in via a two-pass assembly
    (MOV_RI is fixed-width, so label offsets are already final)."""
    return [
        Instruction(Op.MOV_RI, RAX, 0),
        Instruction(Op.MOV_RI, RCX, n),
        Instruction(Op.MOV_RI, RBX, leaf_addr),
        LabelDef("loop"),
        Instruction(Op.CALL, Label("leaf")),
        Instruction(Op.CALL_R, RBX),
        Instruction(Op.SUB_RI, RCX, 1),
        Instruction(Op.CMP_RI, RCX, 0),
        Instruction(Op.JG, Label("loop")),
        Instruction(Op.JMP, Label("done")),
        LabelDef("leaf"),
        Instruction(Op.ADD_RI, RAX, 5),
        Instruction(Op.RET),
        LabelDef("done"),
    ]


def _call_items(n=60):
    """Two-pass assembly of the call loop: resolve the leaf's absolute
    address against the (deterministic) enclave layout, then rebuild
    with it patched into the MOV_RI."""
    probe = assemble(_call_loop(n) + [Instruction(Op.HLT)])
    code = _machine().layout.regions["code"].start
    leaf = code + probe.labels["leaf"]
    return _call_loop(n, leaf_addr=leaf), leaf


def _accounts(result):
    return result.steps, result.cycles, result.rip, result.return_value


# -- three-engine equality ----------------------------------------------------

@pytest.mark.parametrize("program", ["nested", "calls"])
def test_three_engines_agree(program):
    items = _nested_loops() if program == "nested" \
        else _call_items()[0]
    accounts = set()
    for executor in ("step", "translate-t1", "translate"):
        result, _ = _run(items, executor)
        accounts.add(_accounts(result))
    assert len(accounts) == 1


def test_three_engines_agree_under_aex_storm():
    items = _nested_loops(outer=40, inner=25)
    accounts = set()
    for executor in ("step", "translate-t1", "translate"):
        result, _ = _run(items, executor,
                         aex=AexSchedule(37, jitter=0.4, seed=99))
        accounts.add(_accounts(result))
    assert len(accounts) == 1


# -- chaining and inline caches ----------------------------------------------

def test_hot_loop_forms_chains(monkeypatch):
    monkeypatch.setattr("repro.vm.cpu.CHAIN_COLD_RUNS", 0)
    _, cpu = _run(_nested_loops(outer=60, inner=30), "translate")
    stats = cpu.jit_stats()
    assert stats["chain_links"] > 0
    assert stats["chain_hops"] > 0
    # chains keep most control transfers out of the dispatch loop
    assert stats["chain_hops"] > stats["dispatch_calls"]


def test_chain_depth_bounds_hops_per_dispatch(monkeypatch):
    monkeypatch.setattr("repro.vm.cpu.CHAIN_COLD_RUNS", 0)
    monkeypatch.setattr("repro.vm.cpu.CHAIN_DEPTH", 1)
    result, cpu = _run(_nested_loops(), "translate")
    baseline, _ = _run(_nested_loops(), "step")
    assert _accounts(result) == _accounts(baseline)
    stats = cpu.jit_stats()
    # depth 1: at most one hop per dispatch, never more
    assert stats["chain_hops"] <= stats["dispatch_calls"]


def test_indirect_branch_ic_hits_with_trusted_targets(monkeypatch):
    monkeypatch.setattr("repro.vm.cpu.CHAIN_COLD_RUNS", 0)
    items, leaf = _call_items(n=80)
    enclave, asm = _load(items)
    cpu = _cpu(enclave, "translate",
               branch_targets=frozenset({leaf}))
    result = cpu.run()
    stats = cpu.jit_stats()
    assert stats["ic_fills"] > 0
    assert stats["ic_hits"] > 0
    step, _ = _run(items, "step")
    assert _accounts(result) == _accounts(step)


def test_untrusted_call_r_target_never_fills_guarded_ic(monkeypatch):
    monkeypatch.setattr("repro.vm.cpu.CHAIN_COLD_RUNS", 0)
    items, leaf = _call_items(n=80)
    enclave, asm = _load(items)
    # empty trusted set: the CALL_R site may never cache its target;
    # the RET sites still may (unguarded), so only compare the CALL_R
    # behaviour via the fill counter staying below the trusted run's
    cpu = _cpu(enclave, "translate", branch_targets=frozenset())
    result = cpu.run()
    step, _ = _run(items, "step")
    assert _accounts(result) == _accounts(step)


# -- invalidation: page index, chain severing, forced flush -------------------

def test_invalidate_code_range_severs_chains(monkeypatch):
    monkeypatch.setattr("repro.vm.cpu.CHAIN_COLD_RUNS", 0)
    items = _nested_loops(outer=40, inner=20)
    enclave, asm = _load(items)
    code = enclave.layout.regions["code"].start
    cpu = _cpu(enclave, "translate")
    cpu.run()
    cache = cpu._blocks
    assert cache.links > 0
    n_blocks = len(cache.blocks)
    enclave.space.invalidate_code_range(code, len(asm.code))
    stats = cache.stats()
    assert len(cache.blocks) == 0
    assert stats["invalidated_blocks"] >= n_blocks
    assert stats["severed_edges"] > 0


def test_flush_mid_run_is_architecturally_invisible(monkeypatch):
    """A forced full flush between slices must not move the account."""
    monkeypatch.setattr("repro.vm.cpu.CHAIN_COLD_RUNS", 0)
    items = _nested_loops(outer=50, inner=25)

    enclave, asm = _load(items)
    code = enclave.layout.regions["code"].start
    cpu = _cpu(enclave, "translate")
    while not cpu.halted:
        cpu.run(slice_steps=400)
        enclave.space.invalidate_code_range(code, len(asm.code))
    flushed = (cpu.steps, cpu.cycles, cpu.rip)

    result, _ = _run(items, "step")
    assert flushed == (result.steps, result.cycles, result.rip)


def test_partial_invalidation_only_drops_overlapping_blocks(monkeypatch):
    monkeypatch.setattr("repro.vm.cpu.CHAIN_COLD_RUNS", 0)
    items, leaf = _call_items(n=50)
    enclave, asm = _load(items)
    cpu = _cpu(enclave, "translate")
    cpu.run()
    cache = cpu._blocks
    survivors_before = {a for a, b in cache.blocks.items()
                       if b.end <= leaf or b.lo > leaf}
    enclave.space.invalidate_code_range(leaf, 1)
    assert set(cache.blocks) == survivors_before


# -- LRU bound ----------------------------------------------------------------

def test_lru_bound_holds_under_pathological_smc(monkeypatch):
    """Repeated full flushes + retranslation cycle thousands of blocks
    through a 4-entry cache; the bound must hold throughout and the
    account must still match the oracle."""
    monkeypatch.setattr("repro.vm.cpu.CHAIN_COLD_RUNS", 0)
    items = _nested_loops(outer=30, inner=15)
    cm = CostModel.for_executor("translate")
    object.__setattr__(cm, "jit_block_cap", 4) \
        if hasattr(type(cm), "__dataclass_fields__") else None
    enclave, asm = _load(items)
    code = enclave.layout.regions["code"].start
    cpu = _cpu(enclave, "translate", cost_model=cm)
    while not cpu.halted:
        cpu.run(slice_steps=100)
        assert len(cpu._blocks.blocks) <= max(4, cpu._blocks.capacity)
        enclave.space.invalidate_code_range(code, len(asm.code))
    cache_stats = cpu._blocks.stats()
    assert cache_stats["invalidated_blocks"] > 0
    step, _ = _run(items, "step")
    assert (cpu.steps, cpu.cycles, cpu.rip) == \
        (step.steps, step.cycles, step.rip)


def test_lru_eviction_bounds_live_blocks():
    cm = CostModel(executor="translate", jit_block_cap=3)
    enclave, _ = _load(_nested_loops(outer=25, inner=10))
    cpu = _cpu(enclave, "translate", cost_model=cm)
    cpu.run()
    cache = cpu._blocks
    assert cache.capacity == 3
    assert len(cache.blocks) <= 3
    assert cache.stats()["evicted_blocks"] > 0
    step, _ = _run(_nested_loops(outer=25, inner=10), "step")
    assert (cpu.steps, cpu.cycles) == (step.steps, step.cycles)


# -- eager warm-up ------------------------------------------------------------

def test_jit_eager_compiles_on_first_dispatch():
    items = _nested_loops(outer=4, inner=2)
    enclave, _ = _load(items)
    cpu = _cpu(enclave, "translate")
    cpu.jit_eager = True
    result = cpu.run()
    cache = cpu._blocks
    # every surviving block was compiled despite the tiny trip counts
    assert all(b.fn is not None for b in cache.blocks.values())
    step, _ = _run(items, "step")
    assert _accounts(result) == _accounts(step)
