"""Provision cache: hit/miss/invalidation, safety, RunOutcome surfacing.

The cache memoizes the post-verify, post-rewrite loaded image keyed on
(sha256(blob), policy fingerprint, config fingerprint, aex_threshold),
so a second provisioning of an identical triple skips RDD + annotation
verification + imm rewriting — while any mutated blob re-verifies and a
rejected blob is never cached.
"""

import pytest

from repro.compiler import compile_source
from repro.core import BootstrapEnclave
from repro.core.bootstrap import ProvisionCache
from repro.errors import VerificationError
from repro.policy import PolicySet
from repro.sgx.layout import EnclaveConfig

SRC = """
char buf[16];
int main() {
    int n = __recv(buf, 16);
    int i; int sum = 0;
    for (i = 0; i < n; i++) sum += buf[i];
    __report(sum);
    return sum;
}
"""


def _blob(policies):
    return compile_source(SRC, policies).serialize()


def _boot(policies, cache, **kwargs):
    return BootstrapEnclave(policies=policies, provision_cache=cache,
                            **kwargs)


def test_second_identical_provision_hits_and_skips_verification():
    policies = PolicySet.full()
    cache = ProvisionCache()
    blob = _blob(policies)

    first = _boot(policies, cache)
    digest = first.receive_binary(blob)
    assert cache.stats() == {"entries": 1, "hits": 0, "misses": 1}

    second = _boot(policies, cache)
    assert second.receive_binary(blob) == digest
    assert cache.hits == 1
    assert second.provision_cache_hits == 1
    # the verify pipeline was skipped: no 'binary_verified' event
    kinds = [e.kind for e in second.audit.events]
    assert "binary_provisioned_cached" in kinds
    assert "binary_verified" not in kinds


def test_cached_provision_runs_identically():
    policies = PolicySet.full()
    cache = ProvisionCache()
    blob = _blob(policies)
    outcomes = []
    for _ in range(2):
        boot = _boot(policies, cache)
        boot.receive_binary(blob)
        boot.receive_userdata(b"\x01\x02\x03")
        outcomes.append(boot.run())
    verified, cached = outcomes
    assert cached.provision_cache_hits == 1
    assert cached.status == verified.status == "ok"
    assert cached.reports == verified.reports
    assert cached.result.steps == verified.result.steps
    assert cached.result.cycles == verified.result.cycles


def test_mutated_blob_misses_and_reverifies():
    policies = PolicySet.full()
    cache = ProvisionCache()
    blob = _blob(policies)
    _boot(policies, cache).receive_binary(blob)

    # flip text bytes until one breaks an annotation: the cached verdict
    # for the pristine blob must never leak to the mutated one
    rejected = False
    for offset in range(len(blob) // 2, len(blob)):
        mutated = bytearray(blob)
        mutated[offset] ^= 0xFF
        try:
            _boot(policies, cache).receive_binary(bytes(mutated))
        except Exception:
            rejected = True
            break
    assert rejected
    assert cache.hits == 0                          # digest changed -> miss
    assert cache.invalidate(blob=bytes(mutated)) == 0   # reject not stored


def test_rejected_blob_never_cached():
    cache = ProvisionCache()
    bare = compile_source("int main() { return 0; }",
                          PolicySet.none()).serialize()
    for _ in range(2):
        boot = _boot(PolicySet.full(), cache)
        with pytest.raises(VerificationError):
            boot.receive_binary(bare)
    assert len(cache) == 0
    assert cache.hits == 0
    assert cache.misses == 2          # re-verified (and re-failed) twice


def test_key_separates_policies_config_and_threshold():
    cache = ProvisionCache()
    p1 = PolicySet.p1_only()
    blob = _blob(p1)
    _boot(p1, cache).receive_binary(blob)
    # different aex_threshold -> different rewrite -> miss
    _boot(p1, cache, aex_threshold=7).receive_binary(blob)
    # different layout -> different relocation -> miss
    big = EnclaveConfig(heap_size=512 * 4096)
    _boot(p1, cache, config=big).receive_binary(blob)
    assert cache.hits == 0
    assert len(cache) == 3
    # and the original triple still hits
    _boot(p1, cache).receive_binary(blob)
    assert cache.hits == 1


def test_invalidation_forces_reverification():
    policies = PolicySet.full()
    cache = ProvisionCache()
    blob = _blob(policies)
    _boot(policies, cache).receive_binary(blob)
    assert cache.invalidate(blob=blob) == 1
    boot = _boot(policies, cache)
    boot.receive_binary(blob)
    assert cache.hits == 0
    assert [e.kind for e in boot.audit.events].count("binary_verified") == 1
    # blanket invalidation
    assert cache.invalidate() == 1
    assert len(cache) == 0


def test_lru_eviction_bounds_the_cache():
    cache = ProvisionCache(maxsize=2)
    policies = PolicySet.p1_only()
    blobs = [compile_source(
        "int main() {{ return {0}; }}".format(i),
        policies).serialize() for i in range(3)]
    for blob in blobs:
        _boot(policies, cache).receive_binary(blob)
    assert len(cache) == 2
    # the oldest entry was evicted -> re-provisioning it misses
    _boot(policies, cache).receive_binary(blobs[0])
    assert cache.hits == 0


def test_cache_off_by_default():
    policies = PolicySet.full()
    blob = _blob(policies)
    boot = BootstrapEnclave(policies=policies)
    boot.receive_binary(blob)
    boot2 = BootstrapEnclave(policies=policies)
    boot2.receive_binary(blob)
    assert boot2.provision_cache_hits == 0
    assert "binary_verified" in [e.kind for e in boot2.audit.events]


def test_cache_hit_after_recover_keyed_to_mrenclave_and_audited():
    """Regression: a re-delivery after ``recover()`` must only hit the
    cache because MRENCLAVE is provably unchanged (the key embeds it),
    and the hit must leave an audit record naming that measurement —
    a remote party replaying the log can check the pin held across the
    restart."""
    policies = PolicySet.full()
    cache = ProvisionCache()
    blob = _blob(policies)
    boot = _boot(policies, cache)
    boot.receive_binary(blob)
    before = boot.mrenclave
    boot.enclave.destroy()
    boot.recover()
    assert boot.mrenclave == before      # same platform + image
    boot.receive_binary(blob)
    assert cache.hits == 1
    cached = [e for e in boot.audit.events
              if e.kind == "binary_provisioned_cached"]
    assert len(cached) == 1
    assert cached[0].detail["mrenclave"] == before.hex()
    # a recovery is visible between the cold provision and the hit
    kinds = [e.kind for e in boot.audit.events]
    assert kinds.index("binary_verified") \
        < kinds.index("recovered") \
        < kinds.index("binary_provisioned_cached")


def test_cache_does_not_leak_across_differing_enclave_builds():
    """A bootstrap built with a different runtime shape (different
    aex_threshold => different rewrite) shares nothing with the cached
    entry even after the first enclave recovered — the MRENCLAVE/config
    part of the key, not mere blob identity, gates the replay."""
    policies = PolicySet.full()
    cache = ProvisionCache()
    blob = _blob(policies)
    first = _boot(policies, cache)
    first.receive_binary(blob)
    first.enclave.destroy()
    first.recover()
    other = _boot(policies, cache, aex_threshold=7)
    other.receive_binary(blob)
    assert cache.hits == 0               # different build must miss
    assert cache.misses == 2
