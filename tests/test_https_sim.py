"""HTTPS server simulation (Fig. 10 machinery)."""

import pytest

from repro.policy import PolicySet
from repro.service import HttpsServerSim, LoadGenerator


@pytest.fixture(scope="module")
def base_sim():
    return HttpsServerSim(PolicySet.none())


@pytest.fixture(scope="module")
def full_sim():
    return HttpsServerSim(PolicySet.full())


def test_service_time_grows_with_response_size(base_sim):
    assert base_sim.service_time_us(8192) > base_sim.service_time_us(512)
    assert base_sim.cycles_per_byte > 0


def test_instrumentation_inflates_service_time(base_sim, full_sim):
    ratio = full_sim.service_time_us(4096) / base_sim.service_time_us(4096)
    assert 1.02 < ratio < 1.6     # paper: ~14% on response time


def test_latency_flat_below_worker_pool(base_sim):
    gen = LoadGenerator(base_sim.service_time_us, workers=96)
    rt25 = gen.run(25, max_requests=1500).mean_response_ms
    gen = LoadGenerator(base_sim.service_time_us, workers=96)
    rt75 = gen.run(75, max_requests=1500).mean_response_ms
    assert rt75 == pytest.approx(rt25, rel=0.25)


def test_latency_knee_past_worker_pool(base_sim):
    gen = LoadGenerator(base_sim.service_time_us, workers=96)
    rt75 = gen.run(75, max_requests=1500).mean_response_ms
    gen = LoadGenerator(base_sim.service_time_us, workers=96)
    rt200 = gen.run(200, max_requests=1500).mean_response_ms
    assert rt200 > rt75 * 1.7     # Fig 10: grows significantly past 150


def test_throughput_saturates(base_sim):
    gen = LoadGenerator(base_sim.service_time_us, workers=96)
    t100 = gen.run(100, max_requests=1500).throughput_rps
    gen = LoadGenerator(base_sim.service_time_us, workers=96)
    t200 = gen.run(200, max_requests=1500).throughput_rps
    assert t200 == pytest.approx(t100, rel=0.15)


def test_instrumented_throughput_overhead_moderate(base_sim, full_sim):
    gen_b = LoadGenerator(base_sim.service_time_us, workers=96)
    gen_f = LoadGenerator(full_sim.service_time_us, workers=96)
    tb = gen_b.run(150, max_requests=1500).throughput_rps
    tf = gen_f.run(150, max_requests=1500).throughput_rps
    overhead = (tb - tf) / tb
    assert 0.0 < overhead < 0.35  # paper: <10% between 75 and 200


def test_p95_at_least_mean(base_sim):
    gen = LoadGenerator(base_sim.service_time_us, workers=96)
    result = gen.run(50, max_requests=800)
    assert result.p95_response_ms >= result.mean_response_ms * 0.9
    assert result.completed == 800


def test_deterministic_with_fixed_seed(base_sim):
    a = LoadGenerator(base_sim.service_time_us, seed=5).run(
        40, max_requests=500)
    b = LoadGenerator(base_sim.service_time_us, seed=5).run(
        40, max_requests=500)
    assert a.mean_response_ms == b.mean_response_ms
    assert a.throughput_rps == b.throughput_rps
