"""EPC paging cost model (§II: paging overheads beyond the EPC)."""

import pytest

from repro.compiler import compile_source
from repro.core import BootstrapEnclave
from repro.policy import PolicySet
from repro.sgx import EnclaveConfig, PAGE_SIZE
from repro.vm import CostModel

# walks a working set of @PAGES@ 4KiB pages, twice
_WALKER = """
char arena[@BYTES@];
int main() {
    int stride = 4096;
    int pages = @PAGES@;
    int sweep;
    int checksum = 0;
    for (sweep = 0; sweep < 2; sweep++) {
        int p;
        for (p = 0; p < pages; p++) {
            arena[p * stride] = p + sweep;
            checksum += arena[p * stride];
        }
    }
    __report(1);
    __report(checksum);
    return checksum;
}
"""


def _run(pages_touched, epc_pages):
    src = _WALKER.replace("@PAGES@", str(pages_touched)) \
        .replace("@BYTES@", str(pages_touched * PAGE_SIZE))
    policies = PolicySet.p1_only()
    boot = BootstrapEnclave(
        policies=policies,
        config=EnclaveConfig(heap_size=(pages_touched + 16) * PAGE_SIZE))
    boot.receive_binary(compile_source(src, policies).serialize())
    model = CostModel.with_epc_limit(epc_pages) if epc_pages \
        else CostModel()
    outcome = boot.run(cost_model=model)
    assert outcome.ok and outcome.reports[0] == 1
    return outcome


def test_disabled_by_default():
    outcome = _run(8, 0)
    # CPU-level fault counter only exists with the model on
    assert outcome.result.cycles > 0


def test_working_set_within_epc_is_free():
    # first touches model EADD at load time (free); within the EPC the
    # limited and unlimited models agree exactly
    limited = _run(8, 1024)
    unlimited = _run(8, 0)
    assert limited.result.cycles == unlimited.result.cycles


def test_thrash_beyond_epc_costs_cycles():
    fits = _run(16, 4096)       # plenty of EPC
    thrash = _run(16, 4)        # working set 4x the EPC share
    assert thrash.result.cycles > fits.result.cycles + 10 * 40000
    assert thrash.reports == fits.reports     # semantics unchanged


def test_sequential_scan_thrashes_at_any_undersized_capacity():
    # the classic LRU pathology: a cyclic sweep over N pages misses on
    # every access once capacity < N, no matter how close to N it is
    barely = _run(16, 12)
    tiny = _run(16, 2)
    assert barely.result.cycles == pytest.approx(tiny.result.cycles,
                                                 rel=0.02)


def test_lru_keeps_hot_pages_resident():
    # sequential sweep with LRU and ws > epc: every touch misses on
    # sweep 2; a tiny loop over 2 pages with epc=4 never misses again
    small = _run(2, 4)
    baseline = _run(2, 4096)
    assert small.result.cycles == baseline.result.cycles
