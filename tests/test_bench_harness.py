"""Benchmark harness: matrices, differential enforcement, tables."""

import pytest

from repro.bench import (
    RunMatrix, format_table, overhead_matrix, percent, run_workload,
)
from repro.bench.harness import BenchResult
from repro.bench.tables import format_series


def test_run_workload_full_pipeline():
    result = run_workload("numeric_sort", "P1", 40)
    assert result.status == "ok"
    assert result.steps > 0
    assert result.cycles > 0
    assert result.reports[0] == 1


def test_overhead_matrix_orders_settings():
    matrix = overhead_matrix("numeric_sort", 40)
    assert matrix["baseline"].overhead_pct == 0.0
    assert 0 < matrix["P1"].overhead_pct \
        <= matrix["P1-P5"].overhead_pct \
        <= matrix["P1-P6"].overhead_pct


def test_matrix_runs_p6_under_benign_aex():
    matrix = overhead_matrix("numeric_sort", 150,
                             aex_mean_interval=20_000)
    assert matrix["P1-P6"].aex_events > 0
    assert matrix["P1"].aex_events == 0


def test_workload_failure_is_loud():
    with pytest.raises(RuntimeError, match="self-check|violation|fault"):
        # absurd step cap forces a failure surface
        run_workload("numeric_sort", "P1", 40, max_steps=10)


def test_non_strict_records_failure_instead_of_raising():
    result = run_workload("numeric_sort", "P1", 40, max_steps=10,
                          strict=False)
    assert result.status != "ok"
    assert result.detail
    assert result.overhead_pct == 0.0


def test_overhead_vs_zero_cycle_baseline_is_zero():
    baseline = BenchResult("w", "baseline", 0, steps=0, cycles=0.0)
    cell = BenchResult("w", "P1", 0, steps=10, cycles=42.0)
    assert cell.overhead_vs(baseline) == 0.0


def test_non_strict_matrix_keeps_sweeping_past_a_bad_cell():
    matrix = RunMatrix.collect(
        ["numeric_sort"], settings=("baseline", "P1"), param=40,
        strict=False, max_steps=10)
    # every cell failed (step cap), the sweep still completed
    assert matrix.failures == ["numeric_sort/baseline",
                               "numeric_sort/P1"]
    doc = matrix.to_json()
    cell = doc["workloads"]["numeric_sort"]["baseline"]
    assert cell["status"] != "ok"
    assert cell["detail"]
    assert doc["totals"]["failed_cells"] == matrix.failures


def test_parallel_matrix_equals_serial():
    settings = ("baseline", "P1", "P1-P6")
    kwargs = dict(settings=settings, param=24,
                  aex_mean_interval=20_000)
    serial = RunMatrix.collect(["numeric_sort", "string_sort"],
                               jobs=1, **kwargs)
    parallel = RunMatrix.collect(["numeric_sort", "string_sort"],
                                 jobs=2, **kwargs)
    assert parallel.parallelism == 2
    assert serial.parallelism == 1
    for name in ("numeric_sort", "string_sort"):
        for setting in settings:
            a, b = serial[name][setting], parallel[name][setting]
            assert (a.steps, a.cycles, a.aex_events, a.overhead_pct) \
                == (b.steps, b.cycles, b.aex_events, b.overhead_pct), \
                f"{name}/{setting}"
    assert parallel.to_json()["parallelism"] == 2


def test_run_workload_reuses_provision_cache():
    from repro.core.bootstrap import PROVISION_CACHE
    PROVISION_CACHE.clear()
    first = run_workload("numeric_sort", "P1", 40)
    second = run_workload("numeric_sort", "P1", 40)
    assert first.provision_cache_hits == 0
    assert second.provision_cache_hits == 1
    assert PROVISION_CACHE.hits >= 1
    # the two cells are indistinguishable where it matters
    assert (first.steps, first.cycles, first.reports) == \
        (second.steps, second.cycles, second.reports)
    # opting out bypasses the cache entirely
    PROVISION_CACHE.clear()
    run_workload("numeric_sort", "P1", 40, provision_cache=False)
    assert PROVISION_CACHE.stats() == {"entries": 0, "hits": 0,
                                       "misses": 0}


def test_parallel_sweep_harvests_provision_cache():
    # Pool workers ship the images they provisioned back to the parent,
    # so a later sweep over the same binaries provisions from cache.
    from repro.core.bootstrap import PROVISION_CACHE
    PROVISION_CACHE.clear()
    kwargs = dict(settings=("baseline", "P1"), param=24,
                  aex_mean_interval=20_000, jobs=2)
    RunMatrix.collect(["numeric_sort"], **kwargs)
    assert PROVISION_CACHE.stats()["entries"] == 2
    again = RunMatrix.collect(["numeric_sort"], **kwargs)
    hits = sum(cell.provision_cache_hits
               for row in again.values() for cell in row.values())
    assert hits == 2
    PROVISION_CACHE.clear()


def test_compilation_cache_reused():
    from repro.bench.harness import _compile_cached
    _compile_cached.cache_clear()
    run_workload("numeric_sort", "P1", 40)
    run_workload("numeric_sort", "P1", 40)
    info = _compile_cached.cache_info()
    assert info.hits >= 1
    assert info.misses == 1


def test_parallel_collect_of_empty_cell_set_returns_empty_matrix():
    # Regression: Pool(processes=0) raised ValueError before the
    # empty-task early return; both empty axes must match serial.
    for kwargs in (dict(workloads=[]),
                   dict(workloads=["numeric_sort"], settings=())):
        serial = RunMatrix.collect(jobs=1, **kwargs)
        parallel = RunMatrix.collect(jobs=2, **kwargs)
        assert dict(parallel) == dict(serial)
    assert dict(RunMatrix.collect([], jobs=2)) == {}
    empty_row = RunMatrix.collect(["numeric_sort"], settings=(),
                                  jobs=2)
    assert dict(empty_row) == {"numeric_sort": {}}
    assert empty_row.failures == []
    assert empty_row.to_json()["totals"]["steps"] == 0


def _divergent_row():
    from repro.bench import attach_overheads
    row = {
        "baseline": BenchResult("w", "baseline", 0, steps=10,
                                cycles=100.0, reports=[1, 7]),
        "P1": BenchResult("w", "P1", 0, steps=10, cycles=120.0,
                          reports=[1, 7]),
        "P1+P2": BenchResult("w", "P1+P2", 0, steps=10, cycles=130.0,
                             reports=[1, 8]),
    }
    return attach_overheads, row


def test_attach_overheads_strict_raises_on_divergence():
    attach_overheads, row = _divergent_row()
    with pytest.raises(RuntimeError, match="diverge"):
        attach_overheads(row, strict=True)


def test_attach_overheads_zeroes_divergent_cells_non_strict():
    attach_overheads, row = _divergent_row()
    # First pass with matching reports attaches a real overhead...
    row["P1+P2"].reports = [1, 7]
    attach_overheads(row, strict=False)
    assert row["P1+P2"].overhead_pct == pytest.approx(30.0)
    # ...then the cell diverges and is re-attached: the downgrade must
    # drop the stale overhead, matching the docstring's contract.
    row["P1+P2"].reports = [1, 8]
    attach_overheads(row, strict=False)
    assert row["P1+P2"].status == "divergent"
    assert "diverge" in row["P1+P2"].detail
    assert row["P1+P2"].overhead_pct == 0.0
    # the well-behaved cells are untouched
    assert row["P1"].status == "ok"
    assert row["P1"].overhead_pct == pytest.approx(20.0)


def test_format_table_rule_matches_row_width():
    # Regression: the title rule was sized 2*len(widths), two wider
    # than the joined rows (gaps = columns - 1).
    table = format_table("T", ["aa", "bb"],
                         [["xxxx", "yyyyyy"], ["x", "y"]])
    title, rule, header, sep, *rows = table.splitlines()
    assert len(rule) == len(header)
    assert len(rule) == len(sep)
    assert all(len(row) <= len(rule) for row in rows)
    # a long title still wins the rule width
    wide = format_table("a very long title indeed", ["a"], [["b"]])
    assert len(wide.splitlines()[1]) == len("a very long title indeed")


def test_percent_and_table_formatting():
    assert percent(12.345) == "+12.3%"
    assert percent(-3.21) == "-3.2%"
    table = format_table("Title", ["a", "bb"], [[1, 2], [33, 4]])
    assert "Title" in table and "33" in table
    lines = table.splitlines()
    assert len(lines) == 6


def test_format_series():
    out = format_series("Fig", "x", [1, 2],
                        {"s1": ["a", "b"], "s2": ["c", "d"]})
    assert "s1" in out and "d" in out
