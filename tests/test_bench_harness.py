"""Benchmark harness: matrices, differential enforcement, tables."""

import pytest

from repro.bench import (
    format_table, overhead_matrix, percent, run_workload,
)
from repro.bench.tables import format_series


def test_run_workload_full_pipeline():
    result = run_workload("numeric_sort", "P1", 40)
    assert result.status == "ok"
    assert result.steps > 0
    assert result.cycles > 0
    assert result.reports[0] == 1


def test_overhead_matrix_orders_settings():
    matrix = overhead_matrix("numeric_sort", 40)
    assert matrix["baseline"].overhead_pct == 0.0
    assert 0 < matrix["P1"].overhead_pct \
        <= matrix["P1-P5"].overhead_pct \
        <= matrix["P1-P6"].overhead_pct


def test_matrix_runs_p6_under_benign_aex():
    matrix = overhead_matrix("numeric_sort", 150,
                             aex_mean_interval=20_000)
    assert matrix["P1-P6"].aex_events > 0
    assert matrix["P1"].aex_events == 0


def test_workload_failure_is_loud():
    with pytest.raises(RuntimeError, match="self-check|violation|fault"):
        # absurd step cap forces a failure surface
        run_workload("numeric_sort", "P1", 40, max_steps=10)


def test_compilation_cache_reused():
    from repro.bench.harness import _compile_cached
    _compile_cached.cache_clear()
    run_workload("numeric_sort", "P1", 40)
    run_workload("numeric_sort", "P1", 40)
    info = _compile_cached.cache_info()
    assert info.hits >= 1
    assert info.misses == 1


def test_percent_and_table_formatting():
    assert percent(12.345) == "+12.3%"
    assert percent(-3.21) == "-3.2%"
    table = format_table("Title", ["a", "bb"], [[1, 2], [33, 4]])
    assert "Title" in table and "33" in table
    lines = table.splitlines()
    assert len(lines) == 6


def test_format_series():
    out = format_series("Fig", "x", [1, 2],
                        {"s1": ["a", "b"], "s2": ["c", "d"]})
    assert "s1" in out and "d" in out
