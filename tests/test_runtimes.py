"""Runtime comparator models: Table I data and Fig. 11 orderings."""

import pytest

from repro.runtimes import (
    ALL_BASELINES, GRAPHENE, NATIVE, OCCLUM, RYOAN, SCONE,
    deflection_runtime_model,
)


def test_table1_tcb_inventories_match_paper():
    assert RYOAN.tcb_kloc == pytest.approx(892 + 216 + 460)
    assert SCONE.tcb_kloc == pytest.approx(187 + 1200)
    assert GRAPHENE.tcb_kloc == pytest.approx(22 + 34)
    assert OCCLUM.tcb_kloc == pytest.approx(93 + 24.5)
    assert RYOAN.tcb_size_mb == 19.0 and RYOAN.tcb_size_is_lower_bound
    assert GRAPHENE.tcb_size_mb == 58.5


def test_deflection_tcb_an_order_of_magnitude_smaller():
    ours = deflection_runtime_model()
    assert ours.tcb_size_mb == 3.5
    for baseline in ALL_BASELINES:
        assert baseline.tcb_size_mb > 2 * ours.tcb_size_mb
    # consumer LoC measured from this repo can be substituted in
    measured = deflection_runtime_model(measured_consumer_kloc=1.8)
    assert measured.tcb[0].kloc == 1.8


def test_fig11_graphene_wins_small_files():
    ours = deflection_runtime_model()
    small = 1024
    assert GRAPHENE.transfer_rate_mbps(small) > \
        ours.transfer_rate_mbps(small)
    assert GRAPHENE.transfer_rate_mbps(small) > \
        OCCLUM.transfer_rate_mbps(small)


def test_fig11_deflection_wins_large_files():
    ours = deflection_runtime_model()
    large = 1024 * 1024
    assert ours.transfer_rate_mbps(large) > \
        GRAPHENE.transfer_rate_mbps(large)
    assert ours.transfer_rate_mbps(large) > \
        OCCLUM.transfer_rate_mbps(large)


def test_fig11_deflection_reaches_about_77pct_of_native():
    ours = deflection_runtime_model()
    ratio = ours.relative_to(NATIVE, 1024 * 1024)
    assert 0.70 < ratio < 0.85       # the paper's "77% of native"


def test_crossover_exists_between_small_and_large():
    ours = deflection_runtime_model()
    sizes = [1 << k for k in range(10, 21)]
    relation = [ours.transfer_rate_mbps(s) > GRAPHENE.transfer_rate_mbps(s)
                for s in sizes]
    assert relation[0] is False and relation[-1] is True
    # monotone switch: once ahead, stays ahead
    first_true = relation.index(True)
    assert all(relation[first_true:])


def test_transfer_rate_monotone_in_size_until_paging():
    for model in (NATIVE, GRAPHENE, OCCLUM, deflection_runtime_model()):
        small = model.transfer_rate_mbps(4 * 1024)
        big = model.transfer_rate_mbps(512 * 1024)
        assert big > small     # fixed cost amortizes


def test_paging_penalty_kicks_in_past_epc_share():
    inside = int(GRAPHENE.epc_share_mb * 1024 * 1024 * 0.9)
    beyond = int(GRAPHENE.epc_share_mb * 1024 * 1024 * 4)
    rate_inside = GRAPHENE.transfer_rate_mbps(inside)
    rate_beyond = GRAPHENE.transfer_rate_mbps(beyond)
    assert rate_beyond < rate_inside


def test_only_deflection_enforces_policies():
    assert deflection_runtime_model().enforces_policies
    for baseline in ALL_BASELINES:
        assert not baseline.enforces_policies
