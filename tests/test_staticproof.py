"""Static proof tier (DESIGN.md §3j).

Producer side: eligibility + link-time prover must only elide guards
whose obligation the in-enclave checker re-derives.  Consumer side:
every way the proof log can lie — a claimed-safe site that is not,
an elision with no proof, a proof naming a site that was never
elided — must be rejected fail-closed before execution, and sites the
prover cannot discharge must keep their runtime guard and still trap.
"""

import pytest

from repro.bench.static import measure_static_cell
from repro.bench.store import CellKey, StoreError
from repro.compiler import compile_source
from repro.compiler.objfile import ObjectFile
from repro.core import BootstrapEnclave
from repro.core.legacy import LegacyPolicyVerifier
from repro.core.proofcheck import (
    PROOF_CFI, PROOF_CONST, PROOF_RSP_STEP, PROOF_STACK,
)
from repro.core.rdd import recursive_descent
from repro.core.verifier import PolicyVerifier
from repro.errors import CompileError, VerificationError
from repro.isa.instructions import Instruction, Op
from repro.isa.registers import RAX, RBP, RSP
from repro.policy import PolicySet
from repro.policy.custom import div_by_zero_guard
from repro.policy.magic import VIOL_P1
from repro.staticproof import frame_discipline_ok, prove_object
from repro.staticproof.prover import synthetic_image
from repro.analysis import analyze_object

_SRC = """
int total;
int scale(int x) { return x * 3 + 1; }
int main() {
    int acc = 0;
    int i;
    for (i = 0; i < 40; i++) acc = acc + scale(i);
    total = acc;
    __report(acc);
    return 0;
}
"""


def _objects(setting="P1-P5", source=_SRC):
    policies = PolicySet.parse(setting)
    full = compile_source(source, policies)
    light = compile_source(source, policies, light=True)
    return policies, full, light


def _boot_run(obj, policies):
    boot = BootstrapEnclave(policies=policies)
    boot.receive_binary(obj.serialize())
    return boot, boot.run()


# -- the happy path: light == full, minus the guards --------------------------

def test_light_binary_verifies_and_matches_full():
    policies, full, light = _objects()
    assert not full.proofs
    assert light.proofs                      # guards were elided
    assert len(light.text) < len(full.text)  # and the bytes are gone
    _, out_full = _boot_run(full, policies)
    _, out_light = _boot_run(light, policies)
    assert out_full.ok and out_light.ok
    assert out_light.reports == out_full.reports


@pytest.mark.parametrize("setting", ["P1", "P1+P2", "P1-P5"])
def test_light_verifies_under_every_guard_setting(setting):
    policies, _, light = _objects(setting)
    _, outcome = _boot_run(light, policies)
    assert outcome.ok


# -- tampered proof log: out-of-ELRANGE store claimed safe --------------------

def test_const_store_outside_elrange_rejected():
    # Shrink the store range under the proof's feet: the global `total`
    # now resolves outside [store_lo, store_hi), so the const-addr
    # proof claims an out-of-ELRANGE store is safe.  Reject.
    policies, _, light = _objects("P1")
    assert any(kind == PROOF_CONST for _, kind, _ in light.proofs)
    text, bases, entry, targets = synthetic_image(light)
    code = recursive_descent(text, entry, targets)
    bases = dict(bases, p1_hi=bases["data_base"],
                 store_hi=bases["data_base"])
    with pytest.raises(VerificationError, match="static proof rejected"):
        PolicyVerifier(policies).verify_code(
            code, entry, targets, proofs=light.proofs, values=bases)


def test_proof_kind_swap_rejected_by_link_prover():
    # Flip a stack proof to a CFI claim: the producer's own link-time
    # re-derivation must break the build before anything ships.
    _, _, light = _objects()
    site, kind, def_off = next(p for p in light.proofs
                               if p[1] == PROOF_STACK)
    light.proofs = [(site, PROOF_CFI, def_off) if p[0] == site else p
                    for p in light.proofs]
    with pytest.raises(CompileError, match="not provable"):
        prove_object(light)


def test_proof_kind_swap_rejected_in_enclave():
    policies, _, light = _objects()
    site, kind, def_off = next(p for p in light.proofs
                               if p[1] == PROOF_STACK)
    light.proofs = [(site, PROOF_RSP_STEP, def_off) if p[0] == site
                    else p for p in light.proofs]
    boot = BootstrapEnclave(policies=policies)
    with pytest.raises(VerificationError, match="unguarded memory store"):
        boot.receive_binary(light.serialize())


# -- guard elided with no proof entry -----------------------------------------

def test_elided_store_without_proof_entry_rejected():
    policies, _, light = _objects()
    victim = next(p for p in light.proofs if p[1] == PROOF_STACK)
    light.proofs = [p for p in light.proofs if p != victim]
    boot = BootstrapEnclave(policies=policies)
    with pytest.raises(VerificationError, match="unguarded memory store"):
        boot.receive_binary(light.serialize())


def test_elided_rsp_step_without_proof_entry_rejected():
    policies, _, light = _objects("P1+P2")
    victim = next(p for p in light.proofs if p[1] == PROOF_RSP_STEP)
    light.proofs = [p for p in light.proofs if p != victim]
    boot = BootstrapEnclave(policies=policies)
    with pytest.raises(VerificationError,
                       match="without RSP guard"):
        boot.receive_binary(light.serialize())


# -- proof log referencing a site that was never elided -----------------------

def test_proof_for_nonexistent_site_rejected():
    policies, _, light = _objects()
    light.proofs = sorted(light.proofs + [(0, PROOF_STACK, 0)])
    boot = BootstrapEnclave(policies=policies)
    with pytest.raises(VerificationError,
                       match="references no elided site"):
        boot.receive_binary(light.serialize())


def test_annotation_full_binary_with_forged_proof_rejected():
    # A full binary carries no elisions at all: any proof entry is a
    # forgery and the whole log must be refused, not ignored.
    policies, full, light = _objects()
    full.proofs = [light.proofs[0]]
    boot = BootstrapEnclave(policies=policies)
    with pytest.raises(VerificationError,
                       match="references no elided site"):
        boot.receive_binary(full.serialize())


# -- unprovable sites keep their guard and still trap -------------------------

_UNPROVABLE_ATTACK = """
int main() {
    int *p = 0x100000;      // computed pointer, far outside ELRANGE
    *p = 0xBEEF;
    return 0;
}
"""


def test_unprovable_store_keeps_guard_and_traps():
    policies = PolicySet.parse("P1")
    light = compile_source(_UNPROVABLE_ATTACK, policies, light=True)
    # the attack store is not RBP-framed and not a known data symbol:
    # no proof covers it, so the guard stays in and fires at runtime
    boot, outcome = _boot_run(light, policies)
    assert outcome.status == "violation"
    assert outcome.violation_code == VIOL_P1
    assert boot.enclave.space.untrusted_writes == []


def test_function_pointer_param_not_cfi_provable():
    # A target loaded from memory is not a constant definition; the
    # indirect branch must keep its runtime CFI guard.
    src = """
    int id(int x) { return x; }
    int apply(int f, int x) {
        int (*g)(int) = f;
        return g(x);
    }
    int main() { return apply(&id, 7); }
    """
    policies = PolicySet.parse("P1-P5")
    light = compile_source(src, policies, light=True)
    assert all(kind != PROOF_CFI for _, kind, _ in light.proofs)
    rep = analyze_object(light, policies)
    assert rep.annotation_counts.get("indirect_branch", 0) >= 1
    _, outcome = _boot_run(light, policies)
    assert outcome.ok


# -- producer-side guard rails ------------------------------------------------

def test_light_mode_rejects_custom_policies():
    with pytest.raises(CompileError, match="custom"):
        compile_source(_SRC, PolicySet.parse("P1"), light=True,
                       custom=[div_by_zero_guard()])


def test_frame_discipline_mirror():
    good = [Instruction(Op.PUSH_R, RBP),
            Instruction(Op.MOV_RR, RBP, RSP),
            Instruction(Op.SUB_RI, RSP, 16),
            Instruction(Op.ADD_RI, RSP, 16),
            Instruction(Op.POP_R, RBP),
            Instruction(Op.RET)]
    assert frame_discipline_ok(good)
    pivot = [Instruction(Op.MOV_RI, RBP, 0x200000),
             Instruction(Op.RET)]
    assert not frame_discipline_ok(pivot)
    wild_rsp = [Instruction(Op.MOV_RR, RSP, RAX)]
    assert not frame_discipline_ok(wild_rsp)


def test_proof_free_object_format_unchanged():
    # Annotation-full objects carry no proof section: serialize/parse
    # round-trips to the pre-proof (v1) byte format.
    _, full, light = _objects()
    blob = full.serialize()
    again = ObjectFile.parse(blob)
    assert again.proofs == []
    assert again.serialize() == blob
    round_light = ObjectFile.parse(light.serialize())
    assert sorted(round_light.proofs) == sorted(light.proofs)


# -- legacy oracle agreement (annotation-full binaries) -----------------------

def test_legacy_oracle_agrees_on_full_binaries():
    policies, full, _ = _objects()
    entry = full.symbols[full.entry].offset
    targets = sorted(full.symbols[n].offset for n in full.branch_targets)
    new = PolicyVerifier(policies).verify(full.text, entry, targets)
    old = LegacyPolicyVerifier(policies).verify(full.text, entry,
                                                targets)
    assert new == old
    stripped = compile_source(_SRC, PolicySet.none())
    sentry = stripped.symbols[stripped.entry].offset
    stargets = sorted(stripped.symbols[n].offset
                      for n in stripped.branch_targets)
    for verifier in (PolicyVerifier(policies),
                     LegacyPolicyVerifier(policies)):
        with pytest.raises(VerificationError):
            verifier.verify(stripped.text, sentry, stargets)


# -- bench + store integration ------------------------------------------------

def test_store_rejects_unknown_kind():
    CellKey(kind="static", executor="", tier=-1,
            workload="w", setting="P1", param=None)   # accepted
    with pytest.raises(StoreError, match="unknown results-store kind"):
        CellKey(kind="sttaic", executor="", tier=-1,
                workload="w", setting="P1", param=None)


def test_analysis_reports_elision_columns():
    policies, _, light = _objects()
    rep = analyze_object(light, policies)
    assert sum(rep.elided_counts.values()) == len(light.proofs)
    assert rep.annotation_bytes_saved > 0
    assert "guard elision" in rep.render()


def test_cli_verify_accepts_proof_carrying_object(tmp_path, capsys):
    from repro.cli import main
    _, _, light = _objects()
    path = tmp_path / "light.dfob"
    path.write_bytes(light.serialize())
    assert main(["verify", str(path), "--policies", "P1-P5"]) == 0
    out = capsys.readouterr().out
    assert "static proofs" in out
    # and a tampered log still rejects through the same surface
    light.proofs = sorted(light.proofs + [(0, PROOF_STACK, 0)])
    path.write_bytes(light.serialize())
    assert main(["verify", str(path), "--policies", "P1-P5"]) == 1


def test_static_cell_meets_overhead_cut_bar():
    cell = measure_static_cell("numeric_sort", "P1-P5")
    assert cell.ok
    assert cell.verified_light and cell.outputs_identical
    assert cell.overhead_cut_pct >= 20.0
    assert cell.guard_sites_light < cell.guard_sites_full
