"""Fleet scheduler: admission, supervision, failover, migration."""

import pytest

from repro.bench.fleet import run_fleet_bench
from repro.bench.store import records_from_doc
from repro.errors import AdmissionRejected
from repro.service import FleetScheduler, SessionJob, build_fleet
from repro.service.faults import (
    CAMPAIGN_SRC, FLEET_LONG_ROUNDS, FLEET_LONG_SRC, run_fleet_campaign,
)
from repro.service.fleet import QUARANTINED

_DATA = bytes(range(10))
_SUM = sum(_DATA)


def _short(job_id, tenant="t0", priority=5):
    return SessionJob(job_id, tenant, CAMPAIGN_SRC, _DATA,
                      priority=priority)


def _long(job_id, tenant="t0", checkpoint_every=200, quantum=None):
    return SessionJob(job_id, tenant, FLEET_LONG_SRC, _DATA,
                      priority=1, checkpoint_every=checkpoint_every,
                      quantum_steps=quantum)


def _assert_done(job, rounds=1):
    want = rounds * _SUM
    assert job.state == "done"
    assert job.outcome.ok
    assert job.outcome.reports == [want]
    assert job.plaintexts == [bytes([want % 256])]


# -- admission ----------------------------------------------------------------

def test_queue_full_sheds_typed():
    sched = FleetScheduler(build_fleet(1), max_queue=2)
    sched.submit(_short("a"))
    sched.submit(_short("b", tenant="t1"))
    with pytest.raises(AdmissionRejected) as err:
        sched.submit(_short("c", tenant="t2"))
    assert err.value.reason == "queue_full"
    assert err.value.tenant == "t2"
    assert sched.counters["shed"] == 1
    assert sched.shed == [{"job_id": "c", "tenant": "t2",
                           "reason": "queue_full"}]
    assert "c" not in sched.jobs   # shed, never admitted


def test_tenant_quota_sheds_only_the_noisy_tenant():
    sched = FleetScheduler(build_fleet(1), max_queue=8, tenant_quota=2)
    sched.submit(_short("a"))
    sched.submit(_short("b"))
    with pytest.raises(AdmissionRejected) as err:
        sched.submit(_short("c"))
    assert err.value.reason == "tenant_quota"
    sched.submit(_short("d", tenant="t1"))   # other tenants unaffected
    assert sched.counters["admitted"] == 3


def test_quantum_without_checkpoints_is_rejected_at_construction():
    with pytest.raises(ValueError):
        SessionJob("x", "t0", CAMPAIGN_SRC, _DATA, quantum_steps=100)


def test_priority_order_wins_over_fifo():
    sched = FleetScheduler(build_fleet(1))
    sched.submit(_short("late", priority=5))
    sched.submit(_short("urgent", priority=1))
    sched.tick()   # one drone => exactly one dispatch this tick
    assert sched.jobs["urgent"].state == "done"
    assert sched.jobs["late"].state == "queued"
    assert sched.run()
    _assert_done(sched.jobs["late"])


# -- supervision --------------------------------------------------------------

def test_quarantine_backoff_doubles_and_clamps():
    sched = FleetScheduler(build_fleet(1), quarantine_base_ticks=2,
                           quarantine_cap_ticks=32)
    assert sched.quarantine_backoff(0) == 2
    assert sched.quarantine_backoff(1) == 4
    assert sched.quarantine_backoff(2) == 8
    assert sched.quarantine_backoff(4) == 32      # saturates the cap
    assert sched.quarantine_backoff(10) == 32     # stays clamped
    assert sched.quarantine_backoff(10 ** 9) == 32   # no overflow
    assert sched.quarantine_backoff(-3) == 2      # defensive floor


def test_heartbeat_threshold_quarantines_then_readmits():
    fleet = build_fleet(1)
    drone = fleet[0]
    sched = FleetScheduler(fleet, heartbeat_threshold=2,
                           quarantine_base_ticks=2)
    drone.host.fail_pings(2)
    sched.tick()
    assert drone.consecutive_failures == 1
    assert drone.state != QUARANTINED
    sched.tick()
    assert drone.state == QUARANTINED
    assert sched.counters["quarantines"] == 1
    quarantined_at = sched.tick_now
    # Healthy again: the re-admission probe fires only after backoff.
    while drone.state == QUARANTINED:
        sched.tick()
        assert sched.tick_now <= quarantined_at + 10
    assert sched.tick_now - quarantined_at >= 2
    assert sched.counters["readmissions"] == 1
    assert drone.consecutive_failures == 0


def test_flapping_drone_backoff_doubles_per_failed_probe():
    fleet = build_fleet(1)
    drone = fleet[0]
    sched = FleetScheduler(fleet, heartbeat_threshold=1,
                           quarantine_base_ticks=2,
                           quarantine_cap_ticks=32)
    drone.host.fail_pings(50)   # stays unresponsive for the whole test
    sched.tick()
    assert drone.state == QUARANTINED
    backoffs = [e["backoff_ticks"] for e in sched.events
                if e["kind"] == "quarantined"]
    for _ in range(40):
        sched.tick()
    backoffs = [e["backoff_ticks"] for e in sched.events
                if e["kind"] == "quarantined"]
    assert backoffs[:4] == [2, 4, 8, 16]
    assert all(b <= 32 for b in backoffs)


def test_ping_carries_identity_and_is_not_audited():
    drone = build_fleet(1)[0]
    first = drone.host.ecall_ping()
    second = drone.host.ecall_ping()
    assert first["mrenclave"] == drone.bootstrap.enclave.mrenclave.hex()
    # Heartbeats must be cheap: no audit-chain growth per probe.
    assert first["audit_head"] == second["audit_head"]
    assert drone.heartbeat()


# -- failover and migration ---------------------------------------------------

def test_mid_run_kill_fails_over_to_new_einit_with_identical_output():
    fleet = build_fleet(1)
    drone = fleet[0]
    drone.host.arm_kill(600)
    sched = FleetScheduler(fleet)
    job = sched.submit(_long("victim"))
    assert sched.run(max_ticks=60)
    _assert_done(job, rounds=FLEET_LONG_ROUNDS)
    # The chain was sealed by generation 0 and resumed by generation 1
    # on the SAME platform: that is the checkpoint migration.
    assert job.migrated
    assert job.einits[0] == "drone-0#e0"
    assert job.einits[-1] == "drone-0#e1"
    assert job.outcome.resumed_at_step is not None
    assert sched.counters["migrations"] == 1
    assert sched.counters["replacements"] >= 1
    assert job.stats.rollbacks_rejected == 0


def test_preemption_parks_and_resumes_without_migration():
    fleet = build_fleet(1)
    sched = FleetScheduler(fleet)
    job = sched.submit(_long("sliced", quantum=4000))
    assert sched.run(max_ticks=80)
    _assert_done(job, rounds=FLEET_LONG_ROUNDS)
    assert job.preemptions >= 2
    assert sched.counters["preemptions"] == job.preemptions
    # Same EINIT throughout: preemption alone is not a migration.
    assert set(job.einits) == {"drone-0#e0"}
    assert not job.migrated


def test_parked_chain_owner_resumes_before_higher_priority_work():
    fleet = build_fleet(1)
    sched = FleetScheduler(fleet)
    parked = sched.submit(_long("parked", quantum=4000))
    sched.tick()
    assert parked.state == "parked"
    assert parked.pinned_drone == "drone-0"
    rival = sched.submit(_short("rival", priority=0))
    assert sched.run(max_ticks=80)
    # The platform's counters were reserved for the parked chain: the
    # rival (better priority) only ran after the owner finished.
    order = [e["job"] for e in sched.events if e["kind"] == "finished"]
    assert order == ["parked", "rival"]
    _assert_done(parked, rounds=FLEET_LONG_ROUNDS)
    _assert_done(rival)


def test_stale_pin_discards_chain_and_reruns_elsewhere():
    fleet = build_fleet(2)
    sched = FleetScheduler(fleet, max_pin_ticks=2)
    job = sched.submit(_long("mover", quantum=4000))
    sched.tick()
    assert job.pinned_drone == "drone-0"
    # The sealing platform drops out for good: the pin goes stale and
    # the chain must be DISCARDED (never re-presented elsewhere — that
    # would be the rollback attack) and the job rerun from scratch.
    fleet[0].state = QUARANTINED
    fleet[0].quarantined_until = 10 ** 6
    assert sched.run(max_ticks=120)
    _assert_done(job, rounds=FLEET_LONG_ROUNDS)
    assert sched.counters["chains_discarded"] == 1
    assert not job.migrated          # rerun, not a resumed chain
    assert job.requeues == 1
    assert "drone-1#e0" in job.einits


# -- chaos campaign -----------------------------------------------------------

def test_fleet_campaign_zero_lost_and_deterministic():
    first = run_fleet_campaign(seed=11, drones=3, jobs=8, max_events=6)
    again = run_fleet_campaign(seed=11, drones=3, jobs=8, max_events=6)
    assert first == again
    assert first["zero_lost"]
    assert first["lost"] == []
    assert first["corrupt"] == []
    assert first["counters"]["completed"] + first["counters"]["aborted"] \
        == first["counters"]["admitted"]


# -- bench + store ingestion --------------------------------------------------

def test_fleet_bench_doc_and_store_ingestion(tmp_path):
    doc = run_fleet_bench(seed=3, drones=2, sessions=6, tenants=2,
                          long_every=3, kill_after_steps=500,
                          max_queue=8, max_ticks=120)
    assert doc["status"] == "ok"
    assert doc["zero_lost"]
    assert doc["migration_check"]["outputs_match"]
    assert doc["counters"]["completed"] >= 1
    assert doc["latency_ticks"]["p99"] >= doc["latency_ticks"]["p50"]
    assert doc["sec_per_session"] > 0

    records = records_from_doc(doc, commit="test")
    fleet_cells = [r for r in records if r.key.kind == "fleet"]
    assert fleet_cells
    campaign = next(r for r in fleet_cells
                    if r.key.workload == "campaign")
    assert campaign.metrics["zero_lost"] is True
    assert campaign.metrics["migrated"] is True
    assert campaign.metrics["p99_ticks"] >= campaign.metrics["p50_ticks"]
    assert "sec_per_session" in campaign.metrics
    tenants = {r.key.setting for r in fleet_cells
               if r.key.workload == "tenant"}
    assert tenants == {"tenant-0", "tenant-1"}


def test_cli_chaos_fleet_exits_zero(capsys, tmp_path):
    from repro.cli import main
    out = tmp_path / "fleet_chaos.json"
    code = main(["chaos", "--fleet", "--seed", "5", "-o", str(out)])
    assert code == 0
    assert out.exists()
    text = capsys.readouterr().out
    assert "fleet chaos seed=5" in text
    assert "LOST" not in text
