"""Sealed mid-run checkpoint/restore: sealing, rollback protection,
resume equivalence, watchdog deadlines."""

import random

import pytest

from repro.bench.checkpointing import outcome_fingerprint
from repro.compiler import compile_source
from repro.core import BootstrapEnclave
from repro.core.checkpoint import (
    COUNTER_LABEL, Watchdog, verify_chain,
)
from repro.errors import (
    DeadlineExceeded, EnclaveTeardown, RollbackError,
)
from repro.policy import PolicySet
from repro.service.resilient import classify_error
from repro.vm.costmodel import CostModel
from repro.vm.interrupts import AexSchedule

# Long enough for many checkpoints; touches reports, __send output and
# data-dependent memory writes so a missed dirty page would show.
SRC = """
char buf[16];
char out[4];
int scratch[64];
int main() {
    int n = __recv(buf, 16);
    int i; int acc = 0;
    for (i = 0; i < 4000; i++) {
        acc = (acc + buf[i % n] + i) % 100000;
        scratch[i % 64] = acc;
        if (i % 800 == 0) __report(acc % 1000);
    }
    out[0] = scratch[acc % 64] % 120;
    __send(out, 1);
    __report(acc);
    return acc % 128;
}
"""

DATA = bytes(range(7, 23))

_POLICIES = PolicySet.full()
_BLOB = compile_source(SRC, _POLICIES).serialize()


def _boot(data=DATA, **kwargs):
    boot = BootstrapEnclave(policies=_POLICIES, aex_threshold=100_000,
                            **kwargs)
    boot.receive_binary(_BLOB)
    boot.receive_userdata(data)
    return boot


def _reprovision(boot, data=DATA):
    boot.receive_binary(_BLOB)
    boot.receive_userdata(data)


def _teardown_at(boot, at_step):
    def interrupt(cpu):
        if cpu.steps >= at_step:
            boot.enclave.destroy()
            raise EnclaveTeardown(f"torn down at step {cpu.steps}")
    return interrupt


def _aex():
    return AexSchedule(1_500)


# -- checkpointing changes nothing observable ---------------------------


def test_checkpointed_run_identical_to_plain():
    plain = _boot().run(aex_schedule=_aex())
    blobs = []
    ckpt = _boot().run(aex_schedule=_aex(), checkpoint_every=400,
                       checkpoint_sink=blobs.append)
    assert outcome_fingerprint(ckpt) == outcome_fingerprint(plain)
    assert ckpt.checkpoints_taken == len(blobs) > 5
    assert plain.checkpoints_taken == 0


def test_checkpointed_run_identical_under_step_oracle():
    model = CostModel(executor="step")
    plain = _boot().run(aex_schedule=_aex(), cost_model=model)
    ckpt = _boot().run(aex_schedule=_aex(), cost_model=model,
                       checkpoint_every=700)
    assert outcome_fingerprint(ckpt) == outcome_fingerprint(plain)


# -- seal / unseal ------------------------------------------------------


def _run_with_chain(boot, every=500):
    blobs = []
    outcome = boot.run(aex_schedule=_aex(), checkpoint_every=every,
                       checkpoint_sink=blobs.append)
    return outcome, blobs


def test_chain_verifies_and_every_tamper_fails_closed():
    boot = _boot()
    _, blobs = _run_with_chain(boot)
    key = boot._seal_key()
    head = boot.enclave.platform.counter_read(COUNTER_LABEL)
    payloads = verify_chain(key, blobs, head)
    assert payloads[-1].cpu.steps > payloads[0].cpu.steps

    flipped = bytearray(blobs[1])
    flipped[len(flipped) // 2] ^= 0x40
    bad_chains = [
        [blobs[0], bytes(flipped)] + blobs[2:],   # bit flip
        [blobs[0], blobs[1][:-5]] + blobs[2:],    # truncated blob
        [blobs[0], b""] + blobs[2:],              # empty blob
        [blobs[0]] + blobs[2:],                   # counter gap
        [blobs[1], blobs[0]] + blobs[2:],         # reordered
        blobs[1:],                                # grafted (no genesis)
        blobs[:-1],                               # stale head (rollback)
        [],                                       # empty chain
    ]
    for bad in bad_chains:
        with pytest.raises(RollbackError):
            verify_chain(key, bad, head)


def test_wrong_key_rejected_indistinguishably():
    boot = _boot()
    _, blobs = _run_with_chain(boot)
    head = boot.enclave.platform.counter_read(COUNTER_LABEL)
    with pytest.raises(RollbackError, match="MAC"):
        verify_chain(b"\x13" * 32, blobs, head)


# -- resume equivalence -------------------------------------------------


def test_resume_equivalence_over_seeded_interrupt_points():
    plain = _boot().run(aex_schedule=_aex())
    want = outcome_fingerprint(plain)
    total = plain.result.steps
    rng = random.Random(2021)
    boot = _boot()
    for _ in range(3):
        at = rng.randrange(total // 8, total - total // 8)
        blobs = []
        with pytest.raises(EnclaveTeardown):
            boot.run(aex_schedule=_aex(), checkpoint_every=300,
                     checkpoint_sink=blobs.append,
                     interrupt=_teardown_at(boot, at))
        assert blobs, "teardown before the first checkpoint"
        boot.recover()
        _reprovision(boot)
        resumed = boot.resume(blobs, aex_schedule=_aex(),
                              checkpoint_every=300)
        assert outcome_fingerprint(resumed) == want
        assert resumed.resumed_at_step is not None
        assert resumed.resumed_at_step <= at + 300
    kinds = [e.kind for e in boot.audit.events]
    assert kinds.count("resumed") == 3


def test_rollback_replay_of_stale_chain_rejected():
    boot = _boot()
    blobs = []
    with pytest.raises(EnclaveTeardown):
        boot.run(aex_schedule=_aex(), checkpoint_every=300,
                 checkpoint_sink=blobs.append,
                 interrupt=_teardown_at(boot, 2_000))
    assert len(blobs) >= 2
    boot.recover()
    _reprovision(boot)
    with pytest.raises(RollbackError, match="stale|rollback"):
        boot.resume(blobs[:-1], aex_schedule=_aex())


def test_cross_enclave_chain_rejected():
    a = _boot()
    _, blobs = _run_with_chain(a)
    # Same platform, different provisioned binary => different seal key.
    other_blob = compile_source(
        "int main() { return 7; }", _POLICIES).serialize()
    b = BootstrapEnclave(policies=_POLICIES, aex_threshold=100_000)
    b.receive_binary(other_blob)
    b.receive_userdata(DATA)
    with pytest.raises(RollbackError):
        b.resume(blobs)


def test_cross_platform_chain_rejected():
    a = _boot()
    _, blobs = _run_with_chain(a)
    b = _boot()          # fresh platform: different fuse + counter
    with pytest.raises(RollbackError):
        b.resume(blobs)


def test_resume_with_different_userdata_rejected():
    boot = _boot()
    blobs = []
    with pytest.raises(EnclaveTeardown):
        boot.run(aex_schedule=_aex(), checkpoint_every=300,
                 checkpoint_sink=blobs.append,
                 interrupt=_teardown_at(boot, 2_000))
    boot.recover()
    _reprovision(boot, data=b"\xff" * 16)
    with pytest.raises(RollbackError, match="user data"):
        boot.resume(blobs)
    assert any(e.kind == "resume_rejected" for e in boot.audit.events)


# -- watchdog -----------------------------------------------------------


def test_watchdog_deadline_carries_chain_and_resume_completes():
    plain = _boot().run(aex_schedule=_aex())
    boot = _boot()
    with pytest.raises(DeadlineExceeded) as info:
        boot.run(aex_schedule=_aex(), checkpoint_every=500,
                 watchdog=Watchdog(max_steps=3_000))
    chain = info.value.checkpoint
    assert chain, "deadline must carry the final checkpoint chain"
    assert any(e.kind == "watchdog_expired" for e in boot.audit.events)
    # The operator grants a bigger budget and resumes the same chain.
    resumed = boot.resume(chain, aex_schedule=_aex(),
                          checkpoint_every=500,
                          watchdog=Watchdog(max_steps=10_000_000))
    assert outcome_fingerprint(resumed) == outcome_fingerprint(plain)
    assert resumed.resumed_at_step >= 3_000


def test_watchdog_without_checkpointing_still_raises():
    boot = _boot()
    with pytest.raises(DeadlineExceeded) as info:
        boot.run(watchdog=Watchdog(max_cycles=100.0))
    assert info.value.checkpoint == []


def test_watchdog_unlimited_budgets_never_fire():
    outcome = _boot().run(watchdog=Watchdog())
    assert outcome.ok


# -- error classification ----------------------------------------------


def test_rollback_and_deadline_classified_fatal():
    assert classify_error(RollbackError("replayed")) == "fatal"
    assert classify_error(DeadlineExceeded("late")) == "fatal"


def test_cli_never_retries_rollback_or_deadline():
    from repro.cli import _NEVER_RETRY
    assert "RollbackError" in _NEVER_RETRY
    assert "DeadlineExceeded" in _NEVER_RETRY


# -- mid-run chaos campaign --------------------------------------------


def test_midrun_campaign_recovers_everything():
    from repro.service.faults import run_campaign
    report = run_campaign(seed=11, trials=4, mid_run=True)
    totals = report["totals"]
    assert report["mid_run"] is True
    assert totals["corrupt"] == 0
    assert totals["unrecovered"] == 0
    assert totals["aborted"] == 0
    # the mid-run fault family must actually have fired somewhere
    faults = [f for row in report["trials_detail"]
              for f in row["faults"]]
    assert any(f.startswith("midrun_teardown") for f in faults)


def test_campaign_without_midrun_flag_unchanged():
    """The mid-run fault family is opt-in: a default campaign must not
    consume different RNG draws (existing reports stay byte-identical)."""
    from repro.service.faults import run_campaign
    a = run_campaign(seed=3, trials=2)
    b = run_campaign(seed=3, trials=2, mid_run=False)
    assert a == b
    assert a["mid_run"] is False
    assert a["totals"]["resumes"] == 0
