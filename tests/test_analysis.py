"""Binary analysis reports and traced execution."""

import pytest

from repro.analysis import analyze_object
from repro.compiler import compile_source
from repro.core import BootstrapEnclave
from repro.policy import PolicySet

_SRC = """
int helper(int x) { return x * 2 + 1; }
int table[4];
int main() {
    int (*f)(int) = &helper;
    int i;
    for (i = 0; i < 4; i++) table[i] = f(i);
    __report(table[3]);
    return table[3];
}
"""


def _obj(setting):
    return compile_source(_SRC, PolicySet.parse(setting),
                          include_prelude=False)


def test_report_counts_structure():
    report = analyze_object(_obj("baseline"))
    assert report.reachable_instructions > 20
    assert report.stores >= 4          # the table writes + frame saves
    assert report.calls >= 1           # __start -> main
    assert report.indirect_branches == 1
    assert report.basic_blocks >= 4
    # only the trap pads + unreachable return-0 filler are dead here
    assert report.dead_bytes < 40
    assert sum(report.opcode_histogram.values()) == \
        report.reachable_instructions


def test_report_functions_sized():
    report = analyze_object(_obj("baseline"))
    assert "main" in report.functions and "helper" in report.functions
    assert report.functions["main"] > report.functions["helper"]


def test_annotation_inventory_with_policies():
    policies = PolicySet.p1_p5()
    report = analyze_object(_obj("P1-P5"), policies)
    assert report.annotation_counts["store_guard"] >= 4
    assert report.annotation_counts["indirect_branch"] == 1
    assert 0.2 < report.annotation_fraction < 0.9
    baseline = analyze_object(_obj("baseline"))
    assert report.reachable_bytes > baseline.reachable_bytes


def test_render_contains_sections():
    report = analyze_object(_obj("P1"), PolicySet.p1_only())
    text = report.render()
    assert "binary statistics" in text
    assert "top opcodes" in text
    assert "functions by size" in text
    assert "store_guard" in text


def test_prelude_shows_up_as_dead_bytes():
    obj = compile_source(_SRC, PolicySet.none())  # with prelude
    report = analyze_object(obj)
    assert report.dead_bytes > 500     # unreferenced libc routines


# -- traced execution --------------------------------------------------------

def test_run_traced_matches_plain_run():
    policies = PolicySet.p1_only()
    boot = BootstrapEnclave(policies=policies)
    boot.receive_binary(
        compile_source(_SRC, policies).serialize())
    plain = boot.run()
    traced, trace = boot.run_traced(max_instructions=100_000)
    assert traced.status == "ok"
    assert traced.reports == plain.reports
    assert traced.result.steps == plain.result.steps
    assert len(trace) == traced.result.steps
    assert trace[0].endswith("call main") or "call" in trace[0]
    assert any("svc" in line for line in trace)


def test_run_traced_truncates():
    policies = PolicySet.p1_only()
    boot = BootstrapEnclave(policies=policies)
    boot.receive_binary(compile_source(_SRC, policies).serialize())
    outcome, trace = boot.run_traced(max_instructions=5)
    assert outcome.status == "truncated"
    assert len(trace) == 6             # 5 instructions + marker


def test_run_traced_captures_violation():
    policies = PolicySet.p1_only()
    boot = BootstrapEnclave(policies=policies)
    boot.receive_binary(compile_source(
        "int main() { int *p = 4096; *p = 1; return 0; }",
        policies).serialize())
    outcome, trace = boot.run_traced(max_instructions=10_000)
    assert outcome.status == "violation"
    assert "trap" in trace[-1]


def test_cli_stats_and_trace(tmp_path, capsys):
    from repro.cli import main
    src = tmp_path / "x.c"
    src.write_text("int main() { __report(1); return 0; }")
    out = tmp_path / "x.dfob"
    main(["compile", str(src), "-o", str(out), "--policies", "P1"])
    capsys.readouterr()
    assert main(["objdump", str(out), "--stats",
                 "--policies", "P1"]) == 0
    text = capsys.readouterr().out
    assert "binary statistics" in text and "annotations" in text
    assert main(["run", str(out), "--policies", "P1",
                 "--trace", "12"]) == 0
    text = capsys.readouterr().out
    assert "status:  truncated" in text
    assert text.count("0x7000") >= 12
