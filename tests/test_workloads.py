"""Workload correctness: self-checks at baseline, differential equality
across instrumentation levels (small parameters to keep tests quick)."""

import pytest

from repro.bench import overhead_matrix, run_workload
from repro.workloads import WORKLOADS, get_workload
from repro.workloads.nbench import NBENCH_ORDER

#: small parameters per workload for the test matrix
_SMALL = {
    "numeric_sort": 60, "string_sort": 16, "bitfield": 300,
    "fp_emulation": 30, "fourier": 3, "assignment": 2, "idea": 12,
    "huffman": 40, "neural_net": 1, "lu_decomposition": 1,
    "sequence_alignment": 24, "sequence_generation": 600,
    "credit_scoring": 40, "https_handler": 512, "image_filter": 12,
}


def test_registry_contains_all_experiment_workloads():
    assert set(NBENCH_ORDER) <= set(WORKLOADS)
    assert {"sequence_alignment", "sequence_generation",
            "credit_scoring", "https_handler"} <= set(WORKLOADS)
    assert len(WORKLOADS) == 15


def test_unknown_workload_error():
    with pytest.raises(KeyError, match="unknown workload"):
        get_workload("quicksort3000")


@pytest.mark.parametrize("name", sorted(_SMALL))
def test_selfcheck_at_baseline(name):
    result = run_workload(name, "baseline", _SMALL[name])
    assert result.status == "ok"
    assert result.reports[0] == 1, f"{name} self-check failed"


@pytest.mark.parametrize("name", ["numeric_sort", "huffman",
                                  "assignment", "sequence_alignment",
                                  "credit_scoring"])
def test_differential_across_all_policy_levels(name):
    matrix = overhead_matrix(name, _SMALL[name])
    baseline = matrix["baseline"]
    for setting, result in matrix.items():
        assert result.reports == baseline.reports
        if setting != "baseline":
            assert result.cycles > baseline.cycles


def test_instrumentation_grows_text_monotonically():
    sizes = []
    for setting in ("baseline", "P1", "P1+P2", "P1-P5", "P1-P6"):
        sizes.append(run_workload("numeric_sort", setting, 40).text_bytes)
    assert sizes == sorted(sizes)
    assert sizes[-1] > sizes[0] * 2


def test_workload_parameters_scale_work():
    small = run_workload("sequence_alignment", "baseline", 16)
    large = run_workload("sequence_alignment", "baseline", 48)
    # N-W is quadratic: 3x input -> ~9x steps
    assert large.steps > small.steps * 4


def test_sequence_generation_streams_requested_length():
    from repro.compiler import compile_source
    from repro.core import BootstrapEnclave
    from repro.policy import PolicySet
    wl = get_workload("sequence_generation")
    obj = compile_source(wl.source(2500), PolicySet.p1_only())
    boot = BootstrapEnclave(policies=PolicySet.p1_only())
    boot.receive_binary(obj.serialize())
    outcome = boot.run()
    assert outcome.ok
    body = b"".join(outcome.sent_plaintext)
    assert len(body) == 2500
    assert set(body) <= set(b"ACGT")
    # reported GC count matches the stream
    assert outcome.reports[1] == sum(1 for c in body if c in b"CG")


def test_alignment_score_matches_reference_dp():
    # independent Python implementation of the same scoring scheme
    wl = get_workload("sequence_alignment")
    n = 20
    data = wl.input_bytes(n)
    a, b = data[:n], data[n:]
    gap, match, mismatch = -2, 1, -1
    prev = [j * gap for j in range(n + 1)]
    for i in range(1, n + 1):
        curr = [i * gap] + [0] * n
        for j in range(1, n + 1):
            diag = prev[j - 1] + (match if a[i - 1] == b[j - 1]
                                  else mismatch)
            curr[j] = max(diag, prev[j] + gap, curr[j - 1] + gap)
        prev = curr
    expected = prev[n] & ((1 << 30) - 1)
    result = run_workload("sequence_alignment", "P1-P5", n)
    assert result.reports[1] == expected


def test_https_handler_response_matches_request_size():
    from repro.core import BootstrapEnclave
    from repro.compiler import compile_source
    from repro.policy import PolicySet
    from repro.workloads.https_app import request_bytes
    wl = get_workload("https_handler")
    obj = compile_source(wl.source(4096), PolicySet.full())
    boot = BootstrapEnclave(policies=PolicySet.full())
    boot.receive_binary(obj.serialize())
    for size in (100, 1000, 4096, 9999):
        boot.receive_userdata(request_bytes(size))
        outcome = boot.run()
        assert outcome.ok
        expected = min(size, 4096)
        assert len(outcome.sent_plaintext[0]) == expected
