"""Continuous results store + regression gates."""

import json

import pytest

from repro.bench import gates
from repro.bench.store import (
    CellKey, Record, ResultsStore, StoreError, records_from_checkpoint_doc,
    records_from_doc, records_from_provision_doc, records_from_vm_doc,
    stamp_run,
)
from repro.cli import main


def _key(**kw):
    base = dict(kind="vm", executor="translate", tier=2,
                workload="numeric_sort", setting="P1", param=40)
    base.update(kw)
    return CellKey(**base)


def _record(metrics, status="ok", run_id="r1", **kw):
    return Record(key=_key(**kw), metrics=dict(metrics),
                  status=status, commit="abc", run_id=run_id, ts=1.0)


VM_CELL = {
    "workload": "numeric_sort", "setting": "P1", "param": 40,
    "steps": 1000, "cycles": 2000.5, "aex_events": 3,
    "text_bytes": 512, "status": "ok", "detail": "",
    "wall_s": 0.25, "ips": 4000.0, "overhead_pct": 7.5,
    "provision_cache_hits": 0, "retries": 0, "recoveries": 0,
}


# -- store round-trip -------------------------------------------------

def test_record_line_round_trip():
    rec = _record({"cycles": 2000.5, "identical": True})
    back = Record.from_line(rec.to_line())
    assert back.key == rec.key
    assert back.metrics == {"cycles": 2000.5, "identical": True}
    assert back.metrics["identical"] is True
    assert back.accepted


def test_store_append_load_preserves_order(tmp_path):
    store = ResultsStore(tmp_path / "h.jsonl")
    assert store.load() == []
    store.append([_record({"cycles": 1.0}, run_id="r1")])
    store.append([_record({"cycles": 2.0}, run_id="r2"),
                  _record({"cycles": 9.0}, run_id="r2",
                          setting="baseline")])
    records = store.load()
    assert [r.run_id for r in records] == ["r1", "r2", "r2"]
    assert store.runs() == ["r1", "r2"]
    # append-only: re-loading after another append keeps history intact
    store.append([_record({"cycles": 3.0}, run_id="r3")])
    assert [r.metrics["cycles"] for r in store.load()
            if r.key.setting == "P1"] == [1.0, 2.0, 3.0]


def test_store_rejects_garbage_lines(tmp_path):
    path = tmp_path / "h.jsonl"
    path.write_text("not json\n")
    with pytest.raises(StoreError, match="line 1"):
        ResultsStore(path).load()
    path.write_text(json.dumps({"schema": "wrong/1"}) + "\n")
    with pytest.raises(StoreError, match="schema"):
        ResultsStore(path).load()


# -- ingest builders --------------------------------------------------

def test_vm_doc_ingest_single_and_multi_executor():
    single = {"schema": "deflection-bench/1", "executor": "translate",
              "workloads": {"numeric_sort": {"P1": VM_CELL}}}
    records = records_from_vm_doc(single, executor_label="translate-t1")
    assert len(records) == 1
    assert records[0].key.executor == "translate-t1"
    assert records[0].key.tier == 1
    assert records[0].metrics["cycles"] == 2000.5

    multi = {"schema": "deflection-bench/1",
             "executors": {ex: {"workloads":
                                {"numeric_sort": {"P1": VM_CELL}}}
                           for ex in ("step", "translate")}}
    records = records_from_vm_doc(multi)
    tiers = sorted(r.key.tier for r in records)
    assert tiers == [0, 2]


def test_provision_doc_ingest_keys_and_acceptance():
    cell = {"workload": "huffman", "setting": "P1-P6", "param": 40,
            "text_bytes": 100, "instructions": 50,
            "legacy_cold_ms": 3.0, "new_cold_ms": 1.0, "warm_ms": 0.1,
            "identical": False, "status": "divergent",
            "detail": "images differ"}
    doc = {"schema": "deflection-provision/1",
           "workloads": {"huffman": {"P1-P6": cell}}}
    (rec,) = records_from_provision_doc(doc)
    assert rec.key == CellKey("provision", "", -1, "huffman",
                              "P1-P6", 40)
    assert rec.metrics["identical"] is False
    assert not rec.accepted    # divergent cells never seed baselines


def test_checkpoint_doc_ingest_downgrades_silent_mismatch():
    cell = {"workload": "idea", "setting": "P1-P6", "param": 12,
            "steps": 5000, "plain_wall_s": 0.5, "status": "ok",
            "overhead": [{"checkpoint_every": 100, "wall_s": 0.9,
                          "checkpoints": 50, "chain_bytes": 4096,
                          "overhead_pct": 80.0, "identical": True}],
            "resumes": [{"interrupt_step": 100, "resumed_at_step": 90,
                         "chain_len": 2, "identical": False,
                         "rollback_rejected": True}]}
    doc = {"schema": "deflection-checkpoint-bench/1", "cells": [cell]}
    (rec,) = records_from_checkpoint_doc(doc)
    # CheckpointCell.status stays "ok" on a resume mismatch; the store
    # must still refuse to accept it into the rolling baseline.
    assert rec.status == "divergent"
    assert rec.metrics["resume_identical"] is False
    assert rec.metrics["overhead_pct@100"] == 80.0
    assert rec.metrics["chain_bytes@100"] == 4096


def test_records_from_doc_dispatch_and_stamp():
    doc = {"schema": "deflection-bench/1", "executor": "translate",
           "workloads": {"numeric_sort": {"P1": VM_CELL}}}
    records = records_from_doc(doc, commit="deadbeef", ts=123.0)
    assert records[0].commit == "deadbeef"
    assert records[0].ts == 123.0
    assert records[0].run_id.startswith("vm-deadbeef-")
    with pytest.raises(StoreError, match="cannot ingest"):
        records_from_doc({"schema": "nope/9"})


# -- gate classification ----------------------------------------------

def test_rolling_baseline_is_median_of_window():
    assert gates.rolling_baseline([1.0, 100.0, 3.0]) == 3.0
    assert gates.rolling_baseline([5.0, 1.0, 2.0, 100.0]) == 3.5
    # window drops the oldest runs
    assert gates.rolling_baseline([1e9, 2.0, 2.0, 2.0, 2.0, 2.0],
                                  window=5) == 2.0


def _history(*cycle_values, metric="cycles", status="ok"):
    return [_record({metric: v}, run_id=f"r{i}",
                    status=status if i == len(cycle_values) - 1
                    else "ok")
            for i, v in enumerate(cycle_values)]


def test_flat_rerun_gates_clean():
    report = gates.evaluate(_history(100.0, 100.0, 100.0))
    assert report.counts()["flat"] == 1
    assert report.exit_code == 0


def test_deterministic_drift_has_zero_band():
    report = gates.evaluate(_history(100.0, 100.0, 100.1))
    (delta,) = report.deltas
    assert delta.classification == "regressed"
    assert delta.blocking
    assert report.exit_code == 1
    improved = gates.evaluate(_history(100.0, 100.0, 99.9))
    assert improved.deltas[0].classification == "improved"
    assert improved.exit_code == 0


def test_wall_clock_band_is_advisory():
    within = gates.evaluate(_history(1.0, 1.0, 1.2, metric="wall_s"))
    assert within.deltas[0].classification == "flat"
    beyond = gates.evaluate(_history(1.0, 1.0, 1.5, metric="wall_s"))
    (delta,) = beyond.deltas
    assert delta.classification == "regressed"
    assert not delta.blocking           # advisory by default
    assert beyond.exit_code == 0
    assert beyond.advisories == [delta]
    gated = gates.evaluate(_history(1.0, 1.0, 1.5, metric="wall_s"),
                           gate_wall=True)
    assert gated.exit_code == 1


def test_boolean_metrics_gate_on_truth():
    broken = gates.evaluate(
        [_record({"identical": True}, run_id="r0"),
         _record({"identical": False}, run_id="r1")])
    assert broken.deltas[0].classification == "regressed"
    assert broken.exit_code == 1
    fixed = gates.evaluate(
        [_record({"identical": False}, run_id="r0"),
         _record({"identical": True}, run_id="r1")])
    assert fixed.deltas[0].classification == "improved"


def test_unaccepted_latest_blocks_regardless_of_history():
    records = _history(100.0, 100.0)
    records.append(_record({"cycles": 100.0}, run_id="r9",
                           status="error"))
    report = gates.evaluate(records)
    (delta,) = report.deltas
    assert delta.metric == "status"
    assert delta.blocking


def test_new_cells_pass_and_seed_the_baseline():
    report = gates.evaluate(_history(100.0))
    assert report.counts()["new"] == 1
    assert report.exit_code == 0


def test_failed_runs_are_excluded_from_baseline():
    # error run in the middle must not drag the median
    records = [_record({"cycles": 100.0}, run_id="r0"),
               _record({"cycles": 5.0}, run_id="r1", status="error"),
               _record({"cycles": 100.0}, run_id="r2")]
    report = gates.evaluate(records)
    (delta,) = report.deltas
    assert delta.classification == "flat"
    assert delta.baseline == 100.0


def test_synthetic_regression_fires_the_gate():
    records = _history(100.0, 100.0)
    degraded = gates.inject_synthetic_regression(records, 50.0)
    assert len(degraded) == len(records) + 1
    report = gates.evaluate(degraded)
    assert report.exit_code == 1
    # the flat control: 0% injection stays clean
    flat = gates.evaluate(
        gates.inject_synthetic_regression(records, 0.0))
    assert flat.exit_code == 0


def test_kind_filter_restricts_evaluation():
    records = (_history(1.0, 2.0)
               + [_record({"warm_ms": 1.0}, kind="provision",
                          executor="", tier=-1, run_id="p0")])
    report = gates.evaluate(records, kinds=["provision"])
    assert len(report.deltas) == 1
    assert report.deltas[0].key.kind == "provision"


def test_report_render_lists_regressions():
    report = gates.evaluate(_history(100.0, 100.0, 150.0))
    text = report.render()
    assert "regressed" in text
    assert "cycles" in text
    assert "+50.00%" in text
    assert "1 regressed (blocking)" in text


# -- CLI: record + gate -----------------------------------------------

BENCH_ARGS = ["bench", "--workloads", "numeric_sort",
              "--settings", "baseline", "P1", "--param", "40",
              "--executor", "translate"]


def test_cli_record_then_flat_rerun_gates_zero(tmp_path, capsys):
    store = tmp_path / "history.jsonl"
    for commit in ("one", "two"):
        assert main(BENCH_ARGS + ["--record", "--store", str(store),
                                  "--commit", commit]) == 0
    out = capsys.readouterr().out
    assert "recorded 2 cells" in out
    assert main(["bench", "gate", "--store", str(store)]) == 0
    out = capsys.readouterr().out
    assert "gate passed" in out
    # the two runs are distinct generations of the same cells
    records = ResultsStore(store).load()
    assert len(records) == 4
    assert len({r.run_id for r in records}) == 2
    assert {r.commit for r in records} == {"one", "two"}


def test_cli_gate_synthetic_regression_is_nonzero(tmp_path, capsys):
    store = tmp_path / "history.jsonl"
    assert main(BENCH_ARGS + ["--record", "--store", str(store),
                              "--commit", "seed"]) == 0
    capsys.readouterr()
    assert main(["bench", "gate", "--store", str(store),
                 "--synthetic-regression", "50"]) == 1
    out = capsys.readouterr().out
    assert "REGRESSED cells" in out
    # ...and the store file itself was not modified by the self-test
    assert len(ResultsStore(store).load()) == 2
    assert main(["bench", "gate", "--store", str(store)]) == 0


def test_cli_baseline_report_without_record(tmp_path, capsys):
    store = tmp_path / "history.jsonl"
    assert main(BENCH_ARGS + ["--record", "--store", str(store)]) == 0
    capsys.readouterr()
    assert main(BENCH_ARGS + ["--baseline", "--store", str(store)]) == 0
    out = capsys.readouterr().out
    assert "flat" in out
    # --baseline alone never writes
    assert len(ResultsStore(store).load()) == 2


def test_cli_gate_missing_or_empty_store(tmp_path, capsys):
    assert main(["bench", "gate", "--store",
                 str(tmp_path / "absent.jsonl")]) == 1
    assert "no results store" in capsys.readouterr().err
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert main(["bench", "gate", "--store", str(empty)]) == 1
    assert "empty" in capsys.readouterr().err


def test_cli_smoke_records_all_three_tiers(tmp_path, capsys):
    store = tmp_path / "history.jsonl"
    assert main(["bench", "--smoke", "--workloads", "numeric_sort",
                 "--settings", "P1", "--param", "40",
                 "--record", "--store", str(store)]) == 0
    records = ResultsStore(store).load()
    assert sorted(r.key.executor for r in records) == \
        ["step", "translate", "translate-t1"]
    assert sorted(r.key.tier for r in records) == [0, 1, 2]
    assert main(["bench", "gate", "--store", str(store)]) == 0
