"""Enclave layout, lifecycle, measurement and attestation."""

import pytest

from repro.errors import AttestationError, EnclaveError, LoaderError
from repro.sgx import (
    AttestationService, Enclave, EnclaveConfig, EnclaveLayout,
    PAGE_SIZE, PERM_R, PERM_W, PERM_X, PlatformKey, Quote, Report,
)
from repro.sgx.attestation import check_attestation_report


# -- layout ---------------------------------------------------------------

def test_layout_regions_are_contiguous_and_ordered():
    layout = EnclaveLayout.build(EnclaveConfig())
    regions = list(layout.regions.values())
    for prev, cur in zip(regions, regions[1:]):
        assert prev.end == cur.start
    assert layout.el_lo == regions[0].start
    assert layout.el_hi == regions[-1].end


def test_layout_guard_pages_have_no_permissions():
    layout = EnclaveLayout.build(EnclaveConfig())
    for name in ("guard0", "guard1", "guard2", "guard3"):
        assert layout.regions[name].perms == 0
        assert layout.regions[name].size == PAGE_SIZE


def test_layout_code_pages_are_rwx_sgxv1():
    layout = EnclaveLayout.build(EnclaveConfig())
    assert layout.regions["code"].perms == PERM_R | PERM_W | PERM_X


def test_layout_critical_band_covers_shadow_and_branch_map():
    layout = EnclaveLayout.build(EnclaveConfig())
    assert layout.crit_lo <= layout.ssp_cell < layout.crit_hi
    assert layout.crit_lo <= layout.ssa_marker_addr < layout.crit_hi
    assert layout.crit_lo <= layout.regions["branch_map"].start \
        < layout.crit_hi
    assert layout.crit_hi == layout.regions["code"].start


def test_layout_special_cells_inside_their_regions():
    layout = EnclaveLayout.build(EnclaveConfig())
    assert layout.region_of(layout.ssa_marker_addr) == "critical"
    assert layout.region_of(layout.aex_count_cell) == "critical"
    assert layout.region_of(layout.ssp_cell) == "shadow"
    assert layout.region_of(layout.initial_rsp - 8) == "stack"
    assert layout.region_of(layout.el_lo - 1) == "outside"


def test_layout_rejects_unaligned_sizes():
    with pytest.raises(LoaderError):
        EnclaveLayout.build(EnclaveConfig(code_size=100))


def test_paper_scale_layout_builds():
    layout = EnclaveLayout.build(EnclaveConfig.paper_scale())
    assert layout.size > 90 * 1024 * 1024  # the paper's ~96MB enclave


# -- lifecycle --------------------------------------------------------------

def test_measurement_depends_on_image_and_layout():
    def build(image, config=None):
        enclave = Enclave(config)
        enclave.load_bootstrap_image(image)
        enclave.einit()
        return enclave.mrenclave

    a = build(b"consumer-v1")
    b = build(b"consumer-v1")
    c = build(b"consumer-v2")
    d = build(b"consumer-v1",
              EnclaveConfig(heap_size=512 * PAGE_SIZE))
    assert a == b
    assert a != c
    assert a != d


def test_lifecycle_misuse_rejected():
    enclave = Enclave()
    with pytest.raises(EnclaveError):
        _ = enclave.mrenclave          # before EINIT
    enclave.einit()
    with pytest.raises(EnclaveError):
        enclave.einit()                # twice
    with pytest.raises(EnclaveError):
        enclave.extend(b"late")        # after EINIT


def test_bootstrap_image_must_fit():
    enclave = Enclave()
    too_big = b"\x00" * (enclave.layout.regions["bootstrap"].size + 1)
    with pytest.raises(EnclaveError, match="exceeds"):
        enclave.load_bootstrap_image(too_big)


def test_ecall_gate_rejects_undefined_names():
    enclave = Enclave()
    enclave.einit()
    enclave.register_ecall("good", lambda: 42)
    assert enclave.ecall("good") == 42
    with pytest.raises(EnclaveError, match="P0"):
        enclave.ecall("evil")


def test_ocall_gate_rejects_unlisted_names():
    enclave = Enclave()
    enclave.register_ocall("send", lambda data: len(data))
    assert enclave.ocall("send", b"xy") == 2
    with pytest.raises(EnclaveError, match="P0"):
        enclave.ocall("open_file", "/etc/passwd")


def test_ecall_before_einit_rejected():
    enclave = Enclave()
    enclave.register_ecall("e", lambda: None)
    with pytest.raises(EnclaveError, match="EINIT"):
        enclave.ecall("e")


# -- attestation ----------------------------------------------------------------

def _initialized_enclave():
    enclave = Enclave(platform=PlatformKey(b"plat-A"))
    enclave.load_bootstrap_image(b"public consumer")
    enclave.einit()
    return enclave


def test_quote_roundtrip_through_attestation_service():
    enclave = _initialized_enclave()
    service = AttestationService()
    service.provision_platform(enclave.platform.platform_id,
                               enclave.platform.verifying_key)
    quote = enclave.get_quote(b"channel-binding")
    report = service.verify_quote(quote.serialize())
    assert report.status == "OK"
    check_attestation_report(report, service.verifying_key,
                             enclave.mrenclave)


def test_unknown_platform_rejected():
    enclave = _initialized_enclave()
    service = AttestationService()
    with pytest.raises(AttestationError, match="unknown platform"):
        service.verify_quote(enclave.get_quote().serialize())


def test_forged_quote_flagged():
    enclave = _initialized_enclave()
    service = AttestationService()
    service.provision_platform(enclave.platform.platform_id,
                               enclave.platform.verifying_key)
    quote = enclave.get_quote()
    forged = Quote(Report(b"\x66" * 32), quote.platform_id,
                   quote.signature)
    report = service.verify_quote(forged.serialize())
    assert report.status == "SIGNATURE_INVALID"
    with pytest.raises(AttestationError, match="SIGNATURE_INVALID"):
        check_attestation_report(report, service.verifying_key,
                                 b"\x66" * 32)


def test_mrenclave_pin_enforced():
    enclave = _initialized_enclave()
    service = AttestationService()
    service.provision_platform(enclave.platform.platform_id,
                               enclave.platform.verifying_key)
    report = service.verify_quote(enclave.get_quote().serialize())
    with pytest.raises(AttestationError, match="MRENCLAVE"):
        check_attestation_report(report, service.verifying_key,
                                 b"\x00" * 32)


def test_ias_report_signature_checked():
    enclave = _initialized_enclave()
    service = AttestationService()
    service.provision_platform(enclave.platform.platform_id,
                               enclave.platform.verifying_key)
    report = service.verify_quote(enclave.get_quote().serialize())
    rogue = AttestationService(seed=b"rogue-ias")
    with pytest.raises(AttestationError, match="signature"):
        check_attestation_report(report, rogue.verifying_key,
                                 enclave.mrenclave)


def test_quote_serialization_roundtrip():
    enclave = _initialized_enclave()
    quote = enclave.get_quote(b"data")
    parsed = Quote.parse(quote.serialize())
    assert parsed.report.mrenclave == enclave.mrenclave
    assert parsed.report.report_data[:4] == b"data"


def test_report_field_validation():
    with pytest.raises(AttestationError):
        Report(b"short")
    with pytest.raises(AttestationError):
        Report(b"\x00" * 32, report_data=b"\x00" * 63)
