"""Audit hash chain: recording, tamper evidence, quote binding."""

import dataclasses

import pytest

from repro.compiler import compile_source
from repro.core import BootstrapEnclave
from repro.core.audit import AuditLog
from repro.errors import VerificationError
from repro.policy import PolicySet


def test_chain_verifies_and_detects_tampering():
    log = AuditLog()
    log.record("a", x=1)
    log.record("b", y="two")
    log.record("c")
    assert len(log) == 3
    assert log.verify_chain()
    # tamper with an event's detail
    forged = dataclasses.replace(log._events[1],
                                 detail={"y": "TWO"})
    log._events[1] = forged
    assert not log.verify_chain()


def test_removal_detected():
    log = AuditLog()
    for i in range(5):
        log.record("event", i=i)
    log._events.pop(2)
    assert not log.verify_chain()


def test_heads_differ_per_history():
    a = AuditLog()
    b = AuditLog()
    assert a.head == b.head      # same genesis
    a.record("x")
    b.record("y")
    assert a.head != b.head


def test_bootstrap_records_lifecycle():
    policies = PolicySet.p1_only()
    boot = BootstrapEnclave(policies=policies)
    blob = compile_source("int main() { __report(9); return 0; }",
                          policies).serialize()
    boot.receive_binary(blob)
    boot.receive_userdata(b"zz")
    boot.run()
    kinds = [event.kind for event in boot.audit.events]
    assert kinds == ["enclave_initialized", "binary_verified",
                     "userdata_received", "run_completed"]
    assert boot.audit.verify_chain()
    run_event = boot.audit.filter("run_completed")[0]
    assert run_event.detail["status"] == "ok"


def test_bootstrap_records_rejections():
    boot = BootstrapEnclave(policies=PolicySet.full())
    bare = compile_source("int main() { return 0; }",
                          PolicySet.none()).serialize()
    with pytest.raises(VerificationError):
        boot.receive_binary(bare)
    rejected = boot.audit.filter("binary_rejected")
    assert len(rejected) == 1
    assert "guard" in rejected[0].detail["reason"]
    assert boot.audit.verify_chain()


def test_quote_pins_audit_head():
    boot = BootstrapEnclave(policies=PolicySet.p1_only())
    quote = boot.quote_with_audit()
    assert quote.report.report_data[:32] == boot.audit.head
    boot.receive_userdata(b"x")
    quote2 = boot.quote_with_audit()
    assert quote2.report.report_data[:32] != quote.report.report_data[:32]


def test_render_is_readable():
    log = AuditLog()
    log.record("binary_verified", hash="abc123", annotations=7)
    text = log.render()
    assert "binary_verified" in text
    assert "annotations=7" in text
    assert "chain head" in text
