"""Assembler: label resolution, relocations, formatting."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AssemblerError
from repro.isa import (
    Instruction, Label, LabelDef, Mem, SymbolRef, assemble,
    disassemble_linear, format_instruction,
    RAX, RBX, RCX,
)
from repro.isa.assembler import local_label_allocator
from repro.isa.encoding import MOV_RI_IMM_OFFSET
from repro.isa.instructions import Op


def test_backward_and_forward_labels():
    items = [
        LabelDef("top"),
        Instruction(Op.ADD_RI, RAX, 1),
        Instruction(Op.JMP, Label("bottom")),
        Instruction(Op.NOP),
        LabelDef("bottom"),
        Instruction(Op.JL, Label("top")),
        Instruction(Op.RET),
    ]
    asm = assemble(items)
    decoded = list(disassemble_linear(asm.code))
    jmp_off, jmp = decoded[1]
    assert jmp_off + jmp.length + jmp.operands[0] == asm.labels["bottom"]
    jl_off, jl = decoded[3]
    assert jl_off + jl.length + jl.operands[0] == asm.labels["top"] == 0


def test_duplicate_label_rejected():
    with pytest.raises(AssemblerError, match="duplicate"):
        assemble([LabelDef("a"), LabelDef("a")])


def test_undefined_label_rejected():
    with pytest.raises(AssemblerError, match="undefined"):
        assemble([Instruction(Op.JMP, Label("nowhere"))])


def test_symbolref_creates_relocation_with_zero_placeholder():
    asm = assemble([
        Instruction(Op.NOP),
        Instruction(Op.MOV_RI, RBX, SymbolRef("glob", addend=16)),
    ])
    assert len(asm.relocations) == 1
    reloc = asm.relocations[0]
    assert reloc.symbol == "glob"
    assert reloc.addend == 16
    assert reloc.offset == 1 + MOV_RI_IMM_OFFSET
    assert asm.code[reloc.offset:reloc.offset + 8] == b"\x00" * 8


def test_instr_offsets_cover_stream():
    asm = assemble([Instruction(Op.NOP)] * 5)
    assert asm.instr_offsets == [0, 1, 2, 3, 4]


def test_label_at_end_of_stream():
    asm = assemble([
        Instruction(Op.JMP, Label("end")),
        LabelDef("end"),
    ])
    assert asm.labels["end"] == len(asm.code)


def test_bad_item_rejected():
    with pytest.raises(AssemblerError, match="bad assembly item"):
        assemble([42])


def test_local_label_allocator_unique():
    alloc = local_label_allocator("T")
    names = {alloc("x") for _ in range(100)}
    assert len(names) == 100


@given(count=st.integers(min_value=1, max_value=40))
def test_chain_of_jumps_lands_on_ret(count):
    # jmp l1; l1: jmp l2; ... ln: ret — all displacements resolve
    items = []
    for i in range(count):
        items.append(Instruction(Op.JMP, Label(f"l{i}")))
        items.append(LabelDef(f"l{i}"))
    items.append(Instruction(Op.RET))
    asm = assemble(items)
    decoded = list(disassemble_linear(asm.code))
    for off, ins in decoded[:-1]:
        assert ins.operands[0] == 0  # every jump goes to next instr


def test_format_instruction_readable():
    text = format_instruction(
        Instruction(Op.MOV_MR, Mem(RBX, RCX, 8, -8), RAX))
    assert "mov" in text and "rbx" in text and "rcx" in text
    assert format_instruction(Instruction(Op.RET)) == "ret"
    assert "label" in format_instruction(
        Instruction(Op.JMP, Label("label")))
