"""Exhaustive checks of the lazy-flag encoding helpers.

The translated executor carries flags symbolically as ``(fk, fa, fb)``
— concrete bits, a pending CMP, or a pending TEST — and collapses them
only when observed.  These tests pin the encoding against a direct
architectural model over every condition code and the unsigned 64-bit
boundary operands, so any drift in the lazy encoding shows up here
before it shows up as a one-bit divergence deep inside a benchmark.
"""

import itertools

import pytest

from repro.isa.instructions import COND_JUMPS, Op
from repro.vm.translate import eval_jcc, materialize_flags, pack_flags

_U64 = (1 << 64) - 1
_SIGN = 1 << 63

#: Unsigned boundary operands: zero, one, the signed-positive maximum,
#: the signed minimum, and the unsigned maximum (-1).
BOUNDARY = (0, 1, (1 << 63) - 1, 1 << 63, (1 << 64) - 1)


def _signed(v: int) -> int:
    return v - (1 << 64) if v & _SIGN else v


def _cmp_flags(a: int, b: int):
    """Architectural flags after ``CMP a, b``."""
    return a == b, _signed(a) < _signed(b), a < b


def _test_flags(a: int, b: int):
    """Architectural flags after ``TEST a, b``."""
    v = a & b
    return v == 0, bool(v & _SIGN), False


def _ref_pred(op: int, f_eq: bool, f_lt_s: bool, f_lt_u: bool) -> bool:
    """Condition-code semantics straight from the x86 tables."""
    return {
        Op.JE: f_eq,
        Op.JNE: not f_eq,
        Op.JL: f_lt_s,
        Op.JLE: f_lt_s or f_eq,
        Op.JG: not (f_lt_s or f_eq),
        Op.JGE: not f_lt_s,
        Op.JB: f_lt_u,
        Op.JBE: f_lt_u or f_eq,
        Op.JA: not (f_lt_u or f_eq),
        Op.JAE: not f_lt_u,
    }[op]


def test_pack_materialize_roundtrip_all_combinations():
    for f_eq, f_lt_s, f_lt_u in itertools.product((False, True),
                                                  repeat=3):
        packed = pack_flags(f_eq, f_lt_s, f_lt_u)
        assert materialize_flags(0, packed, 0) == (f_eq, f_lt_s, f_lt_u)


def test_pack_is_dense_and_stable():
    # The three booleans map to bits 0..2; nothing else may leak in.
    seen = {pack_flags(*combo) for combo in
            itertools.product((False, True), repeat=3)}
    assert seen == set(range(8))


@pytest.mark.parametrize("a", BOUNDARY)
@pytest.mark.parametrize("b", BOUNDARY)
def test_pending_cmp_matches_architectural_model(a, b):
    assert materialize_flags(1, a, b) == _cmp_flags(a, b)


@pytest.mark.parametrize("a", BOUNDARY)
@pytest.mark.parametrize("b", BOUNDARY)
def test_pending_test_matches_architectural_model(a, b):
    assert materialize_flags(2, a & b, 0) == _test_flags(a, b)


@pytest.mark.parametrize("op", sorted(COND_JUMPS))
@pytest.mark.parametrize("a", BOUNDARY)
@pytest.mark.parametrize("b", BOUNDARY)
def test_eval_jcc_pending_cmp_all_codes(op, a, b):
    assert eval_jcc(op, 1, a, b) == _ref_pred(op, *_cmp_flags(a, b))


@pytest.mark.parametrize("op", sorted(COND_JUMPS))
@pytest.mark.parametrize("a", BOUNDARY)
@pytest.mark.parametrize("b", BOUNDARY)
def test_eval_jcc_pending_test_all_codes(op, a, b):
    assert eval_jcc(op, 2, a & b, 0) == _ref_pred(op, *_test_flags(a, b))


@pytest.mark.parametrize("op", sorted(COND_JUMPS))
def test_eval_jcc_concrete_agrees_with_lazy(op):
    # Materializing first and evaluating concrete must agree with
    # evaluating the lazy state directly — the two paths generated
    # code can take across a block boundary.
    for a, b in itertools.product(BOUNDARY, repeat=2):
        lazy = eval_jcc(op, 1, a, b)
        packed = pack_flags(*materialize_flags(1, a, b))
        assert eval_jcc(op, 0, packed, 0) == lazy
