"""The in-enclave verifier: acceptance of producer output and rejection
of every tampering class (§IV-D's checks, one by one)."""

import pytest

from repro.compiler import compile_source
from repro.core.verifier import PolicyVerifier
from repro.errors import VerificationError
from repro.isa import (
    Instruction, Label, LabelDef, Mem, SymbolRef, assemble,
    RAX, RBX, RBP, RSP,
)
from repro.isa.assembler import local_label_allocator
from repro.isa.instructions import Op
from repro.policy import PolicySet, trap_label
from repro.policy.magic import ALL_VIOLATION_CODES
from repro.policy.emit import emit_pattern
from repro.policy.templates import (
    indirect_branch_pattern, p6_guard_pattern,
    rsp_guard_pattern, shadow_epilogue_pattern, shadow_prologue_pattern,
    store_guard_pattern,
)

_SRC = """
int helper(int x) { return x + 1; }
int table[4];
int main() {
    int i;
    int (*f)(int) = &helper;
    for (i = 0; i < 4; i++) table[i] = f(i);
    return table[3];
}
"""


def _pads():
    items = []
    for code in ALL_VIOLATION_CODES:
        items.append(LabelDef(trap_label(code)))
        items.append(Instruction(Op.TRAP, code))
    return items


def _verify_items(items, setting, targets=()):
    asm = assemble(_pads() + list(items))
    verifier = PolicyVerifier(PolicySet.parse(setting))
    target_offs = [asm.labels[name] for name in targets]
    return verifier.verify(asm.code, asm.labels["__start"], target_offs)


# -- acceptance ---------------------------------------------------------------

@pytest.mark.parametrize("setting", ["baseline", "P1", "P1+P2",
                                     "P1-P5", "P1-P6"])
def test_accepts_compiler_output_at_every_level(setting):
    policies = PolicySet.parse(setting)
    obj = compile_source(_SRC, policies)
    verifier = PolicyVerifier(policies)
    entry = obj.symbols[obj.entry].offset
    targets = [obj.symbols[name].offset for name in obj.branch_targets]
    verified = verifier.verify(obj.text, entry, targets)
    assert verified.instruction_count > 0
    if policies.any_store_guard:
        assert verified.annotation_counts.get("store_guard", 0) > 0
    if policies.p5:
        assert verified.annotation_counts.get("shadow_prologue", 0) > 0
        assert verified.annotation_counts.get("indirect_branch", 0) > 0
    if policies.p6:
        assert verified.annotation_counts.get("p6_guard", 0) > 0


def test_magic_slots_reported_for_rewriter():
    policies = PolicySet.full()
    obj = compile_source(_SRC, policies)
    verifier = PolicyVerifier(policies)
    verified = verifier.verify(
        obj.text, obj.symbols[obj.entry].offset,
        [obj.symbols[n].offset for n in obj.branch_targets])
    names = {name for _, name in verified.magic_slots}
    assert {"p1_lo", "p1_hi", "ss_cell", "ssa_marker",
            "code_base", "brmap_base"} <= names
    # every slot points at a real imm64 field inside the text
    for offset, _ in verified.magic_slots:
        assert 0 <= offset <= len(obj.text) - 8


def test_underinstrumented_binary_rejected():
    # produced with P1 only, verified against the full contract
    obj = compile_source(_SRC, PolicySet.p1_only())
    verifier = PolicyVerifier(PolicySet.full())
    with pytest.raises(VerificationError):
        verifier.verify(obj.text, obj.symbols[obj.entry].offset,
                        [obj.symbols[n].offset
                         for n in obj.branch_targets])


def test_baseline_verifier_accepts_uninstrumented():
    obj = compile_source(_SRC, PolicySet.none())
    PolicyVerifier(PolicySet.none()).verify(
        obj.text, obj.symbols[obj.entry].offset, [])


# -- hand-built rejection cases -----------------------------------------------

def _guarded_store(alloc, mem, value_reg=RAX):
    items = emit_pattern(store_guard_pattern(PolicySet.p1_only()),
                         alloc, anchor_mem=mem)
    items.append(Instruction(Op.MOV_MR, mem, value_reg))
    return items


def test_unguarded_store_rejected():
    items = [LabelDef("__start"),
             Instruction(Op.MOV_MR, Mem(RBP, disp=-8), RAX),
             Instruction(Op.HLT)]
    with pytest.raises(VerificationError, match="unguarded memory store"):
        _verify_items(items, "P1")


def test_guarded_store_accepted():
    alloc = local_label_allocator("t")
    items = [LabelDef("__start")] + \
        _guarded_store(alloc, Mem(RBP, disp=-8)) + \
        [Instruction(Op.HLT)]
    verified = _verify_items(items, "P1")
    assert verified.annotation_counts["store_guard"] == 1


def test_guard_for_different_address_rejected():
    # annotation checks [rbp-8] but the store hits [rbp-16]
    alloc = local_label_allocator("t")
    items = emit_pattern(store_guard_pattern(PolicySet.p1_only()),
                         alloc, anchor_mem=Mem(RBP, disp=-8))
    items.append(Instruction(Op.MOV_MR, Mem(RBP, disp=-16), RAX))
    with pytest.raises(VerificationError, match="guarded store"):
        _verify_items([LabelDef("__start")] + items +
                      [Instruction(Op.HLT)], "P1")


def test_branch_skipping_the_guard_rejected():
    # a conditional branch that lands on the store, bypassing its
    # annotation (the fall-through path keeps the guard reachable)
    alloc = local_label_allocator("t")
    guard = emit_pattern(store_guard_pattern(PolicySet.p1_only()),
                         alloc, anchor_mem=Mem(RBP, disp=-8))
    items = [LabelDef("__start"),
             Instruction(Op.CMP_RI, RAX, 0),
             Instruction(Op.JE, Label("sneak"))] + guard
    items.append(LabelDef("sneak"))
    items.append(Instruction(Op.MOV_MR, Mem(RBP, disp=-8), RAX))
    items.append(Instruction(Op.HLT))
    with pytest.raises(VerificationError, match="bypasses"):
        _verify_items(items, "P1")


def test_unreachable_guard_means_store_is_unguarded():
    # with an unconditional jump, the guard becomes dead code and the
    # store is reached guard-less: also rejected, by the scan itself
    alloc = local_label_allocator("t")
    guard = emit_pattern(store_guard_pattern(PolicySet.p1_only()),
                         alloc, anchor_mem=Mem(RBP, disp=-8))
    items = [LabelDef("__start"),
             Instruction(Op.JMP, Label("sneak"))] + guard
    items.append(LabelDef("sneak"))
    items.append(Instruction(Op.MOV_MR, Mem(RBP, disp=-8), RAX))
    items.append(Instruction(Op.HLT))
    with pytest.raises(VerificationError, match="unguarded"):
        _verify_items(items, "P1")


def test_branch_into_annotation_interior_rejected():
    alloc = local_label_allocator("t")
    guard = _guarded_store(alloc, Mem(RBP, disp=-8))
    # label planted after the guard's first instruction
    items = [LabelDef("__start"),
             Instruction(Op.CMP_RI, RAX, 0),
             Instruction(Op.JE, Label("inside")),
             guard[0], LabelDef("inside")] + guard[1:] + \
        [Instruction(Op.HLT)]
    with pytest.raises(VerificationError,
                       match="annotation body|bypasses"):
        _verify_items(items, "P1")


def test_branch_into_middle_of_instruction_rejected():
    items = [LabelDef("__start"),
             Instruction(Op.MOV_RI, RAX, 0x9090909090909090),
             Instruction(Op.HLT)]
    asm = assemble(_pads() + items)
    blob = bytearray(asm.code)
    # append a jump targeting the middle of the imm64
    start = asm.labels["__start"]
    jmp = Instruction(Op.JMP, (start + 4) - (len(blob) + 5))
    from repro.isa.encoding import encode_instruction
    extra = encode_instruction(jmp)
    # place the jump as the entry instead
    blob = blob + extra
    verifier = PolicyVerifier(PolicySet.p1_only())
    with pytest.raises(VerificationError):
        verifier.verify(bytes(blob), len(blob) - len(extra), [])


def test_program_use_of_reserved_registers_rejected():
    items = [LabelDef("__start"),
             Instruction(Op.MOV_RI, 14, 5),
             Instruction(Op.HLT)]
    with pytest.raises(VerificationError, match="reserved"):
        _verify_items(items, "P1")
    items = [LabelDef("__start"),
             Instruction(Op.MOV_RM, RAX, Mem(15)),
             Instruction(Op.HLT)]
    with pytest.raises(VerificationError, match="reserved|malformed"):
        _verify_items(items, "P1")


def test_unguarded_indirect_branch_rejected():
    items = [LabelDef("__start"),
             Instruction(Op.CALL_R, RBX),
             Instruction(Op.HLT)]
    with pytest.raises(VerificationError, match="indirect"):
        _verify_items(items, "P1-P5")


def test_unguarded_ret_rejected():
    items = [LabelDef("__start"),
             Instruction(Op.RET)]
    with pytest.raises(VerificationError, match="RET"):
        _verify_items(items, "P1-P5")


def test_rsp_write_without_guard_rejected():
    items = [LabelDef("__start"),
             Instruction(Op.SUB_RI, RSP, 64),
             Instruction(Op.HLT)]
    with pytest.raises(VerificationError, match="RSP guard"):
        _verify_items(items, "P1+P2")


def test_rsp_write_with_guard_accepted():
    alloc = local_label_allocator("t")
    items = [LabelDef("__start"),
             Instruction(Op.SUB_RI, RSP, 64)] + \
        emit_pattern(rsp_guard_pattern(), alloc) + \
        [Instruction(Op.HLT)]
    verified = _verify_items(items, "P1+P2")
    assert verified.annotation_counts["rsp_guard"] == 1


def test_forbidden_svc_rejected():
    items = [LabelDef("__start"),
             Instruction(Op.SVC, 77),
             Instruction(Op.HLT)]
    with pytest.raises(VerificationError, match="P0"):
        _verify_items(items, "P1")


def test_allowed_svc_accepted():
    items = [LabelDef("__start"),
             Instruction(Op.SVC, 3),
             Instruction(Op.HLT)]
    _verify_items(items, "P1")


def test_malformed_annotation_rejected_not_skipped():
    # an almost-correct store guard (weakened JAE -> JA) must be an
    # error, not silently treated as program code
    alloc = local_label_allocator("t")
    items = emit_pattern(store_guard_pattern(PolicySet.p1_only()),
                         alloc, anchor_mem=Mem(RBP, disp=-8))
    for i, item in enumerate(items):
        if isinstance(item, Instruction) and item.op == Op.JAE:
            items[i] = Instruction(Op.JA, item.operands[0])
    items = [LabelDef("__start")] + items + \
        [Instruction(Op.MOV_MR, Mem(RBP, disp=-8), RAX),
         Instruction(Op.HLT)]
    with pytest.raises(VerificationError, match="malformed store guard"):
        _verify_items(items, "P1")


def test_function_entry_without_prologue_rejected():
    alloc = local_label_allocator("t")
    epilogue = emit_pattern(shadow_epilogue_pattern(), alloc)
    items = [LabelDef("__start"),
             Instruction(Op.CALL, Label("fn")),
             Instruction(Op.HLT),
             LabelDef("fn")] + epilogue + [Instruction(Op.RET)]
    with pytest.raises(VerificationError, match="prologue"):
        _verify_items(items, "P1-P5")


def test_complete_function_accepted_under_p5():
    alloc = local_label_allocator("t")
    items = [LabelDef("__start"),
             Instruction(Op.CALL, Label("fn")),
             Instruction(Op.HLT),
             LabelDef("fn")] + \
        emit_pattern(shadow_prologue_pattern(), alloc) + \
        emit_pattern(shadow_epilogue_pattern(), alloc) + \
        [Instruction(Op.RET)]
    verified = _verify_items(items, "P1-P5")
    assert verified.annotation_counts["shadow_prologue"] == 1
    assert verified.annotation_counts["shadow_epilogue"] == 1


def test_p6_missing_guard_at_leader_rejected():
    items = [LabelDef("__start"),
             Instruction(Op.CMP_RI, RAX, 0),
             Instruction(Op.JE, Label("skip")),
             Instruction(Op.NOP),
             LabelDef("skip"),
             Instruction(Op.HLT)]
    with pytest.raises(VerificationError, match="P6"):
        _verify_items(items, "P1-P6")


def test_p6_guards_at_all_leaders_accepted():
    alloc = local_label_allocator("t")

    def guard():
        return emit_pattern(p6_guard_pattern(), alloc)

    items = ([LabelDef("__start")] + guard() +
             [Instruction(Op.CMP_RI, RAX, 0),
              Instruction(Op.JE, Label("skip"))] +
             guard() +                      # fall-through leader
             [Instruction(Op.NOP),
              Instruction(Op.JMP, Label("skip")),
              LabelDef("skip")] +
             guard() +                      # jump-target leader
             [Instruction(Op.HLT)])
    verified = _verify_items(items, PolicySet(p6=True).label
                             if False else "P1-P6") if False else None
    # P1-P6 also demands store guards etc., but this program has none
    # of those anchors, so full verification passes:
    verified = _verify_items(items, "P1-P6")
    assert verified.annotation_counts["p6_guard"] == 3


def test_indirect_target_must_be_boundary():
    items = [LabelDef("__start"), Instruction(Op.HLT)]
    asm = assemble(_pads() + items)
    verifier = PolicyVerifier(PolicySet.p1_only())
    with pytest.raises(VerificationError,
                       match="boundary|escapes|undecodable|overlap"):
        # mid-instruction root: rejected during RDD or the boundary check
        verifier.verify(asm.code, asm.labels["__start"],
                        [asm.labels["__start"] - 1])


def test_guarded_indirect_branch_accepted():
    alloc = local_label_allocator("t")
    items = [LabelDef("__start"),
             Instruction(Op.MOV_RI, RBX, 0)] + \
        emit_pattern(indirect_branch_pattern(), alloc, target_reg=RBX) + \
        [Instruction(Op.JMP_R, RBX)]
    # P5 only, without shadow-stack functions involved
    verified = _verify_items(items, "P1-P5")
    assert verified.annotation_counts["indirect_branch"] == 1


def test_indirect_guard_for_wrong_register_rejected():
    alloc = local_label_allocator("t")
    items = [LabelDef("__start"),
             Instruction(Op.MOV_RI, RBX, 0),
             Instruction(Op.MOV_RI, RAX, 0)] + \
        emit_pattern(indirect_branch_pattern(), alloc, target_reg=RBX) + \
        [Instruction(Op.JMP_R, RAX)]
    with pytest.raises(VerificationError, match="guarded\\s+branch"):
        _verify_items(items, "P1-P5")


# -- dispatch-table fingerprint ----------------------------------------------

def test_fingerprint_tracks_policy_set():
    fps = {PolicyVerifier(PolicySet.parse(s)).fingerprint()
           for s in ("baseline", "P1", "P1+P2", "P1-P5", "P1-P6")}
    assert len(fps) == 5


def test_fingerprint_stable_for_equal_construction():
    a = PolicyVerifier(PolicySet.parse("P1-P6"))
    b = PolicyVerifier(PolicySet.parse("P1-P6"))
    assert a.fingerprint() == b.fingerprint()


def test_fingerprint_tracks_custom_markers():
    from repro.policy.custom import div_by_zero_guard
    plain = PolicyVerifier(PolicySet.parse("P1+P2"))
    custom = PolicyVerifier(PolicySet.parse("P1+P2"),
                            custom=[div_by_zero_guard()])
    assert plain.fingerprint() != custom.fingerprint()
    # the dispatch tables themselves differ, not just the marker list
    assert plain._dispatch_digest() != custom._dispatch_digest()


def test_dispatch_digest_tracks_policy_set():
    digests = {PolicyVerifier(PolicySet.parse(s))._dispatch_digest()
               for s in ("baseline", "P1", "P1+P2", "P1-P5", "P1-P6")}
    assert len(digests) == 5
