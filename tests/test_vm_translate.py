"""Superblock translator: block-cache lifecycle, self-modifying-code
invalidation, mid-block AEX and slice boundaries, and the differential
oracle (the legacy single-step engine must agree bit-for-bit)."""

import pytest

from repro.isa import (
    Instruction, Label, LabelDef, Mem, assemble,
    RAX, RBX, RCX, RDX,
)
from repro.isa.instructions import Op
from repro.sgx import Enclave
from repro.vm import CPU, AexSchedule, BlockCache, CostModel

_U64 = (1 << 64) - 1


def _machine():
    enclave = Enclave()
    enclave.load_bootstrap_image(b"img")
    enclave.einit()
    return enclave


def _load(items, enclave=None, watch=True):
    """Assemble ``items`` + HLT into a fresh enclave's code region."""
    enclave = enclave or _machine()
    layout = enclave.layout
    asm = assemble(list(items) + [Instruction(Op.HLT)])
    code = layout.regions["code"].start
    enclave.space.write_raw(code, asm.code)
    if watch:
        enclave.space.watch_code_range(code, len(asm.code))
    return enclave, asm


def _cpu(enclave, executor, **kwargs):
    layout = enclave.layout
    return CPU(enclave.space, layout.regions["code"].start,
               initial_rsp=layout.initial_rsp,
               ssa_addr=layout.ssa_addr, executor=executor, **kwargs)


def _run_both(items, regs=None, **kwargs):
    """Run the program under both engines on fresh, identical enclaves."""
    outcomes = {}
    for executor in ("step", "translate"):
        enclave, _ = _load(items)
        cpu = _cpu(enclave, executor, **kwargs)
        for reg, value in (regs or {}).items():
            cpu.regs[reg] = value & _U64
        result = cpu.run()
        outcomes[executor] = (result, list(cpu.regs), cpu.flags_tuple()
                              if hasattr(cpu, "flags_tuple")
                              else (cpu.f_eq, cpu.f_lt_s, cpu.f_lt_u))
    return outcomes["step"], outcomes["translate"]


def _hot_loop(n=64, body=()):
    """A counted loop that re-enters its block ``n`` times."""
    return [
        Instruction(Op.MOV_RI, RCX, n),
        Instruction(Op.MOV_RI, RAX, 0),
        LabelDef("loop"),
        *body,
        Instruction(Op.ADD_RI, RAX, 3),
        Instruction(Op.SUB_RI, RCX, 1),
        Instruction(Op.CMP_RI, RCX, 0),
        Instruction(Op.JG, Label("loop")),
    ]


# -- block cache lifecycle ----------------------------------------------------

def test_hot_block_gets_compiled_cold_block_stays_stub():
    enclave, _ = _load(_hot_loop(n=200))
    cpu = _cpu(enclave, "translate")
    cpu.run()
    cache = cpu._blocks
    assert isinstance(cache, BlockCache)
    compiled = [b for b in cache.blocks.values() if b.fn is not None]
    assert compiled, "a 200-iteration loop body must end up compiled"
    # the compiled closure replaces the decoded items
    assert all(b.items is None for b in compiled)


def test_cold_code_never_pays_compilation():
    # straight-line code runs once: every block stays a stub
    enclave, _ = _load([Instruction(Op.ADD_RI, RAX, 1)] * 40)
    cpu = _cpu(enclave, "translate")
    result = cpu.run()
    assert result.return_value == 40
    assert all(b.fn is None for b in cpu._blocks.blocks.values())


def test_step_engine_builds_no_block_cache():
    enclave, _ = _load(_hot_loop(n=100))
    cpu = _cpu(enclave, "step")
    cpu.run()
    assert cpu._blocks is None


def test_invalid_executor_rejected():
    enclave, _ = _load([Instruction(Op.NOP)])
    with pytest.raises(ValueError, match="executor"):
        _cpu(enclave, "jit")


# -- self-modifying code ------------------------------------------------------

def test_host_store_into_code_invalidates_translated_block(monkeypatch):
    monkeypatch.setattr("repro.vm.cpu.COLD_RUNS", 0)
    enclave, asm = _load(_hot_loop(n=50))
    code = enclave.layout.regions["code"].start
    cpu = _cpu(enclave, "translate")
    cpu.run()
    cache = cpu._blocks
    loop_leader = code + asm.labels["loop"]
    assert cache.blocks[loop_leader].fn is not None
    # a write into the loop body drops every overlapping block (the
    # entry block falls through into the body, so it goes too) and
    # keeps the rest (the HLT epilogue block)
    survivors = {addr for addr, b in cache.blocks.items()
                 if b.end <= loop_leader + 1 or addr > loop_leader + 1}
    enclave.space.store_u8(loop_leader + 1, 0)
    assert loop_leader not in cache.blocks
    assert set(cache.blocks) == survivors


def test_store_outside_watched_range_keeps_blocks(monkeypatch):
    monkeypatch.setattr("repro.vm.cpu.COLD_RUNS", 0)
    enclave, _ = _load(_hot_loop(n=50))
    heap = enclave.layout.regions["heap"].start
    cpu = _cpu(enclave, "translate")
    cpu.run()
    n_before = len(cpu._blocks.blocks)
    enclave.space.store_u64(heap, 0xDEAD)
    assert len(cpu._blocks.blocks) == n_before


def _smc_program():
    """A loop whose body increments the immediate of one of its *own*
    instructions every iteration (imm64 lives at opcode+2)."""
    def build(imm_addr):
        return [
            Instruction(Op.MOV_RI, RCX, 40),
            Instruction(Op.MOV_RI, RAX, 0),
            LabelDef("loop"),
            LabelDef("smc"),
            Instruction(Op.MOV_RI, RDX, 7),       # imm patched at runtime
            Instruction(Op.ADD_RR, RAX, RDX),
            Instruction(Op.MOV_RI, RBX, imm_addr),
            Instruction(Op.MOV_RM, 5, Mem(RBX)),
            Instruction(Op.ADD_RI, 5, 1),
            Instruction(Op.MOV_MR, Mem(RBX), 5),  # self-modifying store
            Instruction(Op.SUB_RI, RCX, 1),
            Instruction(Op.CMP_RI, RCX, 0),
            Instruction(Op.JG, Label("loop")),
        ]
    return build


def _smc_run(executor, monkeypatch):
    monkeypatch.setattr("repro.vm.cpu.COLD_RUNS", 0)
    build = _smc_program()
    # two-pass assembly: MOV_RI is fixed-width, so label offsets from a
    # placeholder pass are already final
    probe = assemble(build(0) + [Instruction(Op.HLT)])
    enclave = _machine()
    code = enclave.layout.regions["code"].start
    imm_addr = code + probe.labels["smc"] + 2
    # the code page must be writable for an in-enclave store; relax the
    # page perms before EINIT seals them
    from repro.sgx.memory import PERM_R, PERM_W, PERM_X
    enclave2 = Enclave()
    enclave2.load_bootstrap_image(b"img")
    region = enclave2.layout.regions["code"]
    enclave2.space.set_page_perms(region.start, region.size,
                                  PERM_R | PERM_W | PERM_X)
    enclave2.einit()
    asm = assemble(build(imm_addr) + [Instruction(Op.HLT)])
    enclave2.space.write_raw(region.start, asm.code)
    enclave2.space.watch_code_range(region.start, len(asm.code))
    cpu = _cpu(enclave2, executor)
    result = cpu.run()
    return result


def test_self_modifying_loop_sees_fresh_code(monkeypatch):
    # imm starts at 7 and grows by 1 per iteration: sum(7..46) = 1060
    result = _smc_run("translate", monkeypatch)
    assert result.return_value == sum(range(7, 47))


def test_self_modifying_loop_matches_oracle(monkeypatch):
    step = _smc_run("step", monkeypatch)
    fast = _smc_run("translate", monkeypatch)
    assert (step.steps, step.cycles, step.rip, step.return_value) == \
        (fast.steps, fast.cycles, fast.rip, fast.return_value)


# -- AEX inside a block -------------------------------------------------------

def test_aex_mid_block_dumps_architectural_state():
    # one straight-line 25-instruction block; the only AEX lands after
    # 15 retired instructions, i.e. *inside* the block
    items = ([Instruction(Op.NOP)] * 10 +
             [Instruction(Op.MOV_RI, RBX, 0x1111)] +
             [Instruction(Op.NOP)] * 9 +
             [Instruction(Op.MOV_RI, RBX, 0x2222)] +
             [Instruction(Op.NOP)] * 4)
    dumps = {}
    for executor in ("step", "translate"):
        enclave, _ = _load(items)
        cpu = _cpu(enclave, executor,
                   aex_schedule=AexSchedule(15, jitter=0))
        result = cpu.run()
        assert result.aex_events == 1
        ssa = enclave.layout.ssa_addr
        dumps[executor] = enclave.space.read_raw(ssa, 17 * 8)
        # at step 15 the first MOV has retired, the second has not
        assert enclave.space.load_u64(ssa + 3 * 8) == 0x1111
        assert cpu.regs[3] == 0x2222
    assert dumps["step"] == dumps["translate"]


def test_aex_storm_matches_oracle_through_hot_loop():
    items = _hot_loop(n=2000)
    runs = {}
    for executor in ("step", "translate"):
        enclave, _ = _load(items)
        cpu = _cpu(enclave, executor,
                   aex_schedule=AexSchedule(100, jitter=1.0))
        runs[executor] = cpu.run()
    step, fast = runs["step"], runs["translate"]
    assert fast.aex_events > 10
    assert (step.steps, step.cycles, step.aex_events, step.rip) == \
        (fast.steps, fast.cycles, fast.aex_events, fast.rip)


# -- slice boundaries ---------------------------------------------------------

def test_slice_pauses_at_exact_step_inside_block(monkeypatch):
    monkeypatch.setattr("repro.vm.cpu.COLD_RUNS", 0)
    items = _hot_loop(n=500)
    enclave, _ = _load(items)
    cpu = _cpu(enclave, "translate")
    cpu.run(slice_steps=100)     # warm + compile the loop block
    assert not cpu.halted
    # 7 more steps lands mid-way through the (4-instruction) loop block
    before = cpu.steps
    result = cpu.run(slice_steps=7)
    assert result.steps - before == 7
    assert not cpu.halted
    # resuming in 1-step slices must retire exactly one instruction each
    for _ in range(5):
        prev = cpu.steps
        cpu.run(slice_steps=1)
        assert cpu.steps - prev == 1


def test_sliced_and_unsliced_runs_agree(monkeypatch):
    monkeypatch.setattr("repro.vm.cpu.COLD_RUNS", 0)
    items = _hot_loop(n=300)
    enclave, _ = _load(items)
    whole = _cpu(enclave, "translate").run()

    enclave2, _ = _load(items)
    sliced = _cpu(enclave2, "translate")
    while not sliced.halted:
        result = sliced.run(slice_steps=17)
    assert (result.steps, result.cycles, result.rip,
            result.return_value) == \
        (whole.steps, whole.cycles, whole.rip, whole.return_value)


# -- differential oracle ------------------------------------------------------

_DIFF_PROGRAMS = {
    "alu_loop": _hot_loop(n=100, body=[
        Instruction(Op.IMUL_RI, RAX, 3),
        Instruction(Op.XOR_RI, RAX, 0x5A5A),
        Instruction(Op.SHR_RI, RAX, 1),
    ]),
    "calls": [
        Instruction(Op.MOV_RI, RCX, 60),
        Instruction(Op.MOV_RI, RAX, 0),
        LabelDef("loop"),
        Instruction(Op.CALL, Label("fn")),
        Instruction(Op.SUB_RI, RCX, 1),
        Instruction(Op.CMP_RI, RCX, 0),
        Instruction(Op.JG, Label("loop")),
        Instruction(Op.JMP, Label("end")),
        LabelDef("fn"),
        Instruction(Op.PUSH_R, RCX),
        Instruction(Op.PUSH_I, 5),
        Instruction(Op.POP_R, RDX),
        Instruction(Op.ADD_RR, RAX, RDX),
        Instruction(Op.POP_R, RCX),
        Instruction(Op.RET),
        LabelDef("end"),
    ],
    "signed_compares": [
        Instruction(Op.MOV_RI, RCX, 50),
        Instruction(Op.MOV_RI, RAX, 0),
        Instruction(Op.MOV_RI, RBX, -25),
        LabelDef("loop"),
        Instruction(Op.ADD_RI, RBX, 1),
        Instruction(Op.CMP_RI, RBX, 0),
        Instruction(Op.JL, Label("neg")),
        Instruction(Op.ADD_RI, RAX, 100),
        Instruction(Op.JMP, Label("next")),
        LabelDef("neg"),
        Instruction(Op.ADD_RI, RAX, 1),
        LabelDef("next"),
        Instruction(Op.TEST_RR, RCX, RCX),
        Instruction(Op.SUB_RI, RCX, 1),
        Instruction(Op.JNE, Label("loop")),
    ],
    "division": [
        Instruction(Op.MOV_RI, RCX, 40),
        Instruction(Op.MOV_RI, RAX, 0),
        Instruction(Op.MOV_RI, RBX, -1000),
        LabelDef("loop"),
        Instruction(Op.MOV_RR, RDX, RBX),
        Instruction(Op.DIV_RI, RDX, 7),
        Instruction(Op.ADD_RR, RAX, RDX),
        Instruction(Op.MOV_RR, RDX, RBX),
        Instruction(Op.MOD_RI, RDX, 7),
        Instruction(Op.ADD_RR, RAX, RDX),
        Instruction(Op.ADD_RI, RBX, 51),
        Instruction(Op.SUB_RI, RCX, 1),
        Instruction(Op.CMP_RI, RCX, 0),
        Instruction(Op.JG, Label("loop")),
    ],
}


@pytest.mark.parametrize("name", sorted(_DIFF_PROGRAMS))
def test_translated_matches_step_engine(name, monkeypatch):
    monkeypatch.setattr("repro.vm.cpu.COLD_RUNS", 0)
    (step_res, step_regs, step_flags), (fast_res, fast_regs, fast_flags) \
        = _run_both(_DIFF_PROGRAMS[name])
    assert (step_res.steps, step_res.cycles, step_res.rip,
            step_res.aex_events, step_res.return_value) == \
        (fast_res.steps, fast_res.cycles, fast_res.rip,
         fast_res.aex_events, fast_res.return_value)
    assert step_regs == fast_regs
    assert step_flags == fast_flags


def test_memory_program_matches_oracle_with_epc_model(monkeypatch):
    monkeypatch.setattr("repro.vm.cpu.COLD_RUNS", 0)
    enclaves = {}
    for executor in ("step", "translate"):
        enclave = _machine()
        heap = enclave.layout.regions["heap"].start
        items = [
            Instruction(Op.MOV_RI, RCX, 200),
            Instruction(Op.MOV_RI, RBX, heap),
            LabelDef("loop"),
            Instruction(Op.MOV_MR, Mem(RBX), RCX),
            Instruction(Op.MOV_RM, RDX, Mem(RBX)),
            Instruction(Op.ADD_RR, RAX, RDX),
            Instruction(Op.STB, Mem(RBX, RCX, 1, 64), RCX),
            Instruction(Op.LDB, RDX, Mem(RBX, RCX, 1, 64)),
            Instruction(Op.ADD_RR, RAX, RDX),
            Instruction(Op.ADD_RI, RBX, 256),
            Instruction(Op.SUB_RI, RCX, 1),
            Instruction(Op.CMP_RI, RCX, 0),
            Instruction(Op.JG, Label("loop")),
        ]
        enclave, _ = _load(items, enclave=enclave)
        cpu = _cpu(enclave, executor,
                   cost_model=CostModel.with_epc_limit(4))
        enclaves[executor] = (cpu.run(), enclave)
    (step_res, e1), (fast_res, e2) = \
        enclaves["step"], enclaves["translate"]
    assert (step_res.steps, step_res.cycles, step_res.return_value) == \
        (fast_res.steps, fast_res.cycles, fast_res.return_value)
    heap_lo = e1.layout.regions["heap"].start
    assert e1.space.read_raw(heap_lo, 4096) == \
        e2.space.read_raw(heap_lo, 4096)


# -- shared stack path --------------------------------------------------------

def test_public_push_pop_costs_match_instruction_path():
    # the helper API and the PUSH_R/POP_R opcodes share one code path,
    # so their cycle accounting must be identical
    enclave, _ = _load([Instruction(Op.PUSH_R, RAX),
                        Instruction(Op.POP_R, RBX)])
    cpu = _cpu(enclave, "step")
    result = cpu.run()
    instr_cycles = result.cycles

    enclave2, _ = _load([Instruction(Op.NOP)])
    cpu2 = _cpu(enclave2, "step")
    cpu2.regs[0] = 99
    base = cpu2.cycles
    cpu2.push(cpu2.regs[0])
    assert cpu2.pop() == 99
    helper_cycles = cpu2.cycles - base
    # instruction path additionally retires PUSH_R+POP_R+HLT opcode costs
    model = CostModel()
    from repro.isa.instructions import Op as _Op
    opcode_cost = (model.cost_of(_Op.PUSH_R) + model.cost_of(_Op.POP_R)
                   + model.cost_of(_Op.HLT))
    assert instr_cycles == pytest.approx(helper_cycles + opcode_cost)
