"""CCaaS end-to-end: attestation, two-party delivery, encrypted results."""

import hashlib

import pytest

from repro.core import BootstrapEnclave
from repro.errors import AttestationError, ProtocolError
from repro.policy import PolicySet
from repro.service import (
    CCaaSHost, CodeProvider, DataOwner, establish_session,
)
from repro.sgx import AttestationService

_SERVICE_SRC = """
char buf[64];
int main() {
    int n = __recv(buf, 64);
    int sum = 0;
    int i;
    for (i = 0; i < n; i++) sum += buf[i];
    buf[0] = sum % 256;
    __send(buf, 1);
    __report(sum);
    return sum;
}
"""


@pytest.fixture
def host():
    boot = BootstrapEnclave(policies=PolicySet.full())
    return CCaaSHost(boot, AttestationService())


def test_full_two_party_flow(host):
    provider = CodeProvider(_SERVICE_SRC, PolicySet.full())
    owner = DataOwner(data=bytes(range(10)))
    mr = host.bootstrap.mrenclave

    provider.connect(host, mr)
    owner.connect(host, mr)
    measurement = provider.deliver(host)

    # out-of-band: provider publishes the hash; owner approves it
    owner.approved_hashes.append(measurement)
    owner.approve_code(measurement)

    assert owner.upload(host) == 10
    outcome = host.ecall_run()
    assert outcome.ok
    assert outcome.reports == [sum(range(10))]
    plain = owner.decrypt_results(outcome)
    assert plain == [bytes([sum(range(10)) % 256])]


def test_owner_rejects_unapproved_code(host):
    owner = DataOwner(data=b"secret")
    with pytest.raises(ProtocolError, match="not approved"):
        owner.approve_code(hashlib.sha256(b"evil binary").digest())


def test_session_pins_mrenclave(host):
    with pytest.raises(AttestationError, match="MRENCLAVE"):
        establish_session(host, "owner", b"\x00" * 32)


def test_session_binds_channel_to_quote(host):
    # a correct session passes; report_data binding is checked inside
    channel = establish_session(host, "owner",
                                host.bootstrap.mrenclave,
                                party_seed=b"abc")
    assert host.bootstrap.channels["owner"] is not None
    assert channel.record_size == 256


def test_encrypted_delivery_requires_connection(host):
    provider = CodeProvider(_SERVICE_SRC, PolicySet.full())
    with pytest.raises(ProtocolError, match="not connected"):
        provider.deliver(host)
    owner = DataOwner(data=b"x")
    with pytest.raises(ProtocolError, match="not connected"):
        owner.upload(host)


def test_host_cannot_read_wire_traffic(host):
    provider = CodeProvider(_SERVICE_SRC, PolicySet.full())
    owner = DataOwner(data=b"very secret bytes!")
    mr = host.bootstrap.mrenclave
    provider.connect(host, mr)
    owner.connect(host, mr)
    provider.deliver(host)

    # capture what the host relays for the owner's upload
    sealed = owner._channel.seal(owner.data)
    assert owner.data not in sealed
    host.ecall_receive_userdata(sealed, encrypted=True)
    outcome = host.ecall_run()
    # the result on the wire is ciphertext, padded to records
    for wire in outcome.sent_wire:
        assert len(wire) == 256 + 32
        assert b"secret" not in wire


def test_undefined_ecall_blocked_by_p0(host):
    from repro.errors import EnclaveError
    with pytest.raises(EnclaveError, match="P0"):
        host.bootstrap.enclave.ecall("ecall_exfiltrate")


def test_provider_detects_binary_substitution(host):
    provider = CodeProvider(_SERVICE_SRC, PolicySet.full())
    provider.connect(host, host.bootstrap.mrenclave)
    real_ecall = host.ecall_receive_binary

    def tampering_ecall(blob, encrypted=True):
        real_ecall(blob, encrypted=encrypted)
        return hashlib.sha256(b"swapped").digest()

    host.ecall_receive_binary = tampering_ecall
    with pytest.raises(ProtocolError, match="different binary hash"):
        provider.deliver(host)


def test_underinstrumented_provider_binary_rejected(host):
    from repro.errors import VerificationError
    provider = CodeProvider(_SERVICE_SRC, PolicySet.p1_only())
    provider.connect(host, host.bootstrap.mrenclave)
    with pytest.raises(VerificationError):
        provider.deliver(host)   # bootstrap demands the full set


def test_two_sessions_have_independent_keys(host):
    a = establish_session(host, "owner", host.bootstrap.mrenclave,
                          party_seed=b"a")
    boot2 = BootstrapEnclave(policies=PolicySet.full())
    host2 = CCaaSHost(boot2, AttestationService())
    b = establish_session(host2, "owner", host2.bootstrap.mrenclave,
                          party_seed=b"b")
    wire = a.seal(b"hello")
    with pytest.raises(ProtocolError):
        # the other bootstrap's channel cannot open it
        boot2.channels["owner"].open(wire)
