"""Bootstrap enclave specifics: measurement, P0 wrappers, time
blurring, state isolation between runs."""

import pytest

from repro.compiler import compile_source
from repro.core import BootstrapEnclave
from repro.core.bootstrap import P0Config, consumer_image
from repro.errors import EnclaveError, ProtocolError
from repro.policy import PolicySet


def _boot(src, setting="P1", **kwargs):
    policies = PolicySet.parse(setting)
    boot = BootstrapEnclave(policies=policies, **kwargs)
    boot.receive_binary(compile_source(src, policies).serialize())
    return boot


def test_consumer_image_is_stable_and_nontrivial():
    image = consumer_image()
    assert image == consumer_image()
    assert len(image) > 20_000
    assert b"PolicyVerifier" in image      # the verifier source is public


def test_two_bootstraps_share_mrenclave():
    a = BootstrapEnclave(policies=PolicySet.full())
    b = BootstrapEnclave(policies=PolicySet.full())
    assert a.mrenclave == b.mrenclave


def test_run_without_binary_rejected():
    boot = BootstrapEnclave(policies=PolicySet.p1_only())
    with pytest.raises(EnclaveError, match="no verified binary"):
        boot.run()


def test_binary_hash_returned_matches_blob():
    import hashlib
    blob = compile_source("int main() { return 3; }",
                          PolicySet.p1_only()).serialize()
    boot = BootstrapEnclave(policies=PolicySet.p1_only())
    assert boot.receive_binary(blob) == hashlib.sha256(blob).digest()


def test_recv_cursor_resets_between_runs():
    src = """
    char buf[8];
    int main() {
        int n = __recv(buf, 4);
        __report(buf[0]);
        __report(n);
        return 0;
    }
    """
    boot = _boot(src)
    boot.receive_userdata(b"abcdef")
    first = boot.run()
    second = boot.run()          # cursor must rewind, not continue
    assert first.reports == second.reports == [ord("a"), 4]


def test_recv_drains_input_across_calls_within_one_run():
    src = """
    char buf[8];
    int main() {
        __recv(buf, 3);
        __report(buf[0]);
        int n = __recv(buf, 8);
        __report(buf[0]);
        __report(n);
        int m = __recv(buf, 8);
        __report(m);
        return 0;
    }
    """
    boot = _boot(src)
    boot.receive_userdata(b"XYZAB")
    outcome = boot.run()
    assert outcome.reports == [ord("X"), ord("A"), 2, 0]


def test_report_budget_counts():
    src = """
    int main() {
        int i;
        for (i = 0; i < 10; i++) __report(i);
        return 0;
    }
    """
    boot = _boot(src, p0=P0Config(max_output_bytes=40))  # 5 reports
    outcome = boot.run()
    assert outcome.status == "violation"
    assert len(outcome.reports) == 5


def test_absurd_send_length_rejected():
    src = """
    char b[8];
    int main() { __send(b, 1073741824); return 0; }
    """
    boot = _boot(src)
    outcome = boot.run()
    assert outcome.status == "violation"
    assert "absurd" in outcome.detail


def test_time_blurring_quantizes_observable_cycles():
    src_fast = "int main() { return 1; }"
    src_slow = """
    int main() {
        int i; int a = 0;
        for (i = 0; i < 3000; i++) a += i;
        return a;
    }
    """
    quantum = 1_000_000
    fast = _boot(src_fast, p0=P0Config(pad_cycles_quantum=quantum)).run()
    slow = _boot(src_slow, p0=P0Config(pad_cycles_quantum=quantum)).run()
    assert fast.result.cycles != slow.result.cycles
    assert fast.observable_cycles == slow.observable_cycles == quantum
    assert fast.observable_cycles % quantum == 0


def test_time_blurring_off_by_default():
    outcome = _boot("int main() { return 1; }").run()
    assert outcome.observable_cycles == outcome.result.cycles


def test_encrypted_paths_require_channels():
    boot = BootstrapEnclave(policies=PolicySet.p1_only())
    with pytest.raises(ProtocolError, match="provider channel"):
        boot.receive_binary(b"x", encrypted=True)
    with pytest.raises(ProtocolError, match="owner channel"):
        boot.receive_userdata(b"x", encrypted=True)
    with pytest.raises(ProtocolError, match="unknown role"):
        boot.attach_channel(None, role="eavesdropper")


def test_ecall_table_is_exactly_the_p0_interface():
    boot = BootstrapEnclave(policies=PolicySet.p1_only())
    assert boot.enclave.ecall_names == (
        "ecall_ping", "ecall_receive_binary", "ecall_receive_userdata",
        "ecall_resume", "ecall_run")


def test_ping_reports_identity_without_touching_the_audit_chain():
    boot = BootstrapEnclave(policies=PolicySet.p1_only())
    first = boot.ping()
    second = boot.ping()
    assert first["mrenclave"] == boot.enclave.mrenclave.hex()
    assert not first["provisioned"]
    # Heartbeats are supervision traffic, not protocol events: however
    # often the fleet probes, the audit chain must not grow.
    assert first["audit_head"] == second["audit_head"]


def test_hw_aex_counter_accumulates():
    from repro.vm.interrupts import AexSchedule
    src = """
    int main() {
        int i; int a = 0;
        for (i = 0; i < 5000; i++) a += i;
        return a;
    }
    """
    boot = _boot(src)
    boot.run(aex_schedule=AexSchedule(2_000, jitter=0))
    boot.run(aex_schedule=AexSchedule(2_000, jitter=0))
    assert boot.enclave.hw_aex_count >= 10
