"""Resilient sessions: transient faults retried, fatal classes never."""

import pytest

from repro.core import BootstrapEnclave
from repro.errors import (
    AttestationError, AttestationOutage, EnclaveError, EnclaveTeardown,
    PolicyViolation, ProtocolError, RetryBudgetExceeded,
    VerificationError,
)
from repro.policy import PolicySet
from repro.service import (
    CCaaSHost, CodeProvider, DataOwner, FaultPlan, FaultyHost,
    ResilientSession, RetryPolicy, TwoPartyWorkflow, classify_error,
)
from repro.service.faults import CAMPAIGN_SRC
from repro.sgx import AttestationService

_DATA = bytes(range(12))


def _host():
    boot = BootstrapEnclave(policies=PolicySet.full())
    return CCaaSHost(boot, AttestationService())


def _workflow(host, retry=None, data=_DATA):
    provider = CodeProvider(CAMPAIGN_SRC, PolicySet.full())
    owner = DataOwner(data=data)
    import hashlib
    owner.approved_hashes.append(
        hashlib.sha256(provider.build()).digest())
    return TwoPartyWorkflow(host, provider, owner, retry=retry,
                            sleep=None)


# -- classification -----------------------------------------------------------

@pytest.mark.parametrize("exc", [
    AttestationOutage("ias down"),
    ProtocolError("bad MAC"),
    EnclaveError("transient"),
    EnclaveTeardown("gone"),
])
def test_transient_classes(exc):
    assert classify_error(exc) == "transient"


@pytest.mark.parametrize("exc", [
    PolicyViolation(6, 0, "P6 trap"),
    VerificationError("missing annotation"),
    AttestationError("MRENCLAVE mismatch: untrusted bootstrap"),
    RetryBudgetExceeded("spent"),
    ValueError("unknown errors fail closed"),
])
def test_fatal_classes(exc):
    assert classify_error(exc) == "fatal"


def test_admission_and_preemption_classes_are_fatal_to_sessions():
    # Scheduler-level verdicts must never feed the session retry loop:
    # a preempted run is the *supervisor's* decision to reclaim the
    # drone, and a shed job was refused at the door.
    from repro.errors import AdmissionRejected, SessionPreempted
    assert classify_error(SessionPreempted("quantum expired")) == "fatal"
    assert classify_error(
        AdmissionRejected("shed", reason="queue_full")) == "fatal"


def test_outage_transient_despite_fatal_parent():
    # Most-specific first: AttestationOutage subclasses the fatal
    # AttestationError, and budget exhaustion is fatal even though it
    # wraps a transient cause.
    assert issubclass(AttestationOutage, AttestationError)
    assert classify_error(AttestationOutage("down")) == "transient"
    budget = RetryBudgetExceeded("spent")
    budget.__cause__ = AttestationOutage("down")
    assert classify_error(budget) == "fatal"


def test_retry_policy_delays_are_deterministic_and_capped():
    policy = RetryPolicy(seed=9, base_delay_s=0.01, max_delay_s=0.05,
                         jitter=0.25)
    delays = [policy.delay(i) for i in range(8)]
    assert delays == [policy.delay(i) for i in range(8)]
    assert all(0 < d <= 0.05 * 1.25 for d in delays)
    assert delays[3] > delays[0]   # backoff grows


def test_retry_policy_delay_huge_index_does_not_overflow():
    policy = RetryPolicy(seed=9, base_delay_s=0.01, max_delay_s=5.0,
                         backoff=2.0, jitter=0.1)
    for index in (64, 1025, 10 ** 6):
        delay = policy.delay(index)
        assert 0 < delay <= 5.0 * 1.1
    flat = RetryPolicy(base_delay_s=0.01, max_delay_s=5.0, backoff=1.0)
    assert flat.delay(10 ** 6) <= 0.01 * (1 + flat.jitter)
    assert RetryPolicy(base_delay_s=0.0).delay(10 ** 6) == 0.0


def test_session_stats_merge_sums_counters_and_kinds():
    from repro.service import SessionStats
    a = SessionStats()
    a.retries, a.reconnects, a.slept_s = 2, 1, 0.5
    a.retried_kinds = {"EnclaveTeardown": 2}
    a.fatal_kinds = {"PolicyViolation": 1}
    b = SessionStats()
    b.retries, b.resumes, b.rollbacks_rejected = 3, 1, 1
    b.retried_kinds = {"EnclaveTeardown": 1, "AttestationOutage": 4}
    merged = a.merge(b)
    assert merged is a   # chainable, mutates the receiver
    assert a.retries == 5
    assert a.reconnects == 1
    assert a.resumes == 1
    assert a.rollbacks_rejected == 1
    assert a.slept_s == 0.5
    assert a.retried_kinds == {"EnclaveTeardown": 3,
                               "AttestationOutage": 4}
    assert a.fatal_kinds == {"PolicyViolation": 1}


def test_workflow_stats_merge_run_and_session_counters():
    wf = _workflow(_host())
    wf.run_stats.retries = 1
    wf.provider_session.stats.retries = 2
    wf.owner_session.stats.retries = 4
    wf.provider_session.stats.retried_kinds["ProtocolError"] = 2
    wf.run_stats.retried_kinds["ProtocolError"] = 1
    assert wf.stats.retries == 7
    assert wf.stats.retried_kinds == {"ProtocolError": 3}


# -- recovery paths -----------------------------------------------------------

def test_transient_faults_recovered_end_to_end():
    plan = FaultPlan(1, p_wire=0.0, p_teardown=0.0, p_outage=0.0,
                     p_storm=0.0, p_transient=1.0, max_faults=2)
    host = FaultyHost(_host(), plan)
    wf = _workflow(host, retry=RetryPolicy(max_attempts=4, seed=1))
    outcome, plaintexts = wf.execute()
    assert outcome.ok
    assert plaintexts == [bytes([sum(_DATA) % 256])]
    assert len(plan.injected) == 2
    assert wf.stats.retries == 2
    assert wf.stats.retried_kinds == {"EnclaveError": 2}


def test_teardown_recovered_with_audit_continuity():
    plan = FaultPlan(1, p_wire=0.0, p_transient=0.0, p_outage=0.0,
                     p_storm=0.0, p_teardown=1.0, max_faults=1)
    host = FaultyHost(_host(), plan)
    wf = _workflow(host, retry=RetryPolicy(max_attempts=4, seed=1))
    outcome, _ = wf.execute()
    assert outcome.ok
    assert wf.stats.recoveries == 1
    assert wf.stats.retried_kinds == {"EnclaveTeardown": 1}
    boot = host.bootstrap
    assert boot.audit.count("recovered") == 1
    assert boot.audit.verify_chain()


def test_attestation_outage_retried():
    host = _host()
    host.attestation_service.schedule_outage(calls=2)
    wf = _workflow(host, retry=RetryPolicy(max_attempts=5, seed=1))
    outcome, _ = wf.execute()
    assert outcome.ok
    assert wf.stats.retried_kinds == {"AttestationOutage": 2}


def test_wire_corruption_forces_session_reestablishment():
    plan = FaultPlan(3, p_wire=1.0, p_transient=0.0, p_outage=0.0,
                     p_storm=0.0, p_teardown=0.0, max_faults=1)
    host = FaultyHost(_host(), plan)
    wf = _workflow(host, retry=RetryPolicy(max_attempts=4, seed=1))
    outcome, _ = wf.execute()
    assert outcome.ok
    assert wf.stats.retries == 1
    assert wf.stats.retried_kinds == {"ProtocolError": 1}
    assert wf.stats.reconnects >= 1


def test_run_recovery_redelivers_after_midprotocol_teardown():
    host = _host()
    wf = _workflow(host, retry=RetryPolicy(max_attempts=4, seed=1))
    wf.provision()
    # the platform reclaims the enclave after provisioning finished
    host.bootstrap.enclave.destroy()
    outcome, plaintexts = wf.execute()
    assert outcome.ok
    assert plaintexts == [bytes([sum(_DATA) % 256])]
    assert wf.stats.recoveries == 1
    assert host.bootstrap.audit.count("recovered") == 1


# -- fatal classes are never retried -----------------------------------------

def test_policy_violation_outcome_is_returned_not_retried():
    from repro.vm.interrupts import AexSchedule
    boot = BootstrapEnclave(policies=PolicySet.full(), aex_threshold=10)
    host = CCaaSHost(boot, AttestationService())
    wf = _workflow(host, retry=RetryPolicy(max_attempts=6, seed=1))
    outcome, plaintexts = wf.execute(
        aex_schedule=AexSchedule(3, jitter=0.0, seed=1))
    assert outcome.status == "violation"
    assert plaintexts == []
    # one run attempt, zero retries: the defense engaging is an outcome
    assert wf.stats.retries == 0
    assert boot.audit.count("run_completed") == 1


def test_mrenclave_pin_mismatch_aborts_without_retry():
    host = _host()
    provider = CodeProvider(CAMPAIGN_SRC, PolicySet.full())
    session = ResilientSession(
        provider, host, expected_mrenclave=b"\x00" * 32,
        retry=RetryPolicy(max_attempts=5, seed=1), sleep=None)
    with pytest.raises(AttestationError, match="MRENCLAVE"):
        session.perform("deliver",
                        lambda: provider.deliver(host))
    assert session.stats.retries == 0
    assert session.stats.fatal_errors == 1
    assert session.stats.fatal_kinds == {"AttestationError": 1}


def test_rejected_binary_aborts_without_retry():
    host = _host()   # bootstrap demands the full policy set
    provider = CodeProvider(CAMPAIGN_SRC, PolicySet.p1_only())
    owner = DataOwner(data=_DATA)
    wf = TwoPartyWorkflow(host, provider, owner,
                          retry=RetryPolicy(max_attempts=5, seed=1),
                          sleep=None)
    with pytest.raises(VerificationError):
        wf.provision()
    assert wf.stats.retries == 0
    assert wf.stats.fatal_kinds == {"VerificationError": 1}


def test_retry_budget_exhaustion_surfaces_last_error():
    plan = FaultPlan(1, p_wire=0.0, p_teardown=0.0, p_outage=0.0,
                     p_storm=0.0, p_transient=1.0, max_faults=100)
    host = FaultyHost(_host(), plan)
    wf = _workflow(host, retry=RetryPolicy(max_attempts=3, seed=1))
    with pytest.raises(RetryBudgetExceeded) as excinfo:
        wf.execute()
    assert isinstance(excinfo.value.__cause__, EnclaveError)
    assert wf.stats.retries == 3


# -- bench chaos mode ---------------------------------------------------------

def test_bench_chaos_keeps_cell_values_and_is_deterministic():
    from repro.bench.harness import run_workload
    clean = run_workload("numeric_sort", "P1", 6)
    a = run_workload("numeric_sort", "P1", 6, chaos_seed=11)
    b = run_workload("numeric_sort", "P1", 6, chaos_seed=11)
    assert (a.steps, a.cycles, a.aex_events, a.reports) == \
        (clean.steps, clean.cycles, clean.aex_events, clean.reports)
    assert (a.retries, a.recoveries) == (b.retries, b.recoveries)
    assert clean.retries == 0 and clean.recoveries == 0
    assert a.to_dict()["retries"] == a.retries


def test_cli_chaos_smoke(capsys):
    from repro.cli import main
    assert main(["chaos", "--seed", "2021", "--trials", "2"]) == 0
    out = capsys.readouterr().out
    assert "deflection-chaos/1" in out
    assert "no fatal class retried" in out


def test_cli_bench_chaos_records_counters(tmp_path, capsys):
    import json
    from repro.cli import main
    out_file = tmp_path / "bench.json"
    assert main(["bench", "--workloads", "numeric_sort",
                 "--settings", "baseline", "P1",
                 "--param", "6", "--executor", "translate",
                 "--chaos", "3", "--json", "-o", str(out_file)]) == 0
    doc = json.loads(out_file.read_text())
    assert doc["chaos_seed"] == 3
    assert set(doc["chaos"]) == {"retries", "recoveries"}
    cell = doc["workloads"]["numeric_sort"]["P1"]
    assert "retries" in cell and "recoveries" in cell
