"""Fault-tolerant multi-enclave pipelines: oracle equivalence,
resume-at-every-hop, streaming backpressure, chain fail-closed wiring,
quarantine migration, channel rekeying, stats aggregation, and the
chaos campaign / bench / store / gate plumbing."""

from __future__ import annotations

import hashlib

import pytest

from repro.bench.gates import classify, evaluate
from repro.bench.pipeline import run_pipeline_bench
from repro.bench.store import (
    CellKey, ResultsStore, StoreError, records_from_doc,
)
from repro.core.bootstrap import ProvisionCache
from repro.crypto.channel import SecureChannel
from repro.errors import PipelineStalled, ProtocolError
from repro.service.faults import (
    PipelineFaultPlan, _pipeline_data, run_pipeline_campaign,
)
from repro.service.pipeline import (
    PipelineOrchestrator, serial_oracle, topology_stages,
)
from repro.service.resilient import SessionStats

#: Shared across every test in this module: stage re-verification is a
#: cache replay, which is exactly the production setup.
CACHE = ProvisionCache()

STAGES3 = topology_stages("filter-score-agg")
DATA = _pipeline_data(3, length=48)


@pytest.fixture(scope="module")
def oracle3():
    output, reports = serial_oracle(STAGES3, DATA,
                                    provision_cache=CACHE)
    return output, reports


def _orch(**kwargs):
    kwargs.setdefault("provision_cache", CACHE)
    kwargs.setdefault("topology", "filter-score-agg")
    return PipelineOrchestrator(STAGES3, **kwargs)


def test_batch_matches_oracle(oracle3):
    orch = _orch(pipeline_id="t-batch")
    run = orch.run(DATA)
    assert run.ok and run.chain_verified, run.detail
    assert run.output == oracle3[0]
    assert run.reports == oracle3[1]
    assert run.counters["links"] == 3
    assert run.upstream_reruns == 0
    for record in run.hops:
        assert record.audit_runs == record.expected_runs == 1


# -- the resume-at-every-hop satellite -----------------------------------
#
# Interrupt a 3-stage pipeline at *each* hop boundary and mid-hop; the
# final output must stay byte-identical and upstream hops must not be
# re-executed (each hop's audit log shows exactly one run_completed).

@pytest.mark.parametrize("hop", [0, 1, 2])
@pytest.mark.parametrize("kind", ["boundary", "midhop"])
def test_resume_at_every_hop(hop, kind, oracle3):
    kwargs = {"pipeline_id": f"t-resume-{kind}-{hop}",
              "checkpoint_every": 10}
    if kind == "boundary":
        kwargs["teardown_before"] = {hop}
    else:
        kwargs["interrupt_at"] = {hop: 40}
    orch = _orch(**kwargs)
    run = orch.run(DATA)
    assert run.ok and run.chain_verified, run.detail
    assert run.output == oracle3[0]
    # Upstream hops ran exactly once: the interrupted hop resumed from
    # its sealed chain instead of restarting the pipeline.
    assert run.upstream_reruns == 0
    for record in run.hops:
        assert record.audit_runs == record.expected_runs == 1, \
            record.as_dict()
    if kind == "boundary":
        assert run.hops[hop].boundary_teardowns == 1
        assert run.stats.recoveries >= 1
    else:
        assert run.stats.resumes >= 1


def test_streaming_window_and_per_chunk_chains():
    stages = topology_stages("stream-map4")
    data = _pipeline_data(5, length=80)
    orch = PipelineOrchestrator(
        stages, pipeline_id="t-stream", topology="stream-map4",
        provision_cache=CACHE)
    run = orch.run_streaming(data, chunk_size=16, window=2)
    oracle, reports = serial_oracle(stages, data, chunk_size=16,
                                    provision_cache=CACHE)
    assert run.ok and run.chain_verified, run.detail
    assert run.output == oracle
    assert run.reports == reports
    assert run.chunks == 5
    assert 1 <= run.max_in_flight <= 2      # bounded in-flight window
    assert sorted(run.chains) == [0, 1, 2, 3, 4]
    assert run.counters["links"] == 5 * len(stages)
    assert len(run.chunk_latencies) == 5
    assert run.stats.chunks == 5 * len(stages)


def test_chunk_budget_violation_is_blamed():
    # A 4-byte per-chunk P0 output budget the filter stage must blow.
    orch = _orch(pipeline_id="t-budget", chunk_budget=4)
    run = orch.run(DATA)
    assert not run.ok
    assert run.status.startswith("blame@")
    assert "genomics-filter" in run.status


def test_stall_escalation_raises_typed_error():
    orch = _orch(pipeline_id="t-stall", watchdog_steps=10,
                 max_stalls=0, raise_errors=True)
    with pytest.raises(PipelineStalled) as info:
        orch.run(DATA)
    assert info.value.hop == 0
    assert info.value.checkpoints is not None
    orch2 = _orch(pipeline_id="t-stall2", watchdog_steps=10,
                  max_stalls=0)
    run = orch2.run(DATA)
    assert run.status.startswith("stalled@")


def test_quarantine_migrates_with_explicit_chain_link(oracle3):
    plan = PipelineFaultPlan(11, p_handoff=0.0, p_stall=0.0,
                             p_quarantine=1.0, max_events=3,
                             hop_max_faults=0)
    orch = _orch(pipeline_id="t-quarantine", fault_plan=plan)
    run = orch.run(DATA)
    assert run.ok and run.chain_verified, run.detail
    assert run.output == oracle3[0]
    assert run.counters["migrations"] == 3
    migrated = [l for l in run.links if l.kind == "migrated"]
    assert len(migrated) == 3
    for link in migrated:
        assert " -> " in link.detail
    # Each migrated stage still ran exactly once, on the new platform.
    assert run.upstream_reruns == 0


def test_handoff_attacks_rejected_fail_closed(oracle3):
    plan = PipelineFaultPlan(29, p_handoff=1.0, p_stall=0.0,
                             p_quarantine=0.0, max_events=8,
                             hop_max_faults=0)
    orch = _orch(pipeline_id="t-handoff", fault_plan=plan)
    run = orch.run(DATA)
    assert run.ok and run.chain_verified, run.detail
    assert run.output == oracle3[0]
    assert run.counters["attacks_accepted"] == 0
    rejected = run.counters["handoffs_rejected"] \
        + run.counters["chain_attacks_rejected"] \
        + run.counters["discard_reruns"]
    assert rejected >= 1
    assert run.upstream_reruns == 0


# -- SecureChannel rekeying (satellite) ----------------------------------

def test_explicit_rekey_old_key_no_longer_authenticates():
    a, b = SecureChannel.pair(b"shared", record_size=64)
    stale, _ = SecureChannel.pair(b"shared", record_size=64)
    assert b.open(a.seal(b"before")) == b"before"
    stale.seal(b"before")                   # keep seq in lockstep
    a.rekey()
    b.rekey()
    assert a.rekeys == b.rekeys == 1
    assert b.open(a.seal(b"after")) == b"after"
    with pytest.raises(ProtocolError):
        b.open(stale.seal(b"forged-under-old-key"))
    assert b.desynced                       # fails closed afterwards


def test_auto_ratchet_at_record_threshold():
    a, b = SecureChannel.pair(b"shared2", record_size=64)
    a.rekey_after = b.rekey_after = 4
    for i in range(12):
        msg = bytes([i]) * 16
        assert b.open(a.seal(msg)) == msg
    assert a.rekeys >= 2
    assert a.rekeys == b.rekeys
    # A desynced third party holding the original keys is locked out.
    stale, _ = SecureChannel.pair(b"shared2", record_size=64)
    for i in range(12):
        stale.seal(bytes([i]) * 16)
    with pytest.raises(ProtocolError):
        b.open(stale.seal(b"old-key-record"))


def test_rekey_refused_when_desynced():
    a, b = SecureChannel.pair(b"shared3", record_size=64)
    wire = bytearray(a.seal(b"x"))
    wire[-1] ^= 1
    with pytest.raises(ProtocolError):
        b.open(bytes(wire))
    with pytest.raises(ProtocolError):
        b.rekey()


# -- SessionStats aggregation (satellite) --------------------------------

def test_session_stats_merge_is_order_invariant():
    def sample(i):
        return SessionStats(
            attempts=i, retries=2 * i, reconnects=i % 2,
            recoveries=i, fatal_errors=0, resumes=3 - i,
            rollbacks_rejected=i, chunks=10 * i, slept_s=0.5 * i,
            retried_kinds={"ProtocolError": i, f"Kind{i}": 1},
            fatal_kinds={"DeadlineExceeded": i})
    forward = SessionStats()
    for i in (1, 2, 3):
        forward.merge(sample(i))
    backward = SessionStats()
    for i in (3, 2, 1):
        backward.merge(sample(i))
    assert forward.as_dict() == backward.as_dict()
    assert forward.chunks == 60
    assert forward.retried_kinds["ProtocolError"] == 6


def test_pipeline_stats_merge_over_hops(oracle3):
    orch = _orch(pipeline_id="t-stats", teardown_before={1})
    run = orch.run(DATA)
    assert run.ok
    merged = run.stats
    assert merged.chunks == sum(r.stats.chunks for r in run.hops) == 3
    assert merged.recoveries == sum(r.stats.recoveries
                                    for r in run.hops)


# -- chaos campaign (smoke) ----------------------------------------------

def test_pipeline_campaign_invariants():
    report = run_pipeline_campaign(seed=7, trials=2, chunk_size=24)
    assert report["zero_lost"], report["totals"]
    assert report["all_identical"]
    assert report["zero_attacks_accepted"]
    assert report["zero_upstream_excess"]
    assert report["replay_identical"]
    assert report["totals"]["faults_injected"] >= 1
    assert len(report["trials_detail"]) == 2


# -- bench -> store -> gate plumbing -------------------------------------

def test_bench_doc_ingests_and_gates(tmp_path):
    doc = run_pipeline_bench(
        seed=5, topologies=("filter-score-agg",), modes=("batch",),
        fault_settings=("clean",), data_len=32)
    assert doc["status"] == "ok"
    assert doc["all_chain_verified"] and doc["all_output_identical"]
    records = records_from_doc(doc, commit="t", run_id="r1")
    assert records and all(r.key.kind == "pipeline" for r in records)
    cell = records[0]
    assert cell.metrics["chain_verified"] is True
    assert cell.metrics["attacks_accepted"] == 0
    assert "records_per_s" in cell.metrics
    store = ResultsStore(tmp_path / "history.jsonl")
    store.append(records)
    report = evaluate(store.load(), kinds=["pipeline"])
    assert report.exit_code == 0
    assert all(d.classification == "new" for d in report.deltas)


def test_gate_inverts_records_per_s():
    # Throughput: a 40% drop is the regression, a 40% gain improves.
    drop = classify("records_per_s", 60.0, 100.0)
    gain = classify("records_per_s", 140.0, 100.0)
    assert drop.classification == "regressed"
    assert gain.classification == "improved"
    assert drop.delta_pct == pytest.approx(-40.0)
    # Advisory, like every wall metric.
    assert drop.gating is False
    # Latency keeps the normal sense and stays advisory.
    slow = classify("chunk_p99_s", 1.4, 1.0)
    assert slow.classification == "regressed"
    assert slow.gating is False
    # Deterministic pipeline counters gate hard at zero band.
    drift = classify("handoffs_rejected", 3, 2)
    assert drift.classification == "regressed" and drift.gating


def test_typod_kind_is_a_store_error():
    with pytest.raises(StoreError, match="unknown results-store kind"):
        CellKey(kind="pipelin", executor="", tier=-1,
                workload="w", setting="s", param=0)
