"""Recursive-descent disassembler tests."""

import pytest

from repro.errors import VerificationError
from repro.core.rdd import recursive_descent
from repro.isa import (
    Instruction, Label, LabelDef, assemble, RAX, RCX,
)
from repro.isa.instructions import Op


def _code(items):
    return assemble(items).code


def test_follows_fallthrough_and_stops_at_hlt():
    code = _code([Instruction(Op.NOP), Instruction(Op.NOP),
                  Instruction(Op.HLT), Instruction(Op.NOP)])
    result = recursive_descent(code, 0)
    # trailing NOP after HLT is unreachable
    assert [off for off, _ in result.stream] == [0, 1, 2]


def test_follows_branch_targets():
    items = [
        Instruction(Op.JMP, Label("there")),
        Instruction(Op.NOP),              # dead
        LabelDef("there"),
        Instruction(Op.HLT),
    ]
    result = recursive_descent(_code(items), 0)
    offsets = [off for off, _ in result.stream]
    assert 5 not in offsets            # the dead NOP
    assert offsets == [0, 6]


def test_conditional_jump_explores_both_paths():
    items = [
        Instruction(Op.CMP_RI, RAX, 0),
        Instruction(Op.JE, Label("yes")),
        Instruction(Op.NOP),
        Instruction(Op.HLT),
        LabelDef("yes"),
        Instruction(Op.TRAP, 1),
    ]
    result = recursive_descent(_code(items), 0)
    assert len(result.stream) == 5


def test_call_explores_callee_and_continuation():
    items = [
        Instruction(Op.CALL, Label("fn")),
        Instruction(Op.HLT),
        LabelDef("fn"),
        Instruction(Op.RET),
    ]
    result = recursive_descent(_code(items), 0)
    assert len(result.stream) == 3


def test_extra_roots_reach_indirect_only_functions():
    items = [
        Instruction(Op.HLT),
        LabelDef("orphan"),               # only reachable indirectly
        Instruction(Op.RET),
    ]
    asm = assemble(items)
    no_roots = recursive_descent(asm.code, 0)
    assert len(no_roots.stream) == 1
    with_roots = recursive_descent(asm.code, 0,
                                   roots=[asm.labels["orphan"]])
    assert len(with_roots.stream) == 2


def test_undecodable_reachable_bytes_rejected():
    code = _code([Instruction(Op.NOP)]) + b"\xEE"
    with pytest.raises(VerificationError, match="undecodable"):
        recursive_descent(code, 0)


def test_flow_escaping_text_rejected():
    # fallthrough off the end of the section
    code = _code([Instruction(Op.NOP)])
    with pytest.raises(VerificationError, match="escapes|undecodable"):
        recursive_descent(code, 0)


def test_branch_target_outside_text_rejected():
    code = _code([Instruction(Op.JMP, 1000), Instruction(Op.HLT)])
    with pytest.raises(VerificationError, match="outside text"):
        recursive_descent(code, 0)


def test_overlapping_decodings_rejected():
    # jump into the middle of a MOV imm64 whose immediate encodes a
    # valid instruction stream — classic x86 overlap trick
    items = [
        Instruction(Op.CMP_RI, RAX, 0),
        Instruction(Op.JE, 0),            # displacement patched below
        Instruction(Op.MOV_RI, RCX, 0),   # 10 bytes
        Instruction(Op.HLT),
    ]
    asm = assemble(items)
    blob = bytearray(asm.code)
    mov_off = asm.instr_offsets[2]
    # craft the immediate so mid-instruction bytes decode as TRAP;HLT...
    imm = bytes([Op.TRAP, 1, Op.HLT, Op.HLT, Op.HLT, Op.HLT, Op.HLT,
                 Op.HLT])
    blob[mov_off + 2:mov_off + 10] = imm
    # retarget the JE at the middle of the MOV
    je_off = asm.instr_offsets[1]
    target = mov_off + 2
    disp = target - (je_off + 5)
    blob[je_off + 1:je_off + 5] = disp.to_bytes(4, "little",
                                                signed=True)
    with pytest.raises(VerificationError, match="overlapping"):
        recursive_descent(bytes(blob), 0)


def test_negative_entry_rejected():
    with pytest.raises(VerificationError):
        recursive_descent(b"\x00", -1)


def test_stream_index_lookup():
    code = _code([Instruction(Op.NOP), Instruction(Op.HLT)])
    result = recursive_descent(code, 0)
    assert result.at_offset(1).op == Op.HLT
    assert set(result.offsets) == {0, 1}


def test_empty_roots_list_matches_no_roots():
    code = _code([Instruction(Op.NOP), Instruction(Op.HLT)])
    a = recursive_descent(code, 0)
    b = recursive_descent(code, 0, roots=[])
    assert a.stream == b.stream
    assert a.index_of == b.index_of


def test_indirect_root_mid_instruction_rejected():
    # a legitimate-target list entry landing inside the MOV imm64 whose
    # immediate bytes decode as valid instructions: both decodings are
    # reachable, so the overlap check must refuse the binary
    items = [
        Instruction(Op.MOV_RI, RCX, 0),   # 10 bytes, imm patched below
        Instruction(Op.HLT),
    ]
    asm = assemble(items)
    blob = bytearray(asm.code)
    imm = bytes([Op.TRAP, 1, Op.HLT, Op.HLT, Op.HLT, Op.HLT, Op.HLT,
                 Op.HLT])
    blob[2:10] = imm
    with pytest.raises(VerificationError, match="overlapping"):
        recursive_descent(bytes(blob), 0, roots=[2])


def test_branch_target_at_text_end_rejected():
    # target == len(text) is one past the last byte: no instruction
    # can live there, so it is out, not a boundary case
    code = _code([Instruction(Op.JMP, 0)])
    with pytest.raises(VerificationError, match="outside text"):
        recursive_descent(code, 0)


def test_shared_branch_target_visited_once():
    items = [
        Instruction(Op.JE, Label("done")),
        Instruction(Op.JMP, Label("done")),
        LabelDef("done"),
        Instruction(Op.HLT),
    ]
    asm = assemble(items)
    result = recursive_descent(asm.code, 0)
    offsets = [off for off, _ in result.stream]
    assert offsets == sorted(set(offsets))
    assert asm.labels["done"] in result.index_of


def test_descent_metadata_populated():
    from repro.core.rdd import (
        CAT_PLAIN, CAT_STORE, CAT_TRAP, CAT_HEAD_MARKER,
    )
    from repro.isa import Mem, R14
    items = [
        Instruction(Op.NOP),
        Instruction(Op.MOV_RI, R14, 0x1234),
        Instruction(Op.MOV_MR, Mem(base=RAX), RCX),
        Instruction(Op.JMP, Label("pad")),
        LabelDef("pad"),
        Instruction(Op.TRAP, 3),
        Instruction(Op.HLT),
    ]
    asm = assemble(items)
    result = recursive_descent(asm.code, 0)
    n = len(result.stream)
    assert len(result.lengths) == n
    assert len(result.cats) == n
    assert len(result.targets) == n
    assert len(result.reserved) == n
    for i, (off, ins) in enumerate(result.stream):
        assert result.lengths[i] == ins.length
        assert result.end_of(i) == off + ins.length
    cats = {off: result.cats[i]
            for i, (off, _) in enumerate(result.stream)}
    assert cats[0] == CAT_PLAIN
    assert cats[asm.instr_offsets[1]] == CAT_HEAD_MARKER
    assert cats[asm.instr_offsets[2]] == CAT_STORE
    assert cats[asm.labels["pad"]] == CAT_TRAP
    jmp_off = asm.instr_offsets[3]
    assert result.targets[result.index_of[jmp_off]] == \
        asm.labels["pad"]
    # MOV_RI R14 touches a reserved register; NOP does not
    assert result.reserved[result.index_of[asm.instr_offsets[1]]]
    assert not result.reserved[0]
    assert result.trap_pads == {asm.labels["pad"]: 3}


def test_linear_disassembly_matches_descent_on_straight_line():
    from repro.isa.disassembler import disassemble_linear
    code = _code([Instruction(Op.NOP),
                  Instruction(Op.MOV_RI, RCX, 7),
                  Instruction(Op.ADD_RR, RAX, RCX),
                  Instruction(Op.HLT)])
    linear = list(disassemble_linear(code))
    descent = recursive_descent(code, 0)
    assert descent.stream == linear
