"""Recursive-descent disassembler tests."""

import pytest

from repro.errors import VerificationError
from repro.core.rdd import recursive_descent
from repro.isa import (
    Instruction, Label, LabelDef, assemble, RAX, RCX,
)
from repro.isa.instructions import Op


def _code(items):
    return assemble(items).code


def test_follows_fallthrough_and_stops_at_hlt():
    code = _code([Instruction(Op.NOP), Instruction(Op.NOP),
                  Instruction(Op.HLT), Instruction(Op.NOP)])
    result = recursive_descent(code, 0)
    # trailing NOP after HLT is unreachable
    assert [off for off, _ in result.stream] == [0, 1, 2]


def test_follows_branch_targets():
    items = [
        Instruction(Op.JMP, Label("there")),
        Instruction(Op.NOP),              # dead
        LabelDef("there"),
        Instruction(Op.HLT),
    ]
    result = recursive_descent(_code(items), 0)
    offsets = [off for off, _ in result.stream]
    assert 5 not in offsets            # the dead NOP
    assert offsets == [0, 6]


def test_conditional_jump_explores_both_paths():
    items = [
        Instruction(Op.CMP_RI, RAX, 0),
        Instruction(Op.JE, Label("yes")),
        Instruction(Op.NOP),
        Instruction(Op.HLT),
        LabelDef("yes"),
        Instruction(Op.TRAP, 1),
    ]
    result = recursive_descent(_code(items), 0)
    assert len(result.stream) == 5


def test_call_explores_callee_and_continuation():
    items = [
        Instruction(Op.CALL, Label("fn")),
        Instruction(Op.HLT),
        LabelDef("fn"),
        Instruction(Op.RET),
    ]
    result = recursive_descent(_code(items), 0)
    assert len(result.stream) == 3


def test_extra_roots_reach_indirect_only_functions():
    items = [
        Instruction(Op.HLT),
        LabelDef("orphan"),               # only reachable indirectly
        Instruction(Op.RET),
    ]
    asm = assemble(items)
    no_roots = recursive_descent(asm.code, 0)
    assert len(no_roots.stream) == 1
    with_roots = recursive_descent(asm.code, 0,
                                   roots=[asm.labels["orphan"]])
    assert len(with_roots.stream) == 2


def test_undecodable_reachable_bytes_rejected():
    code = _code([Instruction(Op.NOP)]) + b"\xEE"
    with pytest.raises(VerificationError, match="undecodable"):
        recursive_descent(code, 0)


def test_flow_escaping_text_rejected():
    # fallthrough off the end of the section
    code = _code([Instruction(Op.NOP)])
    with pytest.raises(VerificationError, match="escapes|undecodable"):
        recursive_descent(code, 0)


def test_branch_target_outside_text_rejected():
    code = _code([Instruction(Op.JMP, 1000), Instruction(Op.HLT)])
    with pytest.raises(VerificationError, match="outside text"):
        recursive_descent(code, 0)


def test_overlapping_decodings_rejected():
    # jump into the middle of a MOV imm64 whose immediate encodes a
    # valid instruction stream — classic x86 overlap trick
    items = [
        Instruction(Op.CMP_RI, RAX, 0),
        Instruction(Op.JE, 0),            # displacement patched below
        Instruction(Op.MOV_RI, RCX, 0),   # 10 bytes
        Instruction(Op.HLT),
    ]
    asm = assemble(items)
    blob = bytearray(asm.code)
    mov_off = asm.instr_offsets[2]
    # craft the immediate so mid-instruction bytes decode as TRAP;HLT...
    imm = bytes([Op.TRAP, 1, Op.HLT, Op.HLT, Op.HLT, Op.HLT, Op.HLT,
                 Op.HLT])
    blob[mov_off + 2:mov_off + 10] = imm
    # retarget the JE at the middle of the MOV
    je_off = asm.instr_offsets[1]
    target = mov_off + 2
    disp = target - (je_off + 5)
    blob[je_off + 1:je_off + 5] = disp.to_bytes(4, "little",
                                                signed=True)
    with pytest.raises(VerificationError, match="overlapping"):
        recursive_descent(bytes(blob), 0)


def test_negative_entry_rejected():
    with pytest.raises(VerificationError):
        recursive_descent(b"\x00", -1)


def test_stream_index_lookup():
    code = _code([Instruction(Op.NOP), Instruction(Op.HLT)])
    result = recursive_descent(code, 0)
    assert result.at_offset(1).op == Op.HLT
    assert set(result.offsets) == {0, 1}
