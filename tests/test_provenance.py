"""Cross-enclave provenance chains: build, verify, and every
fail-closed rejection path (tamper, splice, reorder, truncation,
stale-epoch replay, digest binding, migrated-link ordering)."""

from __future__ import annotations

import hashlib
from dataclasses import replace

import pytest

from repro.core.provenance import (
    ProvenanceChain, chain_key, genesis_head, remac_links, verify_links,
)
from repro.errors import ProvenanceError

SECRET = b"test-session-secret"
PIPE = "test-pipe"


def _digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def build_chain(hops: int = 3, pipeline_id: str = PIPE,
                chunk: int = -1):
    """An honest chain of ``hops`` links with digest continuity;
    returns (chain, payloads) where payloads[0] is the pipeline input
    and payloads[-1] the final output."""
    chain = ProvenanceChain(key=chain_key(SECRET, pipeline_id),
                            pipeline_id=pipeline_id)
    payloads = [b"pipeline-input"]
    for hop in range(hops):
        out = payloads[-1] + bytes([hop + 1])
        chain.append(hop=hop, stage=f"stage{hop}", kind="hop",
                     mrenclave="ab" * 32, verifier="cd" * 32,
                     audit_head="ef" * 32,
                     input_digest=_digest(payloads[-1]),
                     output_digest=_digest(out), chunk=chunk)
        payloads.append(out)
    return chain, payloads


def _verify(chain, payloads, links=None, **overrides):
    kwargs = dict(expect_hops=len(chain.links),
                  expect_chunk=chain.links[0].chunk if chain.links
                  else -1,
                  input_digest=_digest(payloads[0]),
                  final_digest=_digest(payloads[-1]))
    kwargs.update(overrides)
    verify_links(chain.key, chain.pipeline_id,
                 list(chain.links) if links is None else links,
                 **kwargs)


def test_honest_chain_verifies():
    chain, payloads = build_chain(3)
    _verify(chain, payloads)
    assert chain.head == bytes.fromhex(chain.links[-1].mac)


def test_genesis_head_is_pipeline_bound():
    assert genesis_head("a") != genesis_head("b")
    assert chain_key(SECRET, "a") != chain_key(SECRET, "b")


def test_field_tamper_breaks_mac():
    chain, payloads = build_chain(3)
    doctored = list(chain.links)
    doctored[1] = replace(doctored[1], output_digest="00" * 32)
    with pytest.raises(ProvenanceError, match="MAC mismatch"):
        _verify(chain, payloads, links=doctored)


def test_reorder_breaks_mac():
    chain, payloads = build_chain(3)
    doctored = list(chain.links)
    doctored[0], doctored[1] = doctored[1], doctored[0]
    with pytest.raises(ProvenanceError, match="MAC mismatch"):
        _verify(chain, payloads, links=doctored)


def test_splice_under_foreign_key_rejected():
    """A host that re-MACs the whole stream under a key it knows builds
    a self-consistent chain — but not under the real chain key."""
    chain, payloads = build_chain(3)
    foreign = hashlib.sha256(b"foreign-key").digest()
    spliced = remac_links(foreign, PIPE, chain.links)
    with pytest.raises(ProvenanceError, match="MAC mismatch"):
        _verify(chain, payloads, links=spliced)


def test_remac_under_real_key_reproduces_chain():
    chain, payloads = build_chain(3)
    rebuilt = remac_links(chain.key, PIPE, chain.links)
    assert [l.mac for l in rebuilt] == [l.mac for l in chain.links]
    _verify(chain, payloads, links=rebuilt)


def test_truncated_chain_rejected():
    chain, payloads = build_chain(3)
    with pytest.raises(ProvenanceError, match="truncated"):
        _verify(chain, payloads, links=chain.links[:-1])


def test_wrong_pipeline_id_rejected():
    chain, payloads = build_chain(2)
    with pytest.raises(ProvenanceError):
        verify_links(chain.key, "other-pipe", list(chain.links),
                     expect_hops=2)


def test_chunk_binding():
    chain, payloads = build_chain(2, chunk=4)
    _verify(chain, payloads, expect_chunk=4)
    with pytest.raises(ProvenanceError, match="chunk 4 presented"):
        _verify(chain, payloads, expect_chunk=5)


def test_final_digest_binds_payload_bytes():
    chain, payloads = build_chain(2)
    with pytest.raises(ProvenanceError, match="final output digest"):
        _verify(chain, payloads,
                final_digest=_digest(b"substituted-bytes"))


def test_input_digest_discontinuity_rejected():
    """Hop k's claimed input must be exactly hop k-1's output, even
    when every MAC is valid (re-MACed under the real key)."""
    chain, payloads = build_chain(3)
    doctored = list(chain.links)
    doctored[1] = replace(doctored[1], input_digest=_digest(b"other"),
                          mac="")
    doctored = remac_links(chain.key, PIPE, doctored)
    with pytest.raises(ProvenanceError, match="digest does not"):
        _verify(chain, payloads, links=doctored,
                final_digest=None)


def test_replay_after_truncate_rejected_by_epoch():
    """After a discard-and-rerun, the stale link still MAC-verifies at
    its old position — only the epoch counter can reject it."""
    chain, payloads = build_chain(3)
    dropped = chain.truncate_from(2)
    assert len(dropped) == 1 and chain.discarded == dropped
    # Rerun hop 2 at epoch 1 with a different output.
    rerun_out = payloads[2] + b"\xff"
    chain.append(hop=2, stage="stage2", kind="hop",
                 mrenclave="ab" * 32, verifier="cd" * 32,
                 audit_head="ef" * 32,
                 input_digest=_digest(payloads[2]),
                 output_digest=_digest(rerun_out), chunk=-1, epoch=1)
    epochs = {0: 0, 1: 0, 2: 1}
    verify_links(chain.key, PIPE, list(chain.links), expect_hops=3,
                 expect_epochs=epochs,
                 final_digest=_digest(rerun_out))
    # The host replays the rolled-back link in place of the rerun.
    stale = chain.links[:-1] + [dropped[0]]
    with pytest.raises(ProvenanceError, match="stale epoch"):
        verify_links(chain.key, PIPE, stale, expect_hops=3,
                     expect_epochs=epochs)


def test_migrated_link_sits_before_its_hop():
    chain, payloads = build_chain(1)
    chain.append(hop=1, stage="stage1", kind="migrated",
                 mrenclave="ab" * 32, verifier="cd" * 32,
                 audit_head="ef" * 32,
                 input_digest=_digest(payloads[-1]),
                 output_digest="", chunk=-1,
                 detail="drone-a -> drone-b")
    out = payloads[-1] + b"\x02"
    chain.append(hop=1, stage="stage1", kind="hop",
                 mrenclave="ab" * 32, verifier="cd" * 32,
                 audit_head="ef" * 32,
                 input_digest=_digest(payloads[-1]),
                 output_digest=_digest(out), chunk=-1)
    payloads.append(out)
    verify_links(chain.key, PIPE, list(chain.links), expect_hops=2,
                 input_digest=_digest(payloads[0]),
                 final_digest=_digest(out))


def test_migrated_link_out_of_order_rejected():
    chain, payloads = build_chain(2)
    # A migrated link for hop 0 after hop 0 already completed.
    raw = replace(chain.links[0], kind="migrated", output_digest="",
                  mac="")
    doctored = remac_links(chain.key, PIPE, list(chain.links) + [raw])
    with pytest.raises(ProvenanceError, match="out of order"):
        verify_links(chain.key, PIPE, doctored, expect_hops=2)


def test_unknown_kind_rejected_both_sides():
    chain, payloads = build_chain(1)
    with pytest.raises(ProvenanceError, match="unknown link kind"):
        chain.append(hop=1, stage="s", kind="weird",
                     mrenclave="", verifier="", audit_head="",
                     input_digest="", output_digest="")
    raw = replace(chain.links[0], kind="weird", mac="")
    doctored = remac_links(chain.key, PIPE, [raw])
    with pytest.raises(ProvenanceError):
        verify_links(chain.key, PIPE, doctored, expect_hops=1)


def test_truncate_from_rolls_head_back():
    chain, _ = build_chain(3)
    head_after_one = chain.links[0].mac
    chain.truncate_from(1)
    assert chain.head == bytes.fromhex(head_after_one)
    assert len(chain.links) == 1 and len(chain.discarded) == 2
