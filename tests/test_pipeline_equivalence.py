"""Decode-once pipeline vs the preserved seed pipeline (oracle).

The optimized provisioning path (single-walk RDD with precomputed
metadata, dispatch-table verifier with byte-template matching, batched
rewriter) must be observably identical to the seed implementation kept
in :mod:`repro.core.legacy`: same instruction streams, same verification
evidence, same rewritten memory images — on every registered workload.
"""

import pytest

from repro.bench.harness import compile_workload
from repro.bench.provision import measure_cell
from repro.compiler.objfile import ObjectFile
from repro.core.legacy import (
    LegacyPolicyVerifier, legacy_recursive_descent,
)
from repro.core.rdd import recursive_descent
from repro.core.verifier import PolicyVerifier
from repro.policy import PolicySet
from repro.workloads.registry import WORKLOADS

ALL_WORKLOADS = sorted(WORKLOADS)


def _case(name, setting):
    blob = compile_workload(name, setting, None)
    obj = ObjectFile.parse(blob)
    entry = obj.symbols[obj.entry].offset
    targets = sorted({obj.symbol(n).offset for n in obj.branch_targets})
    return bytes(obj.text), entry, targets


@pytest.mark.parametrize("name", ALL_WORKLOADS)
@pytest.mark.parametrize("setting", ["baseline", "P1-P6"])
def test_streams_and_evidence_equal_on_every_workload(name, setting):
    text, entry, targets = _case(name, setting)
    new_code = recursive_descent(text, entry, targets)
    old_code = legacy_recursive_descent(text, entry, targets)
    assert new_code.stream == old_code.stream
    assert new_code.index_of == old_code.index_of

    policies = PolicySet.parse(setting)
    new_evidence = PolicyVerifier(policies).verify(text, entry, targets)
    old_evidence = LegacyPolicyVerifier(policies).verify(text, entry,
                                                         targets)
    assert new_evidence == old_evidence  # .code excluded from equality
    assert new_evidence.code is not None
    assert new_evidence.code.stream == old_code.stream


@pytest.mark.parametrize("setting", ["P1", "P1+P2", "P1-P5"])
def test_intermediate_settings_equivalent(setting):
    text, entry, targets = _case("numeric_sort", setting)
    policies = PolicySet.parse(setting)
    new_evidence = PolicyVerifier(policies).verify(text, entry, targets)
    old_evidence = LegacyPolicyVerifier(policies).verify(text, entry,
                                                         targets)
    assert new_evidence == old_evidence


@pytest.mark.parametrize("setting", ["P1+P2", "P1-P6"])
def test_rewritten_images_byte_identical(setting):
    cell = measure_cell("huffman", setting, repeats=1)
    assert cell.ok
    assert cell.identical
    assert cell.instructions > 0
