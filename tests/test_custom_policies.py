"""Developer-defined policies (§V-A plug-in API, §III quick patch)."""

import pytest

from repro.compiler import compile_source
from repro.core import BootstrapEnclave
from repro.core.verifier import PolicyVerifier
from repro.errors import VerificationError
from repro.isa.instructions import Instruction, Op
from repro.isa.registers import R14
from repro.policy import PolicySet
from repro.policy.custom import (
    CustomPolicy, div_by_zero_guard, marker_value,
)
from repro.policy.templates import (
    AnchorReg, ImmAtom, PatternInstr, TrapTo,
)

_SRC = """
char buf[8];
int main() {
    __recv(buf, 8);
    int d = buf[0];
    __report(1000 / (d + 1));
    __report(1000 % (d + 2));
    __report(77 / d);
    return 0;
}
"""


def _boot(setting="P1+P2", custom=(div_by_zero_guard(),)):
    policies = PolicySet.parse(setting)
    boot = BootstrapEnclave(policies=policies, custom=list(custom))
    blob = compile_source(_SRC, policies, custom=list(custom)).serialize()
    boot.receive_binary(blob)
    return boot


def test_guarded_division_runs_normally():
    boot = _boot()
    boot.receive_userdata(b"\x07")
    outcome = boot.run()
    assert outcome.ok
    assert outcome.reports == [125, 1, 11]


def test_zero_divisor_traps_with_custom_code():
    boot = _boot()
    boot.receive_userdata(b"\x00")
    outcome = boot.run()
    assert outcome.status == "violation"
    assert outcome.violation_code == 16
    assert outcome.reports == [1000, 0]     # first two operations fine


def test_unguarded_binary_rejected_by_plugged_in_validator():
    policies = PolicySet.p1_p2()
    boot = BootstrapEnclave(policies=policies,
                            custom=[div_by_zero_guard()])
    plain = compile_source(_SRC, policies)       # no custom pass
    with pytest.raises(VerificationError, match="div_by_zero_guard"):
        boot.receive_binary(plain.serialize())


def test_custom_policy_composes_with_full_builtin_set():
    policies = PolicySet.parse("P1-P6")
    guard = div_by_zero_guard()
    boot = BootstrapEnclave(policies=policies, custom=[guard])
    blob = compile_source(_SRC, policies, custom=[guard]).serialize()
    boot.receive_binary(blob)
    boot.receive_userdata(b"\x03")
    outcome = boot.run()
    assert outcome.ok and outcome.reports == [250, 0, 25]


def test_guard_for_wrong_register_rejected():
    # a forged guard that checks a different register than the divisor
    policies = PolicySet.p1_p2()
    guard = div_by_zero_guard()
    blob = compile_source(_SRC, policies, custom=[guard])
    # find a guard CMP and re-point it at another register
    from repro.isa.encoding import decode_instruction, encode_instruction
    text = bytearray(blob.text)
    pos = 0
    patched = False
    while pos < len(text):
        try:
            ins, length = decode_instruction(text, pos)
        except Exception:
            break
        if ins.op == Op.MOV_RI and ins.operands[0] == R14 and \
                ins.operands[1] == guard.marker:
            cmp_ins, cmp_len = decode_instruction(text, pos + length)
            other = (cmp_ins.operands[0] + 1) % 12
            text[pos + length:pos + length + cmp_len] = \
                encode_instruction(
                    Instruction(Op.CMP_RI, other, 0))
            patched = True
            break
        pos += length
    assert patched
    blob.text = bytes(text)
    boot = BootstrapEnclave(policies=policies, custom=[guard])
    with pytest.raises(VerificationError, match="wrong operand"):
        boot.receive_binary(blob.serialize())


def test_marker_values_distinct_and_in_band():
    a = marker_value("alpha")
    b = marker_value("beta")
    assert a != b
    assert a >> 16 == b >> 16 == 0x6FFFFFFFFFFF
    from repro.policy import MAGIC
    assert a not in MAGIC.values()


def test_custom_policy_validation():
    good = div_by_zero_guard()
    with pytest.raises(ValueError, match="violation codes"):
        CustomPolicy("x", 5, good.anchor, good.pattern)
    bad_pattern = (PatternInstr(Op.NOP, ()),)
    with pytest.raises(ValueError, match="must open"):
        CustomPolicy("x", 16, good.anchor, bad_pattern)


def test_two_custom_policies_together():
    # second policy: forbid SHL by a register amount unless guarded to
    # be < 64 ("no variable oversized shifts" — a made-up compliance rule)
    name = "shift_width_guard"
    pattern = (
        PatternInstr(Op.MOV_RI, (R14, ImmAtom(marker_value(name)))),
        PatternInstr(Op.CMP_RI, (AnchorReg(1), ImmAtom(64))),
        PatternInstr(Op.JAE, (TrapTo(17),)),
    )
    shift_guard = CustomPolicy(
        name, 17, lambda ins: ins.op == Op.SHL_RR, pattern)
    src = """
    char buf[8];
    int main() {
        __recv(buf, 8);
        int width = buf[0];
        int d = buf[1];
        __report(1 << width);
        __report(100 / d);
        return 0;
    }
    """
    policies = PolicySet.p1_p2()
    customs = [div_by_zero_guard(), shift_guard]
    boot = BootstrapEnclave(policies=policies, custom=customs)
    boot.receive_binary(
        compile_source(src, policies, custom=customs).serialize())
    boot.receive_userdata(bytes([10, 4]))
    outcome = boot.run()
    assert outcome.ok and outcome.reports == [1024, 25]
    boot.receive_userdata(bytes([100, 4]))     # oversized shift
    outcome = boot.run()
    assert outcome.status == "violation"
    assert outcome.violation_code == 17
    boot.receive_userdata(bytes([10, 0]))      # zero divisor
    outcome = boot.run()
    assert outcome.violation_code == 16


def test_verifier_reports_custom_annotation_counts():
    policies = PolicySet.p1_p2()
    guard = div_by_zero_guard()
    obj = compile_source(_SRC, policies, custom=[guard])
    verifier = PolicyVerifier(policies, custom=[guard])
    verified = verifier.verify(
        obj.text, obj.symbols[obj.entry].offset,
        [obj.symbols[n].offset for n in obj.branch_targets])
    assert verified.annotation_counts["custom:div_by_zero_guard"] >= 3
