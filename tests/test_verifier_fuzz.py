"""Verifier soundness fuzzing.

The load-bearing property of the whole design: *if the verifier accepts
a binary under P1+P2, executing that binary can never write outside
ELRANGE* — no matter how the binary was produced.  (P1 alone is not
enough: a mutated immediate can pivot RSP and leak through an implicit
PUSH — exactly the gap policy P2 closes, and early fuzzing of this very
test demonstrated it.)  We mutate real instrumented objects byte by
byte; every mutant is either rejected or, if accepted, executed with
the assertion that nothing ever lands in untrusted memory.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import compile_source
from repro.core import BootstrapEnclave
from repro.errors import ReproError
from repro.policy import PolicySet

# no function pointers (P1 alone has no CFI), plenty of stores
_SRC = """
int data[32];
int main() {
    int i;
    int acc = 0;
    for (i = 0; i < 32; i++) data[i] = i * 2654435761;
    for (i = 0; i < 32; i++) acc += data[i] >> 3;
    __report(acc);
    return acc;
}
"""


@pytest.fixture(scope="module")
def p1_blob():
    return compile_source(_SRC, PolicySet.p1_p2(),
                          include_prelude=False).serialize()


@settings(max_examples=60, deadline=None)
@given(index=st.integers(0, 10_000_000), flip=st.integers(1, 255))
def test_accepted_mutants_cannot_write_outside_elrange(p1_blob, index,
                                                       flip):
    blob = bytearray(p1_blob)
    blob[index % len(blob)] ^= flip
    boot = BootstrapEnclave(policies=PolicySet.p1_p2())
    try:
        boot.receive_binary(bytes(blob))
    except ReproError:
        return                      # rejected: fine
    except Exception as exc:        # pragma: no cover
        pytest.fail(f"non-library exception from verifier: {exc!r}")
    # accepted: run it; crashes are fine, leaks are not
    boot.run(max_steps=300_000)
    assert boot.enclave.space.untrusted_writes == []


@settings(max_examples=30, deadline=None)
@given(indices=st.lists(st.integers(0, 10_000_000), min_size=2,
                        max_size=5))
def test_multibyte_mutants_same_property(p1_blob, indices):
    blob = bytearray(p1_blob)
    for index in indices:
        blob[index % len(blob)] ^= 0x5A
    boot = BootstrapEnclave(policies=PolicySet.p1_p2())
    try:
        boot.receive_binary(bytes(blob))
    except ReproError:
        return
    boot.run(max_steps=300_000)
    assert boot.enclave.space.untrusted_writes == []


def test_truncated_objects_always_rejected(p1_blob):
    for cut in range(1, len(p1_blob), max(1, len(p1_blob) // 37)):
        boot = BootstrapEnclave(policies=PolicySet.p1_p2())
        with pytest.raises(ReproError):
            boot.receive_binary(p1_blob[:cut])


@settings(max_examples=20, deadline=None)
@given(data=st.binary(min_size=4, max_size=400))
def test_garbage_blobs_never_escape_the_error_hierarchy(data):
    boot = BootstrapEnclave(policies=PolicySet.full())
    try:
        boot.receive_binary(b"DFOB" + data)
    except ReproError:
        pass
