"""Fault-injection framework: channel hardening, teardown/recovery,
deterministic fault plans, and the chaos campaign."""

import json

import pytest

from repro.core import BootstrapEnclave
from repro.crypto.channel import SecureChannel
from repro.errors import EnclaveTeardown, ProtocolError
from repro.policy import PolicySet
from repro.service import CCaaSHost, CodeProvider, DataOwner, FaultPlan
from repro.service.faults import CAMPAIGN_SRC, run_campaign
from repro.service.protocol import establish_session
from repro.sgx import AttestationService
from repro.vm.interrupts import AexSchedule


def _pair():
    return SecureChannel.pair(b"shared", b"transcript", record_size=64)


def _host():
    boot = BootstrapEnclave(policies=PolicySet.full())
    return CCaaSHost(boot, AttestationService())


def _provision(host, data=bytes(range(10))):
    provider = CodeProvider(CAMPAIGN_SRC, PolicySet.full())
    owner = DataOwner(data=data)
    mr = host.bootstrap.mrenclave
    provider.connect(host, mr)
    owner.connect(host, mr)
    measurement = provider.deliver(host)
    owner.approved_hashes.append(measurement)
    owner.approve_code(measurement)
    owner.upload(host)
    return provider, owner


# -- channel hardening (satellites) ------------------------------------------

def test_aex_schedule_rejects_out_of_range_jitter():
    with pytest.raises(ValueError, match="jitter"):
        AexSchedule(100, jitter=1.5)
    with pytest.raises(ValueError, match="jitter"):
        AexSchedule(100, jitter=-0.1)
    assert AexSchedule(100, jitter=0.0).next_interval() == 100
    assert AexSchedule(100, jitter=1.0).enabled


def test_channel_rejects_empty_wire_as_truncation():
    _, receiver = _pair()
    with pytest.raises(ProtocolError, match="empty wire"):
        receiver.open(b"")
    assert receiver.desynced


def test_desynced_channel_refuses_all_further_use():
    sender, receiver = _pair()
    good = sender.seal(b"after the corruption")
    corrupted = bytearray(sender.seal(b"hello"))
    corrupted[5] ^= 0x40
    with pytest.raises(ProtocolError, match="bad MAC"):
        receiver.open(bytes(corrupted))
    # even a pristine record is refused now: the recv counter cannot be
    # trusted to mirror the peer any more
    with pytest.raises(ProtocolError, match="desynced"):
        receiver.open(good)
    with pytest.raises(ProtocolError, match="desynced"):
        receiver.seal(b"and sending is dead too")


@pytest.mark.parametrize("kind", ["corrupt", "truncate", "duplicate",
                                  "reorder"])
def test_every_wire_mangle_kind_is_detected(kind):
    import random
    from repro.service import faults
    sender, receiver = _pair()
    wire = sender.seal(b"x" * 200)   # several records
    record_len = 64 + 32
    rng = random.Random(7)
    mangled = {
        "corrupt": lambda: faults.corrupt_wire(wire, rng),
        "truncate": lambda: faults.truncate_wire(wire, rng, record_len),
        "duplicate": lambda: faults.duplicate_record(wire, rng,
                                                     record_len),
        "reorder": lambda: faults.reorder_records(wire, rng,
                                                  record_len),
    }[kind]()
    assert mangled != wire
    with pytest.raises(ProtocolError):
        receiver.open(mangled)
    assert receiver.desynced


# -- teardown + recovery ------------------------------------------------------

def test_destroyed_enclave_refuses_ecalls():
    host = _host()
    _provision(host)
    host.bootstrap.enclave.destroy()
    with pytest.raises(EnclaveTeardown, match="re-EINIT"):
        host.ecall_run()


def test_recover_preserves_mrenclave_and_audit_chain():
    host = _host()
    boot = host.bootstrap
    _provision(host)
    mr_before = boot.mrenclave
    events_before = len(boot.audit)
    boot.enclave.destroy()
    assert host.ensure_alive()          # recovers
    assert not host.ensure_alive()      # idempotent: already alive
    assert boot.mrenclave == mr_before
    # the chain continued across the restart — nothing was reset
    assert len(boot.audit) == events_before + 1
    assert boot.audit.count("recovered") == 1
    assert boot.audit.verify_chain()
    # volatile state is gone: sessions and binary must be re-established
    assert boot.loaded is None and not boot.channels
    _provision(host)
    outcome = host.ecall_run()
    assert outcome.ok
    assert boot.audit.verify_chain()


def test_handshake_key_reuse_rejected_across_sessions():
    host = _host()
    establish_session(host, "owner", host.bootstrap.mrenclave,
                      enclave_entropy=b"stale-entropy")
    with pytest.raises(ProtocolError, match="key reuse"):
        establish_session(host, "owner", host.bootstrap.mrenclave,
                          enclave_entropy=b"stale-entropy")


def test_handshake_entropy_callable_and_default_are_fresh():
    host = _host()
    counter = iter(range(100))
    entropy = lambda: next(counter).to_bytes(8, "little")  # noqa: E731
    establish_session(host, "owner", host.bootstrap.mrenclave,
                      enclave_entropy=entropy)
    establish_session(host, "owner", host.bootstrap.mrenclave,
                      enclave_entropy=entropy)
    # the default source (no injection) is fresh randomness
    establish_session(host, "owner", host.bootstrap.mrenclave)
    establish_session(host, "owner", host.bootstrap.mrenclave)


# -- fault-plan determinism ---------------------------------------------------

def test_fault_plan_replays_identically():
    def drive(plan):
        log = []
        for _ in range(30):
            log.append(plan.draw_ecall_fault("site"))
            log.append(plan.mangle_wire(b"\x5a" * 288, 288))
            log.append(plan.draw_outage())
        return log, plan.injected

    a = drive(FaultPlan(42))
    b = drive(FaultPlan(42))
    c = drive(FaultPlan(43))
    assert a == b
    assert a != c


def test_fault_plan_budget_caps_injections():
    plan = FaultPlan(5, p_wire=1.0, max_faults=3)
    for _ in range(20):
        plan.mangle_wire(b"\x11" * 288, 288)
    assert len(plan.injected) == 3
    assert plan.faults_remaining == 0
    # budget spent -> honest behaviour, forever
    wire = b"\x22" * 288
    assert plan.mangle_wire(wire, 288) == (wire, None)


def test_campaign_is_deterministic_and_fully_recovers():
    a = run_campaign(seed=5, trials=3)
    b = run_campaign(seed=5, trials=3)
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
    assert a["schema"] == "deflection-chaos/1"
    assert a["totals"]["unrecovered"] == 0
    assert a["totals"]["fatal_errors"] == 0
    assert not a["fatal_error_kinds"]
    # every trial kept a verifiable audit chain
    assert all(t["audit_chain_ok"] for t in a["trials_detail"])
    # trials share the provision cache: only the first one verifies
    assert a["provision_cache"]["misses"] == 1
    assert a["provision_cache"]["hits"] >= 2
