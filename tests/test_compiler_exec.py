"""Execution-based compiler tests: every language feature compiled,
verified under full policies, and run to a checked result."""

import pytest

from tests.conftest import build_and_run


def reports(source, setting="baseline", **kwargs):
    outcome = build_and_run(source, setting, **kwargs)
    assert outcome.ok, outcome.detail
    return outcome.reports


@pytest.mark.parametrize("setting", ["baseline", "P1-P6"])
def test_arithmetic_and_precedence(setting):
    src = """
    int main() {
        __report(2 + 3 * 4);          // 14
        __report((2 + 3) * 4);        // 20
        __report(7 / 2);              // 3
        __report(-7 / 2);             // -3 (masked)
        __report(7 % 3);              // 1
        __report(1 << 10);            // 1024
        __report(-16 >> 2);           // arithmetic shift
        __report(0x0F & 0x3C | 0x40); // 0x4C
        __report(~0 & 255);           // 255
        return 0;
    }
    """
    out = reports(src, setting)
    assert out[0:3] == [14, 20, 3]
    assert out[3] == (-3) & ((1 << 64) - 1)
    assert out[4] == 1
    assert out[5] == 1024
    assert out[6] == (-4) & ((1 << 64) - 1)
    assert out[7] == 0x4C
    assert out[8] == 255


def test_comparisons_and_logic():
    src = """
    int main() {
        __report(3 < 5);
        __report(5 <= 5);
        __report(5 == 4);
        __report(5 != 4);
        __report(-1 < 0);
        __report(1 && 0);
        __report(1 || 0);
        __report(!0);
        __report(!7);
        return 0;
    }
    """
    assert reports(src) == [1, 1, 0, 1, 1, 0, 1, 1, 0]


def test_short_circuit_evaluation():
    src = """
    int calls = 0;
    int bump() { calls++; return 1; }
    int main() {
        int a = 0 && bump();
        int b = 1 || bump();
        __report(calls);      // neither side effect ran
        int c = 1 && bump();
        __report(calls);      // exactly one
        __report(a + b * 2 + c * 4);
        return 0;
    }
    """
    assert reports(src) == [0, 1, 6]


def test_control_flow_statements():
    src = """
    int main() {
        int total = 0;
        int i;
        for (i = 0; i < 10; i++) {
            if (i == 3) continue;
            if (i == 8) break;
            total += i;
        }
        __report(total);       // 0+1+2+4+5+6+7 = 25
        int n = 0;
        while (n < 100) { n = n * 2 + 1; }
        __report(n);           // 127
        int k = 10;
        int sign;
        if (k > 5) sign = 1; else sign = -1;
        __report(sign);
        __report(k > 5 ? 111 : 222);
        return 0;
    }
    """
    assert reports(src) == [25, 127, 1, 111]


def test_recursion_and_nested_calls():
    src = """
    int ack(int m, int n) {
        if (m == 0) return n + 1;
        if (n == 0) return ack(m - 1, 1);
        return ack(m - 1, ack(m, n - 1));
    }
    int main() { __report(ack(2, 3)); return 0; }
    """
    assert reports(src) == [9]


def test_recursion_under_full_policies_uses_shadow_stack():
    src = """
    int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
    int main() { __report(fib(15)); return 0; }
    """
    assert reports(src, "P1-P6") == [610]


def test_arrays_and_pointers():
    src = """
    int g[8];
    int sum(int *p, int n) {
        int acc = 0;
        int i;
        for (i = 0; i < n; i++) acc += p[i];
        return acc;
    }
    int main() {
        int loc[4];
        int i;
        for (i = 0; i < 8; i++) g[i] = i * i;
        for (i = 0; i < 4; i++) loc[i] = i + 1;
        __report(sum(g, 8));         // 140
        __report(sum(loc, 4));       // 10
        __report(*(g + 3));          // 9
        int *p = &g[2];
        p++;
        __report(*p);                // 9
        p += 2;
        __report(*p);                // 25
        __report(p - g);             // 5
        __report(&g[7] - &g[2]);     // 5
        return 0;
    }
    """
    assert reports(src) == [140, 10, 9, 9, 25, 5, 5]


def test_address_of_local_and_write_through_pointer():
    src = """
    int set41(int *p) { *p = 41; return 0; }
    int main() {
        int x = 0;
        set41(&x);
        __report(x + 1);
        return 0;
    }
    """
    assert reports(src) == [42]


def test_char_arrays_and_strings():
    src = """
    char greeting[] = "hello";
    int main() {
        __report(strlen(greeting));
        __report(greeting[0]);
        __report(strcmp(greeting, "hello"));
        __report(strcmp(greeting, "hellp") < 0);
        char buf[16];
        strcpy(buf, greeting);
        buf[0] = 'H';
        __report(buf[0]);
        __report(strcmp(buf, "Hello"));
        return 0;
    }
    """
    assert reports(src) == [5, ord("h"), 0, 1, ord("H"), 0]


def test_char_local_truncates_on_store():
    src = """
    int main() {
        char c = 300;
        __report(c);          // 300 & 0xFF = 44
        c = c + 220;          // 264 -> 8
        __report(c);
        return 0;
    }
    """
    assert reports(src) == [44, 8]


def test_multidimensional_array():
    src = """
    int m[3][4];
    int main() {
        int i, j;
        for (i = 0; i < 3; i++)
            for (j = 0; j < 4; j++)
                m[i][j] = i * 10 + j;
        __report(m[2][3]);
        __report(m[0][1] + m[1][0]);
        return 0;
    }
    """
    assert reports(src) == [23, 11]


def test_function_pointers():
    src = """
    int add(int a, int b) { return a + b; }
    int mul(int a, int b) { return a * b; }
    int apply(int (*op)(int, int), int a, int b) { return op(a, b); }
    int main() {
        int (*f)(int, int) = &add;
        __report(f(3, 4));
        f = &mul;
        __report(f(3, 4));
        __report(apply(&add, 10, 20));
        __report(apply(f, 10, 20));
        return 0;
    }
    """
    assert reports(src) == [7, 12, 30, 200]


def test_function_pointers_under_cfi():
    src = """
    int add(int a, int b) { return a + b; }
    int apply(int (*op)(int, int), int a, int b) { return op(a, b); }
    int main() { __report(apply(&add, 20, 22)); return 0; }
    """
    assert reports(src, "P1-P5") == [42]


def test_compound_assignment_and_incdec():
    src = """
    int main() {
        int x = 10;
        x += 5; __report(x);
        x -= 3; __report(x);
        x *= 2; __report(x);
        x /= 4; __report(x);
        x %= 4; __report(x);
        x <<= 4; __report(x);
        x >>= 2; __report(x);
        x |= 1; __report(x);
        x ^= 3; __report(x);
        x &= 6; __report(x);
        int i = 5;
        __report(i++);
        __report(i);
        __report(++i);
        __report(i--);
        __report(--i);
        return 0;
    }
    """
    assert reports(src) == [15, 12, 24, 6, 2, 32, 8, 9, 10, 2,
                            5, 6, 7, 7, 5]


def test_sizeof():
    src = """
    int main() {
        __report(sizeof(int));
        __report(sizeof(char));
        __report(sizeof(int*));
        __report(sizeof(int[10]));
        return 0;
    }
    """
    assert reports(src) == [8, 1, 8, 80]


def test_global_initializers():
    src = """
    int scalar = -7;
    int table[5] = {10, 20, 30};
    char text[] = "ab";
    int main() {
        __report(scalar);
        __report(table[0] + table[1] + table[2]);
        __report(table[3] + table[4]);    // zero-filled tail
        __report(text[1]);
        __report(text[2]);                // NUL
        return 0;
    }
    """
    out = reports(src)
    assert out[0] == (-7) & ((1 << 64) - 1)
    assert out[1:] == [60, 0, ord("b"), 0]


def test_recv_and_send_roundtrip():
    src = """
    char buf[32];
    int main() {
        int n = __recv(buf, 32);
        int i;
        for (i = 0; i < n; i++) buf[i] = buf[i] + 1;
        __send(buf, n);
        __report(n);
        return 0;
    }
    """
    outcome = build_and_run(src, "P1-P6", input_bytes=b"abc")
    assert outcome.ok
    assert outcome.reports == [3]
    assert outcome.sent_plaintext == [b"bcd"]


def test_deep_expression_spills_are_rejected_cleanly():
    # deliberately exceeds the temp pool: must be a CompileError, not
    # silently wrong code
    expr = "(" * 0 + " + ".join(
        f"(a{i} * (a{i} + 1))" for i in range(16))
    decls = " ".join(f"int a{i} = {i};" for i in range(16))
    src = "int main() { %s int r = %s; __report(r); return 0; }" % (
        decls, expr)
    # flat sums release temps eagerly, so this compiles fine
    outcome = build_and_run(src)
    assert outcome.ok


def test_expression_too_complex_error():
    from repro.errors import CompileError
    import pytest as _pytest
    # deeply right-nested additions keep every intermediate live
    expr = "1"
    for i in range(2, 20):
        expr = f"{i} + ({expr})"
    src = "int main() { int fn0 = 0; return %s; }" % expr
    with _pytest.raises(CompileError, match="too complex"):
        build_and_run(src)


def test_ternary_in_expression_context():
    src = """
    int main() {
        int a = 3;
        int b = (a > 2 ? a * 10 : a) + 1;
        __report(b);
        __report(a < 0 ? -1 : (a == 3 ? 33 : 0));
        return 0;
    }
    """
    assert reports(src) == [31, 33]


def test_prelude_can_be_disabled():
    src = "int main() { __report(5); return 0; }"
    outcome = build_and_run(src, include_prelude=False)
    assert outcome.reports == [5]
