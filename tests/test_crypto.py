"""Crypto substrate: RFC vectors, roundtrips, negative paths."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto import (
    ChaCha20, chacha20_xor, DHKeyPair, SecureChannel, SigningKey,
    VerifyingKey, hkdf, hkdf_expand, hkdf_extract,
)
from repro.errors import ProtocolError


# -- ChaCha20 ---------------------------------------------------------------

def test_chacha20_rfc8439_vector():
    # RFC 8439 §2.4.2 test vector
    key = bytes(range(32))
    nonce = bytes.fromhex("000000000000004a00000000")
    plaintext = (b"Ladies and Gentlemen of the class of '99: If I could "
                 b"offer you only one tip for the future, sunscreen would "
                 b"be it.")
    expected = bytes.fromhex(
        "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
        "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
        "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
        "5af90bbf74a35be6b40b8eedf2785e42874d")
    assert chacha20_xor(key, nonce, plaintext, counter=1) == expected


def test_chacha20_involution():
    key = b"k" * 32
    nonce = b"n" * 12
    data = b"secret payload" * 10
    assert chacha20_xor(key, nonce, chacha20_xor(key, nonce, data)) == data


def test_chacha20_rejects_bad_key_nonce():
    with pytest.raises(ValueError):
        ChaCha20(b"short", b"n" * 12)
    with pytest.raises(ValueError):
        ChaCha20(b"k" * 32, b"short")


@given(data=st.binary(max_size=300))
def test_chacha20_keystream_xor_property(data):
    key = b"\x07" * 32
    nonce = b"\x01" * 12
    ct = chacha20_xor(key, nonce, data)
    assert len(ct) == len(data)
    assert chacha20_xor(key, nonce, ct) == data


# -- HKDF ---------------------------------------------------------------------

def test_hkdf_rfc5869_case1():
    ikm = b"\x0b" * 22
    salt = bytes.fromhex("000102030405060708090a0b0c")
    info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
    prk = hkdf_extract(salt, ikm)
    assert prk == bytes.fromhex(
        "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5")
    okm = hkdf_expand(prk, info, 42)
    assert okm == bytes.fromhex(
        "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
        "34007208d5b887185865")


def test_hkdf_length_cap():
    with pytest.raises(ValueError):
        hkdf_expand(b"\x00" * 32, b"", 255 * 32 + 1)


def test_hkdf_deterministic_and_info_bound():
    a = hkdf(b"ikm", b"salt", b"info-a", 32)
    b = hkdf(b"ikm", b"salt", b"info-b", 32)
    assert a != b
    assert a == hkdf(b"ikm", b"salt", b"info-a", 32)


# -- DH ------------------------------------------------------------------------

def test_dh_agreement():
    alice = DHKeyPair(b"alice")
    bob = DHKeyPair(b"bob")
    assert alice.shared_secret(bob.public) == \
        bob.shared_secret(alice.public)


def test_dh_distinct_pairs_distinct_secrets():
    alice = DHKeyPair(b"alice")
    bob = DHKeyPair(b"bob")
    eve = DHKeyPair(b"eve")
    assert alice.shared_secret(bob.public) != \
        alice.shared_secret(eve.public)


def test_dh_rejects_degenerate_publics():
    alice = DHKeyPair(b"alice")
    from repro.crypto.dh import MODP_2048_P
    for bad in (0, 1, MODP_2048_P - 1, MODP_2048_P):
        with pytest.raises(ValueError):
            alice.shared_secret(bad)


def test_dh_public_bytes_roundtrip():
    kp = DHKeyPair(b"seed")
    assert DHKeyPair.public_from_bytes(kp.public_bytes()) == kp.public


# -- Schnorr ---------------------------------------------------------------------

def test_schnorr_sign_verify():
    key = SigningKey(b"signer")
    message = b"attestation report body"
    signature = key.sign(message)
    assert key.verifying_key.verify(message, signature)


def test_schnorr_rejects_wrong_message_and_key():
    key = SigningKey(b"signer")
    other = SigningKey(b"other")
    sig = key.sign(b"hello")
    assert not key.verifying_key.verify(b"hullo", sig)
    assert not other.verifying_key.verify(b"hello", sig)


def test_schnorr_rejects_mangled_signature():
    key = SigningKey(b"signer")
    sig = bytearray(key.sign(b"msg"))
    sig[5] ^= 1
    assert not key.verifying_key.verify(b"msg", bytes(sig))
    assert not key.verifying_key.verify(b"msg", b"short")


def test_verifying_key_serialization():
    key = SigningKey(b"k")
    vk = VerifyingKey.from_bytes(key.verifying_key.to_bytes())
    assert vk.verify(b"m", key.sign(b"m"))


# -- SecureChannel -----------------------------------------------------------------

def _pair(record_size=128):
    return SecureChannel.pair(b"\x42" * 32, b"transcript",
                              record_size=record_size)


def test_channel_roundtrip_and_padding():
    client, server = _pair()
    wire = client.seal(b"hello")
    assert len(wire) == client.record_size + 32
    assert server.open(wire) == b"hello"


def test_channel_fixed_length_hides_plaintext_size():
    client, _ = _pair()
    a = client.seal(b"x")
    client2, _ = _pair()
    b = client2.seal(b"y" * 100)
    assert len(a) == len(b)  # P0 entropy control: same wire size


def test_channel_multi_record_messages():
    client, server = _pair(record_size=64)
    msg = bytes(range(256)) * 3
    assert server.open(client.seal(msg)) == msg


def test_channel_rejects_tampering():
    client, server = _pair()
    wire = bytearray(client.seal(b"data"))
    wire[3] ^= 1
    with pytest.raises(ProtocolError, match="MAC"):
        server.open(bytes(wire))


def test_channel_rejects_replay():
    client, server = _pair()
    wire = client.seal(b"data")
    server.open(wire)
    with pytest.raises(ProtocolError, match="MAC"):
        server.open(wire)  # recv seq advanced: replay fails


def test_channel_rejects_truncation():
    client, server = _pair()
    wire = client.seal(b"data")
    with pytest.raises(ProtocolError, match="truncated"):
        server.open(wire[:-1])


@pytest.mark.parametrize("record_size", [-1, 0, 3, 4])
def test_channel_rejects_record_size_at_or_below_header(record_size):
    # record_size <= the 4-byte length header used to slip through and
    # blow up later in seal() with a zero/negative chunk step
    with pytest.raises(ProtocolError, match="record_size"):
        _pair(record_size=record_size)


def test_channel_smallest_legal_record_size_roundtrips():
    client, server = _pair(record_size=5)   # 1 payload byte per record
    msg = b"tiny-but-legal"
    wire = client.seal(msg)
    assert len(wire) == len(msg) * (5 + 32)
    assert server.open(wire) == msg
    # empty messages still emit exactly one padded record
    client2, server2 = _pair(record_size=5)
    assert server2.open(client2.seal(b"")) == b""


def test_channel_wire_length_depends_only_on_record_count():
    client, _ = _pair(record_size=128)
    assert client.wire_length(1) == client.wire_length(100)
    assert client.wire_length(1) < client.wire_length(5000)


@given(msg=st.binary(max_size=1000))
def test_channel_roundtrip_property(msg):
    client, server = _pair(record_size=96)
    assert server.open(client.seal(msg)) == msg
