"""Attack corpus (DESIGN.md §5).

Every attack is run twice: with the relevant policy ON (the annotation
or wrapper must stop it — runtime trap with the right violation code)
and with it OFF (the attack must actually *succeed*, demonstrating that
the check is load-bearing, not theater)."""

import struct

import pytest

from repro.compiler import compile_source
from repro.compiler.objfile import KIND_FUNC, ObjectFile, SEC_TEXT
from repro.core import BootstrapEnclave
from repro.errors import VerificationError
from repro.isa import (
    Instruction, Label, LabelDef, Mem, assemble, RAX, RBX, RSP,
)
from repro.isa.assembler import local_label_allocator
from repro.isa.instructions import Op
from repro.policy import PolicySet, trap_label
from repro.policy.magic import (
    ALL_VIOLATION_CODES, VIOL_P0, VIOL_P1, VIOL_P2, VIOL_P5_RET,
    VIOL_P5_TARGET, VIOL_P6,
)
from repro.policy.emit import emit_pattern
from repro.policy.templates import rsp_guard_pattern
from repro.vm.interrupts import AexSchedule
from tests.conftest import build_and_run


def _provision(setting, source, **kwargs):
    policies = PolicySet.parse(setting)
    obj = compile_source(source, policies)
    boot = BootstrapEnclave(policies=policies, **kwargs)
    boot.receive_binary(obj.serialize())
    return boot


# -- P1: explicit out-of-enclave store ---------------------------------------

_P1_ATTACK = """
int main() {
    int *p = 0x100000;      // far outside ELRANGE
    *p = 0x1EAK;
    return 0;
}
""".replace("0x1EAK", str(0xBEEF))


def test_p1_blocks_out_of_enclave_store():
    boot = _provision("P1", _P1_ATTACK)
    outcome = boot.run()
    assert outcome.status == "violation"
    assert outcome.violation_code == VIOL_P1
    assert boot.enclave.space.untrusted_writes == []


def test_p1_off_data_actually_leaks():
    boot = _provision("baseline", _P1_ATTACK)
    outcome = boot.run()
    assert outcome.ok
    assert (0x100000, 8) in boot.enclave.space.untrusted_writes
    assert boot.enclave.space.load_u64(0x100000) == 0xBEEF


# -- P2: stack-pointer pivot (implicit store via register spill) ---------------

def _pivot_object(setting: str) -> ObjectFile:
    """Hand-assembled binary that repoints RSP outside the enclave and
    spills a register — with a *correct* P2 annotation when demanded."""
    policies = PolicySet.parse(setting)
    alloc = local_label_allocator("a")
    items = [LabelDef("__start"),
             Instruction(Op.MOV_RI, RAX, 0x5EC12E7),
             Instruction(Op.MOV_RI, RSP, 0x200000)]   # outside ELRANGE
    if policies.p2:
        items += emit_pattern(rsp_guard_pattern(), alloc)
    items += [Instruction(Op.PUSH_R, RAX),            # the spill
              Instruction(Op.HLT)]
    pads = []
    for code in ALL_VIOLATION_CODES:
        pads.append(LabelDef(trap_label(code)))
        pads.append(Instruction(Op.TRAP, code))
    asm = assemble(pads + items)
    obj = ObjectFile(text=asm.code, policies_label=setting)
    obj.add_symbol("__start", SEC_TEXT, asm.labels["__start"], KIND_FUNC)
    for code in ALL_VIOLATION_CODES:
        obj.add_symbol(trap_label(code), SEC_TEXT,
                       asm.labels[trap_label(code)], KIND_FUNC)
    return obj


def test_p2_blocks_rsp_pivot():
    boot = BootstrapEnclave(policies=PolicySet.p1_p2())
    boot.receive_binary(_pivot_object("P1+P2").serialize())
    outcome = boot.run()
    assert outcome.status == "violation"
    assert outcome.violation_code == VIOL_P2
    assert boot.enclave.space.untrusted_writes == []


def test_p2_off_register_spill_leaks():
    # P1 alone does not mediate PUSH: the spill lands outside
    boot = BootstrapEnclave(policies=PolicySet.p1_only())
    boot.receive_binary(_pivot_object("P1").serialize())
    outcome = boot.run()
    assert outcome.ok
    assert boot.enclave.space.untrusted_writes
    leaked_at = 0x200000 - 8
    assert boot.enclave.space.load_u64(leaked_at) == 0x5EC12E7


# -- P3: overwrite security-critical enclave data -------------------------------

_P3_ATTACK = """
char addrbuf[8];
int main() {
    __recv(addrbuf, 8);
    int target = 0;
    int i;
    for (i = 7; i >= 0; i--) target = target * 256 + addrbuf[i];
    int *p = target;
    *p = 0xDEAD;            // stomp the SSA / shadow stack
    return 0;
}
"""


def _run_p3(setting):
    boot = _provision(setting, _P3_ATTACK)
    target = boot.enclave.layout.ssa_marker_addr
    boot.receive_userdata(struct.pack("<Q", target))
    return boot, boot.run()


def test_p3_blocks_critical_data_overwrite():
    boot, outcome = _run_p3("P1-P5")
    assert outcome.status == "violation"
    assert outcome.violation_code == VIOL_P1   # shared store-guard pad
    from repro.policy.magic import MARKER_VALUE
    assert boot.enclave.space.load_u64(
        boot.enclave.layout.ssa_marker_addr) == MARKER_VALUE


def test_p3_off_critical_data_overwritten():
    # P1 alone allows any in-ELRANGE store, including the SSA
    boot, outcome = _run_p3("P1")
    assert outcome.ok
    assert boot.enclave.space.load_u64(
        boot.enclave.layout.ssa_marker_addr) == 0xDEAD


# -- P4: runtime code modification (software DEP) --------------------------------

_P4_ATTACK = """
int victim() { return 7; }
int main() {
    int before = victim();
    int *p = &victim;
    p[0] = 0x902;           // encodes TRAP 9 at the function entry
    int after = victim();
    __report(before);
    __report(after);
    return 0;
}
"""


def test_p4_blocks_self_modification():
    boot = _provision("P1-P5", _P4_ATTACK)
    outcome = boot.run()
    assert outcome.status == "violation"
    assert outcome.violation_code == VIOL_P1   # shared store-guard pad


def test_p4_off_code_injection_executes():
    # under P1 only, code pages are inside the allowed store range
    # (RWX under SGXv1!) and the injected TRAP 9 actually runs
    boot = _provision("P1", _P4_ATTACK)
    outcome = boot.run()
    assert outcome.status == "violation"
    assert outcome.violation_code == 9         # the *injected* trap
    assert outcome.reports == []               # never reached __report


# -- P5 forward edge: indirect branch to an unlisted target ------------------------

_P5_FWD_ATTACK = """
int helper(int x) { return x; }
int main() {
    int (*f)(int) = &helper;
    f = f + 1;              // no longer a listed function entry
    return f(1);
}
"""


def test_p5_blocks_unlisted_indirect_target():
    boot = _provision("P1-P5", _P5_FWD_ATTACK)
    outcome = boot.run()
    assert outcome.status == "violation"
    assert outcome.violation_code == VIOL_P5_TARGET


def test_p5_off_wild_indirect_branch_runs():
    boot = _provision("P1", _P5_FWD_ATTACK)
    outcome = boot.run(max_steps=100_000)
    # lands mid-function: anything but a clean, correct result
    assert outcome.status in ("violation", "fault") or \
        outcome.result.return_value != 1


# -- P5 backward edge: return-address overwrite (ROP) ------------------------------

_ROP_ATTACK = """
int evil(int x) {
    __report(666);
    while (1) { x = x + 1; }
    return x;
}
int victim() {
    int buf[2];
    buf[3] = &evil;          // overflow into the return address
    return buf[0];
}
int main() {
    victim();
    __report(1);
    return 0;
}
"""


def test_p5_shadow_stack_blocks_rop():
    boot = _provision("P1-P5", _ROP_ATTACK)
    outcome = boot.run()
    assert outcome.status == "violation"
    assert outcome.violation_code == VIOL_P5_RET
    assert 666 not in outcome.reports


def test_p5_off_rop_diverts_control_flow():
    boot = _provision("P1", _ROP_ATTACK)
    outcome = boot.run(max_steps=50_000)
    assert 666 in outcome.reports       # attacker code executed


# -- P6: AEX storm (controlled-channel style) ----------------------------------------

_P6_WORK = """
int main() {
    int i;
    int acc = 0;
    for (i = 0; i < 20000; i++) acc += i;
    __report(acc);
    return 0;
}
"""


def test_p6_aborts_under_interrupt_storm():
    boot = _provision("P1-P6", _P6_WORK, aex_threshold=10)
    outcome = boot.run(aex_schedule=AexSchedule.attack())
    assert outcome.status == "violation"
    assert outcome.violation_code == VIOL_P6


def test_p6_tolerates_benign_timer_ticks():
    boot = _provision("P1-P6", _P6_WORK, aex_threshold=50)
    outcome = boot.run(aex_schedule=AexSchedule(40_000))
    assert outcome.ok
    assert outcome.result.aex_events > 0


def test_p6_off_storm_goes_unnoticed():
    boot = _provision("P1-P5", _P6_WORK)
    outcome = boot.run(aex_schedule=AexSchedule.attack())
    assert outcome.ok                    # side channel left open
    assert outcome.result.aex_events > 20


# -- P0: interface abuse ----------------------------------------------------------------

def test_p0_entropy_budget_caps_output():
    from repro.core.bootstrap import P0Config
    src = """
    char buf[256];
    int main() {
        int i;
        for (i = 0; i < 100; i++) __send(buf, 256);
        return 0;
    }
    """
    boot = _provision("P1", src,
                      p0=P0Config(max_output_bytes=1024))
    outcome = boot.run()
    assert outcome.status == "violation"
    assert outcome.violation_code == VIOL_P0
    assert sum(len(b) for b in outcome.sent_plaintext) <= 1024


def test_p0_forbidden_svc_rejected_at_verification():
    # a binary invoking an unlisted OCall number never gets to run
    pads = []
    for code in ALL_VIOLATION_CODES:
        pads.append(LabelDef(trap_label(code)))
        pads.append(Instruction(Op.TRAP, code))
    asm = assemble(pads + [LabelDef("__start"),
                           Instruction(Op.SVC, 13),
                           Instruction(Op.HLT)])
    obj = ObjectFile(text=asm.code)
    obj.add_symbol("__start", SEC_TEXT, asm.labels["__start"], KIND_FUNC)
    boot = BootstrapEnclave(policies=PolicySet.p1_only())
    with pytest.raises(VerificationError, match="P0"):
        boot.receive_binary(obj.serialize())


def test_p0_output_is_padded_even_without_session():
    outcome = build_and_run("""
    char b[3];
    int main() { __send(b, 3); __send(b, 1); return 0; }
    """, "P1")
    sizes = {len(w) for w in outcome.sent_wire}
    assert sizes == {256}               # record padding hides lengths


# -- annotation stripping / forgery at the binary level ------------------------------

def test_stripped_annotations_rejected_before_execution():
    obj = compile_source(_P1_ATTACK, PolicySet.none())
    boot = BootstrapEnclave(policies=PolicySet.p1_only())
    with pytest.raises(VerificationError):
        boot.receive_binary(obj.serialize())


def test_bitflipped_text_never_executes_unverified():
    blob = compile_source(_P1_ATTACK, PolicySet.p1_only())
    raw = bytearray(blob.serialize())
    boot = BootstrapEnclave(policies=PolicySet.p1_only())
    flips = 0
    rejected = 0
    for index in range(100, len(raw), 997):
        mutated = bytearray(raw)
        mutated[index] ^= 0x10
        flips += 1
        try:
            boot.receive_binary(bytes(mutated))
        except Exception:
            rejected += 1
    assert flips > 0
    # most single-byte flips are caught; the ones that are not must
    # still round-trip through full verification (no crash = pass)
    assert rejected >= 0
