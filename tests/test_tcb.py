"""TCB accounting (repro.tcb): the paper's headline size claims hold
for this repository's consumer."""

from pathlib import Path

from repro.tcb import (
    consumer_inventory, count_loc, verifier_core_loc,
)


def test_count_loc_ignores_comments_and_docstrings(tmp_path):
    f = tmp_path / "m.py"
    f.write_text('"""module docstring\nspanning lines\n"""\n'
                 "# comment\n\n"
                 "x = 1\n"
                 "def f():\n"
                 '    """doc"""\n'
                 "    return x  # trailing comment counts as code\n")
    assert count_loc([f]) == 3   # x=1, def f, return


def test_inventory_structure():
    inventory = consumer_inventory()
    assert set(inventory) == {
        "Loader/Verifier", "RA/Encryption", "Disassembler base",
        "Shim libc", "Other dependencies"}
    for component in inventory.values():
        assert component.loc > 0
        assert component.kloc == component.loc / 1000.0
        for rel in component.files:
            assert (Path(__file__).parent.parent / "src" / "repro" /
                    rel).exists()


def test_paper_scale_claims_hold():
    core = verifier_core_loc()
    assert 0 < core["loader"] < 600       # paper: loader < 600 LoC
    assert 0 < core["verifier"] < 700     # paper: verifier < 700 LoC
    inventory = consumer_inventory()
    assert inventory["Loader/Verifier"].loc < 2000  # "about 2000 lines"
