"""Object format: roundtrip, validation, fuzzing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import compile_source
from repro.compiler.objfile import (
    KIND_FUNC, KIND_OBJECT, ObjectFile, ObjRelocation,
    SEC_BSS, SEC_DATA, SEC_TEXT,
)
from repro.errors import ObjectFormatError
from repro.policy import PolicySet


def _sample_object() -> ObjectFile:
    obj = ObjectFile(text=b"\x00" * 64, data=b"\x01\x02\x03",
                     bss_size=40, policies_label="P1+P5")
    obj.add_symbol("__start", SEC_TEXT, 0, KIND_FUNC)
    obj.add_symbol("helper", SEC_TEXT, 16, KIND_FUNC)
    obj.add_symbol("table", SEC_DATA, 0, KIND_OBJECT)
    obj.add_symbol("arena", SEC_BSS, 8, KIND_OBJECT)
    obj.relocations.append(ObjRelocation(10, "table", 4))
    obj.relocations.append(ObjRelocation(30, "helper", 0))
    obj.branch_targets = ["helper"]
    return obj


def test_serialize_parse_roundtrip():
    obj = _sample_object()
    parsed = ObjectFile.parse(obj.serialize())
    assert parsed.text == obj.text
    assert parsed.data == obj.data
    assert parsed.bss_size == obj.bss_size
    assert parsed.entry == obj.entry
    assert parsed.policies_label == obj.policies_label
    assert parsed.symbols == obj.symbols
    assert parsed.relocations == obj.relocations
    assert parsed.branch_targets == obj.branch_targets


def test_measurement_is_stable_and_content_bound():
    a = _sample_object()
    b = _sample_object()
    assert a.measurement() == b.measurement()
    b.text = b"\x01" + b.text[1:]
    assert a.measurement() != b.measurement()


def test_duplicate_symbol_rejected():
    obj = _sample_object()
    with pytest.raises(ObjectFormatError, match="duplicate"):
        obj.add_symbol("helper", SEC_TEXT, 0, KIND_FUNC)


def test_undefined_symbol_lookup():
    with pytest.raises(ObjectFormatError, match="undefined"):
        _sample_object().symbol("ghost")


def test_bad_magic_rejected():
    with pytest.raises(ObjectFormatError, match="magic"):
        ObjectFile.parse(b"ELF!" + b"\x00" * 60)


def test_bad_version_rejected():
    blob = bytearray(_sample_object().serialize())
    blob[4] = 99
    with pytest.raises(ObjectFormatError, match="version"):
        ObjectFile.parse(bytes(blob))


def test_truncation_rejected():
    blob = _sample_object().serialize()
    for cut in (3, 10, len(blob) // 2, len(blob) - 1):
        with pytest.raises(ObjectFormatError):
            ObjectFile.parse(blob[:cut])


def test_trailing_garbage_rejected():
    blob = _sample_object().serialize()
    with pytest.raises(ObjectFormatError, match="trailing"):
        ObjectFile.parse(blob + b"\x00")


def test_branch_target_without_symbol_rejected():
    obj = _sample_object()
    obj.branch_targets.append("phantom")
    with pytest.raises(ObjectFormatError, match="branch target"):
        ObjectFile.parse(obj.serialize())


def test_missing_entry_rejected():
    obj = _sample_object()
    obj.entry = "nonexistent"
    with pytest.raises(ObjectFormatError, match="entry"):
        ObjectFile.parse(obj.serialize())


def test_relocation_outside_text_rejected():
    obj = _sample_object()
    obj.relocations.append(ObjRelocation(60, "table", 0))  # 60+8 > 64
    with pytest.raises(ObjectFormatError, match="relocation"):
        ObjectFile.parse(obj.serialize())


@settings(max_examples=200, deadline=None)
@given(data=st.binary(min_size=0, max_size=200))
def test_fuzzed_blobs_never_crash_parser(data):
    # arbitrary bytes must raise ObjectFormatError, never anything else
    try:
        ObjectFile.parse(b"DFOB" + data)
    except ObjectFormatError:
        pass


@settings(max_examples=50, deadline=None)
@given(index=st.integers(0, 10_000), bit=st.integers(0, 7))
def test_bitflipped_real_object_is_rejected_or_reparsed(index, bit):
    blob = bytearray(compile_source(
        "int main() { return 1; }", PolicySet.p1_only()).serialize())
    index %= len(blob)
    blob[index] ^= 1 << bit
    try:
        ObjectFile.parse(bytes(blob))
    except ObjectFormatError:
        pass  # either outcome is fine; crashes are not


def test_real_compiled_object_roundtrip():
    obj = compile_source("""
        int helper(int x) { return x * 2; }
        int main() {
            int (*f)(int) = &helper;
            return f(21);
        }
    """, PolicySet.full())
    parsed = ObjectFile.parse(obj.serialize())
    assert parsed.entry == "__start"
    assert "main" in parsed.symbols
    assert "helper" in parsed.branch_targets   # address-taken
    assert "main" not in parsed.branch_targets  # only called directly
    assert parsed.symbols["main"].kind == KIND_FUNC
