"""Differential compiler fuzzing.

Hypothesis generates random MiniC expression trees; each program is
compiled, *verified under the full policy set*, executed in the VM, and
compared against a Python reference evaluation of the same tree.  This
pins the whole stack at once: parser, sema, codegen, instrumentation,
assembler, loader, verifier, rewriter and the CPU's 64-bit semantics.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import build_and_run

_U64 = (1 << 64) - 1


def _to_signed(v):
    v &= _U64
    return v - (1 << 64) if v & (1 << 63) else v


class Expr:
    """Random expression tree with dual rendering: MiniC and Python."""

    def __init__(self, text, value):
        self.text = text
        self.value = value          # Python-evaluated signed value


def _lit(n):
    return Expr(str(n), n)


def _binop(op, a, b):
    av, bv = a.value, b.value
    if op == "+":
        v = av + bv
    elif op == "-":
        v = av - bv
    elif op == "*":
        v = av * bv
    elif op == "/":
        if bv == 0:
            return None
        q = abs(av) // abs(bv)
        v = -q if (av < 0) != (bv < 0) else q
    elif op == "%":
        if bv == 0:
            return None
        q = abs(av) // abs(bv)
        q = -q if (av < 0) != (bv < 0) else q
        v = av - q * bv
    elif op == "&":
        v = (av & _U64) & (bv & _U64)
    elif op == "|":
        v = (av & _U64) | (bv & _U64)
    elif op == "^":
        v = (av & _U64) ^ (bv & _U64)
    elif op == "<<":
        v = (av & _U64) << ((bv & _U64) & 63)
    elif op == ">>":
        v = _to_signed(av) >> ((bv & _U64) & 63)
    elif op == "<":
        v = 1 if _to_signed(av) < _to_signed(bv) else 0
    elif op == "==":
        v = 1 if (av & _U64) == (bv & _U64) else 0
    else:  # pragma: no cover
        raise AssertionError(op)
    return Expr(f"({a.text} {op} {b.text})", _to_signed(v))


def _unop(op, a):
    if op == "-":
        v = -a.value
    elif op == "~":
        v = ~a.value
    else:
        v = 0 if a.value else 1
    return Expr(f"({op} {a.text})", _to_signed(v))


_SMALL = st.integers(min_value=-1000, max_value=1000)
_OPS = ["+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>", "<", "=="]


@st.composite
def expr_trees(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        return _lit(draw(_SMALL))
    kind = draw(st.sampled_from(["bin", "un"]))
    if kind == "un":
        return _unop(draw(st.sampled_from(["-", "~", "!"])),
                     draw(expr_trees(depth=depth - 1)))
    while True:
        node = _binop(draw(st.sampled_from(_OPS)),
                      draw(expr_trees(depth=depth - 1)),
                      draw(expr_trees(depth=depth - 1)))
        if node is not None:
            return node


@settings(max_examples=25, deadline=None)
@given(tree=expr_trees())
def test_expression_matches_python_reference(tree):
    src = f"int main() {{ __report({tree.text}); return 0; }}"
    outcome = build_and_run(src, "P1-P5", include_prelude=False)
    assert outcome.ok, outcome.detail
    assert outcome.reports == [tree.value & _U64]


@settings(max_examples=15, deadline=None)
@given(values=st.lists(_SMALL, min_size=1, max_size=8),
       updates=st.lists(st.tuples(st.integers(0, 7), _SMALL),
                        min_size=0, max_size=6))
def test_array_state_machine_matches_reference(values, updates):
    n = len(values)
    ref = list(values)
    lines = [f"int a[{n}];", "int main() {"]
    for i, v in enumerate(values):
        lines.append(f"  a[{i}] = {v};")
    for idx, delta in updates:
        idx %= n
        ref[idx] = _to_signed(ref[idx] + delta)
        lines.append(f"  a[{idx}] += {delta};")
    checksum = 0
    for i, v in enumerate(ref):
        checksum = _to_signed(checksum * 31 + v)
    lines.append("  int c = 0; int i;")
    lines.append(f"  for (i = 0; i < {n}; i++) c = c * 31 + a[i];")
    lines.append("  __report(c); return 0; }")
    outcome = build_and_run("\n".join(lines), "P1-P6",
                            include_prelude=False)
    assert outcome.ok, outcome.detail
    assert outcome.reports == [checksum & _U64]


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2 ** 31 - 1), rounds=st.integers(1, 30))
def test_lcg_loop_matches_reference(seed, rounds):
    # loops, compound assignment and masking across the full pipeline
    src = f"""
    int main() {{
        int s = {seed};
        int i;
        for (i = 0; i < {rounds}; i++)
            s = (s * 1103515245 + 12345) & 2147483647;
        __report(s);
        return 0;
    }}
    """
    expected = seed
    for _ in range(rounds):
        expected = (expected * 1103515245 + 12345) & 2147483647
    outcome = build_and_run(src, "P1", include_prelude=False)
    assert outcome.reports == [expected]


@settings(max_examples=8, deadline=None)
@given(text=st.binary(min_size=0, max_size=40).map(
    lambda b: bytes(c % 26 + 97 for c in b)))
def test_prelude_string_functions_match_python(text):
    src = """
    char buf[64];
    char copy[64];
    int main() {
        int n = __recv(buf, 64);
        buf[n] = 0;
        __report(strlen(buf));
        strcpy(copy, buf);
        __report(strcmp(copy, buf));
        if (n > 0) copy[0] = 'z';
        __report(strcmp(copy, buf) != 0);
        return 0;
    }
    """
    outcome = build_and_run(src, "P1-P5", input_bytes=text)
    assert outcome.ok
    expected_diff = 1 if (len(text) > 0 and text[0] != ord("z")) else 0
    assert outcome.reports == [len(text), 0, expected_diff]
