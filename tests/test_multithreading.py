"""§VII multi-threading extension: MT-safe shadow stacks, per-thread
contexts, scheduler determinism, and the hazards it guards against."""

import pytest

from repro.compiler import compile_source
from repro.core import BootstrapEnclave
from repro.errors import EnclaveError, VerificationError
from repro.policy import PolicySet
from repro.policy.magic import VIOL_P5_RET
from repro.sgx import EnclaveConfig, PAGE_SIZE
from repro.sgx.layout import EnclaveLayout
from repro.vm import CPU, RoundRobinScheduler
from repro.isa import Instruction, assemble, RAX
from repro.isa.instructions import Op

_WORKER = """
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() {
    char buf[8];               // stack-local: thread-private
    __recv(buf, 8);
    int x = buf[0];
    __report(x);
    __report(fib(x));
    return 0;
}
"""

_MT_CONFIG = EnclaveConfig(num_threads=4, stack_size=16 * PAGE_SIZE)


def _mt_boot(setting_policies=None, config=_MT_CONFIG):
    policies = setting_policies or PolicySet.multithreaded()
    boot = BootstrapEnclave(policies=policies, config=config)
    boot.receive_binary(
        compile_source(_WORKER, policies).serialize())
    return boot


# -- policy-set plumbing -------------------------------------------------------

def test_mt_policy_set_shape():
    ps = PolicySet.multithreaded()
    assert ps.p5 and ps.mt_safe and not ps.p6
    assert ps.label == "P1-P5-MT"
    assert PolicySet.parse("P1-P5-MT") == ps
    assert "MT" in ps.describe()


def test_mt_plus_p6_rejected():
    with pytest.raises(ValueError, match="future work"):
        PolicySet(p5=True, p6=True, mt_safe=True)


def test_mt_binary_differs_from_st_binary():
    st = compile_source(_WORKER, PolicySet.p1_p5()).text
    mt = compile_source(_WORKER, PolicySet.multithreaded()).text
    assert st != mt
    assert len(mt) < len(st)   # register-held pointer is shorter


def test_verifier_rejects_cross_variant_binaries():
    st_obj = compile_source(_WORKER, PolicySet.p1_p5())
    boot = BootstrapEnclave(policies=PolicySet.multithreaded(),
                            config=_MT_CONFIG)
    with pytest.raises(VerificationError):
        boot.receive_binary(st_obj.serialize())
    mt_obj = compile_source(_WORKER, PolicySet.multithreaded())
    boot2 = BootstrapEnclave(policies=PolicySet.p1_p5())
    with pytest.raises(VerificationError):
        boot2.receive_binary(mt_obj.serialize())


# -- layout ---------------------------------------------------------------------

def test_layout_per_thread_slices_disjoint():
    layout = EnclaveLayout.build(_MT_CONFIG)
    stacks = [layout.stack_slice(t) for t in range(4)]
    for (lo_a, hi_a), (lo_b, hi_b) in zip(stacks, stacks[1:]):
        assert hi_a == lo_b          # contiguous, disjoint
    shadows = [layout.shadow_slice_base(t) for t in range(4)]
    assert shadows == sorted(set(shadows))
    ssas = [layout.ssa_addr_of(t) for t in range(4)]
    assert len(set(ssas)) == 4
    with pytest.raises(Exception):
        layout.stack_slice(4)


def test_layout_thread_count_validation():
    from repro.errors import LoaderError
    with pytest.raises(LoaderError, match="num_threads"):
        EnclaveLayout.build(EnclaveConfig(num_threads=0))
    with pytest.raises(LoaderError, match="too small"):
        EnclaveLayout.build(EnclaveConfig(num_threads=8,
                                          stack_size=4 * PAGE_SIZE))


# -- execution --------------------------------------------------------------------

def test_four_threads_compute_independently():
    boot = _mt_boot()
    outcomes = boot.run_threads([bytes([k]) for k in (5, 10, 12, 7)])
    assert [o.status for o in outcomes] == ["ok"] * 4
    assert [o.reports[1] for o in outcomes] == [5, 55, 144, 13]


def test_scheduler_interleaves_threads():
    boot = _mt_boot()
    outcomes = boot.run_threads([bytes([12])] * 4, quantum=50)
    # all four did comparable work over the shared space
    steps = [o.result.steps for o in outcomes]
    assert max(steps) - min(steps) < 100
    assert all(o.reports[1] == 144 for o in outcomes)


def test_mt_deterministic():
    a = [o.reports for o in _mt_boot().run_threads(
        [b"\x08", b"\x09"], quantum=77)]
    b = [o.reports for o in _mt_boot().run_threads(
        [b"\x08", b"\x09"], quantum=77)]
    assert a == b


def test_one_thread_violation_does_not_kill_the_others():
    src = """
    char buf[8];
    int main() {
        __recv(buf, 8);
        if (buf[0] == 1) {
            int *p = 0x100000;     // thread 0 goes rogue
            *p = 1;
        }
        __report(buf[0] * 100);
        return 0;
    }
    """
    policies = PolicySet.multithreaded()
    boot = BootstrapEnclave(policies=policies, config=_MT_CONFIG)
    boot.receive_binary(compile_source(src, policies).serialize())
    outcomes = boot.run_threads([b"\x01", b"\x02", b"\x03"])
    assert outcomes[0].status == "violation"
    assert outcomes[1].status == outcomes[2].status == "ok"
    assert outcomes[1].reports == [200]
    assert boot.enclave.space.untrusted_writes == []


def test_memory_cell_shadow_refused_for_multithreading():
    policies = PolicySet.p1_p5()
    boot = BootstrapEnclave(policies=policies, config=_MT_CONFIG)
    boot.receive_binary(compile_source(_WORKER, policies).serialize())
    with pytest.raises(EnclaveError, match="not thread-safe"):
        boot.run_threads([b"\x05", b"\x06"])
    # a single thread through run_threads is fine even with the cell
    outcomes = boot.run_threads([b"\x05"])
    assert outcomes[0].reports == [5, 5]


def test_thread_count_capped_by_tcs_slots():
    boot = _mt_boot()
    with pytest.raises(EnclaveError, match="TCS"):
        boot.run_threads([b"\x01"] * 5)


def test_mt_rop_still_trapped():
    src = """
    int evil(int x) { __report(666); return x; }
    int victim() {
        int buf[2];
        buf[3] = &evil;
        return buf[0];
    }
    char b[8];
    int main() { __recv(b, 8); victim(); __report(1); return 0; }
    """
    policies = PolicySet.multithreaded()
    boot = BootstrapEnclave(policies=policies, config=_MT_CONFIG)
    boot.receive_binary(compile_source(src, policies).serialize())
    outcomes = boot.run_threads([b"\x01", b"\x02"])
    for outcome in outcomes:
        assert outcome.status == "violation"
        assert outcome.violation_code == VIOL_P5_RET
        assert 666 not in outcome.reports


def test_mt_single_thread_matches_st_results():
    policies = PolicySet.multithreaded()
    boot = BootstrapEnclave(policies=policies, config=_MT_CONFIG)
    boot.receive_binary(compile_source(_WORKER, policies).serialize())
    boot.receive_userdata(b"\x0a")
    single = boot.run()
    threaded = boot.run_threads([b"\x0a"])[0]
    assert single.reports == threaded.reports == [10, 55]


def test_shared_globals_race_across_threads():
    """Globals are shared across TCS threads; per-request state must be
    stack-local (the per-thread memory-isolation policy of §VII is
    future work).  This test pins the hazard itself: with a tiny
    quantum, a global request buffer gets clobbered by a sibling."""
    racy = """
    char buf[8];
    int slow_parse() {
        int x = 0;
        int i;
        for (i = 0; i < 2000; i++) x = (x + buf[0]) % 1000;
        return buf[0];
    }
    int main() {
        __recv(buf, 8);
        __report(slow_parse());
        return 0;
    }
    """
    policies = PolicySet.multithreaded()
    boot = BootstrapEnclave(policies=policies, config=_MT_CONFIG)
    boot.receive_binary(compile_source(racy, policies).serialize())
    outcomes = boot.run_threads([b"\x01", b"\x02", b"\x03"], quantum=60)
    values = [o.reports[0] for o in outcomes]
    # every thread parsed the value of whichever thread wrote last
    assert len(set(values)) == 1
    assert values[0] == 3


# -- raw scheduler -----------------------------------------------------------------

def test_scheduler_rejects_bad_quantum():
    with pytest.raises(ValueError):
        RoundRobinScheduler([], quantum=0)


def test_scheduler_totals():
    from repro.sgx import Enclave
    enclave = Enclave()
    enclave.einit()
    asm = assemble([Instruction(Op.ADD_RI, RAX, 1)] * 20 +
                   [Instruction(Op.HLT)])
    code = enclave.layout.regions["code"].start
    enclave.space.write_raw(code, asm.code)
    cpus = [CPU(enclave.space, code,
                initial_rsp=enclave.layout.initial_rsp)
            for _ in range(3)]
    sched = RoundRobinScheduler(cpus, quantum=7)
    threads = sched.run()
    assert all(t.status == "halted" for t in threads)
    assert sched.total_steps == 3 * 21
    assert sched.total_cycles > 0


def test_quantum_larger_than_total_instructions():
    """A quantum exceeding every thread's full run degenerates into
    serial execution: each thread halts inside its first slice and the
    scheduler must notice the early halt rather than spin the slice."""
    boot = _mt_boot()
    outcomes = boot.run_threads([b"\x05", b"\x06"],
                                quantum=10_000_000)
    assert [o.status for o in outcomes] == ["ok", "ok"]
    assert [o.reports for o in outcomes] == [[5, 5], [6, 8]]


def test_thread_finishing_exactly_on_quantum_boundary():
    """A thread whose instruction count is an exact multiple of the
    quantum halts on the boundary itself; the scheduler must retire it
    there, not schedule a ghost slice (which would miscount steps or
    re-run a halted CPU)."""
    boot = _mt_boot()
    solo = boot.run_threads([b"\x04"])[0]
    steps = solo.result.steps
    outcomes = boot.run_threads([b"\x04", b"\x04"], quantum=steps)
    assert [o.status for o in outcomes] == ["ok", "ok"]
    assert [o.reports for o in outcomes] == [[4, 3], [4, 3]]
    assert [o.result.steps for o in outcomes] == [steps, steps]
