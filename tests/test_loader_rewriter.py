"""Dynamic loader and immediate rewriter."""

import pytest

from repro.compiler import compile_source
from repro.core import BootstrapEnclave, DynamicLoader
from repro.core.rewriter import ImmRewriter, build_value_map
from repro.core.verifier import PolicyVerifier
from repro.errors import LoaderError
from repro.policy import MAGIC, PolicySet
from repro.policy.magic import MARKER_VALUE
from repro.sgx import Enclave, EnclaveConfig, PAGE_SIZE

_SRC = """
int g = 77;
int zeroed[16];
int helper(int x) { return x + g; }
int main() {
    int (*f)(int) = &helper;
    zeroed[3] = f(1);
    return zeroed[3];
}
"""


def _enclave():
    enclave = Enclave()
    enclave.load_bootstrap_image(b"consumer")
    enclave.einit()
    return enclave


def _load(policies=PolicySet.p1_only(), config=None):
    obj = compile_source(_SRC, policies)
    enclave = Enclave(config) if config else _enclave()
    if config:
        enclave.load_bootstrap_image(b"consumer")
        enclave.einit()
    loader = DynamicLoader(enclave)
    return enclave, loader.load(obj), obj


def test_text_placed_on_code_pages():
    enclave, loaded, obj = _load()
    code = enclave.layout.regions["code"]
    assert loaded.code_base == code.start
    stored = enclave.space.read_raw(code.start, loaded.code_len)
    # relocations patched in memory: not byte-identical to obj.text
    assert len(stored) == len(obj.text)


def test_relocations_resolve_to_absolute_addresses():
    enclave, loaded, obj = _load()
    helper_addr = loaded.symbol_addrs["helper"]
    for reloc in obj.relocations:
        if reloc.symbol == "helper":
            slot = enclave.space.read_raw(
                loaded.code_base + reloc.offset, 8)
            assert int.from_bytes(slot, "little") == helper_addr
            break
    else:
        pytest.fail("no relocation against helper")


def test_data_and_bss_layout():
    enclave, loaded, obj = _load()
    g_addr = loaded.symbol_addrs["g"]
    assert enclave.space.load_u64(g_addr) == 77
    zero_addr = loaded.symbol_addrs["zeroed"]
    assert enclave.space.read_raw(zero_addr, 128) == b"\x00" * 128
    assert loaded.heap_free >= zero_addr + 128


def test_branch_byte_map_marks_only_listed_targets():
    enclave, loaded, obj = _load()
    brmap = enclave.layout.regions["branch_map"].start
    helper_off = obj.symbols["helper"].offset
    main_off = obj.symbols["main"].offset
    assert enclave.space.read_raw(brmap + helper_off, 1) == b"\x01"
    assert enclave.space.read_raw(brmap + main_off, 1) == b"\x00"
    ones = sum(enclave.space.read_raw(brmap, loaded.code_len))
    assert ones == len(obj.branch_targets)


def test_runtime_cells_initialized():
    enclave, loaded, _ = _load()
    layout = enclave.layout
    assert enclave.space.load_u64(layout.ssp_cell) == layout.ss_base
    assert enclave.space.load_u64(layout.ssa_marker_addr) == MARKER_VALUE
    assert enclave.space.load_u64(layout.aex_count_cell) == 0


def test_oversized_text_rejected():
    config = EnclaveConfig(code_size=PAGE_SIZE)
    obj = compile_source(_SRC, PolicySet.full())
    enclave = Enclave(config)
    enclave.load_bootstrap_image(b"c")
    enclave.einit()
    assert len(obj.text) > PAGE_SIZE
    with pytest.raises(LoaderError, match="exceeds"):
        DynamicLoader(enclave).load(obj)


def test_oversized_bss_rejected():
    src = "int huge[300000]; int main() { return huge[0]; }"
    obj = compile_source(src, PolicySet.none())
    enclave = _enclave()
    with pytest.raises(LoaderError, match="heap"):
        DynamicLoader(enclave).load(obj)


def test_undefined_relocation_symbol_rejected():
    from repro.compiler.objfile import ObjRelocation
    obj = compile_source(_SRC, PolicySet.none())
    obj.relocations.append(ObjRelocation(0, "main", 0))
    obj.relocations[-1] = ObjRelocation(0, "ghost", 0)
    obj.symbols.pop("ghost", None)
    enclave = _enclave()
    # parse() would catch this on the wire; the loader re-checks
    import dataclasses
    with pytest.raises(LoaderError, match="undefined"):
        DynamicLoader(enclave).load(obj)


# -- rewriter ------------------------------------------------------------------

def test_value_map_tightens_bounds_with_p3_p4():
    enclave, loaded, _ = _load()
    layout = enclave.layout
    base = build_value_map(layout, loaded, 10, PolicySet.p1_only())
    assert base["p1_lo"] == layout.el_lo
    tight = build_value_map(layout, loaded, 10, PolicySet.p1_p5())
    assert tight["p1_lo"] == layout.regions["code"].end
    p3only = build_value_map(layout, loaded, 10,
                             PolicySet(p1=True, p3=True))
    assert p3only["p1_lo"] == layout.regions["code"].start
    assert base["p1_hi"] == tight["p1_hi"] == layout.el_hi


def test_value_map_covers_every_magic_name():
    enclave, loaded, _ = _load()
    values = build_value_map(enclave.layout, loaded, 42,
                             PolicySet.full())
    assert set(values) == set(MAGIC)
    assert values["aex_threshold"] == 42
    assert values["code_len"] == loaded.code_len


def test_rewriter_patches_verified_slots_only():
    # without the prelude every function is reachable, so every magic
    # placeholder must be patched (unreachable dead code keeps its
    # placeholders — it is never verified and can never run)
    policies = PolicySet.full()
    obj = compile_source(_SRC, policies, include_prelude=False)
    enclave = _enclave()
    loaded = DynamicLoader(enclave).load(obj)
    text = enclave.space.read_raw(loaded.code_base, loaded.code_len)
    verifier = PolicyVerifier(policies)
    verified = verifier.verify(
        text, loaded.entry_addr - loaded.code_base,
        [a - loaded.code_base for a in loaded.branch_target_addrs])
    values = build_value_map(enclave.layout, loaded, 10, policies)
    count = ImmRewriter(values).apply(enclave.space, loaded.code_base,
                                      verified.magic_slots)
    assert count == len(verified.magic_slots) > 0
    # no magic placeholder survives in the patched text
    patched = enclave.space.read_raw(loaded.code_base, loaded.code_len)
    for value in MAGIC.values():
        assert value.to_bytes(8, "little") not in patched


def test_rewriter_rejects_unknown_names():
    with pytest.raises(LoaderError, match="unknown magic"):
        ImmRewriter({"bogus": 1})
    rewriter = ImmRewriter({"p1_lo": 1})
    enclave = _enclave()
    with pytest.raises(LoaderError, match="no value"):
        rewriter.apply(enclave.space, enclave.layout.el_lo,
                       [(0, "p1_hi")])


def test_end_to_end_reprovisioning_same_bootstrap():
    boot = BootstrapEnclave(policies=PolicySet.full())
    obj1 = compile_source(_SRC, PolicySet.full())
    boot.receive_binary(obj1.serialize())
    first = boot.run()
    assert first.ok and first.result.return_value == 78
    # load a second binary into the same bootstrap
    obj2 = compile_source(
        "int main() { return 123; }", PolicySet.full())
    boot.receive_binary(obj2.serialize())
    second = boot.run()
    assert second.ok and second.result.return_value == 123
