"""Annotation templates: emit/match duality, policy sets, magic table."""

import pytest

from repro.isa import (
    Instruction, LabelDef, Mem, assemble, disassemble_linear,
    RAX, RBX, RBP, RSP,
)
from repro.isa.instructions import Op
from repro.policy import (
    MAGIC, PolicySet, VIOL_P1, VIOLATION_NAMES, trap_label,
    emit_pattern, match_pattern,
    indirect_branch_pattern, p6_guard_pattern, rsp_guard_pattern,
    shadow_epilogue_pattern, shadow_prologue_pattern,
    store_guard_pattern,
)
from repro.policy.magic import ALL_VIOLATION_CODES, is_magic, magic_name
from repro.isa.assembler import local_label_allocator


def _assemble_with_pads(items):
    pads = []
    for code in ALL_VIOLATION_CODES:
        pads.append(LabelDef(trap_label(code)))
        pads.append(Instruction(Op.TRAP, code))
    asm = assemble(pads + items)
    stream = list(disassemble_linear(asm.code))
    trap_pads = {off: ins.operands[0] for off, ins in stream
                 if ins.op == Op.TRAP}
    return stream, trap_pads


def _roundtrip(pattern, **emit_kwargs):
    alloc = local_label_allocator("T")
    items = emit_pattern(pattern, alloc, **emit_kwargs)
    stream, trap_pads = _assemble_with_pads(items)
    start = len(ALL_VIOLATION_CODES)  # skip the pads
    return match_pattern(pattern, stream, start, trap_pads)


def test_store_guard_emit_match_roundtrip():
    mem = Mem(RBP, RAX, 8, -16)
    pattern = store_guard_pattern(PolicySet.full())
    match = _roundtrip(pattern, anchor_mem=mem)
    assert match.matched, match.reason
    assert match.anchor_mem == mem
    assert {name for _, name in match.magic_slots} == {"p1_lo", "p1_hi"}


def test_store_guard_shape_is_policy_independent():
    # P3/P4 reuse the P1 bounds (rewriter tightens them)
    assert store_guard_pattern(PolicySet.p1_only()) == \
        store_guard_pattern(PolicySet.full())


def test_rsp_guard_roundtrip():
    match = _roundtrip(rsp_guard_pattern())
    assert match.matched, match.reason
    assert {name for _, name in match.magic_slots} == \
        {"stack_lo", "stack_hi"}


def test_indirect_branch_roundtrip_and_target_capture():
    match = _roundtrip(indirect_branch_pattern(), target_reg=RBX)
    assert match.matched, match.reason
    assert match.target_reg == RBX


def test_indirect_branch_rejects_reserved_target():
    pattern = indirect_branch_pattern()
    items = emit_pattern(pattern, local_label_allocator("T"),
                         target_reg=14)
    stream, pads = _assemble_with_pads(items)
    match = match_pattern(pattern, stream, len(ALL_VIOLATION_CODES), pads)
    assert not match.matched
    assert "target" in match.reason


def test_shadow_patterns_roundtrip():
    for pattern in (shadow_prologue_pattern(), shadow_epilogue_pattern()):
        match = _roundtrip(pattern)
        assert match.matched, match.reason


def test_p6_guard_roundtrip_with_local_label_past_end():
    # the fast-path JE targets the instruction AFTER the pattern
    pattern = p6_guard_pattern()
    alloc = local_label_allocator("T")
    items = emit_pattern(pattern, alloc)
    items.append(Instruction(Op.NOP))      # the guarded leader
    stream, pads = _assemble_with_pads(items)
    match = match_pattern(pattern, stream, len(ALL_VIOLATION_CODES), pads)
    assert match.matched, match.reason


def test_match_rejects_wrong_magic():
    pattern = rsp_guard_pattern()
    items = emit_pattern(pattern, local_label_allocator("T"))
    # swap the stack_lo magic for the stack_hi one
    items[0] = Instruction(Op.MOV_RI, 14, MAGIC["stack_hi"])
    stream, pads = _assemble_with_pads(items)
    match = match_pattern(pattern, stream, len(ALL_VIOLATION_CODES), pads)
    assert not match.matched
    assert "magic" in match.reason


def test_match_rejects_wrong_trap_pad():
    pattern = store_guard_pattern(PolicySet.full())
    alloc = local_label_allocator("T")
    items = emit_pattern(pattern, alloc, anchor_mem=Mem(RBP, disp=-8))
    # retarget the first conditional jump at the P6 pad instead of P1
    from repro.isa.instructions import Label
    for i, item in enumerate(items):
        if isinstance(item, Instruction) and item.op == Op.JB:
            items[i] = Instruction(Op.JB, Label(trap_label(8)))
            break
    stream, pads = _assemble_with_pads(items)
    match = match_pattern(pattern, stream, len(ALL_VIOLATION_CODES), pads)
    assert not match.matched
    assert "trap" in match.reason


def test_match_rejects_opcode_substitution():
    pattern = rsp_guard_pattern()
    items = emit_pattern(pattern, local_label_allocator("T"))
    # JB -> JBE weakening
    for i, item in enumerate(items):
        if isinstance(item, Instruction) and item.op == Op.JB:
            items[i] = Instruction(Op.JBE, item.operands[0])
            break
    stream, pads = _assemble_with_pads(items)
    match = match_pattern(pattern, stream, len(ALL_VIOLATION_CODES), pads)
    assert not match.matched


def test_match_rejects_truncated_stream():
    pattern = rsp_guard_pattern()
    items = emit_pattern(pattern, local_label_allocator("T"))[:-2]
    stream, pads = _assemble_with_pads(items)
    match = match_pattern(pattern, stream, len(ALL_VIOLATION_CODES), pads)
    assert not match.matched


def test_emit_requires_captures():
    with pytest.raises(ValueError):
        emit_pattern(store_guard_pattern(PolicySet.full()),
                     local_label_allocator("T"))
    with pytest.raises(ValueError):
        emit_pattern(indirect_branch_pattern(),
                     local_label_allocator("T"))


def test_magic_constants_are_distinct_and_tagged():
    values = list(MAGIC.values())
    assert len(values) == len(set(values))
    for name, value in MAGIC.items():
        assert is_magic(value)
        assert magic_name(value) == name
    assert not is_magic(0x1234)


def test_policy_set_presets_and_parse():
    assert PolicySet.parse("P1-P6") == PolicySet.full()
    assert PolicySet.parse("baseline") == PolicySet.none()
    assert PolicySet.parse(" p1+p2 ").p2
    assert not PolicySet.parse("P1").p2
    assert PolicySet.p1_p5().label == "P1-P5"
    assert PolicySet.full().describe() == "P0+P1+P2+P3+P4+P5+P6"
    with pytest.raises(ValueError):
        PolicySet.parse("P9")


def test_violation_codes_have_names_and_pads():
    for code in ALL_VIOLATION_CODES:
        assert code in VIOLATION_NAMES
        assert trap_label(code).startswith("__deflection_viol_")
    assert VIOL_P1 in ALL_VIOLATION_CODES
