"""Shared helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.compiler import compile_source
from repro.core import BootstrapEnclave
from repro.policy import PolicySet


def build_and_run(source: str, setting: str = "baseline",
                  input_bytes: bytes = b"", entry: str = "main",
                  include_prelude: bool = True, max_steps: int = 30_000_000,
                  **boot_kwargs):
    """Compile MiniC -> deliver -> verify -> execute; returns RunOutcome."""
    policies = PolicySet.parse(setting)
    obj = compile_source(source, policies, entry=entry,
                         include_prelude=include_prelude)
    boot = BootstrapEnclave(policies=policies, **boot_kwargs)
    boot.receive_binary(obj.serialize())
    if input_bytes:
        boot.receive_userdata(input_bytes)
    return boot.run(max_steps=max_steps)


@pytest.fixture
def run_minic():
    return build_and_run
