"""CLI toolkit tests."""

import pytest

from repro.cli import main

SRC = """
char buf[16];
int main() {
    int n = __recv(buf, 16);
    __report(n * 10);
    return n;
}
"""


@pytest.fixture
def obj_path(tmp_path):
    src = tmp_path / "svc.c"
    src.write_text(SRC)
    out = tmp_path / "svc.dfob"
    assert main(["compile", str(src), "-o", str(out),
                 "--policies", "P1-P6"]) == 0
    return out


def test_compile_reports_layout(tmp_path, capsys):
    src = tmp_path / "a.c"
    src.write_text("int main() { return 1; }")
    assert main(["compile", str(src), "-o",
                 str(tmp_path / "a.dfob")]) == 0
    out = capsys.readouterr().out
    assert "bytes" in out and "P6" in out


def test_compile_error_is_clean(tmp_path, capsys):
    src = tmp_path / "bad.c"
    src.write_text("int main( { }")
    assert main(["compile", str(src)]) == 1
    assert "error:" in capsys.readouterr().err


def test_objdump_sections(obj_path, capsys):
    assert main(["objdump", str(obj_path)]) == 0
    out = capsys.readouterr().out
    assert "entry:     __start" in out
    assert "main" in out
    assert "relocations" in out


def test_objdump_disasm(obj_path, capsys):
    assert main(["objdump", str(obj_path), "--disasm"]) == 0
    out = capsys.readouterr().out
    assert "main:" in out
    assert "ret" in out
    assert "svc" in out


def test_verify_accepts_and_counts(obj_path, capsys):
    assert main(["verify", str(obj_path), "--policies", "P1-P6"]) == 0
    out = capsys.readouterr().out
    assert "VERIFIED" in out
    assert "store_guard" in out


def test_verify_rejects_mismatched_policies(tmp_path, capsys):
    src = tmp_path / "svc.c"
    src.write_text(SRC)
    out = tmp_path / "weak.dfob"
    main(["compile", str(src), "-o", str(out), "--policies", "P1"])
    assert main(["verify", str(out), "--policies", "P1-P6"]) == 1
    assert "REJECTED" in capsys.readouterr().out


def test_run_executes_with_input(obj_path, tmp_path, capsys):
    data = tmp_path / "input.bin"
    data.write_bytes(b"abcd")
    assert main(["run", str(obj_path), "--input", str(data)]) == 0
    out = capsys.readouterr().out
    assert "status:  ok" in out
    assert "reports: [40]" in out


def test_run_reports_violation_exit_code(tmp_path, capsys):
    src = tmp_path / "leak.c"
    src.write_text("int main() { int *p = 4096; *p = 1; return 0; }")
    out = tmp_path / "leak.dfob"
    main(["compile", str(src), "-o", str(out), "--policies", "P1"])
    assert main(["run", str(out), "--policies", "P1"]) == 2
    assert "out-of-enclave store" in capsys.readouterr().out


def test_run_rejects_bad_object(tmp_path, capsys):
    bad = tmp_path / "junk.dfob"
    bad.write_bytes(b"DFOBgarbage")
    assert main(["run", str(bad)]) == 1


def test_tcb_table(capsys):
    assert main(["tcb"]) == 0
    out = capsys.readouterr().out
    assert "Loader/Verifier" in out
    assert "paper: <600" in out


def test_missing_file_handled(capsys):
    assert main(["objdump", "/nonexistent.dfob"]) == 1


def test_bench_parallel_json(tmp_path, capsys):
    out = tmp_path / "bench.json"
    assert main(["bench", "--workloads", "numeric_sort",
                 "--settings", "baseline", "P1",
                 "--param", "40", "--executor", "translate",
                 "--jobs", "2", "--json", "-o", str(out)]) == 0
    import json
    doc = json.loads(out.read_text())
    assert doc["parallelism"] == 2
    assert "provision_cache" in doc
    cells = doc["workloads"]["numeric_sort"]
    assert cells["P1"]["status"] == "ok"
    assert cells["P1"]["overhead_pct"] > 0
    assert "jobs=2" in capsys.readouterr().out


def test_bench_smoke_with_parallel_equality(capsys):
    assert main(["bench", "--smoke", "--workloads", "numeric_sort",
                 "--settings", "baseline", "P1",
                 "--param", "40", "--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert "cycle accounts identical" in out
    assert "parallel cell values identical to serial" in out


def test_bench_rejects_unknown_workload(capsys):
    assert main(["bench", "--workloads", "nope"]) == 1
    assert "error:" in capsys.readouterr().err


# -- exit-code contracts: every bad cell class must fail the sweep ----

def _provision_cell(status="ok", stages=True, identical=True):
    from repro.bench.provision import STAGES, ProvisionResult
    cell = ProvisionResult(workload="numeric_sort", setting="P1",
                           param=40, identical=identical,
                           status=status,
                           detail="" if status == "ok" else status)
    if stages:
        cell.legacy_stages = {s: 0.001 for s in STAGES}
        cell.new_stages = {s: 0.001 for s in STAGES}
        cell.legacy_cold_s = cell.new_cold_s = 0.005
        cell.speedup = 1.0
    return cell


def _patch_provision_collect(monkeypatch, cell):
    from repro.bench.provision import ProvisionMatrix

    def fake_collect(cls, workloads, **kwargs):
        matrix = cls()
        matrix.setdefault(cell.workload, {})[cell.setting] = cell
        return matrix

    monkeypatch.setattr(ProvisionMatrix, "collect",
                        classmethod(fake_collect))


PROVISION_ARGS = ["bench", "--provision",
                  "--workloads", "numeric_sort", "--settings", "P1"]


def test_bench_provision_ok_cells_exit_zero(monkeypatch, capsys):
    _patch_provision_collect(monkeypatch, _provision_cell())
    assert main(PROVISION_ARGS) == 0
    assert "byte-identical" in capsys.readouterr().out


def test_bench_provision_divergent_cell_exits_nonzero(monkeypatch,
                                                      capsys):
    _patch_provision_collect(
        monkeypatch, _provision_cell(status="divergent",
                                     identical=False))
    assert main(PROVISION_ARGS) == 1
    assert "DIVERGENT" in capsys.readouterr().out


def test_bench_provision_incomplete_stages_exit_nonzero(monkeypatch,
                                                        capsys):
    cell = _provision_cell()
    del cell.new_stages["verify"]      # ok cell, missing one timing
    _patch_provision_collect(monkeypatch, cell)
    assert main(PROVISION_ARGS) == 1
    assert "MISSING stage timings" in capsys.readouterr().out


def test_bench_provision_failed_cell_exits_nonzero(monkeypatch,
                                                   capsys):
    _patch_provision_collect(
        monkeypatch, _provision_cell(status="error", stages=False))
    assert main(PROVISION_ARGS) == 1
    assert "FAILED cells" in capsys.readouterr().out


def test_bench_failed_cells_exit_nonzero(monkeypatch, capsys):
    from repro.bench.harness import BenchResult, RunMatrix

    def fake_collect(cls, workloads, **kwargs):
        matrix = cls(executor="translate")
        matrix["numeric_sort"] = {
            "P1": BenchResult("numeric_sort", "P1", 40, steps=0,
                              cycles=0.0, status="error",
                              detail="injected")}
        return matrix

    monkeypatch.setattr(RunMatrix, "collect", classmethod(fake_collect))
    assert main(["bench", "--workloads", "numeric_sort",
                 "--settings", "P1", "--executor", "translate"]) == 1
    out = capsys.readouterr().out
    assert "FAILED cells (1): numeric_sort/P1" in out


def test_bench_checkpoint_resume_mismatch_exits_nonzero(monkeypatch,
                                                        capsys):
    from repro.bench.checkpointing import (
        CheckpointCell, CheckpointMatrix, ResumePoint,
    )

    def fake_collect(cls, workloads, **kwargs):
        cell = CheckpointCell(workload="numeric_sort", param=60,
                              setting="P1-P6", steps=100,
                              plain_wall_s=0.01)
        cell.resumes.append(ResumePoint(
            interrupt_step=50, resumed_at_step=40, chain_len=2,
            identical=False, rollback_rejected=True))
        return cls(cells=[cell], total_wall_s=0.01)

    monkeypatch.setattr(CheckpointMatrix, "collect",
                        classmethod(fake_collect))
    assert main(["bench", "--checkpoint",
                 "--workloads", "numeric_sort"]) == 1
    assert "RESUME DIVERGENCE" in capsys.readouterr().out
