"""Encoder/decoder unit and property tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import EncodingError
from repro.isa import (
    Instruction, Mem, SPECS, decode_instruction, encode_instruction,
    instr_length, RAX, RBX, RSP,
)
from repro.isa.instructions import Op

_U64 = (1 << 64) - 1

regs = st.integers(min_value=0, max_value=15)
imm32 = st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1)
imm64 = st.integers(min_value=0, max_value=_U64)
mems = st.builds(
    Mem,
    base=st.one_of(st.none(), regs),
    index=st.one_of(st.none(), regs),
    scale=st.sampled_from([1, 2, 4, 8]),
    disp=imm32,
)


def _operands_for(sig, draw_reg, draw_mem, draw_i32, draw_i64):
    if sig == "":
        return ()
    if sig == "r":
        return (draw_reg,)
    if sig == "rr":
        return (draw_reg, (draw_reg + 3) % 16)
    if sig == "ri64":
        return (draw_reg, draw_i64)
    if sig == "ri32":
        return (draw_reg, draw_i32)
    if sig == "rm":
        return (draw_reg, draw_mem)
    if sig == "mr":
        return (draw_mem, draw_reg)
    if sig == "mi32":
        return (draw_mem, draw_i32)
    if sig == "rel32":
        return (draw_i32,)
    if sig == "i8":
        return (abs(draw_i32) % 256,)
    if sig == "i16":
        return (abs(draw_i32) % 65536,)
    if sig == "i32":
        return (draw_i32,)
    raise AssertionError(sig)


@given(op=st.sampled_from(sorted(SPECS)), reg=regs, mem=mems,
       i32=imm32, i64=imm64)
def test_roundtrip_every_opcode(op, reg, mem, i32, i64):
    operands = _operands_for(SPECS[op].sig, reg, mem, i32, i64)
    instr = Instruction(op, *operands)
    blob = encode_instruction(instr)
    assert len(blob) == SPECS[op].length == instr_length(op)
    decoded, length = decode_instruction(blob)
    assert length == len(blob)
    assert decoded.op == op
    assert decoded.operands == instr.operands


def test_imm64_wraps_to_unsigned():
    blob = encode_instruction(Instruction(Op.MOV_RI, RAX, -1 & _U64))
    decoded, _ = decode_instruction(blob)
    assert decoded.operands[1] == _U64


def test_unknown_opcode_rejected():
    with pytest.raises(EncodingError, match="unknown opcode"):
        decode_instruction(bytes([0xEE]))


def test_truncated_instruction_rejected():
    blob = encode_instruction(Instruction(Op.MOV_RI, RAX, 5))
    with pytest.raises(EncodingError, match="truncated"):
        decode_instruction(blob[:-1])


def test_decode_past_end_rejected():
    with pytest.raises(EncodingError):
        decode_instruction(b"", 0)


def test_bad_register_rejected():
    with pytest.raises(EncodingError, match="register"):
        encode_instruction(Instruction(Op.MOV_RR, 16, RAX))


def test_bad_scale_rejected_on_decode():
    blob = bytearray(encode_instruction(
        Instruction(Op.MOV_RM, RAX, Mem(RBX, RSP, 8, 0))))
    blob[4] = 3  # scale byte
    with pytest.raises(EncodingError, match="scale"):
        decode_instruction(bytes(blob))


def test_bad_scale_rejected_on_construction():
    with pytest.raises(ValueError):
        Mem(RAX, None, 3, 0)


def test_out_of_range_imm32_rejected():
    with pytest.raises(EncodingError, match="range"):
        encode_instruction(Instruction(Op.ADD_RI, RAX, 1 << 40))


def test_out_of_range_disp_rejected():
    with pytest.raises(EncodingError):
        encode_instruction(
            Instruction(Op.MOV_RM, RAX, Mem(RBX, disp=1 << 40)))


def test_symbolic_operand_rejected_by_encoder():
    from repro.isa import SymbolRef
    with pytest.raises(EncodingError, match="unresolved"):
        encode_instruction(Instruction(Op.MOV_RI, RAX, SymbolRef("x")))


def test_lengths_are_fixed_per_opcode():
    # the verifier depends on per-opcode fixed lengths
    for op, spec in SPECS.items():
        assert spec.length >= 1
        assert instr_length(op) == spec.length
