"""VM semantics: arithmetic vs Python reference, control flow, faults,
AEX injection, cost accounting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CpuFault, MemoryFault, PolicyViolation
from repro.isa import (
    Instruction, Label, LabelDef, Mem, assemble,
    RAX, RBX, RCX, RDX, RSP,
)
from repro.isa.instructions import Op
from repro.sgx import Enclave
from repro.vm import CPU, AexSchedule, CostModel

_U64 = (1 << 64) - 1

#: Set by the module-scoped fixture below; ``run_program`` picks it up
#: so every test in this file runs under both execution engines.
_EXECUTOR = ["translate"]


@pytest.fixture(scope="module", autouse=True,
                params=["translate", "step"])
def vm_executor(request):
    """Run the whole module once per execution engine."""
    _EXECUTOR[0] = request.param
    yield request.param
    _EXECUTOR[0] = "translate"


def _machine():
    enclave = Enclave()
    enclave.load_bootstrap_image(b"img")
    enclave.einit()
    return enclave


def run_program(items, enclave=None, regs=None, **cpu_kwargs):
    enclave = enclave or _machine()
    layout = enclave.layout
    asm = assemble(list(items) + [Instruction(Op.HLT)])
    enclave.space.write_raw(layout.regions["code"].start, asm.code)
    cpu_kwargs.setdefault("executor", _EXECUTOR[0])
    cpu = CPU(enclave.space, layout.regions["code"].start,
              initial_rsp=layout.initial_rsp,
              ssa_addr=layout.ssa_addr, **cpu_kwargs)
    if regs:
        for reg, value in regs.items():
            cpu.regs[reg] = value & _U64
    result = cpu.run()
    return cpu, result


def to_signed(v):
    return v - (1 << 64) if v & (1 << 63) else v


# -- arithmetic vs Python reference ------------------------------------------

_ARITH_CASES = {
    Op.ADD_RR: lambda a, b: (a + b) & _U64,
    Op.SUB_RR: lambda a, b: (a - b) & _U64,
    Op.IMUL_RR: lambda a, b: (to_signed(a) * to_signed(b)) & _U64,
    Op.AND_RR: lambda a, b: a & b,
    Op.OR_RR: lambda a, b: a | b,
    Op.XOR_RR: lambda a, b: a ^ b,
    Op.SHL_RR: lambda a, b: (a << (b & 63)) & _U64,
    Op.SHR_RR: lambda a, b: a >> (b & 63),
    Op.SAR_RR: lambda a, b: (to_signed(a) >> (b & 63)) & _U64,
}


@settings(max_examples=40, deadline=None)
@given(op=st.sampled_from(sorted(_ARITH_CASES)),
       a=st.integers(0, _U64), b=st.integers(0, _U64))
def test_alu_matches_python_reference(op, a, b):
    _, result = run_program([Instruction(op, RAX, RBX)],
                            regs={RAX: a, RBX: b})
    assert result.return_value == _ARITH_CASES[op](a, b)


@settings(max_examples=40, deadline=None)
@given(a=st.integers(-(1 << 62), (1 << 62) - 1),
       b=st.integers(-(1 << 31), (1 << 31) - 1).filter(lambda v: v))
def test_division_truncates_toward_zero_like_c(a, b):
    _, result = run_program([Instruction(Op.DIV_RR, RAX, RBX)],
                            regs={RAX: a, RBX: b})
    expected = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        expected = -expected
    assert to_signed(result.return_value) == expected
    _, result = run_program([Instruction(Op.MOD_RR, RAX, RBX)],
                            regs={RAX: a, RBX: b})
    assert to_signed(result.return_value) == a - expected * b


def test_division_by_zero_faults():
    with pytest.raises(CpuFault, match="division by zero"):
        run_program([Instruction(Op.DIV_RR, RAX, RBX)],
                    regs={RAX: 5, RBX: 0})


def test_neg_not():
    _, r = run_program([Instruction(Op.NEG, RAX)], regs={RAX: 5})
    assert to_signed(r.return_value) == -5
    _, r = run_program([Instruction(Op.NOT, RAX)], regs={RAX: 0})
    assert r.return_value == _U64


# -- flags and branches ---------------------------------------------------------

@pytest.mark.parametrize("jcc,a,b,taken", [
    (Op.JE, 5, 5, True), (Op.JE, 5, 6, False),
    (Op.JNE, 5, 6, True), (Op.JNE, 5, 5, False),
    (Op.JL, -1 & _U64, 1, True), (Op.JL, 1, -1 & _U64, False),
    (Op.JG, 1, -1 & _U64, True), (Op.JGE, 5, 5, True),
    (Op.JLE, 5, 5, True),
    (Op.JB, 1, -1 & _U64, True),       # unsigned: 1 < 2^64-1
    (Op.JA, -1 & _U64, 1, True),
    (Op.JAE, 5, 5, True), (Op.JBE, 6, 5, False),
])
def test_conditional_jumps(jcc, a, b, taken):
    items = [
        Instruction(Op.CMP_RR, RAX, RBX),
        Instruction(jcc, Label("hit")),
        Instruction(Op.MOV_RI, RAX, 0),
        Instruction(Op.JMP, Label("end")),
        LabelDef("hit"),
        Instruction(Op.MOV_RI, RAX, 1),
        LabelDef("end"),
    ]
    _, result = run_program(items, regs={RAX: a, RBX: b})
    assert result.return_value == (1 if taken else 0)


def test_test_rr_sets_zero_flag():
    items = [
        Instruction(Op.TEST_RR, RAX, RBX),
        Instruction(Op.JE, Label("zero")),
        Instruction(Op.MOV_RI, RAX, 7),
        Instruction(Op.JMP, Label("end")),
        LabelDef("zero"),
        Instruction(Op.MOV_RI, RAX, 9),
        LabelDef("end"),
    ]
    _, r = run_program(items, regs={RAX: 0b1100, RBX: 0b0011})
    assert r.return_value == 9
    _, r = run_program(items, regs={RAX: 0b1100, RBX: 0b0111})
    assert r.return_value == 7


# -- memory, stack, calls ---------------------------------------------------------

def test_sib_addressing():
    enclave = _machine()
    heap = enclave.layout.regions["heap"].start
    items = [
        Instruction(Op.MOV_RI, RBX, heap),
        Instruction(Op.MOV_RI, RCX, 3),
        Instruction(Op.MOV_RI, RDX, 0x55),
        Instruction(Op.MOV_MR, Mem(RBX, RCX, 8, 16), RDX),
        Instruction(Op.MOV_RM, RAX, Mem(RBX, RCX, 8, 16)),
    ]
    _, result = run_program(items, enclave=enclave)
    assert result.return_value == 0x55
    assert enclave.space.load_u64(heap + 3 * 8 + 16) == 0x55


def test_byte_ops_zero_extend_and_truncate():
    enclave = _machine()
    heap = enclave.layout.regions["heap"].start
    items = [
        Instruction(Op.MOV_RI, RBX, heap),
        Instruction(Op.MOV_RI, RDX, 0x1FF),
        Instruction(Op.STB, Mem(RBX), RDX),
        Instruction(Op.LDB, RAX, Mem(RBX)),
    ]
    _, result = run_program(items, enclave=enclave)
    assert result.return_value == 0xFF


def test_push_pop_call_ret():
    items = [
        Instruction(Op.MOV_RI, RAX, 0),
        Instruction(Op.CALL, Label("fn")),
        Instruction(Op.ADD_RI, RAX, 1),
        Instruction(Op.JMP, Label("end")),
        LabelDef("fn"),
        Instruction(Op.PUSH_I, 40),
        Instruction(Op.POP_R, RAX),
        Instruction(Op.ADD_RI, RAX, 1),
        Instruction(Op.RET),
        LabelDef("end"),
    ]
    _, result = run_program(items)
    assert result.return_value == 42


def test_indirect_call_through_register():
    enclave = _machine()
    code = enclave.layout.regions["code"].start
    items = [
        Instruction(Op.MOV_RI, RCX, 0),     # patched below
        Instruction(Op.CALL_R, RCX),
        Instruction(Op.JMP, Label("end")),
        LabelDef("fn"),
        Instruction(Op.MOV_RI, RAX, 77),
        Instruction(Op.RET),
        LabelDef("end"),
    ]
    asm = assemble(items + [Instruction(Op.HLT)])
    # resolve fn address and patch the imm64
    patched = bytearray(asm.code)
    fn_addr = code + asm.labels["fn"]
    patched[2:10] = fn_addr.to_bytes(8, "little")
    enclave.space.write_raw(code, bytes(patched))
    cpu = CPU(enclave.space, code,
              initial_rsp=enclave.layout.initial_rsp,
              executor=_EXECUTOR[0])
    assert cpu.run().return_value == 77


def test_stack_overflow_hits_guard_page():
    enclave = _machine()
    stack = enclave.layout.regions["stack"]
    pushes = [Instruction(Op.PUSH_R, RAX)] * 4
    items = [
        Instruction(Op.MOV_RI, RSP, stack.start + 16),
    ] + pushes
    with pytest.raises(MemoryFault):
        run_program(items, enclave=enclave)


# -- faults -------------------------------------------------------------------------

def test_fetch_outside_elrange_faults():
    enclave = _machine()
    items = [Instruction(Op.MOV_RI, RCX, 0x1000),
             Instruction(Op.JMP_R, RCX)]
    with pytest.raises(CpuFault, match="outside ELRANGE"):
        run_program(items, enclave=enclave)


def test_execute_data_page_faults():
    enclave = _machine()
    heap = enclave.layout.regions["heap"].start
    items = [Instruction(Op.MOV_RI, RCX, heap),
             Instruction(Op.JMP_R, RCX)]
    with pytest.raises((CpuFault, MemoryFault)):
        run_program(items, enclave=enclave)


def test_trap_raises_policy_violation():
    with pytest.raises(PolicyViolation) as err:
        run_program([Instruction(Op.TRAP, 3)])
    assert err.value.code == 3


def test_step_limit():
    items = [LabelDef("spin"), Instruction(Op.JMP, Label("spin"))]
    enclave = _machine()
    asm = assemble(items)
    enclave.space.write_raw(enclave.layout.regions["code"].start,
                            asm.code)
    cpu = CPU(enclave.space, enclave.layout.regions["code"].start,
              initial_rsp=enclave.layout.initial_rsp,
              executor=_EXECUTOR[0])
    with pytest.raises(CpuFault, match="step limit"):
        cpu.run(max_steps=1000)


def test_svc_without_handler_faults():
    with pytest.raises(CpuFault, match="no handler"):
        run_program([Instruction(Op.SVC, 1)])


def test_svc_handler_gets_args_and_sets_result():
    seen = []

    def handler(cpu, num):
        seen.append((num, cpu.regs[7]))
        cpu.regs[0] = 99

    items = [Instruction(Op.MOV_RI, 7, 1234),
             Instruction(Op.SVC, 5)]
    _, result = run_program(items, svc_handler=handler)
    assert seen == [(5, 1234)]
    assert result.return_value == 99


# -- AEX ---------------------------------------------------------------------------

def test_aex_dumps_registers_into_ssa():
    enclave = _machine()
    body = [Instruction(Op.MOV_RI, RBX, 0xABCD)] + \
        [Instruction(Op.NOP)] * 50
    cpu, result = run_program(body, enclave=enclave,
                              aex_schedule=AexSchedule(10, jitter=0))
    assert result.aex_events >= 4
    # RBX slot of the SSA frame holds the dumped value
    ssa = enclave.layout.ssa_addr
    assert enclave.space.read_raw(ssa + 3 * 8, 8) == \
        (0xABCD).to_bytes(8, "little")


def test_aex_costs_cycles():
    quiet_cpu, quiet = run_program([Instruction(Op.NOP)] * 50)
    noisy_cpu, noisy = run_program(
        [Instruction(Op.NOP)] * 50,
        aex_schedule=AexSchedule(10, jitter=0))
    assert noisy.cycles > quiet.cycles + 3 * 12000 - 1


def test_aex_disabled_by_default():
    _, result = run_program([Instruction(Op.NOP)] * 20)
    assert result.aex_events == 0


# -- cost model ----------------------------------------------------------------------

def test_unit_cost_model_counts_instructions():
    _, result = run_program([Instruction(Op.NOP)] * 10,
                            cost_model=CostModel.unit())
    assert result.cycles == pytest.approx(result.steps)


def test_hot_range_discount():
    enclave = _machine()
    hot_cell = enclave.layout.ssp_cell
    cold_cell = enclave.layout.regions["heap"].start
    model = CostModel()

    def cycles_for(addr, hot_range):
        items = [Instruction(Op.MOV_RI, RBX, addr),
                 Instruction(Op.MOV_RM, RAX, Mem(RBX))]
        enc = _machine()
        _, result = run_program(items, enclave=enc,
                                hot_range=hot_range)
        return result.cycles

    hot_range = (enclave.layout.crit_lo, enclave.layout.crit_hi)
    assert cycles_for(hot_cell, hot_range) < cycles_for(cold_cell,
                                                        hot_range)
    assert cycles_for(hot_cell, (0, 0)) == cycles_for(cold_cell, (0, 0))
