"""HyperRace co-location accuracy model."""

import pytest

from repro.hyperrace import (
    CoLocationTester, PROCESSORS, ProcessorModel, analytic_alpha,
)
from repro.hyperrace.colocation import analytic_beta, _binom_cdf


def test_paper_processors_present():
    assert set(PROCESSORS) == {"i7-6700", "E3-1280 v5", "i7-7700HQ",
                               "i5-6200U"}


def test_binom_cdf_sanity():
    assert _binom_cdf(10, 10, 0.5) == pytest.approx(1.0)
    assert _binom_cdf(0, 10, 0.5) == pytest.approx(0.5 ** 10)
    assert _binom_cdf(5, 10, 0.5) == pytest.approx(0.623, abs=0.001)


def test_alpha_small_and_same_order_across_processors():
    # the paper: "results are on the same order of magnitude"
    alphas = {name: analytic_alpha(cpu)
              for name, cpu in PROCESSORS.items()}
    for alpha in alphas.values():
        assert 0 < alpha < 1e-3
    import math
    logs = [math.log10(a) for a in alphas.values()]
    assert max(logs) - min(logs) < 2.5


def test_beta_negligible():
    for cpu in PROCESSORS.values():
        assert analytic_beta(cpu) < 1e-12


def test_alpha_monotone_in_threshold():
    cpu = PROCESSORS["i7-6700"]
    low = analytic_alpha(cpu, threshold=0.70)
    high = analytic_alpha(cpu, threshold=0.90)
    assert low < analytic_alpha(cpu) < high


def test_monte_carlo_matches_analytics_in_order_of_magnitude():
    cpu = ProcessorModel("test-cpu", 0.90, 0.08, 3.0)
    tester = CoLocationTester(cpu, n=64, threshold=0.78, seed=7)
    analytic = analytic_alpha(cpu, n=64, threshold=0.78)
    empirical = tester.estimate_alpha(unit_tests=2_048_000)
    assert analytic > 1e-3     # chosen so MC can resolve it
    assert empirical == pytest.approx(analytic, rel=0.6)


def test_check_separates_colocation_reliably():
    tester = CoLocationTester(PROCESSORS["E3-1280 v5"], seed=3)
    co = sum(tester.check(co_located=True) for _ in range(300))
    apart = sum(tester.check(co_located=False) for _ in range(300))
    assert co == 300          # alpha is tiny at this scale
    assert apart == 0         # beta is tiny


def test_deterministic_across_instances():
    a = CoLocationTester(PROCESSORS["i7-6700"], seed=11)
    b = CoLocationTester(PROCESSORS["i7-6700"], seed=11)
    assert [a.unit_test(True) for _ in range(100)] == \
        [b.unit_test(True) for _ in range(100)]


def test_estimate_beta_empirical():
    tester = CoLocationTester(PROCESSORS["i5-6200U"], seed=5)
    assert tester.estimate_beta(unit_tests=64_000) == 0.0
