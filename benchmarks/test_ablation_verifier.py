"""Ablation: in-enclave verification cost ("quick turnaround", §III-B).

The paper's design goal is a fast compliance check at load time; this
bench measures wall-clock verification throughput against binary size
and the annotation density added by each policy level.
"""

import time

import pytest

from repro.bench import format_table
from repro.compiler import compile_source
from repro.core.verifier import PolicyVerifier
from repro.policy import PolicySet

from conftest import emit


def _program(functions: int) -> str:
    parts = []
    for i in range(functions):
        parts.append(f"""
int f{i}(int x) {{
    int arr[8];
    int j;
    for (j = 0; j < 8; j++) arr[j] = x * j + {i};
    return arr[7] + arr[x % 8];
}}""")
    calls = " + ".join(f"f{i}(i)" for i in range(functions))
    parts.append(f"""
int main() {{
    int i;
    int acc = 0;
    for (i = 0; i < 4; i++) acc += {calls};
    __report(acc);
    return acc;
}}""")
    return "\n".join(parts)


def _verify_once(obj, policies):
    verifier = PolicyVerifier(policies)
    entry = obj.symbols[obj.entry].offset
    targets = [obj.symbols[n].offset for n in obj.branch_targets]
    return verifier.verify(obj.text, entry, targets)


def test_verifier_scales_with_binary_size(benchmark):
    policies = PolicySet.full()
    rows = []
    objs = {}
    for functions in (4, 16, 64):
        objs[functions] = compile_source(_program(functions), policies)
    result = benchmark.pedantic(
        lambda: _verify_once(objs[64], policies), rounds=3, iterations=1)
    for functions, obj in objs.items():
        start = time.perf_counter()
        verified = _verify_once(obj, policies)
        elapsed = time.perf_counter() - start
        rows.append([functions, len(obj.text),
                     verified.instruction_count,
                     sum(verified.annotation_counts.values()),
                     f"{elapsed * 1000:.1f}",
                     f"{len(obj.text) / elapsed / 1e6:.2f}"])
    table = format_table(
        "Ablation: verification cost vs binary size (full policies)",
        ["functions", "text bytes", "instructions", "annotations",
         "ms", "MB/s"], rows)
    emit("ablation_verifier", table)
    assert result.instruction_count > 0


def test_annotation_density_by_policy(benchmark):
    src = _program(8)
    rows = []

    def build_all():
        out = {}
        for setting in ("baseline", "P1", "P1+P2", "P1-P5", "P1-P6"):
            policies = PolicySet.parse(setting)
            obj = compile_source(src, policies)
            verified = _verify_once(obj, policies)
            out[setting] = (len(obj.text),
                            sum(verified.annotation_counts.values()))
        return out

    sizes = benchmark.pedantic(build_all, rounds=1, iterations=1)
    base = sizes["baseline"][0]
    for setting, (text, anns) in sizes.items():
        rows.append([setting, text, f"{text / base:.2f}x", anns])
    table = format_table(
        "Ablation: text growth and annotation count by policy level",
        ["setting", "text bytes", "vs baseline", "annotations"], rows)
    emit("ablation_annotations", table)
    assert sizes["P1-P6"][0] > sizes["P1"][0] > sizes["baseline"][0]
