"""Fig. 10: HTTPS server response time and throughput vs concurrency.

Paper: instrumented ~= baseline below 75 connections, degrades somewhat
at 100, response time grows significantly past 150; P1-P6 averages
14.1% on response time, <10% on throughput between 75 and 200.
"""

import pytest

from repro.bench import format_series
from repro.policy import PolicySet
from repro.service import HttpsServerSim, LoadGenerator

from conftest import emit

CONCURRENCY = (25, 50, 75, 100, 150, 200)


@pytest.fixture(scope="module")
def sims():
    return (HttpsServerSim(PolicySet.none()),
            HttpsServerSim(PolicySet.full()))


def _sweep(sim):
    rows = []
    for c in CONCURRENCY:
        gen = LoadGenerator(sim.service_time_us, workers=96)
        rows.append(gen.run(c, max_requests=2500))
    return rows


def test_fig10_https_load(benchmark, sims):
    base_sim, full_sim = sims
    base = _sweep(base_sim)
    full = benchmark.pedantic(lambda: _sweep(full_sim),
                              rounds=1, iterations=1)
    text = format_series(
        "Fig 10: HTTPS response time (ms) and throughput (req/s), "
        "baseline vs P1-P6",
        "conns", CONCURRENCY, {
            "base rt": [f"{r.mean_response_ms:.3f}" for r in base],
            "P1-P6 rt": [f"{r.mean_response_ms:.3f}" for r in full],
            "base thr": [f"{r.throughput_rps:.0f}" for r in base],
            "P1-P6 thr": [f"{r.throughput_rps:.0f}" for r in full],
        })
    rt_overheads = [f.mean_response_ms / b.mean_response_ms - 1
                    for b, f in zip(base, full)]
    avg_rt = 100 * sum(rt_overheads) / len(rt_overheads)
    text += (f"\n\nmean response-time overhead: {avg_rt:.1f}% "
             f"(paper: 14.1%)")
    emit("fig10_https", text)

    # shape: flat latency through 75, knee by 150
    assert full[2].mean_response_ms == pytest.approx(
        full[0].mean_response_ms, rel=0.3)
    assert full[4].mean_response_ms > full[2].mean_response_ms * 1.3
    # throughput overhead moderate in the 75..200 range
    for b, f in zip(base[2:], full[2:]):
        overhead = (b.throughput_rps - f.throughput_rps) / b.throughput_rps
        assert overhead < 0.25
    assert 0 < avg_rt < 35
