"""Table II: nBench overheads under P1, P1+P2, P1-P5, P1-P6.

Runs each of the ten kernels through the full pipeline at all five
settings and reports cycle-account overhead vs the pure-loader baseline,
next to the paper's numbers.
"""

import math

import pytest

from repro.bench import PAPER_SETTINGS, format_table, overhead_matrix, percent
from repro.workloads.nbench import NBENCH_ORDER

from conftest import emit

#: Table II as published (percent overhead).
PAPER_TABLE2 = {
    "numeric_sort": (5.18, 6.05, 6.79, 12.0),
    "string_sort": (8.05, 10.2, 12.4, 18.4),
    "bitfield": (6.11, 11.3, 15.5, 17.9),
    "fp_emulation": (0.20, 0.27, 0.33, 5.36),
    "fourier": (2.48, 2.72, 2.89, 7.45),
    "assignment": (6.73, 15.6, 25.0, 39.8),
    "idea": (2.34, 2.66, 3.13, 12.1),
    "huffman": (15.5, 16.6, 18.1, 21.3),
    "neural_net": (13.8, 19.4, 20.2, 23.1),
    "lu_decomposition": (4.30, 7.03, 9.67, 22.6),
}


@pytest.fixture(scope="module")
def table2():
    return {name: overhead_matrix(name) for name in NBENCH_ORDER}


@pytest.mark.parametrize("name", NBENCH_ORDER)
def test_nbench_kernel(benchmark, table2, name):
    matrix = table2[name]
    benchmark.pedantic(
        lambda: overhead_matrix(name, settings=("baseline", "P1")),
        rounds=1, iterations=1)
    # shape assertions: monotone in policy strength; everything correct
    assert matrix["baseline"].reports[0] == 1
    assert 0 < matrix["P1"].overhead_pct
    assert matrix["P1"].overhead_pct <= matrix["P1+P2"].overhead_pct + 1
    assert matrix["P1+P2"].overhead_pct < matrix["P1-P5"].overhead_pct
    assert matrix["P1-P5"].overhead_pct < matrix["P1-P6"].overhead_pct


def test_table2_summary(benchmark, table2):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for name in NBENCH_ORDER:
        matrix = table2[name]
        paper = PAPER_TABLE2[name]
        cells = [name]
        for i, setting in enumerate(PAPER_SETTINGS[1:]):
            cells.append(f"{percent(matrix[setting].overhead_pct)} "
                         f"({paper[i]:.2f})")
        rows.append(cells)

    def geomean(index):
        vals = [1 + table2[n][PAPER_SETTINGS[1:][index]].overhead_pct
                / 100 for n in NBENCH_ORDER]
        return 100 * (math.prod(vals) ** (1 / len(vals)) - 1)

    text = format_table(
        "Table II: nBench overhead, measured (paper) in %",
        ["Program", "P1", "P1+P2", "P1-P5", "P1-P6"], rows)
    text += (f"\n\ngeomean P1-P5: {geomean(2):.1f}% (paper ~10%)"
             f"\ngeomean P1-P6: {geomean(3):.1f}% (paper ~20%)")
    emit("table2_nbench", text)

    # headline shape: ASSIGNMENT worst under full policies,
    # FP EMULATION cheapest
    full = {n: table2[n]["P1-P6"].overhead_pct for n in NBENCH_ORDER}
    assert max(full, key=full.get) == "assignment"
    assert min(full, key=full.get) == "fp_emulation"
    assert geomean(3) < 60.0
