"""Fig. 7: sequence alignment runtime vs input length.

Paper: overall overhead <=20% for small inputs (P1 alone <=10%); at
larger inputs P1+P2 ~19.7%, P1-P5 ~22.2% over baseline.
"""

import pytest

from repro.bench import PAPER_SETTINGS, format_series, overhead_matrix, percent

from conftest import emit

SIZES = (32, 64, 128, 224)


@pytest.fixture(scope="module")
def fig7():
    return {n: overhead_matrix("sequence_alignment", n) for n in SIZES}


def test_fig7_alignment_runtime(benchmark, fig7):
    benchmark.pedantic(
        lambda: overhead_matrix("sequence_alignment", SIZES[0],
                                settings=("baseline", "P1")),
        rounds=1, iterations=1)
    series = {}
    for setting in PAPER_SETTINGS:
        series[setting] = [
            f"{fig7[n][setting].cycles / 1e3:.0f}k"
            + ("" if setting == "baseline"
               else f" ({percent(fig7[n][setting].overhead_pct)})")
            for n in SIZES]
    text = format_series(
        "Fig 7: Needleman-Wunsch cycles by input length "
        "(overhead vs baseline)",
        "bases", SIZES, series)
    emit("fig7_alignment", text)

    for n in SIZES:
        matrix = fig7[n]
        assert matrix["baseline"].reports[0] == 1
        assert matrix["P1"].overhead_pct < 25
        assert matrix["P1-P5"].overhead_pct < 45
    # quadratic scaling in input length
    assert fig7[SIZES[-1]]["baseline"].cycles > \
        20 * fig7[SIZES[0]]["baseline"].cycles
