"""Fig. 9: credit scoring (BP network) runtime vs number of records.

Paper: P1-P5 ~15% at 1K-10K records, <20% beyond 50K; P1-P6 <10% at
100K records (the per-record work dwarfs the per-block marker checks as
the batch grows).  Record counts scaled down.
"""

import pytest

from repro.bench import PAPER_SETTINGS, format_series, overhead_matrix, percent

from conftest import emit

RECORDS = (100, 300, 1000, 2500)


@pytest.fixture(scope="module")
def fig9():
    return {n: overhead_matrix("credit_scoring", n) for n in RECORDS}


def test_fig9_credit_scoring(benchmark, fig9):
    benchmark.pedantic(
        lambda: overhead_matrix("credit_scoring", RECORDS[0],
                                settings=("baseline", "P1")),
        rounds=1, iterations=1)
    series = {}
    for setting in PAPER_SETTINGS:
        series[setting] = [
            f"{fig9[n][setting].cycles / 1e3:.0f}k"
            + ("" if setting == "baseline"
               else f" ({percent(fig9[n][setting].overhead_pct)})")
            for n in RECORDS]
    text = format_series(
        "Fig 9: credit scoring cycles by record count "
        "(overhead vs baseline)",
        "records", RECORDS, series)
    emit("fig9_credit", text)

    for n in RECORDS:
        matrix = fig9[n]
        assert matrix["baseline"].reports[0] == 1   # beats chance
        assert matrix["P1-P5"].overhead_pct < 40
    # scoring cost is linear in records on top of the fixed training
    # cost: the marginal cycles/record are constant across the sweep
    def marginal(a, b):
        return (fig9[b]["baseline"].cycles -
                fig9[a]["baseline"].cycles) / (b - a)

    assert marginal(1000, 2500) == pytest.approx(
        marginal(300, 1000), rel=0.25)
