"""Fig. 11: HTTPS transfer rate vs file size across shielding runtimes.

Paper: unprotected Graphene-SGX leads on small files; as size grows
DEFLECTION overtakes both Graphene and Occlum, reaching ~77% of native
Linux — while being the only runtime enforcing P0-P5.
"""

import pytest

from repro.bench import format_series
from repro.runtimes import (
    GRAPHENE, NATIVE, OCCLUM, deflection_runtime_model,
)
from repro.tcb import consumer_inventory

from conftest import emit

SIZES = tuple(1 << k for k in range(10, 21, 2))  # 1KB .. 1MB


def test_fig11_transfer_rates(benchmark):
    ours = deflection_runtime_model(
        consumer_inventory()["Loader/Verifier"].kloc)
    models = (NATIVE, GRAPHENE, OCCLUM, ours)

    def sweep():
        return {m.name: [m.transfer_rate_mbps(s) for s in SIZES]
                for m in models}

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_series(
        "Fig 11: transfer rate (MB/s) by file size",
        "bytes", SIZES,
        {name: [f"{r:.1f}" for r in series]
         for name, series in rates.items()})
    big = SIZES[-1]
    ratio = ours.relative_to(NATIVE, big)
    text += (f"\n\nDEFLECTION at {big} B: "
             f"{100 * ratio:.1f}% of native (paper: 77%)")
    emit("fig11_runtimes", text)

    # small files: Graphene leads the enclave runtimes
    assert rates["Graphene-SGX"][0] > rates["DEFLECTION"][0]
    assert rates["Graphene-SGX"][0] > rates["Occlum"][0]
    # large files: DEFLECTION overtakes both
    assert rates["DEFLECTION"][-1] > rates["Graphene-SGX"][-1]
    assert rates["DEFLECTION"][-1] > rates["Occlum"][-1]
    assert 0.70 < ratio < 0.85
