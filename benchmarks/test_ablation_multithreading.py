"""Ablation: the §VII multi-threading extension.

Two questions the paper's discussion raises but does not measure:

* what does the register-held (MT-safe) shadow stack cost relative to
  the memory-cell variant? (it should be *cheaper*: fewer memory
  operations per call);
* how does aggregate enclave throughput scale with TCS count when
  threads interleave on shared silicon?
"""

import pytest

from repro.bench import format_table
from repro.compiler import compile_source
from repro.core import BootstrapEnclave
from repro.policy import PolicySet
from repro.sgx import EnclaveConfig, PAGE_SIZE

from conftest import emit

_CALL_HEAVY = """
int leaf(int x) { return x * 3 + 1; }
int mid(int x) { return leaf(x) + leaf(x + 1); }
int main() {
    char buf[8];
    __recv(buf, 8);
    int i;
    int acc = buf[0];
    for (i = 0; i < 1500; i++) acc = (acc + mid(i)) % 65536;
    __report(1);
    __report(acc);
    return acc;
}
"""


def _run(policies, config=None, inputs=(b"\x01",), quantum=400):
    boot = BootstrapEnclave(policies=policies,
                            config=config or EnclaveConfig())
    boot.receive_binary(compile_source(_CALL_HEAVY, policies).serialize())
    if len(inputs) == 1 and (config is None or config.num_threads == 1):
        boot.receive_userdata(inputs[0])
        return [boot.run()]
    return boot.run_threads(list(inputs), quantum=quantum)


def test_mt_shadow_stack_is_cheaper_per_call(benchmark):
    st = benchmark.pedantic(
        lambda: _run(PolicySet.p1_p5())[0], rounds=1, iterations=1)
    mt = _run(PolicySet.multithreaded())[0]
    baseline = _run(PolicySet.p1_p2())[0]
    st_over = st.result.cycles / baseline.result.cycles - 1
    mt_over = mt.result.cycles / baseline.result.cycles - 1
    rows = [["P1+P2 (no CFI)", f"{baseline.result.cycles:,.0f}", "--"],
            ["P1-P5 (memory cell)", f"{st.result.cycles:,.0f}",
             f"+{100 * st_over:.1f}%"],
            ["P1-P5-MT (register R13)", f"{mt.result.cycles:,.0f}",
             f"+{100 * mt_over:.1f}%"]]
    emit("ablation_mt_shadow", format_table(
        "Ablation: shadow-stack variants on a call-heavy kernel",
        ["contract", "cycles", "CFI overhead"], rows))
    assert st.reports == mt.reports == baseline.reports
    assert mt.result.cycles < st.result.cycles     # fewer memory ops
    assert mt_over > 0


@pytest.mark.parametrize("threads", [1, 2, 4, 8])
def test_mt_thread_scaling(benchmark, threads):
    config = EnclaveConfig(num_threads=threads,
                           stack_size=32 * PAGE_SIZE)
    inputs = [bytes([i + 1]) for i in range(threads)]
    outcomes = benchmark.pedantic(
        lambda: _run(PolicySet.multithreaded(), config, inputs),
        rounds=1, iterations=1)
    assert all(o.ok for o in outcomes)
    assert all(o.reports[0] == 1 for o in outcomes)
    # the interleaved threads each complete their full work
    total = sum(o.result.steps for o in outcomes)
    single = _run(PolicySet.multithreaded())[0].result.steps
    assert total == pytest.approx(single * threads, rel=0.01)
