"""Fig. 8: sequence generation runtime vs output length.

Paper: P1 alone 5.1%-6.9% (1K-100K nucleotides); <20% at 200K even for
P1-P5; ~25% with side-channel mitigation.  Output lengths scaled down
(the shape is linear in output size).
"""

import pytest

from repro.bench import PAPER_SETTINGS, format_series, overhead_matrix, percent

from conftest import emit

SIZES = (1_000, 4_000, 16_000, 48_000)


@pytest.fixture(scope="module")
def fig8():
    return {n: overhead_matrix("sequence_generation", n) for n in SIZES}


def test_fig8_generation_runtime(benchmark, fig8):
    benchmark.pedantic(
        lambda: overhead_matrix("sequence_generation", SIZES[0],
                                settings=("baseline", "P1")),
        rounds=1, iterations=1)
    series = {}
    for setting in PAPER_SETTINGS:
        series[setting] = [
            f"{fig8[n][setting].cycles / 1e3:.0f}k"
            + ("" if setting == "baseline"
               else f" ({percent(fig8[n][setting].overhead_pct)})")
            for n in SIZES]
    text = format_series(
        "Fig 8: sequence generation cycles by output length "
        "(overhead vs baseline)",
        "nucleotides", SIZES, series)
    emit("fig8_generation", text)

    for n in SIZES:
        matrix = fig8[n]
        assert matrix["baseline"].reports[0] == 1
        assert matrix["P1"].overhead_pct < 20
        assert matrix["P1-P6"].overhead_pct < 50
    # linear scaling in output size (excluding OCall constant): 48x the
    # output is roughly 48x the work
    ratio = fig8[SIZES[-1]]["baseline"].cycles / \
        fig8[SIZES[0]]["baseline"].cycles
    assert 20 < ratio < 60
