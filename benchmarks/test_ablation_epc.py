"""Ablation: EPC paging overhead (§II).

The paper motivates its small TCB partly with EPC pressure: "only
128 MB … encryption protected memory is reserved[;] although virtual
memory support is available, it incurs significant overheads in
paging."  This bench sweeps a working set across a fixed EPC share and
measures the cycle blow-up — the same mechanism that bends the libOS
curves in Fig. 11.
"""

import pytest

from repro.bench import format_table
from repro.compiler import compile_source
from repro.core import BootstrapEnclave
from repro.policy import PolicySet
from repro.sgx import EnclaveConfig, PAGE_SIZE
from repro.vm import CostModel

from conftest import emit

_SWEEP = r"""
char arena[@BYTES@];
int main() {
    int pages = @PAGES@;
    int sweep;
    int check = 0;
    for (sweep = 0; sweep < 3; sweep++) {
        int p;
        for (p = 0; p < pages; p++) {
            arena[p * 4096] = p + sweep;
            check += arena[p * 4096];
        }
    }
    __report(1);
    __report(check & 1073741823);
    return check;
}
"""

EPC_SHARE = 24          # pages available to the enclave
WORKING_SETS = (8, 16, 24, 32, 48, 96)


def _run(pages: int):
    src = _SWEEP.replace("@PAGES@", str(pages)) \
        .replace("@BYTES@", str(pages * PAGE_SIZE))
    policies = PolicySet.p1_only()
    boot = BootstrapEnclave(
        policies=policies,
        config=EnclaveConfig(heap_size=(pages + 16) * PAGE_SIZE))
    boot.receive_binary(compile_source(src, policies).serialize())
    unconstrained = boot.run(cost_model=CostModel())
    constrained = boot.run(
        cost_model=CostModel.with_epc_limit(EPC_SHARE))
    assert constrained.reports == unconstrained.reports
    return unconstrained.result.cycles, constrained.result.cycles


def test_epc_paging_sweep(benchmark):
    results = benchmark.pedantic(
        lambda: {ws: _run(ws) for ws in WORKING_SETS},
        rounds=1, iterations=1)
    rows = []
    for ws, (free, paged) in results.items():
        rows.append([ws, f"{free:,.0f}", f"{paged:,.0f}",
                     f"{paged / free:.2f}x"])
    emit("ablation_epc", format_table(
        f"Ablation: EPC paging (EPC share = {EPC_SHARE} pages)",
        ["working set (pages)", "cycles (no limit)",
         "cycles (EPC-limited)", "blow-up"], rows))
    # inside the EPC: no penalty; beyond it: super-linear blow-up
    assert results[8][1] == pytest.approx(results[8][0], rel=0.02)
    assert results[96][1] > 3 * results[96][0]
    blowups = [results[ws][1] / results[ws][0] for ws in WORKING_SETS]
    assert blowups == sorted(blowups)    # monotone in working set
