"""Table I: TCB comparison with other shielding runtimes.

Baseline inventories are the paper's published numbers; the DEFLECTION
row is *measured* from this repository by ``repro.tcb``.
"""

import pytest

from repro.bench import format_table
from repro.runtimes import ALL_BASELINES, deflection_runtime_model
from repro.tcb import consumer_inventory, verifier_core_loc

from conftest import emit


def _build_table():
    rows = []
    for runtime in ALL_BASELINES:
        for i, comp in enumerate(runtime.tcb):
            size = (f"> {runtime.tcb_size_mb}"
                    if runtime.tcb_size_is_lower_bound
                    else f"{runtime.tcb_size_mb}") if i == 0 else ""
            rows.append([runtime.name if i == 0 else "",
                         comp.name, f"{comp.kloc:g}", size])
    measured = consumer_inventory()
    ours = deflection_runtime_model(
        measured["Loader/Verifier"].kloc)
    for i, comp in enumerate(measured.values()):
        rows.append(["DEFLECTION (measured)" if i == 0 else "",
                     comp.name, f"{comp.kloc:.2f}",
                     "3.5 (paper)" if i == 0 else ""])
    return rows, ours


def test_table1_tcb_comparison(benchmark):
    rows, ours = benchmark.pedantic(_build_table, rounds=1, iterations=1)
    text = format_table(
        "Table I: TCB comparison (kLoC / MB)",
        ["Runtime", "Component", "kLoC", "Size(MB)"], rows)
    core = verifier_core_loc()
    text += (f"\n\nFine-grained (paper: loader <600 LoC, verifier <700):"
             f"\n  measured loader+rewriter: {core['loader']} LoC"
             f"\n  measured verifier+RDD:    {core['verifier']} LoC")
    emit("table1_tcb", text)
    assert core["loader"] < 600
    assert core["verifier"] < 700
    for baseline in ALL_BASELINES:
        assert baseline.tcb_kloc > 5 * sum(
            c.kloc for c in consumer_inventory().values())
