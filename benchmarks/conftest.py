"""Shared benchmark infrastructure.

Every benchmark prints its reproduction table to stdout and appends it
to ``benchmarks/results/<name>.txt`` so the paper-vs-measured record in
EXPERIMENTS.md can be regenerated at any time.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> str:
    """Print a results table and persist it under benchmarks/results."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)
    return text
