"""§IV-C accuracy experiment: co-location test false positives (alpha)
on the paper's four processors (25.6M unit tests there; scaled here,
with the exact binomial value alongside the Monte-Carlo estimate).
"""

import math

import pytest

from repro.bench import format_table
from repro.hyperrace import CoLocationTester, PROCESSORS, analytic_alpha
from repro.hyperrace.colocation import analytic_beta

from conftest import emit

UNIT_TESTS = 1_024_000   # paper: 25,600,000


def test_colocation_alpha_table(benchmark):
    def measure():
        rows = {}
        for name, cpu in PROCESSORS.items():
            tester = CoLocationTester(cpu)
            rows[name] = (analytic_alpha(cpu),
                          tester.estimate_alpha(UNIT_TESTS),
                          analytic_beta(cpu))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = format_table(
        f"Co-location test accuracy ({UNIT_TESTS:,} unit tests/CPU)",
        ["Processor", "alpha (exact)", "alpha (measured)",
         "beta (exact)"],
        [[name, f"{a:.2e}", f"{m:.2e}", f"{b:.2e}"]
         for name, (a, m, b) in rows.items()])
    emit("colocation_accuracy", table)

    alphas = [a for a, _, _ in rows.values()]
    # "results are on the same order of magnitude" and usable in practice
    assert max(alphas) < 1e-3
    spread = math.log10(max(alphas)) - math.log10(min(alphas))
    assert spread < 2.5
    for _, measured, _ in rows.values():
        assert measured < 5e-3
