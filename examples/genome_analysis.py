#!/usr/bin/env python3
"""Sensitive genome analysis as a two-party CCaaS session (§III, Fig 7).

A pharma company (code provider) owns a proprietary alignment pipeline;
a hospital (data owner) holds patient genome fragments.  Neither trusts
the cloud host.  The DEFLECTION flow:

* both parties attest the public bootstrap enclave (pinning MRENCLAVE);
* the provider ships its instrumented binary over its own encrypted
  channel — the hospital never sees the code, only its hash;
* the hospital approves the hash, uploads encrypted sequences, and
  receives the encrypted, padded alignment report.

Run:  python examples/genome_analysis.py
"""

import random
import struct

from repro.core import BootstrapEnclave
from repro.policy import PolicySet
from repro.service import CCaaSHost, CodeProvider, DataOwner
from repro.sgx import AttestationService

N = 96   # bases per sequence

PIPELINE_SRC = """
char seqa[%(n)d];
char seqb[%(n)d];
int prev[%(n)d + 1];
int curr[%(n)d + 1];
char out[24];

int align() {
    int n = %(n)d;
    int i, j;
    int gap = -2;
    for (j = 0; j <= n; j++) prev[j] = j * gap;
    for (i = 1; i <= n; i++) {
        curr[0] = i * gap;
        for (j = 1; j <= n; j++) {
            int m;
            if (seqa[i-1] == seqb[j-1]) m = prev[j-1] + 1;
            else m = prev[j-1] - 1;
            if (prev[j] + gap > m) m = prev[j] + gap;
            if (curr[j-1] + gap > m) m = curr[j-1] + gap;
            curr[j] = m;
        }
        for (j = 0; j <= n; j++) prev[j] = curr[j];
    }
    return prev[n];
}

int main() {
    __recv(seqa, %(n)d);
    __recv(seqb, %(n)d);
    int score = align();
    // bias so the record is non-negative base-256 (score >= -2n)
    int v = score + 1000000;
    int i;
    for (i = 0; i < 8; i++) { out[i] = v %% 256; v = v / 256; }
    __send(out, 8);
    return 0;
}
""" % {"n": N}


def main():
    print("== infrastructure: host + attestation service ==")
    boot = BootstrapEnclave(policies=PolicySet.full())
    host = CCaaSHost(boot, AttestationService())
    mrenclave = boot.mrenclave
    print(f"   published bootstrap MRENCLAVE: {mrenclave.hex()[:32]}...")

    print("== code provider: attest, compile, deliver ==")
    provider = CodeProvider(PIPELINE_SRC, PolicySet.full(),
                            name="pharma-co")
    provider.connect(host, mrenclave)
    measurement = provider.deliver(host)
    print(f"   delivered encrypted binary; hash "
          f"{measurement.hex()[:32]}...")

    print("== data owner: attest, approve, upload ==")
    rng = random.Random(7)
    seq_a = bytes(rng.choice(b"ACGT") for _ in range(N))
    seq_b = bytes(rng.choice(b"ACGT") for _ in range(N))
    owner = DataOwner(data=seq_a + seq_b, name="hospital",
                      approved_hashes=[measurement])
    owner.connect(host, mrenclave)
    owner.approve_code(measurement)
    owner.upload(host)
    print(f"   uploaded {2 * N} bases (encrypted)")

    print("== run + decrypt results ==")
    outcome = host.ecall_run()
    assert outcome.ok, outcome.detail
    (record,) = owner.decrypt_results(outcome)
    (biased,) = struct.unpack("<q", record)
    score = biased - 1000000
    print(f"   alignment score: {score}")
    print(f"   executed {outcome.result.steps:,} instructions / "
          f"{outcome.result.cycles:,.0f} cycles under P1-P6")
    print(f"   wire records seen by the host: "
          f"{[len(w) for w in outcome.sent_wire]} bytes (padded)")

    # reference check with a plain Python DP
    gap, prev = -2, [j * -2 for j in range(N + 1)]
    for i in range(1, N + 1):
        curr = [i * gap] + [0] * N
        for j in range(1, N + 1):
            d = prev[j - 1] + (1 if seq_a[i - 1] == seq_b[j - 1] else -1)
            curr[j] = max(d, prev[j] + gap, curr[j - 1] + gap)
        prev = curr
    assert score == prev[N], "enclave result must match reference"
    print("   verified against reference implementation. done.")


if __name__ == "__main__":
    main()
