#!/usr/bin/env python3
"""In-enclave HTTPS server under load (Fig 10) and the runtime
comparison (Fig 11).

The request handler really runs in the VM (compiled + verified under
the chosen policies); its measured cycle account drives a closed-loop
load simulation in the style of the paper's Siege runs.

Run:  python examples/https_server.py
"""

from repro.policy import PolicySet
from repro.runtimes import GRAPHENE, NATIVE, OCCLUM, \
    deflection_runtime_model
from repro.service import HttpsServerSim, LoadGenerator


def main():
    print("calibrating in-enclave handler (real VM runs)...")
    base = HttpsServerSim(PolicySet.none())
    full = HttpsServerSim(PolicySet.full())
    print(f"  baseline: {base.cycles_fixed:,.0f} cycles/request + "
          f"{base.cycles_per_byte:.2f} cycles/byte")
    print(f"  P1-P6:    {full.cycles_fixed:,.0f} cycles/request + "
          f"{full.cycles_per_byte:.2f} cycles/byte")

    print("\nFig 10: response time / throughput vs concurrency "
          "(4 KB responses)")
    print(f"{'conns':>6s} {'base ms':>9s} {'P1-P6 ms':>9s} "
          f"{'base rps':>10s} {'P1-P6 rps':>10s}")
    for conns in (25, 50, 75, 100, 150, 200):
        rb = LoadGenerator(base.service_time_us, workers=96).run(
            conns, max_requests=2000)
        rf = LoadGenerator(full.service_time_us, workers=96).run(
            conns, max_requests=2000)
        print(f"{conns:6d} {rb.mean_response_ms:9.3f} "
              f"{rf.mean_response_ms:9.3f} {rb.throughput_rps:10,.0f} "
              f"{rf.throughput_rps:10,.0f}")

    print("\nFig 11: transfer rate (MB/s) vs file size")
    ours = deflection_runtime_model()
    models = (NATIVE, GRAPHENE, OCCLUM, ours)
    header = "".join(f"{m.name:>14s}" for m in models)
    print(f"{'size':>8s}{header}")
    for size in (1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20):
        row = "".join(f"{m.transfer_rate_mbps(size):14.1f}"
                      for m in models)
        print(f"{size:8d}{row}")
    ratio = ours.relative_to(NATIVE, 1 << 20)
    print(f"\nDEFLECTION reaches {100 * ratio:.0f}% of native on 1 MB "
          f"files (paper: 77%) while enforcing P0-P5; the libOS "
          f"runtimes enforce none of the policies.")


if __name__ == "__main__":
    main()
