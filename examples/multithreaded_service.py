#!/usr/bin/env python3
"""Multi-threaded enclave service (the paper's §VII extension).

Four TCS slots serve four clients concurrently inside one enclave.
The shadow-stack pointer lives in the reserved R13 register — the
paper's own sketch for making CFI metadata TOCTOU-safe across threads
("make all CFI metadata to be kept in the register") — and each thread
gets a private stack and shadow-stack slice.

The demo also shows blast-radius containment: one thread turning
malicious is trapped by its annotations while the other three finish
their work normally.

Run:  python examples/multithreaded_service.py
"""

import struct

from repro.compiler import compile_source
from repro.core import BootstrapEnclave
from repro.policy import PolicySet
from repro.sgx import EnclaveConfig, PAGE_SIZE

SERVICE = """
int score(int value) {
    int acc = 0;
    int i;
    for (i = 1; i <= value % 50 + 10; i++) acc += i * i % 97;
    return acc;
}

int main() {
    // stack-local request buffer: each thread's stack slice is private,
    // so concurrent requests cannot race (globals are shared across
    // threads — the paper's per-thread memory isolation policy is
    // future work, so services must keep per-request state local)
    char req[16];
    __recv(req, 16);
    int client = req[0];
    int amount = 0;
    int i;
    for (i = 8; i >= 1; i--) amount = amount * 256 + req[i];
    if (client == 13) {
        // the rogue client's request triggers a data-exfiltration bug
        int *p = 0x100000;
        *p = amount;
    }
    __report(client);
    __report(score(amount));
    return 0;
}
"""


def request(client: int, amount: int) -> bytes:
    return bytes([client]) + struct.pack("<Q", amount)[:8] + b"\x00" * 7


def main():
    policies = PolicySet.multithreaded()
    print(f"policy contract: {policies.describe()} "
          f"(shadow-stack pointer in R13)")
    config = EnclaveConfig(num_threads=4, stack_size=16 * PAGE_SIZE)
    boot = BootstrapEnclave(policies=policies, config=config)
    boot.receive_binary(compile_source(SERVICE, policies).serialize())
    print(f"enclave has {config.num_threads} TCS slots; binary verified "
          f"({sum(boot.verified.annotation_counts.values())} annotations)")

    print("\n== four clients, one of them malicious ==")
    requests = [request(1, 4200), request(2, 77), request(13, 0xDEAD),
                request(4, 990)]
    outcomes = boot.run_threads(requests, quantum=200)
    for tid, outcome in enumerate(outcomes):
        if outcome.ok:
            print(f"  thread {tid}: ok    — client {outcome.reports[0]} "
                  f"scored {outcome.reports[1]} "
                  f"({outcome.result.steps} instructions)")
        else:
            print(f"  thread {tid}: {outcome.status} — "
                  f"{outcome.violation_name or outcome.detail}")
    assert outcomes[2].status == "violation"
    assert all(outcomes[i].ok for i in (0, 1, 3))
    assert boot.enclave.space.untrusted_writes == []
    print("\nrogue thread trapped mid-flight; nothing left the enclave;"
          "\nthe other three clients were served normally.")


if __name__ == "__main__":
    main()
