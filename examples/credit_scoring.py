#!/usr/bin/env python3
"""Privacy-preserving credit evaluation with policy-level cost sweep.

The paper's motivating example: a customer's transactions are exposed
only to an enclave running credit-evaluation code in compliance with
public privacy rules.  This example scores a batch of applicants under
every policy setting of the evaluation and prints the Fig 9-style
overhead readout.

Run:  python examples/credit_scoring.py
"""

from repro.bench import PAPER_SETTINGS, overhead_matrix, percent
from repro.workloads import get_workload

RECORDS = 400


def main():
    workload = get_workload("credit_scoring")
    print(f"scoring {RECORDS} applicant records "
          f"({workload.description})\n")
    matrix = overhead_matrix(workload, RECORDS)

    print(f"{'setting':10s} {'cycles':>12s} {'overhead':>9s} "
          f"{'approved':>9s} {'checksum':>11s}")
    for setting in PAPER_SETTINGS:
        result = matrix[setting]
        overhead = ("--" if setting == "baseline"
                    else percent(result.overhead_pct))
        print(f"{setting:10s} {result.cycles:12,.0f} {overhead:>9s} "
              f"{result.reports[1]:>9d} {result.reports[2]:>11d}")

    base = matrix["baseline"]
    print(f"\nall settings agree on every output "
          f"(differential check): {base.reports}")
    print(f"model beats chance: self-check = {base.reports[0]}")
    print("\nreading guide: P1 adds store guards; +P2 stack-pointer "
          "checks; P1-P5 adds CFI + shadow stack; P1-P6 adds the "
          "HyperRace AEX markers (side-channel mitigation).")


if __name__ == "__main__":
    main()
