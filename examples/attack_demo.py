#!/usr/bin/env python3
"""Attack demonstration: each policy is load-bearing.

For four attack classes this script runs the same malicious binary
twice — once with the defending policy enabled (the annotation traps it)
and once without (the attack visibly succeeds: data leaves the enclave,
code gets injected, control flow is hijacked).

Run:  python examples/attack_demo.py
"""

from repro.compiler import compile_source
from repro.core import BootstrapEnclave
from repro.policy import PolicySet
from repro.policy.magic import VIOLATION_NAMES
from repro.vm.interrupts import AexSchedule

LEAK = """
int main() {
    int *p = 0x100000;        // untrusted memory, outside ELRANGE
    *p = 0x5EC2E75;           // the secret
    return 0;
}
"""

CODE_INJECTION = """
int victim() { return 7; }
int main() {
    int *p = &victim;
    p[0] = 0x902;             // TRAP 9 machine code
    return victim();
}
"""

ROP = """
int evil(int x) { __report(666); while (1) { x++; } return x; }
int victim() {
    int buf[2];
    buf[3] = &evil;           // smash the return address
    return buf[0];
}
int main() { victim(); __report(1); return 0; }
"""

BUSY = """
int main() {
    int i; int acc = 0;
    for (i = 0; i < 20000; i++) acc += i;
    __report(acc);
    return 0;
}
"""


def run(source, setting, aex=None, threshold=10):
    policies = PolicySet.parse(setting)
    boot = BootstrapEnclave(policies=policies, aex_threshold=threshold)
    boot.receive_binary(compile_source(source, policies).serialize())
    outcome = boot.run(aex_schedule=aex, max_steps=2_000_000)
    return boot, outcome


def banner(title):
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def main():
    banner("1. data exfiltration by direct store (P1)")
    boot, outcome = run(LEAK, "P1")
    print(f"  P1 on : {outcome.status} — "
          f"{VIOLATION_NAMES[outcome.violation_code]}")
    boot, outcome = run(LEAK, "baseline")
    leaked = boot.enclave.space.load_u64(0x100000)
    print(f"  P1 off: {outcome.status} — secret {leaked:#x} now in "
          f"untrusted memory ({len(boot.enclave.space.untrusted_writes)}"
          f" outside writes)")

    banner("2. runtime code injection (P4 / software DEP)")
    _, outcome = run(CODE_INJECTION, "P1-P5")
    print(f"  P4 on : {outcome.status} — "
          f"{VIOLATION_NAMES[outcome.violation_code]}")
    _, outcome = run(CODE_INJECTION, "P1")
    print(f"  P4 off: injected instruction executed "
          f"(trap code {outcome.violation_code} came from the "
          f"attacker's bytes)")

    banner("3. ROP via return-address overwrite (P5 shadow stack)")
    _, outcome = run(ROP, "P1-P5")
    print(f"  P5 on : {outcome.status} — "
          f"{VIOLATION_NAMES[outcome.violation_code]}; attacker code "
          f"never ran (reports={outcome.reports})")
    _, outcome = run(ROP, "P1")
    print(f"  P5 off: control flow diverted — attacker reported "
          f"{outcome.reports}")

    banner("4. AEX interrupt storm (P6 / HyperRace)")
    _, outcome = run(BUSY, "P1-P6", aex=AexSchedule.attack())
    print(f"  P6 on : {outcome.status} — "
          f"{VIOLATION_NAMES[outcome.violation_code]} after "
          f"{outcome.result.aex_events} AEXes")
    _, outcome = run(BUSY, "P1-P5", aex=AexSchedule.attack())
    print(f"  P6 off: {outcome.status} — {outcome.result.aex_events} "
          f"AEXes went unnoticed (side channel open)")

    print("\nevery defense shown above is an *in-binary annotation*")
    print("verified by the bootstrap enclave before execution.")


if __name__ == "__main__":
    main()
