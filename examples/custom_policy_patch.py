#!/usr/bin/env python3
"""Quick-patching a 1-day vulnerability with a pluggable policy (§III).

The paper: "DEFLECTION can make the quick patch possible on software
level, like the way people coping with 1-day vulnerabilities -
emergency quick fix."

Scenario: a deployed service divides by a client-controlled value.  A
malicious request makes the enclave take an uncontrolled fault.  Rather
than waiting for the provider to fix and re-ship the proprietary code,
the parties agree on an *additional policy*: every register division
must be guarded against a zero divisor.  The policy plugs into the
producer (one extra pass) and the verifier (one extra template) — no
change to the service source, no change to the bootstrap TCB.

Run:  python examples/custom_policy_patch.py
"""

from repro.compiler import compile_source
from repro.core import BootstrapEnclave
from repro.errors import VerificationError
from repro.policy import PolicySet
from repro.policy.custom import div_by_zero_guard

VULNERABLE_SERVICE = """
char req[16];
int main() {
    __recv(req, 16);
    int principal = req[0] * 1000;
    int installments = req[1];          // attacker-controlled!
    __report(principal / installments); // CVE-2021-DIVIDE
    return 0;
}
"""


def main():
    policies = PolicySet.p1_p5()

    print("== day 0: the vulnerability ==")
    boot = BootstrapEnclave(policies=policies)
    boot.receive_binary(
        compile_source(VULNERABLE_SERVICE, policies).serialize())
    boot.receive_userdata(bytes([5, 12]))
    print(f"  honest request:    {boot.run().reports} (ok)")
    boot.receive_userdata(bytes([5, 0]))
    crash = boot.run()
    print(f"  malicious request: {crash.status} — {crash.detail}")
    print("  -> an uncontrolled fault inside the enclave")

    print("\n== day 1: the quick patch — plug in a policy ==")
    patch = div_by_zero_guard()
    patched_boot = BootstrapEnclave(policies=policies, custom=[patch])
    print(f"  new contract: {policies.describe()} + {patch.name} "
          f"(violation code {patch.violation_code})")

    print("  the old binary no longer passes verification:")
    try:
        patched_boot.receive_binary(
            compile_source(VULNERABLE_SERVICE, policies).serialize())
    except VerificationError as exc:
        print(f"    rejected: {exc}")

    print("  the provider re-instruments (same source, one more pass):")
    patched_blob = compile_source(VULNERABLE_SERVICE, policies,
                                  custom=[patch]).serialize()
    patched_boot.receive_binary(patched_blob)
    patched_boot.receive_userdata(bytes([5, 12]))
    print(f"    honest request:    {patched_boot.run().reports} (ok)")
    patched_boot.receive_userdata(bytes([5, 0]))
    trapped = patched_boot.run()
    print(f"    malicious request: {trapped.status} — trapped cleanly "
          f"with code {trapped.violation_code} before the fault")
    assert trapped.violation_code == patch.violation_code
    print("\npatched without touching the proprietary source or the "
          "bootstrap TCB.")


if __name__ == "__main__":
    main()
