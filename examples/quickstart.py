#!/usr/bin/env python3
"""Quickstart: verify and run a private binary inside the enclave.

The minimal DEFLECTION round trip:

1. the *code producer* (untrusted) compiles a MiniC program and
   instruments it with security annotations for the agreed policies;
2. the *bootstrap enclave* (trusted, attested) loads the relocatable
   binary, disassembles it with the recursive-descent disassembler,
   verifies every annotation, rewrites the placeholder immediates, and
   only then transfers control;
3. execution runs under the P0 OCall wrappers — results come back
   through ``__report``/``__send``.

Run:  python examples/quickstart.py
"""

from repro.compiler import CodeGenerator
from repro.core import BootstrapEnclave
from repro.errors import VerificationError
from repro.policy import PolicySet

SERVICE_CODE = """
// A proprietary scoring function the data owner never sees.
int score(int value) {
    int acc = 0;
    int i;
    for (i = 1; i <= value; i++) acc += i * i;
    return acc % 10007;
}

char buf[16];

int main() {
    int n = __recv(buf, 16);
    int x = 0;
    int i;
    for (i = n - 1; i >= 0; i--) x = x * 10 + (buf[i] - '0');
    __report(score(x));
    return 0;
}
"""


def main():
    policies = PolicySet.full()   # P0..P6, the paper's strongest setting

    print("== 1. untrusted producer compiles + instruments ==")
    generator = CodeGenerator(policies)
    blob = generator.compile(SERVICE_CODE).serialize()
    print(f"   relocatable object: {len(blob)} bytes, "
          f"policies {policies.describe()}")

    print("== 2. bootstrap enclave: load -> RDD -> verify -> rewrite ==")
    boot = BootstrapEnclave(policies=policies)
    print(f"   bootstrap MRENCLAVE: {boot.mrenclave.hex()[:32]}...")
    measurement = boot.receive_binary(blob)
    print(f"   service-code hash reported to the data owner: "
          f"{measurement.hex()[:32]}...")
    counts = boot.verified.annotation_counts
    print(f"   verified annotations: {dict(sorted(counts.items()))}")

    print("== 3. run on user data ==")
    boot.receive_userdata(b"24")   # little-endian digits: x = 42
    outcome = boot.run()
    print(f"   status: {outcome.status}, reports: {outcome.reports}, "
          f"{outcome.result.steps} instructions, "
          f"{outcome.result.cycles:,.0f} cycles")
    expected = sum(i * i for i in range(1, 43)) % 10007
    assert outcome.reports == [expected]

    print("== 4. a tampered binary is rejected before it can run ==")
    tampered = bytearray(blob)
    tampered[len(tampered) // 2] ^= 0x41
    try:
        boot.receive_binary(bytes(tampered))
        print("   (this tamper landed somewhere harmless)")
    except Exception as exc:
        print(f"   rejected: {type(exc).__name__}: {exc}")

    print("== 5. an unannotated binary is rejected by the verifier ==")
    bare = CodeGenerator(PolicySet.none()).compile(SERVICE_CODE)
    try:
        boot.receive_binary(bare.serialize())
    except VerificationError as exc:
        print(f"   rejected: {exc}")

    print("done.")


if __name__ == "__main__":
    main()
