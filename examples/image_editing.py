#!/usr/bin/env python3
"""Image editing as a service — the paper's opening example.

A user's private photo is processed by a proprietary filter pipeline
inside the enclave.  This example also demonstrates the §VII time-
blurring extension: with padding on, two very different images produce
the *same* observable completion time, closing the processing-time
covert channel.

Run:  python examples/image_editing.py
"""

from repro.bench.harness import compile_workload
from repro.core import BootstrapEnclave
from repro.core.bootstrap import P0Config
from repro.policy import PolicySet
from repro.workloads import get_workload

N = 24


def render(image: bytes, n: int) -> str:
    ramp = " .:-=+*#%@"
    rows = []
    for y in range(0, n, 2):
        row = "".join(ramp[min(9, image[y * n + x] * 10 // 256)]
                      for x in range(n))
        rows.append("   " + row)
    return "\n".join(rows)


def main():
    workload = get_workload("image_filter")
    policies = PolicySet.full()
    blob = compile_workload(workload, policies.label, N)

    boot = BootstrapEnclave(
        policies=policies,
        p0=P0Config(pad_cycles_quantum=5_000_000))  # time blurring on
    boot.receive_binary(blob)

    image = workload.input_bytes(N)
    print("input image (private):")
    print(render(image, N))

    boot.receive_userdata(image)
    outcome = boot.run()
    assert outcome.ok and outcome.reports[0] == 1
    processed = outcome.sent_plaintext[0]
    print("\nprocessed inside the enclave (blur + threshold):")
    print(render(processed, N))
    print(f"\nwhite pixels: {outcome.reports[1]}, "
          f"histogram checksum: {outcome.reports[2]}")
    print(f"true cycles: {outcome.result.cycles:,.0f}  ->  host "
          f"observes {outcome.observable_cycles:,.0f} (padded)")

    # time blurring: a trivial all-black image takes the same
    # *observable* time
    boot.receive_userdata(bytes(N * N))
    flat = boot.run()
    print(f"flat image true cycles: {flat.result.cycles:,.0f}  ->  "
          f"host observes {flat.observable_cycles:,.0f}")
    assert flat.observable_cycles == outcome.observable_cycles
    print("observable times identical: processing-time channel closed.")


if __name__ == "__main__":
    main()
