"""Slice-stepped execution tracing — a developer aid.

Lives outside the bootstrap module because nothing on the provisioning
or execution hot path depends on it: the tracer re-renders instructions
from the decode-once stream (falling back to decoding live memory) and
single-steps the CPU, which only debugging flows ever want.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import CpuFault, EnclaveError, MemoryFault, PolicyViolation
from ..isa.disassembler import format_instruction
from ..isa.encoding import decode_instruction
from ..vm.costmodel import CostModel
from ..vm.cpu import ExecResult


def run_traced(boot, max_instructions: int = 200,
               cost_model: Optional[CostModel] = None):
    """Single-step ``boot``'s target, returning ``(outcome, trace)``.

    ``trace`` is a list of disassembly lines (``addr: mnemonic``)
    for the first ``max_instructions`` executed — a developer aid
    (the hot path has no tracing hooks; this uses slice stepping).
    Lines come from the decode-once provisioning stream, so magic
    annotation immediates appear as their pre-rewrite placeholder
    constants; addresses outside the stream fall back to decoding
    live memory.
    """
    from .outcome import RunOutcome, _ThreadIO

    if boot.loaded is None or boot.verified is None:
        raise EnclaveError("no verified binary provisioned")
    boot._reset_runtime_cells()
    outcome = RunOutcome(status="ok")
    io = _ThreadIO(boot._input, 0, outcome)
    boot._budget = boot.p0.max_output_bytes
    cpu = boot._make_cpu(0, io, None, cost_model)
    trace: List[str] = []
    space = boot.enclave.space
    code = boot.verified.code
    code_base = boot.loaded.code_base
    try:
        while len(trace) < max_instructions and not cpu.halted:
            ins = None
            if code is not None:
                idx = code.index_of.get(cpu.rip - code_base)
                if idx is not None:
                    ins = code.stream[idx][1]
            if ins is None:
                try:
                    ins, _ = decode_instruction(
                        space.enclave_view(),
                        cpu.rip - space.enclave_base)
                except Exception:
                    ins = None
            if ins is not None:
                trace.append(f"{cpu.rip:#x}: "
                             f"{format_instruction(ins)}")
            else:
                trace.append(f"{cpu.rip:#x}: <undecodable>")
            cpu.run(slice_steps=1)
        if not cpu.halted:
            trace.append("... (truncated)")
            outcome.status = "truncated"
    except PolicyViolation as exc:
        outcome.status = "violation"
        outcome.violation_code = exc.code
        outcome.detail = str(exc)
    except (MemoryFault, CpuFault) as exc:
        outcome.status = "fault"
        outcome.detail = str(exc)
    outcome.result = ExecResult(cpu.steps, cpu.cycles, cpu.rip,
                                cpu.aex_events, cpu.regs[0])
    return outcome, trace
