"""Cross-enclave provenance chains for multi-enclave pipelines.

When one verified enclave's sealed output feeds another enclave as
input, the consumer must be able to check *where those bytes came
from* before trusting them: which measured enclave produced them
(MRENCLAVE), under which verifier configuration (the policy
fingerprint, including the static-proof tier), at which point of that
enclave's tamper-evident history (audit head), and from which exact
input (digest continuity hop to hop).  This module provides the
tamper-evident carrier for that evidence:

* :class:`ProvenanceLink` — one hop's worth of evidence, bound into an
  HMAC chain: every link's MAC covers the previous link's MAC plus the
  canonical encoding of its own fields, so a break, splice or reorder
  anywhere upstream invalidates everything downstream.
* :class:`ProvenanceChain` — the producer-side builder.  It also keeps
  the links discarded by a stale-chain rerun (``truncate_from``) so
  fault-injection can *replay* them — the epoch counter embedded in
  every link is what makes such a replay detectable even though the
  stale link's MAC still verifies at its old position.
* :func:`verify_links` — the consumer-side check, fail closed on any
  of: MAC mismatch, hop-order violation, chunk mismatch, stale epoch,
  input/output digest discontinuity, or a truncated chain.

The chain key is derived per pipeline from a shared session secret —
what the RA-TLS session between the orchestrator and each verified
stage would establish — so a host relaying handoffs can neither forge
nor re-MAC links ("Designing a Provenance Analysis for SGX Enclaves",
PAPERS.md, motivates binding measured identity per hop; Guardian's
orderliness validation motivates the strict hop-order rule).
"""

from __future__ import annotations

import hashlib
import hmac
import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ..crypto.hkdf import hkdf
from ..errors import ProvenanceError

#: Domain-separation label for chain keys and genesis heads.
_DOMAIN = b"deflection-provenance-v1"

#: Link kinds: a completed hop, or an explicit migration splice (the
#: stage was re-provisioned on a healthy platform before running).
LINK_KINDS = ("hop", "migrated")


def chain_key(secret: bytes, pipeline_id: str) -> bytes:
    """Per-pipeline HMAC key from the shared session secret."""
    return hkdf(secret, hashlib.sha256(pipeline_id.encode()).digest(),
                _DOMAIN + b"-key", 32)


def genesis_head(pipeline_id: str) -> bytes:
    """The ``prev_mac`` of the first link of a chain."""
    return hashlib.sha256(_DOMAIN + b":" + pipeline_id.encode()).digest()


@dataclass(frozen=True)
class ProvenanceLink:
    """One hop's evidence, MAC-bound into the pipeline chain."""

    pipeline_id: str
    hop: int
    stage: str
    kind: str                 # "hop" | "migrated"
    mrenclave: str            # hex MRENCLAVE of the producing enclave
    verifier: str             # sha256 hex of the verifier fingerprint
    audit_head: str           # hex audit-chain head at link time
    input_digest: str         # sha256 hex of the hop's input bytes
    output_digest: str        # sha256 hex of the hop's output bytes
    chunk: int = -1           # streaming chunk index; -1 for batch
    epoch: int = 0            # bumped by every discard-and-rerun
    detail: str = ""          # e.g. "platform-a -> platform-b"
    mac: str = ""             # hex HMAC over prev_mac + canonical()

    def canonical(self) -> bytes:
        """Deterministic MAC input: every field except the MAC."""
        doc = {k: v for k, v in self.__dict__.items() if k != "mac"}
        return json.dumps(doc, sort_keys=True,
                          separators=(",", ":")).encode()

    def to_dict(self) -> dict:
        return dict(self.__dict__)

    @classmethod
    def from_dict(cls, doc: dict) -> "ProvenanceLink":
        return cls(**doc)


def _link_mac(key: bytes, prev_mac: bytes,
              link: ProvenanceLink) -> bytes:
    return hmac.new(key, prev_mac + link.canonical(),
                    hashlib.sha256).digest()


@dataclass
class ProvenanceChain:
    """Producer-side chain builder for one pipeline work item."""

    key: bytes
    pipeline_id: str
    links: List[ProvenanceLink] = field(default_factory=list)
    #: Links removed by :meth:`truncate_from` — kept so the chaos
    #: harness can replay a rolled-back hop output; the epoch counter
    #: is what must make that replay detectable.
    discarded: List[ProvenanceLink] = field(default_factory=list)

    @property
    def head(self) -> bytes:
        if self.links:
            return bytes.fromhex(self.links[-1].mac)
        return genesis_head(self.pipeline_id)

    def append(self, **fields) -> ProvenanceLink:
        """MAC and append a new link; returns the completed link."""
        link = ProvenanceLink(pipeline_id=self.pipeline_id, **fields)
        if link.kind not in LINK_KINDS:
            raise ProvenanceError(f"unknown link kind {link.kind!r}")
        mac = _link_mac(self.key, self.head, link)
        link = replace(link, mac=mac.hex())
        self.links.append(link)
        return link

    def truncate_from(self, hop: int) -> List[ProvenanceLink]:
        """Discard every link of ``hop`` and later (stale-chain
        discard-and-rerun).  The removed links move to
        :attr:`discarded`; the chain head rolls back so the rerun's
        replacement link occupies the exact same MAC position — which
        is why the *epoch*, not the MAC, is what invalidates the old
        link."""
        keep = [l for l in self.links if l.hop < hop]
        dropped = [l for l in self.links if l.hop >= hop]
        self.links = keep
        self.discarded.extend(dropped)
        return dropped


def remac_links(key: bytes, pipeline_id: str,
                links: List[ProvenanceLink]) -> List[ProvenanceLink]:
    """Re-MAC a link stream under ``key`` — the *splice* attack: a host
    grafting one pipeline's history onto another can rebuild a fully
    self-consistent chain, but only under a key it knows.  Verification
    under the real chain key must reject the graft at the first link.
    Also used by tests to build known-good chains from raw links."""
    out: List[ProvenanceLink] = []
    prev = genesis_head(pipeline_id)
    for link in links:
        candidate = replace(link, mac="")
        mac = _link_mac(key, prev, candidate)
        candidate = replace(candidate, mac=mac.hex())
        out.append(candidate)
        prev = mac
    return out


def verify_links(key: bytes, pipeline_id: str,
                 links: List[ProvenanceLink], *,
                 expect_hops: Optional[int] = None,
                 expect_chunk: Optional[int] = None,
                 expect_epochs: Optional[Dict[int, int]] = None,
                 input_digest: Optional[str] = None,
                 final_digest: Optional[str] = None) -> None:
    """Consumer-side verification of a presented link stream.

    Raises :class:`ProvenanceError` (fail closed) on:

    * a MAC mismatch anywhere — corruption, a splice under a foreign
      key, or any reordering (every MAC covers its predecessor's);
    * a hop-order violation — ``hop`` links must arrive 0,1,2,...;
      a ``migrated`` link must sit immediately before its own hop's
      link (the stage was re-provisioned, then ran);
    * a chunk mismatch (``expect_chunk``) — a link from another
      streaming chunk presented for this one;
    * a stale epoch (``expect_epochs``) — a rolled-back hop output
      re-presented after a discard-and-rerun;
    * an input/output digest discontinuity — hop ``k``'s claimed input
      must be exactly hop ``k-1``'s output (and hop 0's the pipeline
      input when ``input_digest`` is given);
    * a truncated chain — fewer than ``expect_hops`` completed hops;
    * ``final_digest`` not matching the last hop's output — the
      presented payload bytes are not the bytes the chain vouches for.
    """
    prev = genesis_head(pipeline_id)
    expected_hop = 0
    prev_output = input_digest
    hop_links = 0
    for index, link in enumerate(links):
        if link.pipeline_id != pipeline_id:
            raise ProvenanceError(
                f"link {index}: pipeline id {link.pipeline_id!r} does "
                f"not match {pipeline_id!r}")
        want = _link_mac(key, prev, link)
        if not hmac.compare_digest(want.hex(), link.mac):
            raise ProvenanceError(
                f"link {index} (hop {link.hop}): MAC mismatch — "
                f"corrupted, spliced or reordered chain")
        prev = bytes.fromhex(link.mac)
        if expect_chunk is not None and link.chunk != expect_chunk:
            raise ProvenanceError(
                f"link {index}: chunk {link.chunk} presented for "
                f"chunk {expect_chunk}")
        if expect_epochs is not None and \
                link.epoch != expect_epochs.get(link.hop, 0):
            raise ProvenanceError(
                f"link {index} (hop {link.hop}): stale epoch "
                f"{link.epoch}, expected "
                f"{expect_epochs.get(link.hop, 0)} — rolled-back hop "
                f"output re-presented")
        if link.kind == "migrated":
            if link.hop != expected_hop:
                raise ProvenanceError(
                    f"link {index}: migrated link for hop {link.hop} "
                    f"out of order (expected hop {expected_hop})")
            continue
        if link.kind != "hop":
            raise ProvenanceError(
                f"link {index}: unknown kind {link.kind!r}")
        if link.hop != expected_hop:
            raise ProvenanceError(
                f"link {index}: hop {link.hop} out of order "
                f"(expected hop {expected_hop})")
        if prev_output is not None and \
                link.input_digest != prev_output:
            raise ProvenanceError(
                f"link {index} (hop {link.hop}): input digest does "
                f"not continue the upstream output — handoff bytes "
                f"substituted")
        prev_output = link.output_digest
        expected_hop += 1
        hop_links += 1
    if expect_hops is not None and hop_links != expect_hops:
        raise ProvenanceError(
            f"truncated chain: {hop_links} completed hops presented, "
            f"expected {expect_hops}")
    if final_digest is not None and prev_output != final_digest:
        raise ProvenanceError(
            "presented payload does not match the chain's final "
            "output digest")
