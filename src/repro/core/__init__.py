"""The code consumer: everything inside the bootstrap enclave's TCB.

This package is the paper's contribution — deliberately small (the
paper: loader < 600 LoC, verifier < 700 LoC; `repro.tcb`
measures ours):

* :mod:`rdd` — the clipped recursive-descent disassembler (the role
  Capstone's stripped core plays in the paper);
* :mod:`loader` — dynamic loading/relocation onto RWX pages, guard
  pages, shadow stack and valid-target byte map setup;
* :mod:`verifier` — the just-enough policy-compliance verifier that
  pattern-checks every security annotation;
* :mod:`rewriter` — the immediate-operand rewriter that patches magic
  placeholders with real enclave addresses;
* :mod:`bootstrap` — the bootstrap enclave tying it all together:
  attestation, delivery ECalls, P0 OCall wrappers, execution.
"""

from .rdd import DisassembledCode, recursive_descent
from .loader import DynamicLoader, LoadedBinary
from .verifier import PolicyVerifier, VerifiedBinary
from .rewriter import ImmRewriter, build_value_map
from .bootstrap import BootstrapEnclave, RunOutcome

__all__ = [
    "DisassembledCode", "recursive_descent",
    "DynamicLoader", "LoadedBinary",
    "PolicyVerifier", "VerifiedBinary",
    "ImmRewriter", "build_value_map",
    "BootstrapEnclave", "RunOutcome",
]
