"""The pre-decode-once provisioning pipeline, kept as an oracle.

This module preserves the seed implementation of the code-consumer
pipeline — the multi-walk recursive descent, the per-instruction
``_try_annotation`` if-chain verifier and the per-site immediate
rewriter — exactly as it was before the decode-once rework.  It plays
the same role for provisioning that the single-step CPU engine plays
for execution (see DESIGN.md §3b): a slow, simple reference the
optimized pipeline is differentially checked against.  The provisioning
benchmark (:mod:`repro.bench.provision`) times both paths and asserts
the verdicts and the rewritten images are byte-identical on every cell;
the equivalence tests in ``tests/test_pipeline_equivalence.py`` do the
same over every registered workload.

Nothing here runs on the hot path and none of it is part of the
measured TCB (``repro.tcb`` counts ``core/rdd.py`` and
``core/verifier.py``; the oracle only has to be *faithful*, not small).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..errors import EncodingError, VerificationError
from ..isa.encoding import decode_instruction
from ..isa.instructions import (
    COND_JUMPS, NO_FALLTHROUGH_OPS, Instruction, Mem, Op,
    is_indirect_branch, is_store, writes_rsp_explicitly,
)
from ..isa.registers import RESERVED_REGS
from ..policy.magic import MAGIC
from ..policy.reference import match_pattern
from ..policy.templates import AnnotationKind, MatchResult
from .rdd import DisassembledCode
from .verifier import PolicyVerifier, VerifiedBinary


def legacy_recursive_descent(text: bytes, entry: int,
                             roots: Iterable[int] = ()) \
        -> DisassembledCode:
    """Seed RDD: per-call :func:`decode_instruction`, unconditional
    target re-enqueueing, append-built stream.  Only ``stream`` and
    ``index_of`` are populated — exactly what the seed produced."""
    visited: Dict[int, int] = {}      # offset -> length
    worklist: List[int] = [entry]
    for root in roots:
        worklist.append(root)
    decoded: Dict[int, Instruction] = {}

    while worklist:
        pos = worklist.pop()
        while pos not in visited:
            if not 0 <= pos < len(text):
                raise VerificationError(
                    "control flow escapes the text section", pos)
            try:
                instr, length = decode_instruction(text, pos)
            except EncodingError as exc:
                raise VerificationError(f"undecodable: {exc}", pos) \
                    from exc
            visited[pos] = length
            decoded[pos] = instr
            op = instr.op
            if op == Op.JMP or op == Op.CALL or op in COND_JUMPS:
                target = pos + length + instr.operands[0]
                if not 0 <= target < len(text):
                    raise VerificationError(
                        f"branch target {target:#x} outside text", pos)
                worklist.append(target)
            if op in NO_FALLTHROUGH_OPS:
                break
            pos += length

    result = DisassembledCode()
    last_end = 0
    for offset in sorted(visited):
        if offset < last_end:
            raise VerificationError(
                "overlapping instruction decodings", offset)
        last_end = offset + visited[offset]
        result.index_of[offset] = len(result.stream)
        result.stream.append((offset, decoded[offset]))
    return result


class LegacyPolicyVerifier(PolicyVerifier):
    """Seed verifier: an O(n) scan that runs the ~8-test
    ``_try_annotation`` predicate chain on every instruction and
    re-derives branch targets from instruction lengths."""

    def verify(self, text: bytes, entry: int,
               branch_targets: Iterable[int] = ()) -> VerifiedBinary:
        branch_targets = sorted(set(branch_targets))
        code = legacy_recursive_descent(text, entry, branch_targets)
        return self._legacy_verify_stream(code, entry, branch_targets)

    # -- annotation recognition (seed if-chain) -----------------------

    def _try_annotation(self, stream, index: int,
                        trap_pads) -> Tuple[Optional[str],
                                            Optional[MatchResult]]:
        _, ins = stream[index]
        op = ins.op
        if op == Op.LEA and self.policies.any_store_guard and \
                ins.operands[0] == 15:
            m = match_pattern(self._store_pat, stream, index, trap_pads)
            if m.matched:
                return AnnotationKind.STORE_GUARD, m
            raise VerificationError(
                f"malformed store guard: {m.reason}", stream[index][0])
        if op == Op.MOV_RI and ins.operands[0] == 14:
            imm = ins.operands[1]
            policy = self._custom_by_marker.get(imm)
            if policy is not None:
                m = match_pattern(policy.guard_pattern(), stream, index,
                                  trap_pads)
                if m.matched:
                    return f"custom:{policy.name}", m
                raise VerificationError(
                    f"malformed {policy.name} guard: {m.reason}",
                    stream[index][0])
            if imm == MAGIC["ssa_marker"] and self.policies.p6:
                m = match_pattern(self._p6_pat, stream, index, trap_pads)
                if m.matched:
                    return AnnotationKind.P6_GUARD, m
                raise VerificationError(
                    f"malformed P6 guard: {m.reason}", stream[index][0])
            if imm == MAGIC["ss_cell"] and self.policies.p5 and \
                    not self.policies.mt_safe:
                m = match_pattern(self._epilogue_pat, stream, index,
                                  trap_pads)
                if m.matched:
                    return AnnotationKind.EPILOGUE, m
                m = match_pattern(self._prologue_pat, stream, index,
                                  trap_pads)
                if m.matched:
                    return AnnotationKind.PROLOGUE, m
                raise VerificationError(
                    f"malformed shadow-stack annotation: {m.reason}",
                    stream[index][0])
            if imm == MAGIC["ss_top"] and self.policies.p5 and \
                    self.policies.mt_safe:
                m = match_pattern(self._prologue_pat, stream, index,
                                  trap_pads)
                if m.matched:
                    return AnnotationKind.PROLOGUE, m
                raise VerificationError(
                    f"malformed MT shadow prologue: {m.reason}",
                    stream[index][0])
            if imm == MAGIC["stack_lo"] and self.policies.p2:
                m = match_pattern(self._rsp_pat, stream, index, trap_pads)
                if m.matched:
                    return AnnotationKind.RSP_GUARD, m
                raise VerificationError(
                    f"malformed RSP guard: {m.reason}", stream[index][0])
        if op == Op.MOV_RR and ins.operands[0] == 14 and self.policies.p5:
            m = match_pattern(self._indirect_pat, stream, index, trap_pads)
            if m.matched:
                return AnnotationKind.INDIRECT, m
            raise VerificationError(
                f"malformed indirect-branch guard: {m.reason}",
                stream[index][0])
        if op == Op.SUB_RI and ins.operands[0] == 13 and \
                self.policies.p5 and self.policies.mt_safe:
            m = match_pattern(self._epilogue_pat, stream, index,
                              trap_pads)
            if m.matched:
                return AnnotationKind.EPILOGUE, m
            raise VerificationError(
                f"malformed MT shadow epilogue: {m.reason}",
                stream[index][0])
        return None, None

    @staticmethod
    def _uses_reserved(ins: Instruction) -> bool:
        sig = ins.spec.sig
        regs: List[int] = []
        if sig == "r":
            regs = [ins.operands[0]]
        elif sig == "rr":
            regs = list(ins.operands)
        elif sig in ("ri64", "ri32", "rm"):
            regs = [ins.operands[0]]
        elif sig == "mr":
            regs = [ins.operands[1]]
        for operand in ins.operands:
            if isinstance(operand, Mem):
                if operand.base in RESERVED_REGS or \
                        operand.index in RESERVED_REGS:
                    return True
        return any(reg in RESERVED_REGS for reg in regs
                   if isinstance(reg, int))

    # -- main verification (seed forward scan) ------------------------

    def _legacy_verify_stream(self, code: DisassembledCode, entry: int,
                              branch_targets: List[int]) \
            -> VerifiedBinary:
        stream = code.stream
        n = len(stream)
        policies = self.policies
        trap_pads = {off: ins.operands[0] for off, ins in stream
                     if ins.op == Op.TRAP}
        result = VerifiedBinary(instruction_count=n)
        counts = result.annotation_counts

        interior: Set[int] = set()       # annotation offsets (minus starts)
        anchors: Set[int] = set()        # guarded anchor offsets
        p6_guards: Set[int] = set()
        ann_at: Dict[int, Tuple[str, int]] = {}   # start -> (kind, end off)

        def end_offset(match: MatchResult) -> int:
            if match.end_index < n:
                return stream[match.end_index][0]
            last_off, last_ins = stream[-1]
            return last_off + last_ins.length

        i = 0
        while i < n:
            off, ins = stream[i]
            if ins.op == Op.TRAP:
                i += 1
                continue
            kind, match = self._try_annotation(stream, i, trap_pads)
            if kind is not None:
                counts[kind] = counts.get(kind, 0) + 1
                result.magic_slots.extend(match.magic_slots)
                interior.update(match.interior_offsets[1:])
                ann_at[off] = (kind, end_offset(match))
                end = match.end_index
                if kind == AnnotationKind.STORE_GUARD:
                    anchor_off, anchor = self._anchor(stream, end, off)
                    if not is_store(anchor) or \
                            anchor.operands[0] != match.anchor_mem:
                        raise VerificationError(
                            "store guard not followed by the guarded "
                            "store", anchor_off)
                    anchors.add(anchor_off)
                    i = end + 1
                elif kind == AnnotationKind.INDIRECT:
                    anchor_off, anchor = self._anchor(stream, end, off)
                    if not is_indirect_branch(anchor) or \
                            anchor.operands[0] != match.target_reg:
                        raise VerificationError(
                            "indirect-branch guard not followed by the "
                            "guarded branch", anchor_off)
                    anchors.add(anchor_off)
                    i = end + 1
                elif kind == AnnotationKind.EPILOGUE:
                    anchor_off, anchor = self._anchor(stream, end, off)
                    if anchor.op != Op.RET:
                        raise VerificationError(
                            "shadow epilogue not followed by RET",
                            anchor_off)
                    anchors.add(anchor_off)
                    i = end + 1
                elif kind.startswith("custom:"):
                    policy = next(p for p in self.custom
                                  if kind == f"custom:{p.name}")
                    anchor_off, anchor = self._anchor(stream, end, off)
                    if not policy.anchor(anchor):
                        raise VerificationError(
                            f"{policy.name} guard not followed by its "
                            f"guarded instruction", anchor_off)
                    for pos, reg in match.anchor_regs.items():
                        if anchor.operands[pos] != reg:
                            raise VerificationError(
                                f"{policy.name} guard checks the wrong "
                                f"operand", anchor_off)
                    anchors.add(anchor_off)
                    i = end + 1
                else:
                    if kind == AnnotationKind.P6_GUARD:
                        p6_guards.add(off)
                    i = end
                continue

            # -- plain program instruction -----------------------------
            if self._instrumenting and self._uses_reserved(ins):
                raise VerificationError(
                    "program code touches annotation-reserved registers",
                    off)
            if is_store(ins) and policies.any_store_guard:
                raise VerificationError("unguarded memory store", off)
            if is_indirect_branch(ins) and policies.p5:
                raise VerificationError("unguarded indirect branch", off)
            if ins.op == Op.RET and policies.p5:
                raise VerificationError(
                    "RET without shadow-stack epilogue", off)
            if ins.op == Op.SVC and \
                    ins.operands[0] not in self.allowed_svcs:
                raise VerificationError(
                    f"SVC {ins.operands[0]} not allowed by the P0 "
                    f"manifest", off)
            for policy in self.custom:
                if policy.anchor(ins):
                    raise VerificationError(
                        f"instruction lacks the {policy.name} guard",
                        off)
            if writes_rsp_explicitly(ins) and policies.p2:
                match = match_pattern(self._rsp_pat, stream, i + 1,
                                      trap_pads)
                if not match.matched:
                    raise VerificationError(
                        f"stack-pointer write without RSP guard: "
                        f"{match.reason}", off)
                counts[AnnotationKind.RSP_GUARD] = \
                    counts.get(AnnotationKind.RSP_GUARD, 0) + 1
                result.magic_slots.extend(match.magic_slots)
                interior.update(match.interior_offsets[1:])
                i = match.end_index
                continue
            i += 1

        self._legacy_check_control_flow(code, entry, branch_targets,
                                        interior, anchors, p6_guards,
                                        ann_at, trap_pads, result)
        return result

    def _legacy_check_control_flow(self, code: DisassembledCode,
                                   entry: int,
                                   branch_targets: List[int],
                                   interior: Set[int],
                                   anchors: Set[int],
                                   p6_guards: Set[int],
                                   ann_at: Dict[int, Tuple[str, int]],
                                   trap_pads: Dict[int, int],
                                   result: VerifiedBinary) -> None:
        policies = self.policies
        boundaries = code.index_of
        jump_targets: Set[int] = set()
        call_targets: Set[int] = set()
        fallthroughs: Set[int] = set()
        for off, ins in code.stream:
            if off in interior:
                continue
            op = ins.op
            if op == Op.JMP or op == Op.CALL or op in COND_JUMPS:
                target = off + ins.length + ins.operands[0]
                if target not in boundaries:
                    raise VerificationError(
                        f"branch into the middle of an instruction "
                        f"({target:#x})", off)
                if target in interior:
                    raise VerificationError(
                        f"branch into an annotation body ({target:#x})",
                        off)
                if target in anchors:
                    raise VerificationError(
                        f"branch bypasses a security annotation "
                        f"({target:#x})", off)
                if op == Op.CALL:
                    call_targets.add(target)
                else:
                    jump_targets.add(target)
                    if op in COND_JUMPS:
                        fallthroughs.add(off + ins.length)

        function_entries = call_targets | set(branch_targets)
        result.function_entries = function_entries

        for target in branch_targets:
            if target not in boundaries:
                raise VerificationError(
                    "indirect-branch list entry is not an instruction "
                    "boundary", target)

        if policies.p6:
            leaders = ({entry} | jump_targets | fallthroughs |
                       function_entries)
            for leader in sorted(leaders):
                if leader in trap_pads:
                    continue
                if leader not in p6_guards:
                    raise VerificationError(
                        "basic-block leader lacks the P6 SSA-marker "
                        "guard", leader)

        if policies.p5:
            for fe in sorted(function_entries):
                pos = fe
                if policies.p6:
                    info = ann_at.get(pos)
                    if info is None or \
                            info[0] != AnnotationKind.P6_GUARD:
                        raise VerificationError(
                            "function entry lacks the P6 guard", fe)
                    pos = info[1]
                info = ann_at.get(pos)
                if info is None or info[0] != AnnotationKind.PROLOGUE:
                    raise VerificationError(
                        "function entry lacks the shadow-stack prologue",
                        fe)


def legacy_rewrite(space, code_base: int, values: Dict[str, int],
                   slots: Iterable[Tuple[int, str]]) -> int:
    """Seed imm rewriter: one ``write_raw`` round-trip per slot, with
    per-site address arithmetic."""
    from ..errors import LoaderError
    count = 0
    for offset, name in slots:
        value = values.get(name)
        if value is None:
            raise LoaderError(f"no value for magic {name!r}")
        space.write_raw(code_base + offset,
                        (value & ((1 << 64) - 1)).to_bytes(8, "little"))
        count += 1
    return count
