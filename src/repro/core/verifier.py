"""The just-enough policy-compliance verifier (§IV-D, §V-B).

A forward scan over the recursive-descent disassembly that

* recognizes every security annotation by matching it against the shared
  templates (rejecting near-misses: malformed or forged annotations);
* demands an annotation license for every guarded operation — stores
  (P1/P3/P4), explicit RSP writes (P2), indirect branches and returns
  (P5) — and rejects any unlicensed one;
* forbids program code from touching the annotation-reserved registers;
* checks every direct branch lands on an instruction boundary and never
  *into* an annotation body or onto a guarded anchor ("compared with all
  guarded operations to detect any attempt to evade security
  annotations");
* when P6 is on, requires the SSA-marker guard at every basic-block
  leader (jump targets, conditional fall-throughs, function entries,
  program entry);
* when P5 is on, requires the shadow-stack prologue at every function
  entry (direct call targets and listed indirect targets);
* restricts SVC (OCall gateway) numbers to the P0 manifest.

The scan is table-driven: at construction the verifier compiles the
active :class:`~repro.policy.policies.PolicySet` (and any custom-policy
markers) into two dispatch tables keyed off the RDD op-category tags —
one per head category, one per 64-bit marker immediate — so recognizing
an annotation head costs one dict probe instead of re-running the
predicate chain on every instruction.

The verifier only ever *reads*; the slots it records are patched later
by the immediate rewriter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..errors import VerificationError
from ..isa.instructions import Op
from ..policy.magic import MAGIC
from ..policy.policies import PolicySet
from ..policy.templates import (
    AnnotationKind, MatchResult, compile_fast, compile_pattern,
    match_compiled, match_fast,
    indirect_branch_pattern, p6_guard_pattern, rsp_guard_pattern,
    shadow_epilogue_pattern, shadow_prologue_pattern, store_guard_pattern,
)
from ..vm.flowinfo import flag_liveness
from .proofcheck import (
    PROOF_CFI, PROOF_CONST, PROOF_RSP_STEP, PROOF_STACK, ProofChecker,
)
from .rdd import (
    CAT_HEAD_LEA, CAT_HEAD_MARKER, CAT_HEAD_MOVRR, CAT_HEAD_SUBRI,
    CAT_INDIRECT, CAT_PLAIN, CAT_RET, CAT_RSP_WRITE, CAT_STORE, CAT_SVC,
    CAT_TRAP, DisassembledCode, HEAD_CAT_MIN, recursive_descent,
)

#: SVC numbers admissible under P0 (send / recv / report).
DEFAULT_ALLOWED_SVCS = frozenset({1, 2, 3})


@dataclass
class VerifiedBinary:
    """Verification evidence handed to the rewriter and the bootstrap."""

    magic_slots: List[Tuple[int, str]] = field(default_factory=list)
    annotation_counts: Dict[str, int] = field(default_factory=dict)
    instruction_count: int = 0
    function_entries: Set[int] = field(default_factory=set)
    #: The decode-once stream the evidence was derived from; carried so
    #: downstream consumers (tracing, rewriting) never re-decode text.
    #: Excluded from equality — evidence comparisons are about verdicts.
    code: Optional[DisassembledCode] = field(default=None, compare=False,
                                             repr=False)
    #: Text offsets whose incoming flag state is provably dead (see
    #: :func:`~repro.vm.flowinfo.flag_liveness`).  Computed once on the
    #: verified stream; the tier-2 translator uses it as a whole-program
    #: veto when eliding flag materialization across chain edges.
    #: Rewriting only patches MOV_RI immediates (flag-neutral), so the
    #: set stays valid for the rewritten image.
    flag_kill_offsets: FrozenSet[int] = field(default=frozenset(),
                                              compare=False, repr=False)
    #: Accepted static-proof log: ``(site_off, kind, def_off)`` per
    #: elided guard, re-derived from the delivered bytes (empty for
    #: annotation-full binaries).  Part of the evidence verdict.
    proofs: Tuple = ()


class PolicyVerifier:
    def __init__(self, policies: PolicySet,
                 allowed_svcs: Iterable[int] = DEFAULT_ALLOWED_SVCS,
                 custom=()):
        self.policies = policies
        self.allowed_svcs = frozenset(allowed_svcs)
        #: developer-defined policies (repro.policy.custom, §V-A API)
        self.custom = tuple(custom)
        self._custom_by_marker = {policy.marker: policy
                                  for policy in self.custom}
        self._store_pat = store_guard_pattern(policies)
        self._rsp_pat = rsp_guard_pattern()
        self._indirect_pat = indirect_branch_pattern()
        self._prologue_pat = shadow_prologue_pattern(policies.mt_safe)
        self._epilogue_pat = shadow_epilogue_pattern(policies.mt_safe)
        self._p6_pat = p6_guard_pattern()
        self._instrumenting = any((policies.p1, policies.p2, policies.p3,
                                   policies.p4, policies.p5, policies.p6))
        self._build_dispatch()

    def _build_dispatch(self) -> None:
        """Compile the policy set into the per-category dispatch tables.

        ``_by_cat[category]`` / ``_by_marker[imm64]`` map an annotation
        head to ``(error label, ((kind, compiled, custom policy), ...))``
        — the candidate templates tried in order at that head.  Entries
        exist only for enabled policies, so a disabled policy's head
        falls through to the plain-instruction checks exactly as the
        predicate chain did.  Custom markers are inserted last and win
        marker collisions (the chain checked them first).
        """
        def cand(kind, pattern, cpolicy=None):
            return (kind, compile_pattern(pattern), compile_fast(pattern),
                    cpolicy)

        p = self.policies
        by_cat: Dict[int, tuple] = {}
        by_marker: Dict[int, tuple] = {}
        if p.any_store_guard:
            by_cat[CAT_HEAD_LEA] = ("store guard", (
                cand(AnnotationKind.STORE_GUARD, self._store_pat),))
        if p.p5:
            by_cat[CAT_HEAD_MOVRR] = ("indirect-branch guard", (
                cand(AnnotationKind.INDIRECT, self._indirect_pat),))
            epilogue = cand(AnnotationKind.EPILOGUE, self._epilogue_pat)
            prologue = cand(AnnotationKind.PROLOGUE, self._prologue_pat)
            if p.mt_safe:
                by_cat[CAT_HEAD_SUBRI] = ("MT shadow epilogue",
                                          (epilogue,))
                by_marker[MAGIC["ss_top"]] = ("MT shadow prologue",
                                              (prologue,))
            else:
                by_marker[MAGIC["ss_cell"]] = ("shadow-stack annotation",
                                               (epilogue, prologue))
        if p.p6:
            by_marker[MAGIC["ssa_marker"]] = ("P6 guard", (
                cand(AnnotationKind.P6_GUARD, self._p6_pat),))
        if p.p2:
            by_marker[MAGIC["stack_lo"]] = ("RSP guard", (
                cand(AnnotationKind.RSP_GUARD, self._rsp_pat),))
        for policy in self.custom:
            by_marker[policy.marker] = (f"{policy.name} guard", (
                cand(f"custom:{policy.name}", policy.guard_pattern(),
                     policy),))
        self._by_cat = by_cat
        self._by_marker = by_marker
        self._rsp_compiled = compile_pattern(self._rsp_pat)
        self._rsp_fast = compile_fast(self._rsp_pat)

    def _dispatch_digest(self) -> tuple:
        """Hashable summary of the compiled dispatch tables."""
        return (tuple(sorted((cat, label,
                              tuple(k for k, _, _, _ in cands))
                             for cat, (label, cands)
                             in self._by_cat.items())),
                tuple(sorted((marker, label,
                              tuple(k for k, _, _, _ in cands))
                             for marker, (label, cands)
                             in self._by_marker.items())))

    def fingerprint(self) -> tuple:
        """Hashable digest of every input that can change the verdict.

        Two verifiers with equal fingerprints accept/reject identical
        binaries with identical evidence — the precondition for reusing
        a cached provision (see :class:`repro.core.bootstrap.ProvisionCache`).
        Includes a digest of the compiled dispatch tables so any change
        that reshapes dispatch (policy set, custom markers) changes the
        fingerprint even if other components were to collide.
        """
        return (self.policies.describe(),
                tuple(sorted(self.allowed_svcs)),
                tuple(sorted(policy.marker for policy in self.custom)),
                self._dispatch_digest(),
                ("static-proof-tier", 1))

    # -- public API --------------------------------------------------------

    def verify(self, text: bytes, entry: int,
               branch_targets: Iterable[int] = ()) -> VerifiedBinary:
        """Verify ``text``; raises :class:`VerificationError` on any
        policy-compliance failure."""
        branch_targets = sorted(set(branch_targets))
        code = recursive_descent(text, entry, branch_targets)
        return self.verify_code(code, entry, branch_targets)

    def verify_code(self, code: DisassembledCode, entry: int,
                    branch_targets: Iterable[int] = (),
                    proofs: Iterable[Tuple[int, int, int]] = (),
                    values: Optional[Dict[str, int]] = None) \
            -> VerifiedBinary:
        """Verify an already-disassembled stream (decode-once path).

        ``code`` must come from :func:`~repro.core.rdd.recursive_descent`
        over the same text/entry/targets; the returned evidence carries
        it in ``.code`` so later stages can reuse the stream.

        ``proofs`` is the producer's static-proof log (one
        ``(site_off, kind, def_off)`` entry per elided guard) and
        ``values`` the concrete enclave bounds from
        :func:`~repro.core.rewriter.build_value_map`; every claimed
        proof is re-derived from the delivered bytes and any failure
        rejects the binary (fail closed).
        """
        branch_targets = sorted(set(branch_targets))
        return self._verify_stream(code, entry, branch_targets,
                                   tuple(proofs), values)

    # -- main verification -----------------------------------------------------

    def _verify_stream(self, code: DisassembledCode, entry: int,
                       branch_targets: List[int],
                       proofs: Tuple = (),
                       values: Optional[Dict[str, int]] = None) \
            -> VerifiedBinary:
        stream = code.stream
        cats = code.cats
        reserved = code.reserved
        text = code.text
        n = len(stream)
        policies = self.policies
        custom = self.custom
        instrumenting = self._instrumenting
        by_cat = self._by_cat
        by_marker = self._by_marker
        if code.lengths:
            trap_pads = code.trap_pads
        else:  # stream assembled without descent metadata
            trap_pads = {off: ins.operands[0] for off, ins in stream
                         if ins.op == Op.TRAP}
        result = VerifiedBinary(instruction_count=n, code=code)
        counts = result.annotation_counts

        checker: Optional[ProofChecker] = None
        proof_map: Dict[int, Tuple[int, int, int]] = {}
        if proofs:
            if values is None:
                raise VerificationError(
                    "proof-carrying binary verified without enclave "
                    "bounds", 0)
            checker = ProofChecker(
                code, {"store_lo": values["p1_lo"],
                       "store_hi": values["p1_hi"],
                       "stack_lo": values["stack_lo"],
                       "stack_hi": values["stack_hi"],
                       "code_base": values["code_base"]},
                branch_targets, entry)
            proof_map = {p[0]: p for p in proofs}
        accepted: List[Tuple[int, int, int]] = []

        def prove(off: int, kinds: tuple, label: str) -> None:
            """Fail closed: an elided guard needs a re-derivable proof."""
            p = proof_map.get(off)
            if p is None or p[1] not in kinds:
                raise VerificationError(label, off)
            checker.check(p[0], p[1], p[2])
            accepted.append(p)

        interior: Set[int] = set()       # annotation offsets (minus starts)
        anchors: Set[int] = set()        # guarded anchor offsets
        p6_guards: Set[int] = set()
        ann_at: Dict[int, Tuple[str, int]] = {}   # start -> (kind, end off)

        def end_offset(match: MatchResult) -> int:
            if match.end_index < n:
                return stream[match.end_index][0]
            last_off, last_ins = stream[-1]
            return last_off + last_ins.length

        i = 0
        while i < n:
            cat = cats[i]
            if cat == CAT_PLAIN:
                # Hot path: nothing policy-relevant beyond register
                # hygiene and custom anchors.
                if instrumenting and reserved[i]:
                    raise VerificationError(
                        "program code touches annotation-reserved "
                        "registers", stream[i][0])
                if custom:
                    ins = stream[i][1]
                    for policy in custom:
                        if policy.anchor(ins):
                            raise VerificationError(
                                f"instruction lacks the {policy.name} "
                                f"guard", stream[i][0])
                i += 1
                continue
            if cat == CAT_TRAP:
                i += 1
                continue
            off, ins = stream[i]
            if cat >= HEAD_CAT_MIN:
                entry_d = by_marker.get(ins.operands[1]) \
                    if cat == CAT_HEAD_MARKER else by_cat.get(cat)
                if entry_d is not None:
                    label, candidates = entry_d
                    for kind, compiled, fast, cpolicy in candidates:
                        m = match_fast(fast, text, stream, i, trap_pads)
                        if m is None:
                            m = match_compiled(compiled, stream, i,
                                               trap_pads)
                        if m.matched:
                            break
                    if not m.matched:
                        raise VerificationError(
                            f"malformed {label}: {m.reason}", off)
                    counts[kind] = counts.get(kind, 0) + 1
                    result.magic_slots.extend(m.magic_slots)
                    interior.update(m.interior_offsets[1:])
                    ann_at[off] = (kind, end_offset(m))
                    end = m.end_index
                    if kind == AnnotationKind.STORE_GUARD:
                        anchor_off, anchor = self._anchor(stream, end,
                                                          off)
                        if cats[end] != CAT_STORE or \
                                anchor.operands[0] != m.anchor_mem:
                            raise VerificationError(
                                "store guard not followed by the guarded "
                                "store", anchor_off)
                        anchors.add(anchor_off)
                        i = end + 1
                    elif kind == AnnotationKind.INDIRECT:
                        anchor_off, anchor = self._anchor(stream, end,
                                                          off)
                        if cats[end] != CAT_INDIRECT or \
                                anchor.operands[0] != m.target_reg:
                            raise VerificationError(
                                "indirect-branch guard not followed by "
                                "the guarded branch", anchor_off)
                        anchors.add(anchor_off)
                        i = end + 1
                    elif kind == AnnotationKind.EPILOGUE:
                        anchor_off, anchor = self._anchor(stream, end,
                                                          off)
                        if anchor.op != Op.RET:
                            raise VerificationError(
                                "shadow epilogue not followed by RET",
                                anchor_off)
                        anchors.add(anchor_off)
                        i = end + 1
                    elif cpolicy is not None:
                        anchor_off, anchor = self._anchor(stream, end,
                                                          off)
                        if not cpolicy.anchor(anchor):
                            raise VerificationError(
                                f"{cpolicy.name} guard not followed by "
                                f"its guarded instruction", anchor_off)
                        for pos, reg in m.anchor_regs.items():
                            if anchor.operands[pos] != reg:
                                raise VerificationError(
                                    f"{cpolicy.name} guard checks the "
                                    f"wrong operand", anchor_off)
                        anchors.add(anchor_off)
                        i = end + 1
                    else:
                        if kind == AnnotationKind.P6_GUARD:
                            p6_guards.add(off)
                        i = end
                    continue

            # -- plain program instruction ---------------------------------
            if instrumenting and reserved[i]:
                raise VerificationError(
                    "program code touches annotation-reserved registers",
                    off)
            if cat == CAT_STORE and policies.any_store_guard:
                prove(off, (PROOF_STACK, PROOF_CONST),
                      "unguarded memory store")
            if cat == CAT_INDIRECT and policies.p5:
                prove(off, (PROOF_CFI,), "unguarded indirect branch")
            if cat == CAT_RET and policies.p5:
                raise VerificationError(
                    "RET without shadow-stack epilogue", off)
            if cat == CAT_SVC and \
                    ins.operands[0] not in self.allowed_svcs:
                raise VerificationError(
                    f"SVC {ins.operands[0]} not allowed by the P0 "
                    f"manifest", off)
            for policy in custom:
                if policy.anchor(ins):
                    raise VerificationError(
                        f"instruction lacks the {policy.name} guard",
                        off)
            if cat == CAT_RSP_WRITE and policies.p2:
                match = match_fast(self._rsp_fast, text, stream, i + 1,
                                   trap_pads)
                if match is None:
                    match = match_compiled(self._rsp_compiled, stream,
                                           i + 1, trap_pads)
                if not match.matched:
                    prove(off, (PROOF_RSP_STEP,),
                          f"stack-pointer write without RSP guard: "
                          f"{match.reason}")
                    i += 1
                    continue
                counts[AnnotationKind.RSP_GUARD] = \
                    counts.get(AnnotationKind.RSP_GUARD, 0) + 1
                result.magic_slots.extend(match.magic_slots)
                interior.update(match.interior_offsets[1:])
                i = match.end_index
                continue
            i += 1

        if len(accepted) != len(proof_map):
            stale = sorted(set(proof_map) - {p[0] for p in accepted})
            raise VerificationError(
                "static proof references no elided site", stale[0])
        result.proofs = tuple(accepted)
        self._check_control_flow(code, entry, branch_targets, interior,
                                 anchors, p6_guards, ann_at, trap_pads,
                                 result)
        if code.lengths:   # descent metadata present (decode-once path)
            result.flag_kill_offsets = flag_liveness(code)
        return result

    # -- helpers --------------------------------------------------------------

    @staticmethod
    def _anchor(stream, index: int, guard_off: int):
        if index >= len(stream):
            raise VerificationError(
                "annotation at end of code without its guarded "
                "instruction", guard_off)
        return stream[index]

    def _check_control_flow(self, code: DisassembledCode, entry: int,
                            branch_targets: List[int],
                            interior: Set[int], anchors: Set[int],
                            p6_guards: Set[int],
                            ann_at: Dict[int, Tuple[str, int]],
                            trap_pads: Dict[int, int],
                            result: VerifiedBinary) -> None:
        policies = self.policies
        stream = code.stream
        targets = code.targets
        lengths = code.lengths
        boundaries = code.index_of
        jump_targets: Set[int] = set()
        call_targets: Set[int] = set()
        fallthroughs: Set[int] = set()
        for i, target in enumerate(targets):
            if target is None:
                continue
            off, ins = stream[i]
            if off in interior:
                continue
            if target not in boundaries:
                raise VerificationError(
                    f"branch into the middle of an instruction "
                    f"({target:#x})", off)
            if target in interior:
                raise VerificationError(
                    f"branch into an annotation body ({target:#x})",
                    off)
            if target in anchors:
                raise VerificationError(
                    f"branch bypasses a security annotation "
                    f"({target:#x})", off)
            op = ins.op
            if op == Op.CALL:
                call_targets.add(target)
            else:
                jump_targets.add(target)
                if op != Op.JMP:  # conditional: falls through too
                    fallthroughs.add(off + lengths[i])

        function_entries = call_targets | set(branch_targets)
        result.function_entries = function_entries

        for target in branch_targets:
            if target not in boundaries:
                raise VerificationError(
                    "indirect-branch list entry is not an instruction "
                    "boundary", target)

        if policies.p6:
            leaders = ({entry} | jump_targets | fallthroughs |
                       function_entries)
            for leader in sorted(leaders):
                if leader in trap_pads:
                    continue
                if leader not in p6_guards:
                    raise VerificationError(
                        "basic-block leader lacks the P6 SSA-marker "
                        "guard", leader)

        if policies.p5:
            for fe in sorted(function_entries):
                pos = fe
                if policies.p6:
                    info = ann_at.get(pos)
                    if info is None or \
                            info[0] != AnnotationKind.P6_GUARD:
                        raise VerificationError(
                            "function entry lacks the P6 guard", fe)
                    pos = info[1]
                info = ann_at.get(pos)
                if info is None or info[0] != AnnotationKind.PROLOGUE:
                    raise VerificationError(
                        "function entry lacks the shadow-stack prologue",
                        fe)
