"""Multi-threaded execution of a provisioned binary (§VII).

Lives outside the bootstrap module for the same reason as
:mod:`repro.core.tracing`: the scheduling loop drives the VM-layer
round-robin scheduler and copies results out — no enforcement decision
is made here.  The policy gate (MT-safe shadow stack required for P5
with multiple threads) stays in this function but fails closed before
any thread runs.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import EnclaveError
from ..vm.costmodel import CostModel
from ..vm.cpu import ExecResult


def run_threads(boot, inputs, quantum: int = 500,
                cost_model: Optional[CostModel] = None,
                max_steps: int = 50_000_000) -> List["RunOutcome"]:
    """``ecall_run`` over N TCS slots (§VII multi-threading).

    Every thread executes the verified entry with its own stack
    slice, SSA frame and staged input; threads interleave in
    deterministic instruction quanta over the shared address space.
    Requires the layout to have enough TCS slots and — when P5 is
    on — the MT-safe contract (register-held shadow-stack pointer):
    the memory-cell variant would race across threads, the exact
    TOCTOU hazard the paper warns about.
    """
    from ..vm.smt import RoundRobinScheduler
    from .outcome import RunOutcome, _ThreadIO

    if boot.loaded is None or boot.verified is None:
        raise EnclaveError("no verified binary provisioned")
    layout = boot.enclave.layout
    if len(inputs) > layout.num_threads:
        raise EnclaveError(
            f"{len(inputs)} threads but only {layout.num_threads} "
            f"TCS slots")
    if boot.policies.p5 and not boot.policies.mt_safe and \
            len(inputs) > 1:
        raise EnclaveError(
            "P5's memory-held shadow stack is not thread-safe; "
            "use the MT-safe policy variant (PolicySet.multithreaded)")
    boot._reset_runtime_cells()
    boot._budget = boot.p0.max_output_bytes
    outcomes = []
    cpus = []
    for tid, data in enumerate(inputs):
        outcome = RunOutcome(status="ok")
        io = _ThreadIO(bytes(data), 0, outcome)
        cpus.append(boot._make_cpu(tid, io, None, cost_model))
        outcomes.append(outcome)
    threads = RoundRobinScheduler(cpus, quantum=quantum).run(
        max_steps_per_thread=max_steps)
    for thread, outcome in zip(threads, outcomes):
        cpu = thread.cpu
        outcome.result = ExecResult(cpu.steps, cpu.cycles, cpu.rip,
                                    cpu.aex_events, cpu.regs[0])
        if thread.status != "halted":
            outcome.status = thread.status
            outcome.detail = thread.detail
            outcome.violation_code = getattr(thread,
                                             "violation_code", 0)
        outcome.observable_cycles = boot._pad_time(
            outcome.result.cycles)
    boot.audit.record(
        "threads_completed", threads=len(outcomes),
        statuses=",".join(o.status for o in outcomes))
    return outcomes
