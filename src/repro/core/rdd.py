"""Clipped recursive-descent disassembler (§IV-D, §V-B).

Starts from the program entry, follows direct control flow, defers
branch targets onto a worklist, and uses the legitimate indirect-branch
target list to seed functions only reachable indirectly — exactly the
paper's algorithm.  Overlapping instructions (two decoded instructions
sharing bytes at different starts) are rejected: on a fixed-per-opcode
encoding every reachable byte has exactly one interpretation or the
binary is refused.

This is the *decode-once* pipeline head: the descent decodes every
reachable instruction exactly once (via the per-opcode
``DECODE_TABLE``) and, in the same pass, derives everything the
downstream consumers used to re-derive per instruction — encoded
lengths, direct-branch successors, trap-pad codes, reserved-register
usage, and an op-category tag the verifier's dispatch table keys off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import EncodingError, VerificationError
from ..isa.encoding import DECODE_FN, DECODE_LEN
from ..isa.instructions import (
    COND_JUMPS, INDIRECT_BRANCH_OPS,
    Instruction, NO_FALLTHROUGH_OPS, Op, SPECS, STORE_OPS, _REG_DST_OPS,
)
from ..isa.registers import RSP

# -- op-category tags --------------------------------------------------------
#
# Assigned once per instruction during the descent; the verifier's main
# scan dispatches on them with one comparison/dict probe instead of
# re-running the annotation-head predicate chain on every instruction.

CAT_PLAIN = 0          # no policy relevance on its own
CAT_TRAP = 1           # violation trap pad
CAT_STORE = 2          # explicit memory store (P1/P3/P4 anchor)
CAT_INDIRECT = 3       # indirect branch (P5 anchor)
CAT_RET = 4            # return (P5 anchor)
CAT_SVC = 5            # OCall gateway (P0)
CAT_RSP_WRITE = 6      # explicit stack-pointer write (P2 trigger)
CAT_HEAD_LEA = 7       # LEA r15, m   — candidate store-guard head
CAT_HEAD_MARKER = 8    # MOV r14, imm — candidate marker-dispatch head
CAT_HEAD_MOVRR = 9     # MOV r14, r   — candidate indirect-guard head
CAT_HEAD_SUBRI = 10    # SUB r13, imm — candidate MT-epilogue head

#: Lowest annotation-head category (``cat >= HEAD_CAT_MIN`` marks a
#: potential annotation opening the verifier must dispatch on).
HEAD_CAT_MIN = CAT_HEAD_LEA

#: Dst-sensitive head openers: op -> (required dst register, category).
_HEAD_SPEC = {
    Op.LEA: (15, CAT_HEAD_LEA),
    Op.MOV_RI: (14, CAT_HEAD_MARKER),
    Op.MOV_RR: (14, CAT_HEAD_MOVRR),
    Op.SUB_RI: (13, CAT_HEAD_SUBRI),
}

# Per-opcode classification codes (low nibble) for the descent loop;
# bit 4 marks the end of fall-through execution.  Kinds 1-5 equal the
# category they map to.
_K_PLAIN, _K_BRANCH, _K_HEAD, _K_REGDST = 0, 6, 7, 8
_NO_FALL = 16


def _build_class_table() -> List[int]:
    table = [_K_PLAIN] * 256
    table[Op.TRAP] = CAT_TRAP
    for op in STORE_OPS:
        table[op] = CAT_STORE
    for op in INDIRECT_BRANCH_OPS:
        table[op] = CAT_INDIRECT
    table[Op.RET] = CAT_RET
    table[Op.SVC] = CAT_SVC
    table[Op.JMP] = table[Op.CALL] = _K_BRANCH
    for op in COND_JUMPS:
        table[op] = _K_BRANCH
    for op in _REG_DST_OPS:
        table[op] = _K_HEAD if op in _HEAD_SPEC else _K_REGDST
    for op in NO_FALLTHROUGH_OPS:
        table[op] |= _NO_FALL
    return table


_CLASS = _build_class_table()

@dataclass
class DisassembledCode:
    """RDD result: the reachable instruction stream in address order.

    Beyond the stream itself, the descent precomputes — once — the
    per-instruction facts every downstream pass needs: ``lengths``
    (encoded bytes), ``cats`` (op-category tags, ``CAT_*``),
    ``targets`` (direct-branch successor offsets, ``None`` elsewhere),
    ``reserved`` (whether the instruction touches an
    annotation-reserved register), and the ``trap_pads`` map
    (trap offset -> violation code).
    """

    stream: List[Tuple[int, Instruction]] = field(default_factory=list)
    index_of: Dict[int, int] = field(default_factory=dict)
    lengths: List[int] = field(default_factory=list)
    cats: List[int] = field(default_factory=list)
    targets: List[Optional[int]] = field(default_factory=list)
    reserved: List[bool] = field(default_factory=list)
    trap_pads: Dict[int, int] = field(default_factory=dict)
    #: The raw text the stream was decoded from (byte-level template
    #: matching in the verifier reads it directly).
    text: bytes = b""

    def at_offset(self, offset: int) -> Instruction:
        return self.stream[self.index_of[offset]][1]

    @property
    def offsets(self) -> Iterable[int]:
        return self.index_of.keys()

    def end_of(self, index: int) -> int:
        """Text offset one past instruction ``index``."""
        return self.stream[index][0] + self.lengths[index]


def recursive_descent(text: bytes, entry: int,
                      roots: Iterable[int] = ()) -> DisassembledCode:
    """Disassemble ``text`` from ``entry`` plus extra ``roots``.

    Raises :class:`VerificationError` on undecodable reachable bytes,
    control flow escaping the text section, or overlapping decodings.
    """
    n_text = len(text)
    decode_fns = DECODE_FN
    decode_lens = DECODE_LEN
    class_table = _CLASS
    # offset -> (instruction, length, category, branch target, reserved)
    info: Dict[int, tuple] = {}
    trap_pads: Dict[int, int] = {}
    worklist: List[int] = [entry]
    worklist.extend(roots)

    while worklist:
        pos = worklist.pop()
        while pos not in info:
            if not 0 <= pos < n_text:
                raise VerificationError(
                    "control flow escapes the text section", pos)
            opbyte = text[pos]
            decode = decode_fns[opbyte]
            if decode is None:
                raise VerificationError(
                    f"undecodable: unknown opcode {opbyte:#x} "
                    f"at {pos:#x}", pos)
            length = decode_lens[opbyte]
            if pos + length > n_text:
                raise VerificationError(
                    f"undecodable: truncated {SPECS[opbyte].name} "
                    f"at {pos:#x}", pos)
            try:
                instr, res = decode(text, pos)
            except EncodingError as exc:
                raise VerificationError(f"undecodable: {exc}", pos) \
                    from exc

            cls = class_table[opbyte]
            if cls == 0:
                # plain fall-through instruction — the common case
                info[pos] = (instr, length, CAT_PLAIN, None, res)
                pos += length
                continue
            operands = instr.operands
            kind = cls & 15
            cat = kind
            target = None
            if kind == _K_BRANCH:
                cat = CAT_PLAIN
                target = pos + length + operands[0]
                if not 0 <= target < n_text:
                    raise VerificationError(
                        f"branch target {target:#x} outside text", pos)
                if target not in info:
                    worklist.append(target)
            elif kind == _K_HEAD:
                head_reg, head_cat = _HEAD_SPEC[opbyte]
                dst = operands[0]
                cat = head_cat if dst == head_reg else \
                    (CAT_RSP_WRITE if dst == RSP else CAT_PLAIN)
            elif kind == _K_REGDST:
                cat = CAT_RSP_WRITE if operands[0] == RSP else CAT_PLAIN
            elif kind == CAT_TRAP:
                trap_pads[pos] = operands[0]

            info[pos] = (instr, length, cat, target, res)
            if cls & _NO_FALL:
                break
            pos += length

    # -- one ordered pass: overlap check + pre-sized stream assembly ----
    count = len(info)
    stream: List[Tuple[int, Instruction]] = [None] * count
    lengths = [0] * count
    cats = [0] * count
    targets: List[Optional[int]] = [None] * count
    reserved = [False] * count
    index_of: Dict[int, int] = {}
    last_end = 0
    i = 0
    for offset in sorted(info):
        instr, length, cat, target, res = info[offset]
        if offset < last_end:
            raise VerificationError(
                "overlapping instruction decodings", offset)
        last_end = offset + length
        index_of[offset] = i
        stream[i] = (offset, instr)
        lengths[i] = length
        cats[i] = cat
        targets[i] = target
        reserved[i] = res
        i += 1
    return DisassembledCode(stream, index_of, lengths, cats, targets,
                            reserved, trap_pads, bytes(text))
