"""Clipped recursive-descent disassembler (§IV-D, §V-B).

Starts from the program entry, follows direct control flow, defers
branch targets onto a worklist, and uses the legitimate indirect-branch
target list to seed functions only reachable indirectly — exactly the
paper's algorithm.  Overlapping instructions (two decoded instructions
sharing bytes at different starts) are rejected: on a fixed-per-opcode
encoding every reachable byte has exactly one interpretation or the
binary is refused.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from ..errors import EncodingError, VerificationError
from ..isa.encoding import decode_instruction
from ..isa.instructions import (
    COND_JUMPS, Instruction, NO_FALLTHROUGH_OPS, Op,
)


@dataclass
class DisassembledCode:
    """RDD result: the reachable instruction stream in address order."""

    stream: List[Tuple[int, Instruction]] = field(default_factory=list)
    index_of: Dict[int, int] = field(default_factory=dict)

    def at_offset(self, offset: int) -> Instruction:
        return self.stream[self.index_of[offset]][1]

    @property
    def offsets(self) -> Iterable[int]:
        return self.index_of.keys()


def recursive_descent(text: bytes, entry: int,
                      roots: Iterable[int] = ()) -> DisassembledCode:
    """Disassemble ``text`` from ``entry`` plus extra ``roots``.

    Raises :class:`VerificationError` on undecodable reachable bytes,
    control flow escaping the text section, or overlapping decodings.
    """
    visited: Dict[int, int] = {}      # offset -> length
    worklist: List[int] = [entry]
    for root in roots:
        worklist.append(root)
    decoded: Dict[int, Instruction] = {}

    while worklist:
        pos = worklist.pop()
        while pos not in visited:
            if not 0 <= pos < len(text):
                raise VerificationError(
                    "control flow escapes the text section", pos)
            try:
                instr, length = decode_instruction(text, pos)
            except EncodingError as exc:
                raise VerificationError(f"undecodable: {exc}", pos) \
                    from exc
            visited[pos] = length
            decoded[pos] = instr
            op = instr.op
            if op == Op.JMP or op == Op.CALL or op in COND_JUMPS:
                target = pos + length + instr.operands[0]
                if not 0 <= target < len(text):
                    raise VerificationError(
                        f"branch target {target:#x} outside text", pos)
                worklist.append(target)
            if op in NO_FALLTHROUGH_OPS:
                break
            pos += length

    result = DisassembledCode()
    last_end = 0
    for offset in sorted(visited):
        if offset < last_end:
            raise VerificationError(
                "overlapping instruction decodings", offset)
        last_end = offset + visited[offset]
        result.index_of[offset] = len(result.stream)
        result.stream.append((offset, decoded[offset]))
    return result
