"""Provision cache: verified + rewritten images keyed on inputs.

Host-side plumbing, not enclave code: the cache stores the *outputs* of
an accepted provisioning run and replays them through
:meth:`~repro.core.loader.DynamicLoader.install_image`; nothing in it
can accept a binary the verifier would reject, so it lives outside the
measured consumer image's trust-critical line count.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Optional

from .loader import ProvisionedImage


class ProvisionCache:
    """LRU of verified + rewritten images, keyed on the provision triple.

    The key is ``(sha256(blob), policy fingerprint, config fingerprint,
    aex_threshold)`` — every input of the parse → load → RDD → verify →
    rewrite pipeline.  A hit replays the captured memory images through
    :meth:`DynamicLoader.install_image`, skipping disassembly,
    annotation verification and imm rewriting entirely (the dominant
    one-time cost the paper measures in §VI-B).  Only *accepted*
    binaries are ever stored: a rejected blob re-verifies (and
    re-fails) on every attempt, and any mutated blob changes the digest
    and therefore misses.
    """

    def __init__(self, maxsize: int = 64):
        self.maxsize = maxsize
        self._entries: "OrderedDict[tuple, ProvisionedImage]" = \
            OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: tuple) -> Optional[ProvisionedImage]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def store(self, key: tuple, image: ProvisionedImage) -> None:
        self._entries[key] = image
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def invalidate(self, blob: Optional[bytes] = None,
                   digest: Optional[bytes] = None) -> int:
        """Drop entries for one blob (under every policy/config), or —
        with no argument — every entry.  Returns the eviction count."""
        if blob is not None:
            digest = hashlib.sha256(blob).digest()
        if digest is None:
            count = len(self._entries)
            self._entries.clear()
            return count
        stale = [key for key in self._entries if key[0] == digest]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def clear(self) -> None:
        """Invalidate everything and reset the hit/miss counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    # -- cross-process harvest (the bench worker pool) -------------------

    def keys(self) -> frozenset:
        return frozenset(self._entries)

    def export_since(self, keys: frozenset) -> dict:
        """Entries added after a :meth:`keys` snapshot — what a pool
        worker ships back to the parent process."""
        return {key: image for key, image in self._entries.items()
                if key not in keys}

    def absorb(self, entries: dict) -> None:
        """Merge entries harvested from a worker process."""
        for key, image in entries.items():
            if key not in self._entries:
                self.store(key, image)

    def stats(self) -> dict:
        return {"entries": len(self._entries), "hits": self.hits,
                "misses": self.misses}


#: Process-wide default cache.  Opt-in: a ``BootstrapEnclave`` only
#: consults it when constructed with ``provision_cache=PROVISION_CACHE``
#: (the bench harness and the HTTPS simulator do; ad-hoc enclaves keep
#: the always-verify behaviour).
PROVISION_CACHE = ProvisionCache()
