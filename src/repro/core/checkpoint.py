"""Sealed, rollback-protected mid-run checkpoints.

A long-running enclave computation must survive platform teardown
without trusting the host: the host stores the checkpoints, so they
must be unforgeable, bound to the enclave identity, and *fresh* — a
host that replays checkpoint ``n-1`` after ``n`` was taken would roll
the computation back (re-executing an interval with, e.g., a different
AEX pattern, or double-spending the output budget).  This module
implements the classic SGX answer:

* the **sealing key** is derived (HKDF-SHA256) from the platform
  sealing fuse, MRENCLAVE, and a per-provisioning session secret — so
  only the same enclave code, on the same platform, running the same
  provisioned binary can unseal;
* every checkpoint carries a **monotonic counter** value drawn from the
  platform counter at seal time and a **MAC chain** (each blob
  authenticates its predecessor's MAC), so the verifier can prove the
  chain is gap-free and that its head matches the platform counter —
  any stale, reordered, truncated or cross-enclave blob fails closed
  with :class:`~repro.errors.RollbackError`;
* the payload itself is an **incremental delta**: the CPU safe-point
  state plus only the pages dirtied since the previous checkpoint
  (see ``AddressSpace.track_dirty``), so checkpoint cost scales with
  the write working set, not the enclave size.

The blob layout (all little-endian)::

    "CKPT" | version u8 | counter u64 | kind u8 | prev_mac 32B
           | payload_len u64 | payload | mac 32B

with ``mac = HMAC-SHA256(seal_key, everything before the mac)``.
"""

from __future__ import annotations

import hashlib
import hmac
import struct
from dataclasses import dataclass
from time import perf_counter
from typing import List, Optional, Tuple

from ..crypto.hkdf import hkdf
from ..errors import RollbackError
from ..sgx.memory import PAGE_SIZE
from ..vm.cpu import CPU, CpuState

MAGIC = b"CKPT"
VERSION = 1
KIND_DELTA = 1

_MAC_LEN = 32
_HDR = struct.Struct("<4sBQB32sQ")         # magic ver counter kind prev len
_ZERO_MAC = b"\x00" * _MAC_LEN

#: Monotonic-counter namespace used for checkpoint freshness.
COUNTER_LABEL = b"checkpoint-chain"


def derive_seal_key(seal_fuse: bytes, mrenclave: bytes,
                    session_secret: bytes) -> bytes:
    """HKDF seal key: platform fuse x enclave identity x session.

    ``session_secret`` is the provision digest of the target binary —
    checkpoints taken while running one binary can never be resumed
    into another, even inside the same (re-built) bootstrap.
    """
    return hkdf(seal_fuse, mrenclave,
                b"deflection-checkpoint-seal\x00" + session_secret, 32)


# -- payload (de)serialization ------------------------------------------


class _Writer:
    def __init__(self):
        self._parts = []

    def u8(self, v):
        self._parts.append(struct.pack("<B", v))

    def u32(self, v):
        self._parts.append(struct.pack("<I", v))

    def u64(self, v):
        self._parts.append(struct.pack("<Q", v))

    def i64(self, v):
        self._parts.append(struct.pack("<q", v))

    def f64(self, v):
        self._parts.append(struct.pack("<d", v))

    def raw(self, b):
        self._parts.append(bytes(b))

    def blob(self, b):
        self.u32(len(b))
        self.raw(b)

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class _Reader:
    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    def _take(self, fmt):
        st = struct.Struct(fmt)
        if self._pos + st.size > len(self._data):
            raise RollbackError("checkpoint payload truncated")
        (v,) = st.unpack_from(self._data, self._pos)
        self._pos += st.size
        return v

    def u8(self):
        return self._take("<B")

    def u32(self):
        return self._take("<I")

    def u64(self):
        return self._take("<Q")

    def i64(self):
        return self._take("<q")

    def f64(self):
        return self._take("<d")

    def raw(self, n) -> bytes:
        if self._pos + n > len(self._data):
            raise RollbackError("checkpoint payload truncated")
        b = self._data[self._pos:self._pos + n]
        self._pos += n
        return bytes(b)

    def blob(self) -> bytes:
        return self.raw(self.u32())

    def done(self) -> bool:
        return self._pos == len(self._data)


@dataclass(frozen=True)
class CheckpointPayload:
    """Everything a recovered enclave needs to continue the run."""

    cpu: CpuState
    io_cursor: int
    budget: int
    input_digest: bytes
    reports: tuple
    sent_plaintext: tuple
    #: Pages dirtied since the previous checkpoint: enclave pages as
    #: (page_index, 4096B), untrusted pages as (page_addr, 4096B).
    enclave_pages: tuple
    outside_pages: tuple

    def pack(self) -> bytes:
        cpu = self.cpu
        w = _Writer()
        w.u64(cpu.steps)
        w.u64(cpu.rip)
        w.f64(cpu.cycles)
        w.u64(cpu.aex_events)
        w.u64(cpu.epc_faults)
        w.u8((cpu.f_eq << 0) | (cpu.f_lt_s << 1) |
             (cpu.f_lt_u << 2) | (cpu.halted << 3))
        for reg in cpu.regs:
            w.u64(reg)
        if cpu.epc_resident is None:
            w.u8(0)
        else:
            w.u8(1)
            w.u32(len(cpu.epc_resident))
            for page in cpu.epc_resident:
                w.u64(page)
            w.u32(len(cpu.epc_ever))
            for page in sorted(cpu.epc_ever):
                w.u64(page)
        w.i64(cpu.aex_countdown)
        if cpu.aex_rng_state is None:
            w.u8(0)
        else:
            version, words, gauss = cpu.aex_rng_state
            w.u8(1)
            w.u32(version)
            w.u32(len(words))
            for word in words:
                w.u32(word)
            if gauss is None:
                w.u8(0)
            else:
                w.u8(1)
                w.f64(gauss)
        w.u64(self.io_cursor)
        w.i64(self.budget)
        w.raw(self.input_digest)
        w.u32(len(self.reports))
        for value in self.reports:
            w.u64(value)
        w.u32(len(self.sent_plaintext))
        for data in self.sent_plaintext:
            w.blob(data)
        w.u32(len(self.enclave_pages))
        for index, data in self.enclave_pages:
            w.u32(index)
            w.raw(data)
        w.u32(len(self.outside_pages))
        for addr, data in self.outside_pages:
            w.u64(addr)
            w.raw(data)
        return w.getvalue()

    @classmethod
    def unpack(cls, data: bytes) -> "CheckpointPayload":
        r = _Reader(data)
        steps = r.u64()
        rip = r.u64()
        cycles = r.f64()
        aex_events = r.u64()
        epc_faults = r.u64()
        flags = r.u8()
        regs = tuple(r.u64() for _ in range(16))
        epc_resident = epc_ever = None
        if r.u8():
            epc_resident = tuple(r.u64() for _ in range(r.u32()))
            epc_ever = frozenset(r.u64() for _ in range(r.u32()))
        aex_countdown = r.i64()
        aex_rng_state = None
        if r.u8():
            version = r.u32()
            words = tuple(r.u32() for _ in range(r.u32()))
            gauss = r.f64() if r.u8() else None
            aex_rng_state = (version, words, gauss)
        cpu = CpuState(
            regs=regs, rip=rip,
            f_eq=bool(flags & 1), f_lt_s=bool(flags & 2),
            f_lt_u=bool(flags & 4),
            steps=steps, cycles=cycles, aex_events=aex_events,
            epc_faults=epc_faults, halted=bool(flags & 8),
            epc_resident=epc_resident, epc_ever=epc_ever,
            aex_countdown=aex_countdown, aex_rng_state=aex_rng_state)
        io_cursor = r.u64()
        budget = r.i64()
        input_digest = r.raw(32)
        reports = tuple(r.u64() for _ in range(r.u32()))
        sent_plaintext = tuple(r.blob() for _ in range(r.u32()))
        enclave_pages = tuple(
            (r.u32(), r.raw(PAGE_SIZE)) for _ in range(r.u32()))
        outside_pages = tuple(
            (r.u64(), r.raw(PAGE_SIZE)) for _ in range(r.u32()))
        if not r.done():
            raise RollbackError("checkpoint payload has trailing bytes")
        return cls(cpu=cpu, io_cursor=io_cursor, budget=budget,
                   input_digest=input_digest, reports=reports,
                   sent_plaintext=sent_plaintext,
                   enclave_pages=enclave_pages,
                   outside_pages=outside_pages)


# -- sealing ------------------------------------------------------------


def seal_checkpoint(key: bytes, counter: int, prev_mac: bytes,
                    payload: CheckpointPayload) -> bytes:
    """Serialize + MAC one checkpoint blob."""
    body = payload.pack()
    head = _HDR.pack(MAGIC, VERSION, counter, KIND_DELTA,
                     prev_mac or _ZERO_MAC, len(body))
    mac = hmac.new(key, head + body, hashlib.sha256).digest()
    return head + body + mac


def unseal_checkpoint(key: bytes, blob: bytes
                      ) -> Tuple[int, bytes, bytes, CheckpointPayload]:
    """Authenticate one blob; returns (counter, prev_mac, mac, payload).

    Raises :class:`RollbackError` on any malformation or MAC mismatch —
    indistinguishably, so the host learns nothing from the failure mode.
    """
    if len(blob) < _HDR.size + _MAC_LEN:
        raise RollbackError("checkpoint rejected: truncated blob")
    try:
        magic, version, counter, kind, prev_mac, length = \
            _HDR.unpack_from(blob, 0)
    except struct.error:
        raise RollbackError("checkpoint rejected: malformed header")
    if magic != MAGIC or version != VERSION or kind != KIND_DELTA:
        raise RollbackError("checkpoint rejected: bad header")
    if len(blob) != _HDR.size + length + _MAC_LEN:
        raise RollbackError("checkpoint rejected: length mismatch")
    mac = blob[-_MAC_LEN:]
    expected = hmac.new(key, blob[:-_MAC_LEN], hashlib.sha256).digest()
    if not hmac.compare_digest(mac, expected):
        raise RollbackError(
            "checkpoint rejected: MAC verification failed "
            "(corrupted, or sealed by a different enclave/platform)")
    payload = CheckpointPayload.unpack(blob[_HDR.size:-_MAC_LEN])
    return counter, prev_mac, mac, payload


def verify_chain(key: bytes, blobs: List[bytes],
                 head_counter: int) -> List[CheckpointPayload]:
    """Authenticate a full checkpoint chain against the platform counter.

    Checks, failing closed with :class:`RollbackError`:

    * every blob's MAC under ``key``;
    * counters strictly consecutive (no gap, no reorder);
    * each blob's ``prev_mac`` equals its predecessor's MAC (the first
      blob must carry the all-zero MAC: a chain cannot be grafted onto
      an older one);
    * the last counter equals ``head_counter`` — the platform monotonic
      counter — so presenting yesterday's chain (rollback replay of
      checkpoint ``n-1``) is rejected even though every MAC verifies.
    """
    if not blobs:
        raise RollbackError("checkpoint rejected: empty chain")
    payloads = []
    last_counter = None
    last_mac = _ZERO_MAC
    for blob in blobs:
        counter, prev_mac, mac, payload = unseal_checkpoint(key, blob)
        if last_counter is not None and counter != last_counter + 1:
            raise RollbackError(
                f"checkpoint rejected: counter gap "
                f"({last_counter} -> {counter})")
        if prev_mac != last_mac:
            raise RollbackError(
                "checkpoint rejected: broken MAC chain")
        payloads.append(payload)
        last_counter = counter
        last_mac = mac
    if last_counter != head_counter:
        raise RollbackError(
            f"checkpoint rejected: stale chain (head counter "
            f"{last_counter}, platform counter {head_counter}) — "
            f"rollback replay")
    return payloads


# -- watchdog -----------------------------------------------------------


class Watchdog:
    """Cooperative budget enforcement, polled at safe points only.

    The VM cannot be interrupted asynchronously (and real enclaves
    cannot be trusted to be — the host controls the clock), so budgets
    are checked between execution slices.  Any of the three limits may
    be ``None`` (unlimited).  ``max_wall_seconds`` is measured from the
    first poll, so provisioning time is not charged against the run.
    """

    def __init__(self, max_cycles: Optional[float] = None,
                 max_steps: Optional[int] = None,
                 max_wall_seconds: Optional[float] = None):
        self.max_cycles = max_cycles
        self.max_steps = max_steps
        self.max_wall_seconds = max_wall_seconds
        self._t0 = None

    def exceeded(self, cpu: CPU) -> Optional[str]:
        """Return a human-readable reason, or None while within budget."""
        if self._t0 is None:
            self._t0 = perf_counter()
        if self.max_steps is not None and cpu.steps >= self.max_steps:
            return (f"watchdog: step budget exhausted "
                    f"({cpu.steps} >= {self.max_steps})")
        if self.max_cycles is not None and cpu.cycles >= self.max_cycles:
            return (f"watchdog: cycle budget exhausted "
                    f"({cpu.cycles:.0f} >= {self.max_cycles:.0f})")
        if self.max_wall_seconds is not None and \
                perf_counter() - self._t0 >= self.max_wall_seconds:
            return (f"watchdog: wall deadline exceeded "
                    f"({self.max_wall_seconds}s)")
        return None


@dataclass
class CheckpointChain:
    """In-flight sealing state of one checkpoint chain."""

    key: bytes
    prev_mac: bytes
    blobs: List[bytes]


def take_checkpoint(boot, cpu: CPU, io, outcome,
                    chain: CheckpointChain, checkpoint_sink) -> None:
    """Seal one incremental checkpoint at the current safe point."""
    from ..sgx.memory import PAGE_SHIFT
    space = boot.enclave.space
    dirty, outside = space.drain_dirty()
    base = space.enclave_base
    payload = CheckpointPayload(
        cpu=cpu.snapshot(),
        io_cursor=io.cursor,
        budget=boot._budget,
        input_digest=hashlib.sha256(io.input).digest(),
        reports=tuple(outcome.reports),
        sent_plaintext=tuple(outcome.sent_plaintext),
        enclave_pages=tuple(
            (index, space.read_page(base + (index << PAGE_SHIFT)))
            for index in sorted(dirty)),
        outside_pages=tuple(
            (addr, space.read_page(addr))
            for addr in sorted(outside)))
    counter = boot.enclave.platform.counter_bump(COUNTER_LABEL)
    blob = seal_checkpoint(chain.key, counter, chain.prev_mac, payload)
    chain.prev_mac = blob[-32:]
    chain.blobs.append(blob)
    outcome.checkpoints_taken += 1
    if checkpoint_sink is not None:
        checkpoint_sink(blob)


def checkpointed_loop(boot, cpu: CPU, io, outcome,
                      chain: CheckpointChain, max_steps: int,
                      checkpoint_every: Optional[int],
                      watchdog: Optional[Watchdog],
                      checkpoint_sink, interrupt):
    """Slice-execute to safe points, checkpointing between slices."""
    from ..errors import (
        CpuFault, DeadlineExceeded, MemoryFault, PolicyViolation,
    )
    from ..vm.cpu import ExecResult
    slice_n = checkpoint_every or boot._WATCHDOG_SLICE
    try:
        while True:
            if interrupt is not None:
                interrupt(cpu)
            if watchdog is not None:
                reason = watchdog.exceeded(cpu)
                if reason is not None:
                    if checkpoint_every is not None:
                        take_checkpoint(boot, cpu, io, outcome, chain,
                                        checkpoint_sink)
                    boot.audit.record("watchdog_expired",
                                      reason=reason, steps=cpu.steps)
                    raise DeadlineExceeded(reason, chain.blobs)
            result = cpu.run(max_steps=max_steps, slice_steps=slice_n)
            if cpu.halted:
                outcome.result = result
                boot.enclave.hw_aex_count += cpu.aex_events
                break
            if checkpoint_every is not None:
                take_checkpoint(boot, cpu, io, outcome, chain,
                                checkpoint_sink)
    except PolicyViolation as exc:
        outcome.status = "violation"
        outcome.violation_code = exc.code
        outcome.detail = str(exc)
        outcome.result = ExecResult(cpu.steps, cpu.cycles, cpu.rip,
                                    cpu.aex_events, cpu.regs[0])
    except (MemoryFault, CpuFault) as exc:
        outcome.status = "fault"
        outcome.detail = str(exc)
        outcome.result = ExecResult(cpu.steps, cpu.cycles, cpu.rip,
                                    cpu.aex_events, cpu.regs[0])
    outcome.jit_stats = cpu.jit_stats()
    return boot._finish_run(outcome)
