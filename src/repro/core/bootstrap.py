"""The bootstrap enclave (§III-A, §V-B).

Public, measured, attested code that receives the target binary and the
user data, runs the load -> disassemble -> verify -> rewrite pipeline,
and executes the target under the P0 OCall wrappers:

* ``__send`` (SVC 1): output is encrypted on the session channel and
  padded to fixed-size records; total output is capped by the entropy
  budget;
* ``__recv`` (SVC 2): reads from the decrypted user-data buffer;
* ``__report`` (SVC 3): a 64-bit result value, also charged against the
  output budget.

The bootstrap's measured image is the actual source of this package —
"its code is public and initial state is measured by hardware".
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Dict, List, Optional

from ..compiler.objfile import ObjectFile
from ..crypto.channel import SecureChannel
from ..errors import (
    CpuFault, EnclaveError, MemoryFault, PolicyViolation,
    ProtocolError, RollbackError, VerificationError,
)
from ..policy.magic import MARKER_VALUE, VIOL_P0
from ..policy.policies import PolicySet
from ..sgx.enclave import Enclave
from ..sgx.layout import EnclaveConfig
from ..sgx.memory import PAGE_SHIFT
from ..sgx.quote import PlatformKey, Quote
from ..vm.costmodel import CostModel
from ..vm.cpu import CPU, ExecResult
from ..vm.interrupts import AexSchedule
from .audit import AuditLog
from .cache import PROVISION_CACHE, ProvisionCache  # noqa: F401 (re-export)
from .checkpoint import (
    COUNTER_LABEL, CheckpointChain, Watchdog, checkpointed_loop,
    derive_seal_key, verify_chain,
)
from .loader import DynamicLoader, LoadedBinary, ProvisionedImage
from .outcome import RunOutcome, _ThreadIO  # noqa: F401 (re-export)
from .rdd import recursive_descent
from .rewriter import ImmRewriter, build_value_map
from .verifier import DEFAULT_ALLOWED_SVCS, PolicyVerifier, VerifiedBinary

SVC_SEND = 1
SVC_RECV = 2
SVC_REPORT = 3

_RDI, _RSI = 7, 6


def consumer_image() -> bytes:
    """The public bootstrap implementation image that gets measured.

    Concatenates the source files of the code consumer (this package and
    the annotation contract), so two bootstraps running identical
    consumer code have identical MRENCLAVE.
    """
    roots = [Path(__file__).parent,
             Path(__file__).parent.parent / "policy"]
    chunks = []
    for root in roots:
        for path in sorted(root.glob("*.py")):
            chunks.append(path.name.encode() + b"\x00" +
                          path.read_bytes())
    return b"\x00".join(chunks)


@dataclass
class P0Config:
    """Interface-control knobs (the EDL manifest + wrappers)."""

    max_output_bytes: int = 1 << 20   # entropy budget for send+report
    record_size: int = 256            # fixed ciphertext record payload
    allowed_svcs: tuple = tuple(sorted(DEFAULT_ALLOWED_SVCS))
    #: §VII extension — "on-demand aligning/blurring processing time":
    #: when nonzero, the bootstrap busy-pads every run so the host
    #: observes a cycle count rounded up to a multiple of this quantum,
    #: closing the processing-time covert channel.  0 disables padding.
    pad_cycles_quantum: int = 0


class BootstrapEnclave:
    """Code consumer + P0 wrappers, hosted in a simulated enclave."""

    def __init__(self, policies: Optional[PolicySet] = None,
                 config: Optional[EnclaveConfig] = None,
                 platform: Optional[PlatformKey] = None,
                 p0: Optional[P0Config] = None,
                 aex_threshold: int = 10,
                 custom=(),
                 provision_cache: Optional[ProvisionCache] = None):
        self.policies = policies if policies is not None \
            else PolicySet.full()
        self.p0 = p0 or P0Config()
        self.aex_threshold = aex_threshold
        self.provision_cache = provision_cache
        self.provision_cache_hits = 0
        self.enclave = Enclave(config, platform)
        self._attach_enclave()
        self.custom = tuple(custom)
        self.verifier = PolicyVerifier(self.policies,
                                       self.p0.allowed_svcs,
                                       custom=self.custom)
        self.loaded: Optional[LoadedBinary] = None
        self.verified: Optional[VerifiedBinary] = None
        #: Thread-0 CPU kept across ``run(reuse_cpu=True)`` calls so a
        #: warm re-run inherits the translated-block cache.
        self._cpu0: Optional[CPU] = None
        #: Stage timings (seconds) of the most recent provisioning.
        self.provision_stages: Dict[str, float] = {}
        #: Tamper-evident event chain (attestation evidence).
        self.audit = AuditLog()
        self.audit.record("enclave_initialized",
                          mrenclave=self.enclave.mrenclave.hex(),
                          policies=self.policies.describe())
        #: Session channels by role: 'owner' (data owner) and 'provider'
        #: (code provider) — the two parties of §III-A.
        self.channels = {}
        #: Enclave-side handshake public keys already used — the
        #: freshness registry ``establish_session`` checks so a stale
        #: entropy source (or a replayed handshake) is rejected.  Kept
        #: across :meth:`recover` on purpose: key reuse across restarts
        #: is exactly the replay the check exists for.
        self.handshake_keys = set()
        self._input: bytes = b""
        self._input_cursor = 0
        #: sha256 of the currently provisioned blob — the session secret
        #: of the checkpoint sealing key (None until a binary verifies).
        self._provision_digest: Optional[bytes] = None

    def _attach_enclave(self) -> None:
        """Measure + EINIT ``self.enclave`` and wire the ECall table and
        the loader to it (shared by ``__init__`` and :meth:`recover`)."""
        self.enclave.load_bootstrap_image(consumer_image())
        self.enclave.einit()
        self.loader = DynamicLoader(self.enclave)
        for target in (self.receive_binary, self.receive_userdata,
                       self.run, self.resume, self.ping):
            self.enclave.register_ecall(
                "ecall_" + target.__name__, target)

    def recover(self, reason: str = "teardown") -> bytes:
        """Rebuild the enclave after a platform teardown.

        A fresh enclave is built and EINIT'd with the same config on the
        *same* platform, so MRENCLAVE is unchanged and the platform's
        attestation provisioning stays valid.  All volatile state dies
        with the old instance — session channels, the provisioned
        binary, staged user data — which is why callers must re-attest
        and re-deliver.  The audit chain survives and gains a
        ``recovered`` link: a remote party auditing the history sees
        exactly when restarts happened and that no event was lost.
        Returns the (unchanged) MRENCLAVE.
        """
        self.enclave = Enclave(self.enclave.config, self.enclave.platform)
        self._attach_enclave()
        self.loaded = None
        self.verified = None
        self.provision_stages = {}
        self.channels = {}
        self._input = b""
        self._input_cursor = 0
        self._provision_digest = None
        self.audit.record("recovered", reason=reason,
                          mrenclave=self.enclave.mrenclave.hex())
        return self.enclave.mrenclave

    # -- attestation ----------------------------------------------------------

    @property
    def mrenclave(self) -> bytes:
        return self.enclave.mrenclave

    def quote(self, report_data: bytes = b"") -> Quote:
        return self.enclave.get_quote(report_data)

    def quote_with_audit(self) -> Quote:
        """Quote whose report data pins the audit-chain head, so a
        remote party can check the claimed history is the real one."""
        return self.enclave.get_quote(self.audit.head)

    def ping(self) -> Dict[str, object]:
        """Cheap liveness ECall for fleet supervision.

        Answers only if the enclave is alive (a torn-down instance
        raises :class:`~repro.errors.EnclaveTeardown` at the ECall
        gate) and reports just enough for a supervisor's health
        verdict: the measured identity, whether a binary is currently
        provisioned, and the audit head so a flapping-but-lying drone
        cannot replay an old healthy answer.  Deliberately *not*
        audited itself — heartbeats fire every supervision tick and
        must not grow the evidence chain."""
        return {"mrenclave": self.enclave.mrenclave.hex(), "provisioned":
                self.verified is not None, "audit_head": self.audit.head.hex()}

    def attach_channel(self, channel: SecureChannel,
                       role: str = "owner") -> None:
        """Bind an established RA-TLS session channel for ``role``
        ('owner' or 'provider')."""
        if role not in ("owner", "provider"):
            raise ProtocolError(f"unknown role {role!r}")
        self.channels[role] = channel
        self.audit.record("channel_attached", role=role)

    @property
    def channel(self) -> Optional[SecureChannel]:
        """The data-owner channel (P0 output goes to the data owner)."""
        return self.channels.get("owner")

    # -- delivery ECalls ---------------------------------------------------------

    def receive_binary(self, blob: bytes,
                       encrypted: bool = False) -> bytes:
        """``ecall_receive_binary``: parse, load, verify, rewrite.

        Returns the measurement (hash) of the received service binary,
        which the bootstrap forwards to the data owner (§III-A).
        Raises :class:`VerificationError` when the binary is rejected.
        """
        if encrypted:
            provider = self.channels.get("provider")
            if provider is None:
                raise ProtocolError("no provider channel established")
            blob = provider.open(blob)
        digest = hashlib.sha256(blob).digest()
        blob_hash = digest.hex()
        key = self._provision_key(digest)
        if self.provision_cache is not None:
            t0 = perf_counter()
            image = self.provision_cache.lookup(key)
            if image is not None:
                self.loaded = self.loader.install_image(image)
                self.verified = image.verified
                self.provision_cache_hits += 1
                self.provision_stages = {"install": perf_counter() - t0}
                self._provision_digest = digest
                self.audit.record(
                    "binary_provisioned_cached", hash=blob_hash,
                    mrenclave=self.enclave.mrenclave.hex(),
                    instructions=image.verified.instruction_count)
                return digest
        try:
            t0 = perf_counter()
            obj = ObjectFile.parse(blob)
            t1 = perf_counter()
            loaded = self.loader.load(obj)
            text = self.enclave.space.read_raw(loaded.code_base,
                                               loaded.code_len)
            entry_off = loaded.entry_addr - loaded.code_base
            target_offs = sorted(set(
                addr - loaded.code_base
                for addr in loaded.branch_target_addrs))
            t2 = perf_counter()
            code = recursive_descent(text, entry_off, target_offs)
            t3 = perf_counter()
            values = build_value_map(self.enclave.layout, loaded,
                                     self.aex_threshold,
                                     policies=self.policies)
            verified = self.verifier.verify_code(
                code, entry_off, target_offs,
                proofs=obj.proofs, values=values)
            t4 = perf_counter()
        except Exception as exc:
            self.audit.record("binary_rejected", hash=blob_hash,
                              reason=str(exc))
            raise
        rewriter = ImmRewriter(values)
        rewriter.apply(self.enclave.space, loaded.code_base,
                       verified.magic_slots)
        t5 = perf_counter()
        self.provision_stages = {
            "parse": t1 - t0, "load": t2 - t1, "rdd": t3 - t2,
            "verify": t4 - t3, "rewrite": t5 - t4,
        }
        self.loaded = loaded
        self.verified = verified
        self._provision_digest = digest
        self.audit.record(
            "binary_verified", hash=blob_hash,
            annotations=sum(verified.annotation_counts.values()),
            instructions=verified.instruction_count)
        if self.provision_cache is not None:
            self.provision_cache.store(
                key, self.loader.capture_image(loaded, verified, digest))
        return digest

    def _provision_key(self, digest: bytes) -> tuple:
        """Cache key: blob digest + every pipeline input that shapes
        the provisioned image (verifier verdict inputs, enclave layout,
        rewriter values).  MRENCLAVE is part of the key so a cached
        image can only ever be replayed into an enclave running the
        exact same measured consumer code — a re-built (recovered)
        enclave keeps its MRENCLAVE and keeps hitting, while any
        different bootstrap build misses and re-verifies."""
        return (digest,
                self.enclave.mrenclave,
                self.verifier.fingerprint(),
                dataclasses.astuple(self.enclave.config),
                self.aex_threshold)

    def receive_userdata(self, data: bytes,
                         encrypted: bool = False) -> int:
        """``ecall_receive_userdata``: stage decrypted input for
        ``__recv``."""
        if encrypted:
            owner = self.channels.get("owner")
            if owner is None:
                raise ProtocolError("no owner channel established")
            data = owner.open(data)
        self._input = bytes(data)
        self._input_cursor = 0
        self.audit.record("userdata_received", nbytes=len(self._input),
                          encrypted=encrypted)
        return len(self._input)

    # -- execution -----------------------------------------------------------------

    def _reset_runtime_cells(self) -> None:
        layout = self.enclave.layout
        space = self.enclave.space
        space.write_raw(layout.ssp_cell,
                        layout.ss_base.to_bytes(8, "little"))
        space.write_raw(layout.ssa_marker_addr,
                        MARKER_VALUE.to_bytes(8, "little"))
        space.write_raw(layout.aex_count_cell, b"\x00" * 8)

    def _make_cpu(self, tid: int, io: "_ThreadIO", aex_schedule,
                  cost_model, reuse: bool = False) -> CPU:
        layout = self.enclave.layout
        kw = dict(aex_schedule=aex_schedule,
                  svc_handler=lambda c, num: self._svc(c, num, io),
                  initial_rsp=layout.initial_rsp_of(tid))
        if reuse and tid == 0 and self._cpu0 is not None \
                and self._cpu0.cost_model is cost_model:
            # Warm re-run: rewind the architectural state but keep the
            # translated-block cache (steady-state benchmarking).  Only
            # taken when the cost model is the *same object* — cycle
            # constants are baked into compiled blocks.
            cpu = self._cpu0
            cpu.reset_for_run(**kw)
        else:
            fk = frozenset(self.loaded.code_base + off for off in
                           self.verified.flag_kill_offsets) \
                if self.verified is not None else None
            cpu = CPU(self.enclave.space, self.loaded.entry_addr,
                      cost_model=cost_model,
                      ssa_addr=layout.ssa_addr_of(tid),
                      hot_range=(layout.crit_lo, layout.crit_hi),
                      branch_targets=frozenset(
                          self.loaded.branch_target_addrs),
                      flag_kill=fk, **kw)
            if reuse and tid == 0:
                self._cpu0 = cpu
        if self.policies.mt_safe:
            # §VII: the shadow-stack pointer lives in R13, per thread
            cpu.regs[13] = layout.shadow_slice_base(tid)
        return cpu

    def run(self, aex_schedule: Optional[AexSchedule] = None,
            cost_model: Optional[CostModel] = None,
            max_steps: int = 200_000_000,
            checkpoint_every: Optional[int] = None,
            watchdog: Optional[Watchdog] = None,
            checkpoint_sink=None,
            interrupt=None, reuse_cpu: bool = False,
            jit_eager: bool = False) -> RunOutcome:
        """``ecall_run``: execute the verified target binary.

        With ``checkpoint_every=N``, execution pauses at every Nth
        instruction boundary (a safe point) and seals an incremental
        checkpoint — delivered to ``checkpoint_sink(blob)`` when given
        — so a platform teardown loses at most N instructions of work
        (see :meth:`resume`).  ``watchdog`` budgets are enforced
        cooperatively at the same safe points, raising
        :class:`DeadlineExceeded` with the final chain attached.
        ``interrupt(cpu)``, when given, is polled at each safe point
        and may raise (the fault-injection harness models mid-run
        teardown with it).  With none of these, this is the plain
        single-shot run.

        ``reuse_cpu=True`` keeps the thread-0 CPU (and its translated
        block cache) across calls: a second ``run`` after restoring the
        enclave RAM image (``repro.bench.harness.snapshot_run_state``)
        then measures warm steady-state execution.  Only honored on the
        plain path and only when the same ``cost_model`` object is
        passed again.

        ``jit_eager=True`` makes the translating executor compile
        every block on first dispatch instead of after its cold-run
        threshold.  Semantically invisible; pairs with ``reuse_cpu``
        so one untimed priming run drives the block cache to its
        fixed point before a measured run.
        """
        if self.loaded is None or self.verified is None:
            raise EnclaveError("no verified binary provisioned")
        checkpointing = (checkpoint_every is not None
                         or watchdog is not None
                         or interrupt is not None)
        if not checkpointing:
            self._reset_runtime_cells()
            outcome = RunOutcome(
                status="ok",
                provision_cache_hits=self.provision_cache_hits,
                provision_stages=dict(self.provision_stages))
            io = _ThreadIO(self._input, 0, outcome)
            self._budget = self.p0.max_output_bytes
            cpu = self._make_cpu(0, io, aex_schedule, cost_model,
                                 reuse=reuse_cpu)
            cpu.jit_eager = jit_eager
            try:
                outcome.result = cpu.run(max_steps=max_steps)
                self.enclave.hw_aex_count += cpu.aex_events
            except PolicyViolation as exc:
                outcome.status = "violation"
                outcome.violation_code = exc.code
                outcome.detail = str(exc)
                outcome.result = ExecResult(cpu.steps, cpu.cycles,
                                            cpu.rip, cpu.aex_events,
                                            cpu.regs[0])
            except (MemoryFault, CpuFault) as exc:
                outcome.status = "fault"
                outcome.detail = str(exc)
                outcome.result = ExecResult(cpu.steps, cpu.cycles,
                                            cpu.rip, cpu.aex_events,
                                            cpu.regs[0])
            outcome.jit_stats = cpu.jit_stats()
            return self._finish_run(outcome)
        # Checkpointed path.  Dirty tracking must be on before the CPU
        # exists (the translator bakes the decision into its blocks);
        # the drain resets the delta baseline to the post-provision
        # image, which a resuming enclave reproduces via re-provision.
        space = self.enclave.space
        space.track_dirty(True)
        space.drain_dirty()
        self._reset_runtime_cells()
        outcome = RunOutcome(status="ok",
                             provision_cache_hits=self.provision_cache_hits,
                             provision_stages=dict(self.provision_stages))
        io = _ThreadIO(self._input, 0, outcome)
        self._budget = self.p0.max_output_bytes
        cpu = self._make_cpu(0, io, aex_schedule, cost_model)
        chain = CheckpointChain(key=self._seal_key(),
                                prev_mac=b"\x00" * 32, blobs=[])
        return checkpointed_loop(
            self, cpu, io, outcome, chain, max_steps, checkpoint_every,
            watchdog, checkpoint_sink, interrupt)

    def resume(self, blobs,
               aex_schedule: Optional[AexSchedule] = None,
               cost_model: Optional[CostModel] = None,
               max_steps: int = 200_000_000,
               checkpoint_every: Optional[int] = None,
               watchdog: Optional[Watchdog] = None,
               checkpoint_sink=None,
               interrupt=None) -> RunOutcome:
        """``ecall_resume``: continue a run from a sealed checkpoint chain.

        The caller must have re-provisioned the *same* binary and
        re-staged the *same* user data first (both are checked: the
        sealing key embeds the provision digest, the chain embeds the
        input digest).  The chain is authenticated against the platform
        monotonic counter before a single byte of it is trusted; any
        corruption, cross-enclave blob, gap, or stale head fails closed
        with :class:`RollbackError` — resuming from host-chosen state
        would be a rollback attack, so there is deliberately no
        best-effort path.  On success the memory deltas are replayed
        onto the freshly provisioned image, the CPU adopts the
        safe-point snapshot (including the seeded AEX schedule state),
        and execution continues bit-identically to the uninterrupted
        run — taking further checkpoints on the same chain when
        ``checkpoint_every`` is set.
        """
        if self.loaded is None or self.verified is None:
            raise EnclaveError("no verified binary provisioned")
        blobs = list(blobs)
        key = self._seal_key()
        head = self.enclave.platform.counter_read(COUNTER_LABEL)
        payloads = verify_chain(key, blobs, head)
        last = payloads[-1]
        if hashlib.sha256(self._input).digest() != last.input_digest:
            self.audit.record("resume_rejected", reason="input-mismatch")
            raise RollbackError(
                "checkpoint rejected: staged user data does not match "
                "the checkpointed input")
        space = self.enclave.space
        space.track_dirty(True)
        base = space.enclave_base
        for payload in payloads:
            for index, data in payload.enclave_pages:
                space.write_page(base + (index << PAGE_SHIFT), data)
            for addr, data in payload.outside_pages:
                space.write_page(addr, data)
        space.drain_dirty()
        outcome = RunOutcome(status="ok",
                             provision_cache_hits=self.provision_cache_hits,
                             provision_stages=dict(self.provision_stages))
        outcome.reports = list(last.reports)
        outcome.sent_plaintext = [bytes(d) for d in last.sent_plaintext]
        outcome.sent_wire = [self._wire_for(d)
                             for d in outcome.sent_plaintext]
        outcome.resumed_at_step = last.cpu.steps
        io = _ThreadIO(self._input, last.io_cursor, outcome)
        self._budget = last.budget
        cpu = self._make_cpu(0, io, aex_schedule, cost_model)
        cpu.restore(last.cpu)
        self.audit.record("resumed", steps=last.cpu.steps,
                          counter=head, chain=len(blobs))
        chain = CheckpointChain(key=key, prev_mac=blobs[-1][-32:],
                                blobs=blobs)
        return checkpointed_loop(
            self, cpu, io, outcome, chain, max_steps, checkpoint_every,
            watchdog, checkpoint_sink, interrupt)

    def _seal_key(self) -> bytes:
        if self._provision_digest is None:
            raise EnclaveError(
                "no provisioned binary to derive a sealing key from")
        return derive_seal_key(self.enclave.platform.seal_fuse(),
                               self.enclave.mrenclave,
                               self._provision_digest)

    #: Safe-point poll granularity when only a watchdog (no
    #: ``checkpoint_every``) asks for cooperative pauses.
    _WATCHDOG_SLICE = 10_000

    def _finish_run(self, outcome: RunOutcome) -> RunOutcome:
        """Shared run epilogue: time blurring + the audit record."""
        outcome.observable_cycles = self._pad_time(
            outcome.result.cycles if outcome.result else 0.0)
        self.audit.record(
            "run_completed", status=outcome.status,
            violation=outcome.violation_name,
            steps=outcome.result.steps,
            observable_cycles=int(outcome.observable_cycles),
            outputs=len(outcome.sent_wire) + len(outcome.reports),
            checkpoints=outcome.checkpoints_taken)
        return outcome

    def run_traced(self, max_instructions: int = 200,
                   cost_model: Optional[CostModel] = None):
        """Single-step the target; see :func:`repro.core.tracing.run_traced`."""
        from .tracing import run_traced
        return run_traced(self, max_instructions, cost_model)

    def run_threads(self, inputs, quantum: int = 500,
                    cost_model: Optional[CostModel] = None,
                    max_steps: int = 50_000_000) -> List[RunOutcome]:
        """Run over N TCS slots; see :func:`repro.core.threads.run_threads`."""
        from .threads import run_threads
        return run_threads(self, inputs, quantum, cost_model, max_steps)

    def _pad_time(self, cycles: float) -> float:
        """§VII time blurring: the host only ever observes quantum-
        aligned completion times."""
        quantum = self.p0.pad_cycles_quantum
        if quantum <= 0:
            return cycles
        blocks = int(cycles // quantum) + (1 if cycles % quantum else 0)
        return float(max(1, blocks) * quantum)

    # -- P0 OCall wrappers --------------------------------------------------------

    def _charge_budget(self, nbytes: int) -> None:
        self._budget -= nbytes
        if self._budget < 0:
            raise PolicyViolation(
                VIOL_P0, 0, "P0: output entropy budget exhausted")

    def _wire_for(self, data: bytes) -> bytes:
        """Wire form of one P0 output record.  Without a session the
        record is padded but cleartext — deterministic, which is what
        lets a resumed run regenerate pre-checkpoint wire records
        byte-identically."""
        if self.channel is not None:
            return self.channel.seal(data)
        pad = self.p0.record_size
        padded = max(pad, (len(data) + pad - 1) // pad * pad)
        return data + b"\x00" * (padded - len(data))

    def _svc(self, cpu: CPU, num: int, io: "_ThreadIO") -> None:
        outcome = io.outcome
        if num == SVC_SEND:
            ptr, length = cpu.regs[_RDI], cpu.regs[_RSI]
            if length > self.enclave.layout.size:
                raise PolicyViolation(VIOL_P0, cpu.rip,
                                      "P0: absurd send length")
            self._charge_budget(length)
            data = self.enclave.space.read_raw(ptr, length)
            outcome.sent_plaintext.append(data)
            outcome.sent_wire.append(self._wire_for(data))
            cpu.regs[0] = length
        elif num == SVC_RECV:
            ptr, length = cpu.regs[_RDI], cpu.regs[_RSI]
            chunk = io.input[io.cursor:io.cursor + length]
            self.enclave.space.write_raw(ptr, chunk)
            io.cursor += len(chunk)
            cpu.regs[0] = len(chunk)
        elif num == SVC_REPORT:
            self._charge_budget(8)
            outcome.reports.append(cpu.regs[_RDI])
            cpu.regs[0] = 0
        else:
            raise PolicyViolation(VIOL_P0, cpu.rip,
                                  f"P0: OCall {num} not in manifest")
