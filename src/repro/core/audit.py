"""Tamper-evident audit log for the bootstrap enclave.

Every security-relevant event — session establishment, binary delivery
and its verification verdict, data upload, every run and its outcome —
is appended to a hash chain.  The chain head can be embedded in a quote
(report data), giving remote parties *attestation evidence* that the
history they were told matches what the measured bootstrap actually
did.  This materializes the §III-A trust story: the data owner can
audit, after the fact, that her data only ever met verified binaries.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import List, Optional

_GENESIS = b"deflection-audit-genesis"


@dataclass(frozen=True)
class AuditEvent:
    """One link of the chain."""

    sequence: int
    kind: str
    detail: dict
    chain: bytes          # H(prev_chain || canonical(event))

    def canonical(self) -> bytes:
        return json.dumps({"sequence": self.sequence, "kind": self.kind,
                           "detail": self.detail},
                          sort_keys=True).encode()


class AuditLog:
    """Append-only hash chain of bootstrap events."""

    def __init__(self):
        self._events: List[AuditEvent] = []
        self._head = hashlib.sha256(_GENESIS).digest()

    def record(self, kind: str, **detail) -> AuditEvent:
        body = json.dumps({"sequence": len(self._events), "kind": kind,
                           "detail": detail}, sort_keys=True).encode()
        chain = hashlib.sha256(self._head + body).digest()
        event = AuditEvent(len(self._events), kind, detail, chain)
        self._events.append(event)
        self._head = chain
        return event

    @property
    def events(self) -> List[AuditEvent]:
        return list(self._events)

    @property
    def head(self) -> bytes:
        """Current chain head — suitable for quote report data."""
        return self._head

    def __len__(self) -> int:
        return len(self._events)

    def verify_chain(self) -> bool:
        """Recompute the chain; True iff no event was altered/removed."""
        head = hashlib.sha256(_GENESIS).digest()
        for index, event in enumerate(self._events):
            if event.sequence != index:
                return False
            head = hashlib.sha256(head + event.canonical()).digest()
            if head != event.chain:
                return False
        return head == self._head

    def filter(self, kind: str) -> List[AuditEvent]:
        return [e for e in self._events if e.kind == kind]

    def count(self, kind: str) -> int:
        """Number of chain links of ``kind`` (e.g. how many times the
        enclave was restarted — ``count("recovered")``)."""
        return sum(1 for e in self._events if e.kind == kind)

    def render(self) -> str:
        lines = []
        for event in self._events:
            detail = ", ".join(f"{k}={v}" for k, v in
                               sorted(event.detail.items()))
            lines.append(f"[{event.sequence:3d}] {event.kind:20s} "
                         f"{detail}")
        lines.append(f"chain head: {self._head.hex()}")
        return "\n".join(lines)
