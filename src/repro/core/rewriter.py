"""Immediate-operand rewriter (§V-B, "Imm rewriter").

After verification succeeds, every magic placeholder recorded by the
verifier is patched with the concrete enclave address or value: store
bounds, shadow-stack cells, the branch byte-map base, the SSA marker
cell and the AEX threshold.  Only verified annotation slots are written
— the rewriter never scans or modifies program bytes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..errors import LoaderError
from ..policy.magic import MAGIC
from ..sgx.layout import EnclaveLayout
from .loader import LoadedBinary


def build_value_map(layout: EnclaveLayout, loaded: LoadedBinary,
                    aex_threshold: int,
                    policies=None) -> Dict[str, int]:
    """Concrete value for every magic placeholder name.

    The store-guard bounds implement P1/P3/P4 with one range check by
    tightening the lower bound (§IV-C: P3/P4 "reuse" the P1 annotation
    via different boundaries): P3 excludes the critical band (SSA/TCS/
    TLS, shadow stack, branch map) that sits directly below the code
    pages; P4 additionally excludes the code pages themselves.
    """
    code = layout.regions["code"]
    stack = layout.regions["stack"]
    store_lo = layout.el_lo
    if policies is not None and policies.p3:
        store_lo = code.start          # everything below code excluded
    if policies is not None and policies.p4:
        store_lo = code.end
    return {
        "p1_lo": store_lo,
        "p1_hi": layout.el_hi,
        "crit_lo": layout.crit_lo,
        "crit_hi": layout.crit_hi,
        "code_lo": code.start,
        "code_hi": code.end,
        "stack_lo": stack.start,
        "stack_hi": stack.end,
        "ss_cell": layout.ssp_cell,
        "ss_base": layout.ss_base,
        "ss_top": layout.ss_top,
        "code_base": loaded.code_base,
        "code_len": loaded.code_len,
        "brmap_base": layout.regions["branch_map"].start,
        "ssa_marker": layout.ssa_marker_addr,
        "aex_cnt": layout.aex_count_cell,
        "aex_threshold": aex_threshold,
    }


class ImmRewriter:
    """Patches verified magic slots in the relocated text image."""

    def __init__(self, values: Dict[str, int]):
        unknown = set(values) - set(MAGIC)
        if unknown:
            raise LoaderError(f"unknown magic names {sorted(unknown)}")
        self.values = values

    def apply(self, space, code_base: int,
              slots: Iterable[Tuple[int, str]]) -> int:
        """Write concrete values into ``slots`` (text offset, name).

        Batched: all absolute patch offsets are precomputed, then the
        covering text span is read once, every slot patched in place,
        and the span written back with a single ``write_raw`` — one
        round trip through the address space instead of one per slot.
        Returns the number of slots patched.
        """
        values = self.values
        mask = (1 << 64) - 1
        patches = []
        for offset, name in slots:
            value = values.get(name)
            if value is None:
                raise LoaderError(f"no value for magic {name!r}")
            patches.append((offset, (value & mask).to_bytes(8, "little")))
        if not patches:
            return 0
        lo = min(offset for offset, _ in patches)
        hi = max(offset for offset, _ in patches) + 8
        span = bytearray(space.read_raw(code_base + lo, hi - lo))
        for offset, encoded in patches:
            span[offset - lo:offset - lo + 8] = encoded
        space.write_raw(code_base + lo, bytes(span))
        return len(patches)
