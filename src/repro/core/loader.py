"""Dynamic loader: relocate the target binary inside the enclave.

Implements §IV-D's loading procedure: parse the relocatable object,
place text on the RWX code pages and data/bss on the heap, rebase all
symbols, apply ABS64 relocations, translate the indirect-branch list
into the valid-target byte map, and initialize the shadow-stack pointer
cell and the HyperRace marker/counter cells.  Guard pages around the
stack (for P2's implicit-overflow half) come from the enclave layout.

The loader can also *snapshot* a fully provisioned binary — the
relocated, verified, imm-rewritten memory images — into a
:class:`ProvisionedImage` and later *install* that snapshot into an
identically laid-out enclave without re-running parse/RDD/verify/
rewrite.  The provision cache in :mod:`repro.core.bootstrap` uses this
to amortize the one-time verification cost across repeated
provisionings of the same (blob, policies, config) triple.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from .verifier import VerifiedBinary

from ..compiler.objfile import ObjectFile, SEC_BSS, SEC_DATA, SEC_TEXT
from ..errors import LoaderError
from ..policy.magic import MARKER_VALUE
from ..sgx.enclave import Enclave


@dataclass
class LoadedBinary:
    """Addresses of a relocated target binary."""

    obj: ObjectFile
    code_base: int = 0
    code_len: int = 0
    data_base: int = 0
    bss_base: int = 0
    entry_addr: int = 0
    heap_free: int = 0          # first free heap byte after data+bss
    symbol_addrs: Dict[str, int] = field(default_factory=dict)
    branch_target_addrs: List[int] = field(default_factory=list)


@dataclass
class ProvisionedImage:
    """Snapshot of a verified + rewritten binary, ready to re-install.

    ``text`` is the relocated text *after* the imm rewriter patched the
    magic slots, so installing it reproduces the exact post-provision
    memory state; ``branch_map`` is the valid-target byte map the loader
    derived from the object's indirect-branch list.
    """

    blob_digest: bytes
    loaded: LoadedBinary
    verified: "VerifiedBinary"
    text: bytes
    data: bytes
    bss_size: int
    branch_map: bytes


class DynamicLoader:
    """In-enclave loader (trusted; runs before verification)."""

    def __init__(self, enclave: Enclave):
        self.enclave = enclave

    def load(self, obj: ObjectFile) -> LoadedBinary:
        layout = self.enclave.layout
        space = self.enclave.space
        code = layout.regions["code"]
        heap = layout.regions["heap"]
        if len(obj.text) > code.size:
            raise LoaderError(
                f"text ({len(obj.text)} B) exceeds code region "
                f"({code.size} B)")
        data_base = heap.start
        bss_base = data_base + _align8(len(obj.data))
        heap_free = bss_base + _align8(obj.bss_size)
        if heap_free > heap.end:
            raise LoaderError("data+bss exceed the heap region")

        loaded = LoadedBinary(obj, code_base=code.start,
                              code_len=len(obj.text),
                              data_base=data_base, bss_base=bss_base,
                              heap_free=heap_free)

        # -- rebase symbols -------------------------------------------------
        for name, sym in obj.symbols.items():
            if sym.section == SEC_TEXT:
                base = code.start
            elif sym.section == SEC_DATA:
                base = data_base
            elif sym.section == SEC_BSS:
                base = bss_base
            else:  # pragma: no cover - parse() validates sections
                raise LoaderError(f"bad section for {name!r}")
            if sym.section == SEC_TEXT and sym.offset >= len(obj.text):
                raise LoaderError(f"symbol {name!r} outside text")
            loaded.symbol_addrs[name] = base + sym.offset

        # -- place images -----------------------------------------------------
        text = bytearray(obj.text)
        for reloc in obj.relocations:
            target = loaded.symbol_addrs.get(reloc.symbol)
            if target is None:
                raise LoaderError(f"undefined symbol {reloc.symbol!r}")
            value = (target + reloc.addend) & ((1 << 64) - 1)
            text[reloc.offset:reloc.offset + 8] = \
                value.to_bytes(8, "little")
        space.write_raw(code.start, bytes(text))
        space.write_raw(data_base, obj.data)
        space.write_raw(bss_base, b"\x00" * obj.bss_size)

        # -- valid-target byte map ("indirect branch list translated to
        #    in-enclave addresses", §IV-D) ------------------------------------
        brmap = layout.regions["branch_map"]
        space.write_raw(brmap.start, b"\x00" * len(obj.text))
        for name in obj.branch_targets:
            sym = obj.symbol(name)
            if sym.section != SEC_TEXT:
                raise LoaderError(
                    f"indirect target {name!r} is not code")
            space.write_raw(brmap.start + sym.offset, b"\x01")
            loaded.branch_target_addrs.append(code.start + sym.offset)

        # -- runtime cells ------------------------------------------------------
        space.write_raw(layout.ssp_cell,
                        layout.ss_base.to_bytes(8, "little"))
        space.write_raw(layout.ssa_marker_addr,
                        MARKER_VALUE.to_bytes(8, "little"))
        space.write_raw(layout.aex_count_cell, b"\x00" * 8)

        entry = obj.symbols.get(obj.entry)
        if entry is None or entry.section != SEC_TEXT:
            raise LoaderError("bad entry symbol")
        loaded.entry_addr = code.start + entry.offset
        return loaded

    # -- provision snapshots ---------------------------------------------

    def capture_image(self, loaded: LoadedBinary,
                      verified: "VerifiedBinary",
                      blob_digest: bytes) -> ProvisionedImage:
        """Snapshot the provisioned memory images for later re-install."""
        space = self.enclave.space
        brmap = self.enclave.layout.regions["branch_map"]
        return ProvisionedImage(
            blob_digest=blob_digest,
            loaded=loaded,
            verified=verified,
            text=space.read_raw(loaded.code_base, loaded.code_len),
            data=bytes(loaded.obj.data),
            bss_size=loaded.obj.bss_size,
            branch_map=space.read_raw(brmap.start, loaded.code_len))

    def install_image(self, image: ProvisionedImage) -> LoadedBinary:
        """Re-install a snapshot into an identically laid-out enclave.

        The caller (the provision cache) guarantees the layout matches
        the one the snapshot was captured under; the size check below is
        a belt-and-braces guard, not a substitute for the cache key.
        """
        layout = self.enclave.layout
        space = self.enclave.space
        loaded = image.loaded
        code = layout.regions["code"]
        if loaded.code_base != code.start or \
                loaded.code_len > code.size:
            raise LoaderError("snapshot layout mismatch")
        space.write_raw(loaded.code_base, image.text)
        space.write_raw(loaded.data_base, image.data)
        space.write_raw(loaded.bss_base, b"\x00" * image.bss_size)
        brmap = layout.regions["branch_map"]
        space.write_raw(brmap.start, image.branch_map)
        space.write_raw(layout.ssp_cell,
                        layout.ss_base.to_bytes(8, "little"))
        space.write_raw(layout.ssa_marker_addr,
                        MARKER_VALUE.to_bytes(8, "little"))
        space.write_raw(layout.aex_count_cell, b"\x00" * 8)
        return loaded


def _align8(value: int) -> int:
    return (value + 7) & ~7
