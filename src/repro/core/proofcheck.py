"""In-enclave checker for the static proof tier (fail-closed).

The untrusted producer may ship a binary with some P1–P5 guards elided,
each elision accompanied by a proof entry ``(site, kind, def)``.  This
module *re-derives* every claimed proof from the delivered bytes — the
producer's analysis is never trusted, only its hints about where to
look.  Any proof that does not re-derive raises
:class:`~repro.errors.VerificationError`, and the verifier then demands
the runtime guard as usual, so a hostile or buggy proof log can never
weaken enforcement below the annotation-full contract.

Soundness arguments per kind:

* ``stack`` — the store goes through RBP with ``|disp|`` under one
  page, and RBP was set by a dominating ``PUSH RBP; MOV RBP, RSP``
  prologue.  The PUSH *touches* the slot RBP then names, so the store
  lands within one page of a successfully written stack address; the
  layout's whole guard pages on both sides of the stack band (inside
  ``[store_lo, store_hi)``) make it impossible to reach past the band
  without faulting first.
* ``const_addr`` — the base register is a compile-time constant
  (post-relocation ``MOV r, imm64``) unclobbered on the straight-line
  path to the store, so the target range is known exactly.
* ``rsp_step`` — the explicit RSP write moves the pointer by less than
  a page *and* sits right after a probing instruction (the ``PUSH RBP``
  of a prologue, or a CALL whose return-address push probed the stack).
  Successive probes are therefore never more than one page apart, so a
  runaway chain of steps must write into a guard page before it can
  escape the band — the classic stack-probing argument.  ``MOV RSP,
  RBP`` and oversized or unaligned steps keep their runtime P2 guard.
* ``cfi`` — the branch-target register is a constant that resolves to
  an offset on the trusted branch-target list.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import VerificationError
from ..isa.instructions import (
    INDIRECT_BRANCH_OPS, Mem, NO_FALLTHROUGH_OPS, Op, STORE_OPS,
    _REG_DST_OPS,
)
from ..isa.registers import RBP, RSP
from ..policy.magic import is_magic
from ..sgx.memory import PAGE_SIZE

PROOF_STACK = 1
PROOF_CONST = 2
PROOF_RSP_STEP = 3
PROOF_CFI = 4

PROOF_KIND_NAMES = {PROOF_STACK: "stack", PROOF_CONST: "const_addr",
                    PROOF_RSP_STEP: "rsp_step", PROOF_CFI: "cfi"}

#: Largest provable frame step / stack displacement: one page minus a
#: slot, so a step from anywhere inside the stack band cannot jump over
#: the layout's one-page guard bands.
MAX_STEP = PAGE_SIZE - 8

#: Ops allowed between a constant definition and its use site: register
#: writes to *other* registers, stores, pushes and flag ops.  Anything
#: that can transfer control, escape, or pop is disqualifying.
_SPAN_SAFE_OPS = frozenset({Op.PUSH_R, Op.PUSH_I, Op.CMP_RR, Op.CMP_RI,
                            Op.TEST_RR, Op.NOP}) | STORE_OPS


class ProofChecker:
    """Re-derives per-site proofs from one verified instruction stream."""

    def __init__(self, code, values: Dict[str, int], target_offs,
                 entry: int):
        self.code = code
        self.values = values
        self.cfi_targets = frozenset(target_offs)
        # Function entries: addresses control can enter without falling
        # through — the program entry, direct call targets, and every
        # trusted indirect-branch target.
        entries = {entry} | self.cfi_targets
        # Sources of each direct branch, for the dominance argument.
        sources: Dict[int, list] = {}
        stream = code.stream
        for i in range(len(stream)):
            t = code.targets[i]
            if t is None:
                continue
            if stream[i][1].op == Op.CALL:
                entries.add(t)
            else:
                sources.setdefault(t, []).append(stream[i][0])
        self.entries = entries
        self._sources = sources
        self._frame_fault: Optional[str] = "unchecked"

    def check(self, site_off: int, kind: int, def_off: int) -> None:
        """Re-derive one proof; raises ``VerificationError`` on failure."""
        if kind == PROOF_STACK:
            self._check_stack(site_off, def_off)
        elif kind == PROOF_CONST:
            self._check_const(site_off, def_off)
        elif kind == PROOF_RSP_STEP:
            self._check_rsp_step(site_off)
        elif kind == PROOF_CFI:
            self._check_cfi(site_off, def_off)
        else:
            raise VerificationError(
                f"static proof at {site_off:#x}: unknown kind {kind}")

    def _fail(self, off: int, kind: int, why: str) -> None:
        raise VerificationError(
            f"static proof rejected at {off:#x} "
            f"({PROOF_KIND_NAMES[kind]}): {why}")

    def _at(self, off: int, kind: int):
        idx = self.code.index_of.get(off)
        if idx is None:
            self._fail(off, kind, "offset is not an instruction")
        return self.code.stream[idx][1]

    # -- global frame-discipline invariant --------------------------------

    def _frame_discipline(self, off: int, kind: int) -> None:
        if self._frame_fault == "unchecked":
            self._frame_fault = self._derive_frame_fault()
        if self._frame_fault is not None:
            self._fail(off, kind,
                       f"frame discipline violated: {self._frame_fault}")

    def _derive_frame_fault(self) -> Optional[str]:
        v = self.values
        if v["stack_lo"] - PAGE_SIZE < v["store_lo"] or \
                v["stack_hi"] + PAGE_SIZE > v["store_hi"]:
            return "stack band lacks in-range guard pages"
        stream = self.code.stream
        for i, (off, ins) in enumerate(stream):
            if ins.op not in _REG_DST_OPS:
                continue
            dst = ins.operands[0]
            if dst == RBP:
                if ins.op == Op.MOV_RR and ins.operands[1] == RSP:
                    continue
                if ins.op == Op.POP_R and self._epilogue_shape(i):
                    continue
                return f"untracked RBP write at {off:#x}"
            if dst == RSP:
                if ins.op == Op.MOV_RR and ins.operands[1] == RBP:
                    continue
                if ins.op in (Op.SUB_RI, Op.ADD_RI) and \
                        0 <= ins.operands[1] <= MAX_STEP:
                    continue
                return f"oversized or irregular RSP write at {off:#x}"
        return None

    def _epilogue_shape(self, i: int) -> bool:
        """``POP RBP`` at stream index ``i`` is epilogue-only: the
        nearest stack-pointer writer before it is the canonical
        ``MOV RSP, RBP`` restore (so it pops the prologue slot, not an
        attacker-pushed value), and control falls through to RET before
        RBP or RSP is written again.  Annotation code (shadow-stack
        epilogue, P2 guards) may sit in between."""
        stream, code = self.code.stream, self.code
        j = i - 1
        while j >= 0 and code.end_of(j) == stream[j + 1][0]:
            # Control must not enter between the restore and the POP.
            if stream[j + 1][0] in self.entries or \
                    stream[j + 1][0] in self._sources:
                return False
            ins = stream[j][1]
            if ins.op in _REG_DST_OPS and ins.operands[0] in (RBP, RSP):
                if ins.op == Op.MOV_RR and \
                        tuple(ins.operands) == (RSP, RBP):
                    break
                return False
            j -= 1
        else:
            return False
        j = i + 1
        while j < len(stream):
            ins = stream[j][1]
            if ins.op == Op.RET:
                return True
            if (ins.op in _REG_DST_OPS and
                    ins.operands[0] in (RBP, RSP)) or \
                    ins.op in NO_FALLTHROUGH_OPS or \
                    code.end_of(j) != (stream[j + 1][0]
                                       if j + 1 < len(stream) else -1):
                return False
            j += 1
        return False

    # -- straight-line definition spans -----------------------------------

    def _check_span(self, def_off: int, site_off: int, reg: int,
                    kind: int) -> None:
        """``reg`` holds the value set at ``def_off`` when control
        reaches ``site_off``: the span is straight-line, never entered
        from outside, and never rewrites ``reg``."""
        if def_off >= site_off:
            self._fail(site_off, kind, "definition does not precede site")
        code = self.code
        idx = code.index_of.get(def_off)
        if idx is None:
            self._fail(site_off, kind, "definition is not an instruction")
        off = code.end_of(idx)
        while off < site_off:
            i = code.index_of.get(off)
            if i is None:
                self._fail(site_off, kind,
                           f"hole in definition span at {off:#x}")
            if off in self.entries or off in self._sources:
                self._fail(site_off, kind,
                           f"control can enter span at {off:#x}")
            ins = code.stream[i][1]
            if ins.op in _REG_DST_OPS:
                if ins.operands[0] == reg:
                    self._fail(site_off, kind,
                               f"register clobbered at {off:#x}")
            elif ins.op not in _SPAN_SAFE_OPS:
                self._fail(site_off, kind,
                           f"unsafe instruction in span at {off:#x}")
            off = code.end_of(i)

    def _dominating_rbp_def(self, def_off: int, site_off: int) -> None:
        """``PUSH RBP; MOV RBP, RSP`` at ``def_off`` reaches
        ``site_off`` on every path: no fresh entry point in between,
        every branch into the region originates after the definition,
        and RBP is not rewritten (an epilogue ``POP RBP`` must be
        immediately consumed by RET).  The PUSH is required — it probes
        the very address RBP takes — and control must not be able to
        jump straight to the MOV with an unprobed stack pointer."""
        kind = PROOF_STACK
        d = self._at(def_off, kind)
        if d.op != Op.MOV_RR or d.operands[0] != RBP or \
                d.operands[1] != RSP:
            self._fail(site_off, kind, "definition is not MOV RBP, RSP")
        if def_off in self.entries or def_off in self._sources:
            self._fail(site_off, kind,
                       "control can reach the definition unprobed")
        di = self.code.index_of[def_off]
        prev = self.code.stream[di - 1][1] \
            if di > 0 and self.code.end_of(di - 1) == def_off else None
        if prev is None or prev.op != Op.PUSH_R or prev.operands[0] != RBP:
            self._fail(site_off, kind,
                       "definition lacks its probing PUSH RBP")
        if def_off >= site_off:
            self._fail(site_off, kind, "definition does not precede site")
        span_end = min((e for e in self.entries if e > def_off),
                       default=len(self.code.text))
        if site_off >= span_end:
            self._fail(site_off, kind, "site outside defining function")
        stream, code = self.code.stream, self.code
        i = code.index_of[def_off] + 1
        while i < len(stream) and stream[i][0] <= site_off:
            off, ins = stream[i]
            if off in self._sources and off <= site_off:
                for src in self._sources[off]:
                    if not def_off < src < span_end:
                        self._fail(site_off, kind,
                                   f"branch into span from {src:#x}")
            if off < site_off and ins.op in _REG_DST_OPS and \
                    ins.operands[0] == RBP:
                if not (ins.op == Op.POP_R and i + 1 < len(stream) and
                        stream[i + 1][1].op == Op.RET):
                    self._fail(site_off, kind,
                               f"RBP redefined at {off:#x}")
            i += 1

    # -- per-kind derivations ---------------------------------------------

    def _store_geometry(self, site_off: int, kind: int):
        ins = self._at(site_off, kind)
        if ins.op not in STORE_OPS:
            self._fail(site_off, kind, "site is not a store")
        mem = ins.operands[0]
        if not isinstance(mem, Mem) or mem.index is not None:
            self._fail(site_off, kind, "store address is not base+disp")
        return mem, (1 if ins.op == Op.STB else 8)

    def _check_stack(self, site_off: int, def_off: int) -> None:
        mem, _ = self._store_geometry(site_off, PROOF_STACK)
        if mem.base != RBP:
            self._fail(site_off, PROOF_STACK,
                       "store base is not the frame pointer")
        if abs(mem.disp) > MAX_STEP:
            self._fail(site_off, PROOF_STACK,
                       "displacement exceeds the guard band")
        self._frame_discipline(site_off, PROOF_STACK)
        self._dominating_rbp_def(def_off, site_off)

    def _check_const(self, site_off: int, def_off: int) -> None:
        mem, width = self._store_geometry(site_off, PROOF_CONST)
        d = self._at(def_off, PROOF_CONST)
        if d.op != Op.MOV_RI or d.operands[0] != mem.base:
            self._fail(site_off, PROOF_CONST,
                       "definition does not set the store base")
        imm = d.operands[1]
        if not isinstance(imm, int) or is_magic(imm):
            self._fail(site_off, PROOF_CONST,
                       "base register is not a resolved constant")
        addr = imm + mem.disp
        if not (self.values["store_lo"] <= addr and
                addr + width <= self.values["store_hi"]):
            self._fail(site_off, PROOF_CONST,
                       f"constant target {addr:#x} out of range")
        self._check_span(def_off, site_off, mem.base, PROOF_CONST)

    def _check_rsp_step(self, site_off: int) -> None:
        kind = PROOF_RSP_STEP
        ins = self._at(site_off, kind)
        if ins.op not in (Op.SUB_RI, Op.ADD_RI) or \
                ins.operands[0] != RSP or \
                not 0 <= ins.operands[1] <= MAX_STEP or \
                ins.operands[1] % 8:
            self._fail(site_off, kind, "site is not a one-page RSP step")
        if site_off in self.entries or site_off in self._sources:
            self._fail(site_off, kind, "step is a control-flow target")
        i = self.code.index_of[site_off]
        prev = self.code.stream[i - 1][1] \
            if i > 0 and self.code.end_of(i - 1) == site_off else None
        if ins.op == Op.ADD_RI:
            # The CALL's return-address push probed the stack just below.
            if prev is None or prev.op not in (Op.CALL, Op.CALL_R):
                self._fail(site_off, kind, "step lacks a probing call")
        else:
            # Canonical prologue: PUSH RBP probes, MOV RBP, RSP is inert.
            prev_off = self.code.stream[i - 1][0] if i > 0 else None
            p2 = self.code.stream[i - 2][1] \
                if i > 1 and self.code.end_of(i - 2) == prev_off else None
            if prev is None or p2 is None or prev.op != Op.MOV_RR or \
                    tuple(prev.operands) != (RBP, RSP) or \
                    p2.op != Op.PUSH_R or p2.operands[0] != RBP or \
                    prev_off in self.entries or prev_off in self._sources:
                self._fail(site_off, kind,
                           "step lacks a probing prologue")
        self._frame_discipline(site_off, kind)

    def _check_cfi(self, site_off: int, def_off: int) -> None:
        ins = self._at(site_off, PROOF_CFI)
        if ins.op not in INDIRECT_BRANCH_OPS:
            self._fail(site_off, PROOF_CFI, "site is not an indirect branch")
        reg = ins.operands[0]
        d = self._at(def_off, PROOF_CFI)
        if d.op != Op.MOV_RI or d.operands[0] != reg:
            self._fail(site_off, PROOF_CFI,
                       "definition does not set the target register")
        imm = d.operands[1]
        if not isinstance(imm, int) or \
                imm - self.values["code_base"] not in self.cfi_targets:
            self._fail(site_off, PROOF_CFI,
                       "constant target is not on the trusted list")
        self._check_span(def_off, site_off, reg, PROOF_CFI)
