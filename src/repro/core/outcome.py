"""Run-result records handed back across the ECall boundary.

These are pure data carriers: the bootstrap fills them in, the
untrusted host (and the bench harness) reads them.  They encode no
enforcement decisions, which is why they live outside the measured
enforcement modules the TCB table counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..policy.magic import VIOLATION_NAMES
from ..vm.cpu import ExecResult


@dataclass
class RunOutcome:
    """Result of executing the provisioned target binary."""

    status: str                        # 'ok' | 'violation' | 'fault'
    result: Optional[ExecResult] = None
    reports: List[int] = field(default_factory=list)
    sent_plaintext: List[bytes] = field(default_factory=list)
    sent_wire: List[bytes] = field(default_factory=list)
    violation_code: int = 0
    detail: str = ""
    #: Cycle count as observed by the untrusted host: the true count
    #: rounded up to the padding quantum when time blurring is on.
    observable_cycles: float = 0.0
    #: Sealed checkpoints taken during this call (0 when checkpointing
    #: is off), and — for a resumed run — the step count the restored
    #: snapshot started from (None for a from-scratch run).
    checkpoints_taken: int = 0
    resumed_at_step: Optional[int] = None
    #: How many provisionings of this enclave were served from the
    #: provision cache (0 when the cache is off or every load verified).
    provision_cache_hits: int = 0
    #: Per-stage wall-clock seconds of the provisioning that produced
    #: the executed binary: ``parse``/``load``/``rdd``/``verify``/
    #: ``rewrite`` for a cold provision, ``install`` for a cache hit.
    provision_stages: Dict[str, float] = field(default_factory=dict)
    #: Translating-executor counters for this run (compile, dispatch,
    #: chain-hop, inline-cache and invalidation counts — see
    #: :meth:`repro.vm.cpu.CPU.jit_stats`); None under the step engine.
    jit_stats: Optional[Dict] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def violation_name(self) -> str:
        return VIOLATION_NAMES.get(self.violation_code, "")


@dataclass
class _ThreadIO:
    """Per-thread OCall-wrapper state: staged input and the outcome
    record the wrappers write into."""

    input: bytes
    cursor: int
    outcome: RunOutcome
