"""Command-line interface: ``python -m repro <command>``.

Developer-facing tooling around the library:

* ``compile`` — run the untrusted producer on a MiniC file;
* ``objdump`` — inspect a relocatable object (headers, symbols,
  relocations, branch-target list, disassembly);
* ``verify``  — run the in-enclave verifier standalone and report the
  annotation inventory or the rejection reason;
* ``run``     — full pipeline: load, verify, rewrite, execute;
* ``bench``   — Table II sweep with a machine-readable result file,
  plus a two-executor smoke/divergence check for CI; ``--record``
  appends every cell to the continuous results store and
  ``bench gate`` fails on regressions vs the rolling baseline;
* ``chaos``   — seeded fault-injection campaign over the two-party
  protocol; nonzero when any transient failure goes unrecovered or a
  fatal class was retried;
* ``tcb``     — print the measured TCB inventory.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .bench.tables import format_table
from .compiler import CodeGenerator, ObjectFile
from .core import BootstrapEnclave
from .core.verifier import PolicyVerifier
from .errors import ReproError
from .isa.disassembler import disassemble_linear, format_instruction
from .policy import PolicySet
from .vm.interrupts import AexSchedule


#: Default continuous-results store (committed bench history).
DEFAULT_STORE = "benchmarks/results/history.jsonl"


def _policies(label: str) -> PolicySet:
    return PolicySet.parse(label)


def _git_commit() -> str:
    """Short commit id of the working tree, ``"unknown"`` outside a
    checkout — store metadata, never part of a cell key."""
    import subprocess
    try:
        proc = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                              capture_output=True, text=True,
                              timeout=10)
        if proc.returncode == 0 and proc.stdout.strip():
            return proc.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def _sweep_records(args, doc=None, smoke_cells=None,
                   executor_label=None):
    """This sweep's cells as results-store records."""
    from .bench.store import (
        records_from_doc, records_from_smoke_cells, stamp_run,
    )
    commit = args.commit or _git_commit()
    if smoke_cells is not None:
        return stamp_run(records_from_smoke_cells(smoke_cells), commit)
    return records_from_doc(doc, commit=commit,
                            executor_label=executor_label)


def _bench_store_hook(args, records) -> None:
    """``--record``: append this sweep's cells to the store.
    ``--baseline``: print the delta report of these cells against the
    stored rolling baseline (informational — ``bench gate`` is the
    enforcing path)."""
    if not (args.record or args.baseline):
        return
    from .bench import gates
    from .bench.store import ResultsStore
    store = ResultsStore(args.store)
    if args.record:
        count = store.append(records)
        print(f"recorded {count} cells -> {store.path}")
    if args.baseline:
        history = store.load() if args.record \
            else store.load() + list(records)
        report = gates.evaluate(history, window=args.window,
                                wall_band_pct=args.band)
        print(report.render())


def cmd_bench_gate(args) -> int:
    """``repro bench gate``: classify the latest run of every stored
    cell against its rolling baseline; nonzero on any blocking
    regression."""
    from .bench import gates
    from .bench.store import ResultsStore
    store = ResultsStore(args.store)
    if not store.exists():
        print(f"error: no results store at {store.path} "
              f"(run `repro bench --record` first)", file=sys.stderr)
        return 1
    records = store.load()
    if not records:
        print(f"error: results store {store.path} is empty",
              file=sys.stderr)
        return 1
    if args.synthetic_regression:
        records = gates.inject_synthetic_regression(
            records, args.synthetic_regression)
        print(f"[self-test] appended a synthetic run degrading every "
              f"numeric metric by {args.synthetic_regression:g}%")
    report = gates.evaluate(records, window=args.window,
                            wall_band_pct=args.band,
                            gate_wall=args.gate_wall,
                            kinds=args.kind or None)
    print(report.render(verbose=args.verbose))
    if report.regressions:
        cells = sorted({d.key.label() for d in report.regressions
                        if d.key is not None})
        print(f"REGRESSED cells ({len(cells)}): {', '.join(cells)}")
        return 1
    print("gate passed: no blocking regression vs rolling baseline")
    return 0


def cmd_compile(args) -> int:
    source = Path(args.source).read_text()
    generator = CodeGenerator(_policies(args.policies),
                              include_prelude=not args.no_prelude)
    obj = generator.compile(source, entry=args.entry)
    blob = obj.serialize()
    out = Path(args.output or (Path(args.source).stem + ".dfob"))
    out.write_bytes(blob)
    print(f"{out}: {len(blob)} bytes "
          f"(text {len(obj.text)}, data {len(obj.data)}, "
          f"bss {obj.bss_size}), policies {obj.policies_label}, "
          f"{len(obj.symbols)} symbols, "
          f"{len(obj.branch_targets)} indirect targets")
    return 0


def cmd_objdump(args) -> int:
    obj = ObjectFile.parse(Path(args.object).read_bytes())
    show_all = not (args.symbols or args.relocs or args.disasm
                    or args.stats)
    if show_all or args.headers:
        print(f"entry:     {obj.entry}")
        print(f"policies:  {obj.policies_label}")
        print(f"text:      {len(obj.text)} bytes")
        print(f"data:      {len(obj.data)} bytes")
        print(f"bss:       {obj.bss_size} bytes")
        print(f"hash:      {obj.measurement().hex()}")
    if show_all or args.symbols:
        rows = [[name, sym.section_name, f"{sym.offset:#x}",
                 "func" if sym.kind == 0 else "object",
                 "*" if name in obj.branch_targets else ""]
                for name, sym in sorted(obj.symbols.items())]
        print(format_table("symbols (* = indirect-branch target)",
                           ["name", "section", "offset", "kind", "ib"],
                           rows))
    if show_all or args.relocs:
        rows = [[f"{r.offset:#x}", r.symbol, f"{r.addend:+d}"]
                for r in obj.relocations]
        print(format_table("relocations (ABS64)",
                           ["text offset", "symbol", "addend"], rows))
    if args.stats:
        from .analysis import analyze_object
        policies = _policies(args.policies) if args.policies else None
        print(analyze_object(obj, policies).render())
    if args.disasm:
        by_offset = {}
        for name, sym in obj.symbols.items():
            if sym.section_name == "text":
                by_offset.setdefault(sym.offset, []).append(name)
        for off, ins in disassemble_linear(obj.text):
            for name in by_offset.get(off, []):
                print(f"\n{name}:")
            print(f"  {off:6x}:  {format_instruction(ins)}")
    return 0


def cmd_verify(args) -> int:
    obj = ObjectFile.parse(Path(args.object).read_bytes())
    verifier = PolicyVerifier(_policies(args.policies))
    entry = obj.symbols[obj.entry].offset
    targets = [obj.symbols[n].offset for n in obj.branch_targets]
    try:
        if obj.proofs:
            # Proof-carrying object: the log only re-derives against
            # resolved constants and enclave bounds, so verify over the
            # same synthetic relocation the link-time prover used.
            from .core.rdd import recursive_descent
            from .staticproof import synthetic_image
            stext, bases, sentry, stargets = synthetic_image(obj)
            scode = recursive_descent(stext, sentry, stargets)
            verified = verifier.verify_code(scode, sentry, stargets,
                                            proofs=obj.proofs,
                                            values=bases)
        else:
            verified = verifier.verify(obj.text, entry, targets)
    except ReproError as exc:
        print(f"REJECTED: {exc}")
        return 1
    print(f"VERIFIED under {args.policies}: "
          f"{verified.instruction_count} reachable instructions, "
          f"{sum(verified.annotation_counts.values())} annotations, "
          f"{len(verified.magic_slots)} rewriter slots")
    for kind, count in sorted(verified.annotation_counts.items()):
        print(f"  {kind:18s} {count}")
    if verified.proofs:
        print(f"  static proofs      {len(verified.proofs)} "
              f"(elided guards re-derived)")
    return 0


def cmd_run(args) -> int:
    blob = Path(args.object).read_bytes()
    boot = BootstrapEnclave(policies=_policies(args.policies),
                            aex_threshold=args.aex_threshold)
    try:
        boot.receive_binary(blob)
    except ReproError as exc:
        print(f"REJECTED: {exc}")
        return 1
    if args.input:
        boot.receive_userdata(Path(args.input).read_bytes())
    if args.trace:
        outcome, trace = boot.run_traced(max_instructions=args.trace)
        for line in trace:
            print(line)
    else:
        schedule = {"none": None,
                    "benign": AexSchedule.benign(),
                    "attack": AexSchedule.attack()}[args.aex]
        outcome = boot.run(aex_schedule=schedule,
                           max_steps=args.max_steps)
    print(f"status:  {outcome.status}"
          + (f" ({outcome.violation_name})"
             if outcome.status == "violation" else ""))
    if outcome.result:
        print(f"steps:   {outcome.result.steps:,}")
        print(f"cycles:  {outcome.result.cycles:,.0f}")
        print(f"aex:     {outcome.result.aex_events}")
        print(f"return:  {outcome.result.return_value}")
    if outcome.reports:
        print(f"reports: {outcome.reports}")
    for i, data in enumerate(outcome.sent_plaintext):
        print(f"send[{i}]: {data[:64]!r}"
              + (" ..." if len(data) > 64 else ""))
    if outcome.ok or outcome.status == "truncated":
        return 0
    return 2


def _smoke_parallel_equality(name, settings, param, jobs) -> int:
    """Collect a one-workload matrix serially and under a worker pool;
    nonzero when any cell value differs (they never should)."""
    from .bench.harness import RunMatrix
    matrices = {}
    for label, n in (("serial", 1), ("parallel", jobs)):
        matrices[label] = RunMatrix.collect(
            [name], settings=settings, executor="translate",
            param=param, jobs=n)
    unequal = []
    for setting in settings:
        a = matrices["serial"][name][setting]
        b = matrices["parallel"][name][setting]
        if (a.steps, a.cycles, a.aex_events, a.overhead_pct) != \
                (b.steps, b.cycles, b.aex_events, b.overhead_pct):
            unequal.append(setting)
    wall = {label: m.total_wall_s for label, m in matrices.items()}
    print(f"smoke {name} serial vs --jobs {jobs}: "
          f"wall {wall['serial']:.3f}s vs {wall['parallel']:.3f}s")
    if unequal:
        print(f"PARALLEL DIVERGENCE in {len(unequal)} cells: "
              f"{', '.join(unequal)}")
        return 1
    print("parallel cell values identical to serial")
    return 0


def _bench_provision(args, workloads, settings) -> int:
    """``repro bench --provision``: delegation-latency sweep comparing
    the legacy (seed) and decode-once provisioning pipelines, with a
    per-cell byte-identity check between the two."""
    from .bench.provision import STAGES, ProvisionMatrix

    repeats = 1 if args.smoke else args.repeats
    if args.smoke:
        workloads = workloads[:1]
    matrix = ProvisionMatrix.collect(
        workloads, settings=settings, param=args.param,
        repeats=repeats, jobs=args.jobs, strict=False)
    doc = matrix.to_json()
    if args.record or args.baseline:
        _bench_store_hook(args, _sweep_records(args, doc))
    if args.json:
        out = Path(args.out or "BENCH_provision.json")
        out.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {out}")

    rows = [[c.workload, c.setting,
             f"{c.legacy_cold_s * 1e3:.2f}", f"{c.new_cold_s * 1e3:.2f}",
             f"{c.warm_s * 1e3:.3f}", f"{c.speedup:.2f}x",
             "yes" if c.identical else "NO", c.status]
            for c in matrix.cells]
    print(format_table(
        f"provisioning latency (repeats={repeats}, jobs={args.jobs})",
        ["workload", "setting", "legacy ms", "new ms", "warm ms",
         "speedup", "identical", "status"], rows))
    totals = doc["totals"]
    print(f"\naggregate cold speedup (legacy / decode-once): "
          f"{totals['cold_speedup']}x  "
          f"(legacy {totals['legacy_cold_ms']:.1f} ms, "
          f"new {totals['new_cold_ms']:.1f} ms, "
          f"warm {totals['warm_ms']:.2f} ms)")
    failed = False
    if matrix.divergent_cells:
        print(f"DIVERGENT cells ({len(matrix.divergent_cells)}): "
              f"{', '.join(matrix.divergent_cells)}")
        failed = True
    incomplete = matrix.incomplete_cells
    if incomplete:
        print(f"MISSING stage timings (want {', '.join(STAGES)}) in: "
              f"{', '.join(incomplete)}")
        failed = True
    other = [cell for cell in matrix.failures
             if cell not in matrix.divergent_cells]
    if other:
        print(f"FAILED cells ({len(other)}): {', '.join(other)}")
        failed = True
    if failed:
        return 1
    print("legacy and decode-once images byte-identical on every cell")
    return 0


def _bench_static(args, workloads, settings) -> int:
    """``repro bench --static``: annotation-full vs annotation-light
    ablation — same workloads compiled both ways, differential
    verification and output checks, plus the overhead the proofs cut."""
    from .bench.static import STATIC_SETTINGS, StaticMatrix

    if args.settings is None:
        # The paper matrix includes baseline (nothing to elide) and
        # P1-P6 (AEX markers the proofs leave alone) — the ablation
        # defaults to the guard-bearing columns instead.
        settings = STATIC_SETTINGS
    if args.smoke:
        workloads = workloads[:3]
    matrix = StaticMatrix.collect(workloads, settings=settings,
                                  param=args.param, jobs=args.jobs,
                                  strict=False)
    doc = matrix.to_json()
    if args.record or args.baseline:
        _bench_store_hook(args, _sweep_records(args, doc))
    if args.json:
        out = Path(args.out or "BENCH_static.json")
        out.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {out}")

    rows = [[c.workload, c.setting,
             f"{c.cycles_full:,.0f}", f"{c.cycles_light:,.0f}",
             f"{c.overhead_full_pct:.1f}", f"{c.overhead_light_pct:.1f}",
             f"{c.overhead_cut_pct:.1f}",
             f"{c.guard_sites_full}->{c.guard_sites_light}",
             c.proof_entries,
             "yes" if c.verified_light else "NO",
             "yes" if c.outputs_identical else "NO",
             c.status]
            for c in matrix.cells]
    print(format_table(
        f"static proof tier ablation (jobs={args.jobs})",
        ["workload", "setting", "full cyc", "light cyc", "ovh full%",
         "ovh light%", "cut %", "guards", "proofs", "verified",
         "identical", "status"], rows))
    totals = doc["totals"]
    print(f"\nguard sites {totals['guard_sites_full']} -> "
          f"{totals['guard_sites_light']} "
          f"({totals['elided_sites']} proven elisions, "
          f"{totals['annotation_bytes_saved']} annotation bytes "
          f"saved); overhead cut mean "
          f"{totals['mean_overhead_cut_pct']}%, min "
          f"{totals['min_overhead_cut_pct']}%")
    if matrix.failures:
        print(f"FAILED cells ({len(matrix.failures)}): "
              f"{', '.join(matrix.failures)}")
        return 1
    print("every annotation-light binary verified in-enclave with "
          "outputs identical to annotation-full")
    return 0


def _bench_checkpoint(args, workloads, settings) -> int:
    """``repro bench --checkpoint``: resume-equivalence property sweep
    plus sealing-overhead measurement per ``checkpoint_every``."""
    from .bench.checkpointing import CheckpointMatrix
    from .workloads.registry import WORKLOADS

    if args.workloads is None:
        workloads = sorted(WORKLOADS)   # the full registry, not NBench
    if args.smoke:
        workloads = workloads[:1]
    matrix = CheckpointMatrix.collect(workloads, setting=settings[-1],
                                      param=args.param)
    doc = matrix.to_json()
    if args.record or args.baseline:
        _bench_store_hook(args, _sweep_records(args, doc))
    if args.json:
        out = Path(args.out or "BENCH_checkpoint.json")
        out.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {out}")

    rows = []
    for c in matrix.cells:
        ovh = " ".join(f"{p.checkpoint_every}:{p.overhead_pct:+.0f}%"
                       for p in c.overhead)
        rows.append([
            c.workload, f"{c.steps:,}", f"{c.plain_wall_s * 1e3:.1f}",
            ovh,
            f"{sum(1 for r in c.resumes if r.identical)}"
            f"/{len(c.resumes)}",
            "yes" if all(r.rollback_rejected for r in c.resumes)
            and c.resumes else "NO",
            c.status])
    print(format_table(
        f"checkpoint/restore ({doc['setting']}, intervals "
        f"{doc['checkpoint_settings']})",
        ["workload", "steps", "plain ms", "ckpt overhead",
         "resume ==", "rollback rej", "status"], rows))
    totals = doc["totals"]
    print(f"\nmean sealing overhead per interval: "
          + ", ".join(f"every {k}: {v:+.1f}%"
                      for k, v in totals["mean_overhead_pct"].items()))
    failed = False
    if totals["resume_mismatches"]:
        print(f"RESUME DIVERGENCE in: "
              f"{', '.join(totals['resume_mismatches'])}")
        failed = True
    if totals["rollbacks_accepted"]:
        print(f"ROLLBACK ACCEPTED in: "
              f"{', '.join(totals['rollbacks_accepted'])}")
        failed = True
    other = [w for w in totals["failures"]
             if w not in totals["resume_mismatches"]
             and w not in totals["rollbacks_accepted"]]
    if other:
        print(f"FAILED cells ({len(other)}): {', '.join(other)}")
        failed = True
    if failed:
        return 1
    print(f"all {totals['resume_points']} interrupted runs resumed "
          f"byte-identically; every rollback replay rejected")
    return 0


def _bench_fleet(args) -> int:
    """``repro bench --fleet``: seeded open-loop fleet campaign —
    sessions/sec and p50/p99 session latency across a supervised drone
    pool, with at least one scripted checkpoint migration verified
    byte-for-byte."""
    from .bench.fleet import (
        format_fleet_table, run_fleet_bench, smoke_params,
    )
    params = smoke_params() if args.smoke else {}
    doc = run_fleet_bench(seed=args.seed, **params)
    if args.record or args.baseline:
        _bench_store_hook(args, _sweep_records(args, doc))
    if args.json:
        out = Path(args.out or "BENCH_fleet.json")
        out.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {out}")
    print(format_fleet_table(doc))
    check = doc["migration_check"]
    if check:
        print(f"\nmigrated session {check['job_id']}: "
              f"{' -> '.join(dict.fromkeys(check['einits']))} "
              f"(resumed at step {check['resumed_at_step']}, outputs "
              f"{'byte-identical' if check['outputs_match'] else 'DIVERGENT'})")
    if doc["corrupt"]:
        print(f"CORRUPT outputs ({len(doc['corrupt'])}): "
              f"{', '.join(doc['corrupt'])}")
        return 1
    if doc["lost"]:
        print(f"LOST sessions ({len(doc['lost'])}): "
              f"{', '.join(doc['lost'])}")
        return 1
    if not check or not check["outputs_match"]:
        print("NO verified checkpoint migration in this campaign")
        return 1
    print("every admitted session completed or was shed typed; "
          "zero lost")
    return 0


def _bench_pipeline(args) -> int:
    """``repro bench --pipeline``: multi-enclave provenance pipeline
    matrix — topologies x batch/stream x clean/chaos, every cell
    chain-verified and byte-compared against the unfaulted serial
    oracle."""
    from .bench.pipeline import (
        format_pipeline_table, run_pipeline_bench, smoke_params,
    )
    params = smoke_params() if args.smoke else {}
    doc = run_pipeline_bench(seed=args.seed, **params)
    if args.record or args.baseline:
        _bench_store_hook(args, _sweep_records(args, doc))
    if args.json:
        out = Path(args.out or "BENCH_pipeline.json")
        out.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {out}")
    print(format_pipeline_table(doc))
    bad = [c for c in doc["cells"] if c["status"] != "ok"]
    if bad:
        print(f"FAILED cells ({len(bad)}): "
              + ", ".join(f"{c['topology']}/{c['mode']}/{c['faults']}"
                          f"={c['status']}" for c in bad))
        return 1
    accepted = sum(c["attacks_accepted"] for c in doc["cells"])
    if accepted:
        print(f"ATTACKS ACCEPTED: {accepted} doctored handoffs passed "
              f"chain verification")
        return 1
    print("every cell chain-verified and byte-identical to the "
          "unfaulted serial oracle")
    return 0


def cmd_bench(args) -> int:
    from .bench.harness import PAPER_SETTINGS, RunMatrix, run_workload
    from .core.bootstrap import PROVISION_CACHE
    from .vm.costmodel import CostModel
    from .workloads import get_workload
    from .workloads.nbench import NBENCH_ORDER

    if args.fleet:
        return _bench_fleet(args)

    if args.pipeline:
        return _bench_pipeline(args)

    workloads = list(args.workloads or NBENCH_ORDER)
    settings = tuple(args.settings or PAPER_SETTINGS)
    use_cache = not args.no_provision_cache
    try:
        for name in workloads:
            get_workload(name)
        for setting in settings:
            PolicySet.parse(setting)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.provision:
        return _bench_provision(args, workloads, settings)

    if args.checkpoint:
        return _bench_checkpoint(args, workloads, settings)

    if args.static:
        return _bench_static(args, workloads, settings)

    if args.smoke:
        name = workloads[0]
        setting = settings[-1]
        cells = {}
        # Three engines: the oracle, the unchained tier-1 translator,
        # and the chained tier-2 translator — one cell each, diffed
        # bit-exact, so CI catches a chaining divergence in seconds.
        for executor in ("step", "translate-t1", "translate"):
            cells[executor] = run_workload(
                name, setting, args.param,
                aex_schedule=AexSchedule(400_000),
                cost_model=CostModel.for_executor(executor),
                provision_cache=use_cache,
                chaos_seed=args.chaos,
                warmup=not args.cold and args.chaos is None)
        if args.record or args.baseline:
            _bench_store_hook(args,
                              _sweep_records(args, smoke_cells=cells))
        step, fast = cells["step"], cells["translate"]
        diverged = [
            f"{key}[{executor}]"
            for executor in ("translate-t1", "translate")
            for key in ("steps", "cycles", "aex_events", "reports",
                        "status")
            if getattr(step, key) != getattr(cells[executor], key)]
        print(f"smoke {name}/{setting}: "
              f"step={step.steps:,} steps / {step.cycles:,.0f} cycles, "
              f"translate={fast.steps:,} steps / "
              f"{fast.cycles:,.0f} cycles")
        if diverged:
            print(f"DIVERGENCE: {', '.join(diverged)}")
            return 1
        print(f"cycle accounts identical across 3 engines "
              f"(speedup {step.wall_s / fast.wall_s:.2f}x, "
              f"tier2 vs tier1 "
              f"{cells['translate-t1'].wall_s / fast.wall_s:.2f}x)")
        if args.jobs > 1:
            return _smoke_parallel_equality(name, settings, args.param,
                                            args.jobs)
        return 0

    if args.executor == "both":
        executors = ["step", "translate"]
    elif args.executor == "all":
        executors = ["step", "translate-t1", "translate"]
    else:
        executors = [args.executor]
    warmup = not args.cold
    matrices = {executor: RunMatrix.collect(
                    workloads, settings=settings,
                    executor="step" if executor == "step" else "translate",
                    cost_model=CostModel.for_executor(executor),
                    param=args.param,
                    jobs=args.jobs,
                    strict=False,
                    provision_cache=use_cache,
                    chaos_seed=args.chaos,
                    warmup=warmup)
                for executor in executors}

    divergent: list = []
    if len(matrices) == 1:
        doc = matrices[executors[0]].to_json()
    else:
        # Every non-oracle executor diffs bit-exact against the step
        # oracle; speedups quote the tier-2 translator.
        oracle, fast = matrices["step"], matrices["translate"]
        for ex, m in matrices.items():
            if ex == "step":
                continue
            for name in workloads:
                for setting in settings:
                    a, b = oracle[name][setting], m[name][setting]
                    if (a.steps, a.cycles, a.aex_events) != \
                            (b.steps, b.cycles, b.aex_events):
                        cell = f"{name}/{setting}"
                        if ex != "translate":
                            cell += f" [{ex}]"
                        divergent.append(cell)
        speedup = {}
        for name in workloads:
            wall_o = sum(r.wall_s for r in oracle[name].values())
            wall_f = sum(r.wall_s for r in fast[name].values())
            speedup[name] = round(wall_o / wall_f, 2) if wall_f else 0.0
        comparison = {
            "aggregate_speedup": round(
                oracle.total_wall_s / fast.total_wall_s, 2),
            "per_workload_speedup": speedup,
            "divergent_cells": divergent,
        }
        if "translate-t1" in matrices:
            # Attribute the win per tier: chained tier 2 over the
            # block-at-a-time tier-1 translator.
            t1 = matrices["translate-t1"]
            per_wl = {}
            for name in workloads:
                w1 = sum(r.wall_s for r in t1[name].values())
                w2 = sum(r.wall_s for r in fast[name].values())
                per_wl[name] = round(w1 / w2, 2) if w2 else 0.0
            comparison["tier2_vs_tier1"] = {
                "aggregate_speedup": round(
                    t1.total_wall_s / fast.total_wall_s, 2),
                "per_workload_speedup": per_wl,
            }
        doc = {
            "schema": "deflection-bench/1",
            "parallelism": args.jobs,
            "steady_state": warmup,
            "executors": {ex: m.to_json() for ex, m in matrices.items()},
            "comparison": comparison,
        }
    # Parent-process cache stats plus per-cell hit counts (with --jobs,
    # hits happen inside the pool workers and ride back on the cells).
    doc["provision_cache"] = dict(
        PROVISION_CACHE.stats(),
        cell_hits=sum(r.provision_cache_hits
                      for m in matrices.values()
                      for row in m.values() for r in row.values()))
    if args.chaos is not None:
        doc["chaos_seed"] = args.chaos
        doc["chaos"] = {
            "retries": sum(r.retries for m in matrices.values()
                           for row in m.values() for r in row.values()),
            "recoveries": sum(r.recoveries for m in matrices.values()
                              for row in m.values()
                              for r in row.values()),
        }

    if args.record or args.baseline:
        _bench_store_hook(args, _sweep_records(
            args, doc,
            executor_label=executors[0] if len(executors) == 1
            else None))
    if args.json:
        out = Path(args.out or "BENCH_vm.json")
        out.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {out}")

    for executor, matrix in matrices.items():
        rows = [[name, setting, f"{r.steps:,}", f"{r.cycles:,.0f}",
                 f"{r.wall_s:.3f}", f"{r.ips:,.0f}",
                 f"{r.overhead_pct:+.2f}", r.status]
                for name, row in matrix.items()
                for setting, r in row.items()]
        print(format_table(
            f"bench ({executor} executor, jobs={args.jobs})",
            ["workload", "setting", "steps", "cycles", "wall s",
             "instr/s", "ovh %", "status"], rows))
    if len(matrices) > 1:
        print(f"\naggregate speedup (step wall / translate wall): "
              f"{doc['comparison']['aggregate_speedup']}x")
        tier = doc["comparison"].get("tier2_vs_tier1")
        if tier:
            print(f"tier-2 chained vs tier-1 translator: "
                  f"{tier['aggregate_speedup']}x")
        if divergent:
            print(f"DIVERGENCE in {len(divergent)} cells: "
                  f"{', '.join(divergent)}")
            return 1
        print("cycle accounts identical across executors")
    failed = sorted({cell for m in matrices.values()
                     for cell in m.failures})
    if failed:
        print(f"FAILED cells ({len(failed)}): {', '.join(failed)}")
        return 1
    return 0


#: Error kinds that must never show up among *retried* errors — a
#: campaign that retried one of these has broken the fail-closed rule.
_NEVER_RETRY = ("PolicyViolation", "VerificationError",
                "AttestationError", "RetryBudgetExceeded",
                "RollbackError", "DeadlineExceeded",
                "ProvenanceError")


def _chaos_fleet(args) -> int:
    """``repro chaos --fleet``: seeded fleet-scoped fault campaign —
    mid-fleet drone kills, heartbeat storms and a shared attestation
    outage under load; fails on any lost session or divergent output."""
    from .service.faults import run_fleet_campaign
    report = run_fleet_campaign(seed=args.seed)
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        Path(args.out).write_text(text + "\n")
    print(text)
    counters = report["counters"]
    print(f"\nfleet chaos seed={args.seed}: "
          f"{counters['completed']} completed, "
          f"{counters['shed']} shed typed, "
          f"{len(report['faults'])} faults injected | "
          f"{counters['replacements']} replacements, "
          f"{counters['quarantines']} quarantines, "
          f"{counters['migrations']} migrations, "
          f"{counters['preemptions']} preemptions, "
          f"{report['stats']['rollbacks_rejected']} rollbacks rejected")
    if report["lost"]:
        print(f"LOST SESSIONS: {', '.join(report['lost'])}")
        return 1
    if report["corrupt"]:
        print(f"CORRUPT OUTCOMES: {', '.join(report['corrupt'])}")
        return 1
    print("every admitted session completed or was shed typed under "
          "fleet-scoped faults; all outputs byte-identical")
    return 0


def _chaos_pipeline(args) -> int:
    """``repro chaos --pipeline``: seeded pipeline fault campaign —
    mid-hop kills, handoff corruption, chain splice/replay, stalled
    stages and quarantines across alternating topologies and
    batch/stream modes; fails on any lost pipeline, accepted attack,
    divergent output, upstream re-execution, or non-replayable
    report."""
    from .service.faults import run_pipeline_campaign
    trials = args.trials if args.trials is not None else 6
    report = run_pipeline_campaign(seed=args.seed, trials=trials)
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        Path(args.out).write_text(text + "\n")
    print(text)
    totals = report["totals"]
    badly_retried = sorted(
        kind for kind in report["retried_error_kinds"]
        if kind in _NEVER_RETRY)
    print(f"\npipeline chaos seed={args.seed} trials={trials}: "
          f"{totals['ok']} ok | "
          f"{totals['faults_injected']} faults injected, "
          f"{totals['midrun_teardowns']} mid-hop teardowns, "
          f"{totals['resumes']} checkpoint resumes, "
          f"{totals['handoffs_rejected']} corrupt handoffs rejected, "
          f"{totals['chain_attacks_rejected']} chain attacks rejected, "
          f"{totals['discard_reruns']} discard-reruns, "
          f"{totals['migrations']} migrations, "
          f"{totals['stalls']} stalls requeued")
    failed = False
    if not report["zero_lost"]:
        print(f"LOST PIPELINES: {totals['lost']}")
        failed = True
    if not report["zero_attacks_accepted"]:
        print(f"ATTACKS ACCEPTED: {totals['attacks_accepted']} "
              f"doctored handoffs passed chain verification")
        failed = True
    if not report["all_identical"]:
        print(f"DIVERGENT OUTPUTS: "
              f"{trials - totals['identical']} of {trials} trials "
              f"differ from the unfaulted serial oracle")
        failed = True
    if not report["zero_upstream_excess"]:
        print(f"UPSTREAM RE-EXECUTION: {totals['upstream_excess']} "
              f"completed runs beyond one per hop per chunk")
        failed = True
    if not report["replay_identical"]:
        print("REPLAY DIVERGENCE: re-running trial 0 from the same "
              "seed produced a different report")
        failed = True
    if badly_retried:
        print(f"FATAL CLASSES RETRIED: {', '.join(badly_retried)}")
        failed = True
    if failed:
        return 1
    print("zero lost pipelines; every attack rejected; every mid-hop "
          "teardown recovered by resume at that hop; all outputs "
          "byte-identical to the serial oracle; replay byte-identical")
    return 0


def cmd_chaos(args) -> int:
    from .service.faults import run_campaign
    if args.fleet:
        return _chaos_fleet(args)
    if args.pipeline:
        return _chaos_pipeline(args)
    trials = args.trials if args.trials is not None else 20
    args.trials = trials
    report = run_campaign(seed=args.seed, trials=trials,
                          mid_run=args.mid_run)
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        Path(args.out).write_text(text + "\n")
    print(text)
    totals = report["totals"]
    badly_retried = sorted(
        kind for kind in report["retried_error_kinds"]
        if kind in _NEVER_RETRY)
    print(f"\nchaos seed={args.seed} trials={args.trials}"
          f"{' mid-run' if args.mid_run else ''}: "
          f"{totals['ok']} ok, {totals['violation']} violations "
          f"trapped, {totals['aborted']} aborted | "
          f"{totals['faults_injected']} faults injected, "
          f"{totals['retries']} retries, "
          f"{totals['reconnects']} reconnects, "
          f"{totals['recoveries']} enclave recoveries, "
          f"{totals['resumes']} checkpoint resumes, "
          f"{totals['rollbacks_rejected']} rollbacks rejected")
    if totals["unrecovered"]:
        print(f"UNRECOVERED transient failures: "
              f"{totals['unrecovered']}")
        return 1
    if totals["corrupt"]:
        print(f"CORRUPT OUTCOMES (resumed run diverged or tampered "
              f"state was accepted): {totals['corrupt']}")
        return 1
    if badly_retried:
        print(f"FATAL CLASSES RETRIED: {', '.join(badly_retried)}")
        return 1
    print("all transient faults recovered; no fatal class retried; "
          "every completed run produced the expected result")
    return 0


def cmd_tcb(args) -> int:
    from .tcb import consumer_inventory, verifier_core_loc
    rows = [[c.name, c.loc, f"{c.kloc:.2f}"]
            for c in consumer_inventory().values()]
    print(format_table("measured DEFLECTION TCB",
                       ["component", "LoC", "kLoC"], rows))
    core = verifier_core_loc()
    print(f"\nloader+rewriter: {core['loader']} LoC (paper: <600)")
    print(f"verifier+RDD:    {core['verifier']} LoC (paper: <700)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DEFLECTION reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile+instrument MiniC")
    p.add_argument("source")
    p.add_argument("-o", "--output")
    p.add_argument("--policies", default="P1-P6")
    p.add_argument("--entry", default="main")
    p.add_argument("--no-prelude", action="store_true")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("objdump", help="inspect a relocatable object")
    p.add_argument("object")
    p.add_argument("--headers", action="store_true")
    p.add_argument("--symbols", action="store_true")
    p.add_argument("--relocs", action="store_true")
    p.add_argument("--disasm", action="store_true")
    p.add_argument("--stats", action="store_true")
    p.add_argument("--policies", default=None,
                   help="include the annotation inventory for this "
                        "policy level")
    p.set_defaults(func=cmd_objdump)

    p = sub.add_parser("verify", help="run the in-enclave verifier")
    p.add_argument("object")
    p.add_argument("--policies", default="P1-P6")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("run", help="load, verify and execute")
    p.add_argument("object")
    p.add_argument("--policies", default="P1-P6")
    p.add_argument("--input")
    p.add_argument("--aex", choices=["none", "benign", "attack"],
                   default="none")
    p.add_argument("--aex-threshold", type=int, default=1000)
    p.add_argument("--max-steps", type=int, default=100_000_000)
    p.add_argument("--trace", type=int, default=0, metavar="N",
                   help="single-step and print the first N instructions")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("bench", help="paper benchmark sweep")
    p.add_argument("--workloads", nargs="*", default=None,
                   help="workload names (default: the NBench suite)")
    p.add_argument("--settings", nargs="*", default=None,
                   help="policy settings (default: Table II columns)")
    p.add_argument("--param", type=int, default=None)
    p.add_argument("--executor",
                   choices=["translate", "step", "both",
                            "translate-t1", "all"], default="both",
                   help="engine(s) to sweep: 'both' = step + tier-2 "
                        "translator, 'all' adds the unchained tier-1 "
                        "translator so the speedup attributes per tier")
    p.add_argument("--cold", action="store_true",
                   help="skip the per-cell warm-up run: report "
                        "first-run walls (compile + cold dispatch "
                        "included) instead of steady state")
    p.add_argument("--json", action="store_true",
                   help="write machine-readable results to --out")
    p.add_argument("-o", "--out", default=None,
                   help="result file (default: BENCH_vm.json; "
                        "BENCH_provision.json with --provision; "
                        "BENCH_checkpoint.json with --checkpoint; "
                        "BENCH_fleet.json with --fleet; "
                        "BENCH_pipeline.json with --pipeline; "
                        "BENCH_static.json with --static)")
    p.add_argument("--checkpoint", action="store_true",
                   help="measure sealed checkpoint/restore instead of "
                        "raw execution: per workload, interrupt the "
                        "run at seeded safe points, resume from the "
                        "sealed chain and demand a byte-identical "
                        "outcome (plus rollback-replay rejection), and "
                        "sweep the sealing overhead per "
                        "checkpoint_every interval; exit nonzero on "
                        "any divergence or accepted rollback")
    p.add_argument("--provision", action="store_true",
                   help="measure delegation latency instead of "
                        "execution: time the legacy vs decode-once "
                        "provisioning pipelines per stage (plus the "
                        "cache-warm path) and byte-compare their "
                        "rewritten images; exit nonzero on divergence")
    p.add_argument("--static", action="store_true",
                   help="measure the static proof tier instead of raw "
                        "execution: compile every cell annotation-full "
                        "and annotation-light (provable guards elided, "
                        "proofs shipped), demand the light binary pass "
                        "full in-enclave verification with outputs "
                        "identical to full, and record the overhead "
                        "the proofs cut; exit nonzero on any "
                        "unverified, divergent or slower cell")
    p.add_argument("--fleet", action="store_true",
                   help="measure fleet throughput/latency instead of "
                        "raw execution: drive a supervised drone pool "
                        "through a seeded open-loop arrival process "
                        "(with a scripted mid-run kill so at least one "
                        "session provably migrates across EINITs via "
                        "its sealed checkpoint chain); exit nonzero on "
                        "any lost session, divergent output or missing "
                        "migration")
    p.add_argument("--pipeline", action="store_true",
                   help="measure the multi-enclave provenance pipeline "
                        "instead of raw execution: sweep topologies x "
                        "batch/stream x clean/chaos, verify every "
                        "cell's full cross-enclave provenance chain "
                        "and byte-compare its output against the "
                        "unfaulted serial oracle; exit nonzero on any "
                        "broken chain, accepted attack or divergent "
                        "output (throughput is stored as records_per_s, "
                        "latency as chunk_p99_s)")
    p.add_argument("--seed", type=int, default=2021,
                   help="campaign seed for --fleet / --pipeline "
                        "(arrival process, job mix, fault plans, retry "
                        "jitter)")
    p.add_argument("--repeats", type=int, default=3,
                   help="provisioning repetitions per cell; stage "
                        "timings are minima over the repeats")
    p.add_argument("--smoke", action="store_true",
                   help="run one kernel under both executors; exit "
                        "nonzero on cycle-account divergence (with "
                        "--jobs N, also assert a parallel sweep equals "
                        "the serial one); with --provision, sweep one "
                        "workload and fail on divergent images or "
                        "missing stage timings")
    p.add_argument("-j", "--jobs", type=int, default=1,
                   help="worker processes for the run matrix "
                        "(cell values are identical to a serial sweep)")
    p.add_argument("--no-provision-cache", action="store_true",
                   help="re-verify every provisioning instead of "
                        "reusing cached verified images")
    p.add_argument("--chaos", type=int, default=None, metavar="SEED",
                   help="run every cell under seeded fault injection "
                        "(injected delivery corruption, transient ECall "
                        "failures, enclave teardowns); cell values must "
                        "be unchanged, the extra retry/recovery work is "
                        "recorded in the JSON document")
    p.add_argument("--record", action="store_true",
                   help="append every cell of this sweep to the "
                        "continuous results store (--store), keyed by "
                        "(commit, executor, tier, workload, setting, "
                        "param)")
    p.add_argument("--baseline", action="store_true",
                   help="after the sweep, print the delta report of "
                        "its cells vs the rolling baseline in the "
                        "store (informational; `bench gate` enforces)")
    p.add_argument("--store", default=DEFAULT_STORE,
                   help=f"results store path (default: {DEFAULT_STORE})")
    p.add_argument("--commit", default=None,
                   help="commit id stamped on recorded cells "
                        "(default: `git rev-parse --short HEAD`)")
    p.add_argument("--window", type=int, default=5,
                   help="rolling-baseline window: median of the last "
                        "N accepted runs per cell (default: 5)")
    p.add_argument("--band", type=float, default=25.0,
                   help="wall-clock noise band in percent; "
                        "deterministic metrics always use a zero band "
                        "(default: 25)")
    p.set_defaults(func=cmd_bench)

    bench_sub = p.add_subparsers(dest="bench_command", metavar="gate")
    g = bench_sub.add_parser(
        "gate",
        help="classify the latest stored run of every cell vs its "
             "rolling baseline; exit nonzero on regression",
        description="Regression gate over the continuous results "
                    "store: the latest observation of every "
                    "(executor, tier, workload, setting, param) cell "
                    "is classified improved/flat/regressed against "
                    "the median of its last --window accepted runs. "
                    "Deterministic metrics (cycles, steps, AEX "
                    "counts, byte-identity) gate with a zero noise "
                    "band; wall-clock metrics are advisory within "
                    "--band percent unless --gate-wall.")
    g.add_argument("--store", default=DEFAULT_STORE,
                   help=f"results store path (default: {DEFAULT_STORE})")
    g.add_argument("--window", type=int, default=5,
                   help="rolling-baseline window (default: 5)")
    g.add_argument("--band", type=float, default=25.0,
                   help="wall-clock noise band in percent (default: 25)")
    g.add_argument("--gate-wall", action="store_true",
                   help="make wall-clock regressions beyond the band "
                        "blocking instead of advisory")
    g.add_argument("--kind", nargs="*", default=None,
                   choices=["vm", "provision", "checkpoint", "fleet",
                            "static", "pipeline"],
                   help="restrict the gate to these record kinds")
    g.add_argument("--synthetic-regression", type=float, default=None,
                   metavar="PCT",
                   help="self-test: evaluate as if a new run degraded "
                        "every numeric metric by PCT percent (the "
                        "store file is not modified); the gate must "
                        "fail for PCT beyond the band")
    g.add_argument("--verbose", action="store_true",
                   help="list flat/new cells too, not only "
                        "regressions and improvements")
    g.set_defaults(func=cmd_bench_gate)

    p = sub.add_parser("chaos", help="seeded fault-injection campaign")
    p.add_argument("--seed", type=int, default=2021)
    p.add_argument("--trials", type=int, default=None,
                   help="campaign trials (default: 20; 6 with "
                        "--pipeline)")
    p.add_argument("--mid-run", action="store_true",
                   help="checkpoint the runs and additionally inject "
                        "mid-execution teardowns, checkpoint-chain "
                        "corruption and rollback replays; fails on any "
                        "non-identical resumed outcome or accepted "
                        "rollback")
    p.add_argument("--fleet", action="store_true",
                   help="run the fleet-scoped campaign instead: drone "
                        "kills mid-fleet (idle and mid-session), "
                        "heartbeat storms over a subset, and a shared "
                        "attestation outage under load; fails on any "
                        "lost session or divergent output")
    p.add_argument("--pipeline", action="store_true",
                   help="run the multi-enclave pipeline campaign "
                        "instead: mid-hop kills, handoff corruption, "
                        "provenance-chain splice/replay, stalled "
                        "stages and platform quarantines across "
                        "alternating topologies and batch/stream "
                        "modes; fails on any lost pipeline, accepted "
                        "attack, divergent output, upstream "
                        "re-execution or non-replayable report")
    p.add_argument("-o", "--out", default=None,
                   help="also write the JSON report to this file")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser("tcb", help="measured TCB inventory")
    p.set_defaults(func=cmd_tcb)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        return 0  # output piped into head etc.


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
