"""Analytic shielding-runtime model.

Serving one HTTPS request for a file of ``s`` bytes costs::

    t(s) = fixed + s * per_byte + paging_penalty(s)

* ``fixed``     — per-request overhead: enclave transitions for the
  accept/read/write syscalls, libOS scheduling, TLS record setup;
* ``per_byte``  — data-path cost: TLS crypto plus however many copies
  the runtime's shielding layers make (libOSes double-buffer across
  their syscall shield; DEFLECTION's instrumented handler pays the
  annotation tax instead);
* ``paging_penalty`` — once the working set exceeds the EPC share, EPC
  paging costs per page beyond the limit.

Transfer *rate* is then ``s / t(s)`` — the quantity Fig. 11 plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True)
class TcbComponent:
    """One Table-I row entry: a component and its size."""

    name: str
    kloc: float


@dataclass
class RuntimeModel:
    name: str
    tcb: List[TcbComponent] = field(default_factory=list)
    tcb_size_mb: float = 0.0
    tcb_size_is_lower_bound: bool = False
    fixed_us: float = 100.0
    per_kb_us: float = 3.0
    epc_share_mb: float = 64.0
    paging_us_per_kb: float = 8.0
    #: set for runtimes that enforce the paper's policies (only ours)
    enforces_policies: bool = False

    @property
    def tcb_kloc(self) -> float:
        return sum(component.kloc for component in self.tcb)

    def request_time_us(self, size_bytes: int) -> float:
        size_kb = size_bytes / 1024.0
        time = self.fixed_us + size_kb * self.per_kb_us
        limit_kb = self.epc_share_mb * 1024.0
        if size_kb > limit_kb:
            time += (size_kb - limit_kb) * self.paging_us_per_kb
        return time

    def transfer_rate_mbps(self, size_bytes: int) -> float:
        """Steady-state transfer rate in MB/s for files of this size."""
        seconds = self.request_time_us(size_bytes) / 1e6
        return (size_bytes / (1024.0 * 1024.0)) / seconds

    def relative_to(self, other: "RuntimeModel",
                    size_bytes: int) -> float:
        return self.transfer_rate_mbps(size_bytes) / \
            other.transfer_rate_mbps(size_bytes)
