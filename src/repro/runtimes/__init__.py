"""Shielding-runtime comparators.

Encodes the TCB inventories of Table I (Ryoan, SCONE, Graphene-SGX,
Occlum) and analytic performance models for the HTTPS transfer-rate
comparison of Fig. 11.  DEFLECTION's own row is *measured* from this
repository (``repro.tcb`` counts the consumer's LoC) and its
per-request costs come from actually executing the instrumented handler
in the VM.
"""

from .model import RuntimeModel, TcbComponent
from .catalog import (
    RYOAN, SCONE, GRAPHENE, OCCLUM, NATIVE, deflection_runtime_model,
    ALL_BASELINES,
)

__all__ = [
    "RuntimeModel", "TcbComponent",
    "RYOAN", "SCONE", "GRAPHENE", "OCCLUM", "NATIVE",
    "deflection_runtime_model", "ALL_BASELINES",
]
