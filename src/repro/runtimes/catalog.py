"""Concrete runtime models.

TCB inventories are taken verbatim from Table I of the paper; the
performance parameters are calibrated so the Fig. 11 relationships hold:
Graphene-SGX leads on small files, DEFLECTION overtakes as file size
grows and lands at ~77% of native Linux on large transfers, and the
libOS runtimes pay heavier per-byte shielding costs.
"""

from __future__ import annotations

from .model import RuntimeModel, TcbComponent

NATIVE = RuntimeModel(
    name="native",
    tcb=[],
    tcb_size_mb=0.0,
    fixed_us=60.0,
    per_kb_us=2.0,
    epc_share_mb=1 << 20,      # no EPC constraint outside an enclave
    paging_us_per_kb=0.0,
)

RYOAN = RuntimeModel(
    name="Ryoan",
    tcb=[TcbComponent("Eglibc", 892.0),
         TcbComponent("NaCl sandbox", 216.0),
         TcbComponent("Naclports", 460.0)],
    tcb_size_mb=19.0,
    tcb_size_is_lower_bound=True,
    fixed_us=260.0,            # sandboxed syscall trampolines
    per_kb_us=4.4,             # NaCl SFI on the data path (~100% overhead
    epc_share_mb=24.0,         # on gene data per §VIII)
    paging_us_per_kb=12.0,
)

SCONE = RuntimeModel(
    name="SCONE",
    tcb=[TcbComponent("OS Shield and shim libc", 187.0),
         TcbComponent("Glibc", 1200.0)],
    tcb_size_mb=16.0,
    tcb_size_is_lower_bound=True,
    fixed_us=110.0,            # asynchronous syscalls help the fixed cost
    per_kb_us=3.4,
    epc_share_mb=28.0,
    paging_us_per_kb=10.0,
)

GRAPHENE = RuntimeModel(
    name="Graphene-SGX",
    tcb=[TcbComponent("LibPAL", 22.0),
         TcbComponent("Graphene LibOS", 34.0)],
    tcb_size_mb=58.5,
    tcb_size_is_lower_bound=True,
    fixed_us=75.0,             # exitless calls: best small-file latency
    per_kb_us=3.2,             # double buffering through the LibOS
    epc_share_mb=32.0,
    paging_us_per_kb=10.0,
)

OCCLUM = RuntimeModel(
    name="Occlum",
    tcb=[TcbComponent("Occlum shim libc", 93.0),
         TcbComponent("Occlum Verifier", 0.0),       # N/A in Table I
         TcbComponent("Occlum LibOS and PAL", 24.5)],
    tcb_size_mb=8.6,
    tcb_size_is_lower_bound=True,
    fixed_us=140.0,
    per_kb_us=2.9,
    epc_share_mb=48.0,
    paging_us_per_kb=9.0,
)

ALL_BASELINES = (RYOAN, SCONE, GRAPHENE, OCCLUM)


def deflection_runtime_model(measured_consumer_kloc: float = None) -> \
        RuntimeModel:
    """DEFLECTION's own row.

    Component sizes follow Table I's DEFLECTION row; when
    ``measured_consumer_kloc`` (from ``repro.tcb``) is supplied
    it replaces the paper's Loader/Verifier figure with the size of
    *this* repository's consumer.
    """
    loader_verifier = (measured_consumer_kloc
                       if measured_consumer_kloc is not None else 1.3)
    return RuntimeModel(
        name="DEFLECTION",
        tcb=[TcbComponent("Loader/Verifier", loader_verifier),
             TcbComponent("RA/Encryption", 0.2),
             TcbComponent("Shim libc", 33.0),
             TcbComponent("Capstone base", 9.1),
             TcbComponent("Other dependencies", 23.0)],
        tcb_size_mb=3.5,
        fixed_us=160.0,        # in-enclave session crypto + padding
        per_kb_us=2.55,        # instrumented copies: annotation tax only
        epc_share_mb=80.0,     # small TCB leaves most EPC to data
        paging_us_per_kb=8.0,
        enforces_policies=True,
    )
