"""DEFLECTION reproduction: in-enclave verification of privacy compliance.

A from-scratch Python reproduction of Liu et al., "Practical and
Efficient in-Enclave Verification of Privacy Compliance" (DSN 2021).
See README.md for the tour, DESIGN.md for the architecture and
substitution table, EXPERIMENTS.md for paper-vs-measured results.

Most callers need only::

    from repro.compiler import CodeGenerator     # untrusted producer
    from repro.core import BootstrapEnclave      # trusted consumer
    from repro.policy import PolicySet           # the contract
"""

__version__ = "1.0.0"
__paper__ = ("Practical and Efficient in-Enclave Verification of "
             "Privacy Compliance, DSN 2021")
