"""Provisioning-latency (delegation) benchmark — §VI-B's one-time cost.

The paper's delegation latency is the time between handing the enclave
a service binary and being ready to run it: parse, load, recursive
descent, policy verification, immediate rewriting.  This module times
that pipeline per (workload, policy setting) cell twice —

* **legacy**: the seed pipeline preserved in :mod:`repro.core.legacy`
  (multi-walk RDD, per-instruction predicate-chain verifier, per-slot
  rewriter), and
* **new**: the decode-once pipeline (:func:`~repro.core.rdd.
  recursive_descent` + dispatch-table verifier + batched rewriter) as
  driven by :meth:`~repro.core.bootstrap.BootstrapEnclave.
  receive_binary`,

plus a **warm** provisioning through a private
:class:`~repro.core.bootstrap.ProvisionCache` (the §VI-B amortized
path).  Each cell also *differentially checks* the optimization: the
rewritten text images must be byte-identical and the verification
evidence equal between the two pipelines, otherwise the cell is marked
``divergent`` and the sweep fails.

Timings are per-stage minima over ``repeats`` runs (minimum, not mean:
provisioning is deterministic, so the minimum is the least-noise
estimate of the true cost).  Cold totals are the sum of the five stage
minima for both pipelines, so the comparison excludes incidental
bookkeeping (hashing, audit records) present in only one driver.
"""

from __future__ import annotations

import json
import multiprocessing
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterable, List, Optional

from ..compiler.objfile import ObjectFile
from ..core.bootstrap import BootstrapEnclave, ProvisionCache
from ..core.legacy import (
    LegacyPolicyVerifier, legacy_recursive_descent, legacy_rewrite,
)
from ..core.rewriter import build_value_map
from ..errors import ReproError
from ..policy.policies import PolicySet
from ..workloads import get_workload
from .harness import PAPER_SETTINGS, compile_workload

#: The pipeline stages every cold provisioning is decomposed into.
STAGES = ("parse", "load", "rdd", "verify", "rewrite")


@dataclass
class ProvisionResult:
    """One (workload, setting) cell of a provisioning sweep."""

    workload: str
    setting: str
    #: Effective workload parameter (the registry default when the
    #: sweep did not override it) — part of the results-store key, so
    #: sweeps at different sizes never share a baseline.
    param: Optional[int] = None
    text_bytes: int = 0
    instructions: int = 0
    #: Per-stage minima (seconds) over the repeats, keys = ``STAGES``.
    legacy_stages: Dict[str, float] = field(default_factory=dict)
    new_stages: Dict[str, float] = field(default_factory=dict)
    #: Cold provisioning totals: sum of the five stage minima.
    legacy_cold_s: float = 0.0
    new_cold_s: float = 0.0
    #: Provision-cache-hit (install-only) latency, minimum over repeats.
    warm_s: float = 0.0
    #: legacy cold / new cold.
    speedup: float = 0.0
    #: Rewritten text images byte-identical and evidence equal.
    identical: bool = False
    status: str = "ok"
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict:
        ms = lambda s: round(s * 1e3, 4)  # noqa: E731 - local shorthand
        return {
            "workload": self.workload,
            "setting": self.setting,
            "param": self.param,
            "text_bytes": self.text_bytes,
            "instructions": self.instructions,
            "legacy_stages_ms": {k: ms(v)
                                 for k, v in self.legacy_stages.items()},
            "new_stages_ms": {k: ms(v)
                              for k, v in self.new_stages.items()},
            "legacy_cold_ms": ms(self.legacy_cold_s),
            "new_cold_ms": ms(self.new_cold_s),
            "warm_ms": ms(self.warm_s),
            "speedup": round(self.speedup, 2),
            "identical": self.identical,
            "status": self.status,
            "detail": self.detail,
        }


def _legacy_provision(boot: BootstrapEnclave,
                      verifier: LegacyPolicyVerifier,
                      blob: bytes):
    """One seed-pipeline provisioning on ``boot``'s enclave; returns
    ``(loaded, verified, stage timings)``."""
    t0 = perf_counter()
    obj = ObjectFile.parse(blob)
    t1 = perf_counter()
    loaded = boot.loader.load(obj)
    space = boot.enclave.space
    text = space.read_raw(loaded.code_base, loaded.code_len)
    entry_off = loaded.entry_addr - loaded.code_base
    target_offs = sorted(set(addr - loaded.code_base
                             for addr in loaded.branch_target_addrs))
    t2 = perf_counter()
    code = legacy_recursive_descent(text, entry_off, target_offs)
    t3 = perf_counter()
    verified = verifier._legacy_verify_stream(code, entry_off,
                                              target_offs)
    t4 = perf_counter()
    values = build_value_map(boot.enclave.layout, loaded,
                             boot.aex_threshold, policies=boot.policies)
    legacy_rewrite(space, loaded.code_base, values,
                   verified.magic_slots)
    t5 = perf_counter()
    return loaded, verified, {
        "parse": t1 - t0, "load": t2 - t1, "rdd": t3 - t2,
        "verify": t4 - t3, "rewrite": t5 - t4,
    }


def _min_stages(minima: Dict[str, float],
                sample: Dict[str, float]) -> None:
    for stage in STAGES:
        value = sample.get(stage, 0.0)
        if stage not in minima or value < minima[stage]:
            minima[stage] = value


def measure_cell(workload: str, setting: str,
                 param: Optional[int] = None,
                 repeats: int = 3,
                 aex_threshold: int = 1000) -> ProvisionResult:
    """Time cold (legacy + new) and cache-warm provisioning of one cell.

    Re-provisioning is idempotent (the loader rewrites the full text/
    data/bss images), so repeats reuse one enclave per pipeline and the
    enclave build itself is never timed.
    """
    blob = compile_workload(workload, setting, param)
    policies = PolicySet.parse(setting)
    effective = param if param is not None \
        else get_workload(workload).default_param
    result = ProvisionResult(workload=workload, setting=setting,
                             param=effective)

    boot_l = BootstrapEnclave(policies=policies,
                              aex_threshold=aex_threshold)
    legacy_verifier = LegacyPolicyVerifier(policies,
                                           boot_l.p0.allowed_svcs)
    boot_n = BootstrapEnclave(policies=policies,
                              aex_threshold=aex_threshold)

    legacy_min: Dict[str, float] = {}
    new_min: Dict[str, float] = {}
    for _ in range(max(1, repeats)):
        loaded_l, verified_l, stages = _legacy_provision(
            boot_l, legacy_verifier, blob)
        _min_stages(legacy_min, stages)
        boot_n.receive_binary(blob)
        _min_stages(new_min, boot_n.provision_stages)

    # -- differential check: same image, same evidence -------------------
    image_l = boot_l.enclave.space.read_raw(loaded_l.code_base,
                                            loaded_l.code_len)
    image_n = boot_n.enclave.space.read_raw(boot_n.loaded.code_base,
                                            boot_n.loaded.code_len)
    result.identical = (image_l == image_n and
                        verified_l == boot_n.verified)
    result.text_bytes = loaded_l.code_len
    result.instructions = boot_n.verified.instruction_count

    # -- warm path: second provisioning through a private cache ----------
    boot_n.provision_cache = ProvisionCache()
    boot_n.receive_binary(blob)             # populate (cold, uncounted)
    warm = None
    for _ in range(max(1, repeats)):
        t0 = perf_counter()
        boot_n.receive_binary(blob)
        dt = perf_counter() - t0
        if warm is None or dt < warm:
            warm = dt

    result.legacy_stages = legacy_min
    result.new_stages = new_min
    result.legacy_cold_s = sum(legacy_min.values())
    result.new_cold_s = sum(new_min.values())
    result.warm_s = warm or 0.0
    result.speedup = (result.legacy_cold_s / result.new_cold_s
                      if result.new_cold_s > 0 else 0.0)
    if not result.identical:
        result.status = "divergent"
        result.detail = ("legacy and decode-once pipelines produced "
                         "different images or evidence")
    return result


#: Worker-side sweep parameters for the fork pool (mirrors
#: ``repro.bench.harness._POOL_STATE``).
_PPOOL_STATE: dict = {}


def _ppool_init(param, repeats, strict) -> None:
    _PPOOL_STATE.update(param=param, repeats=repeats, strict=strict)


def _ppool_cell(name: str, setting: str) -> ProvisionResult:
    state = _PPOOL_STATE
    return _safe_cell(name, setting, state["param"], state["repeats"],
                      state["strict"])


def _safe_cell(name: str, setting: str, param, repeats: int,
               strict: bool) -> ProvisionResult:
    try:
        return measure_cell(name, setting, param=param, repeats=repeats)
    except (ReproError, KeyError, ValueError) as exc:
        if strict:
            raise
        return ProvisionResult(workload=name, setting=setting,
                               status="error", detail=str(exc))


class ProvisionMatrix(dict):
    """A ``{workload: {setting: ProvisionResult}}`` provisioning sweep
    with the same document shape as the VM run matrix
    (``BENCH_vm.json``): sweep totals plus per-cell dicts."""

    def __init__(self, parallelism: int = 1, repeats: int = 3):
        super().__init__()
        self.parallelism = parallelism
        self.repeats = repeats

    @classmethod
    def collect(cls, workloads: Iterable[str],
                settings=PAPER_SETTINGS,
                param: Optional[int] = None,
                repeats: int = 3,
                jobs: int = 1,
                strict: bool = True) -> "ProvisionMatrix":
        """Sweep ``workloads`` × ``settings``; ``jobs > 1`` fans cells
        out to a fork pool (cells are independent — each builds its own
        enclaves and a private cache, so no state rides between them)."""
        workloads = list(workloads)
        settings = tuple(settings)
        jobs = max(1, int(jobs))
        matrix = cls(parallelism=jobs, repeats=repeats)
        tasks = [(name, setting) for name in workloads
                 for setting in settings]
        if jobs == 1:
            cells = [_safe_cell(name, setting, param, repeats, strict)
                     for name, setting in tasks]
        else:
            # Compile in the parent so forked workers inherit the cache.
            for name, setting in tasks:
                try:
                    compile_workload(name, setting, param)
                except (ReproError, KeyError, ValueError):
                    if strict:
                        raise
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX fallback
                ctx = multiprocessing.get_context()
            with ctx.Pool(processes=min(jobs, len(tasks)),
                          initializer=_ppool_init,
                          initargs=(param, repeats, strict)) as pool:
                cells = pool.starmap(_ppool_cell, tasks)
        for (name, setting), cell in zip(tasks, cells):
            matrix.setdefault(name, {})[setting] = cell
        return matrix

    @property
    def cells(self) -> List[ProvisionResult]:
        return [cell for row in self.values() for cell in row.values()]

    @property
    def divergent_cells(self) -> List[str]:
        return [f"{c.workload}/{c.setting}" for c in self.cells
                if c.status == "divergent"]

    @property
    def failures(self) -> List[str]:
        return [f"{c.workload}/{c.setting}" for c in self.cells
                if not c.ok]

    @property
    def incomplete_cells(self) -> List[str]:
        """Ok cells missing any of the five stage timings — the CI
        smoke gate for the stage instrumentation itself."""
        return [f"{c.workload}/{c.setting}" for c in self.cells
                if c.ok and (set(c.legacy_stages) != set(STAGES) or
                             set(c.new_stages) != set(STAGES))]

    def totals(self) -> dict:
        ok = [c for c in self.cells if c.ok]
        legacy = sum(c.legacy_cold_s for c in ok)
        new = sum(c.new_cold_s for c in ok)
        return {
            "cells": len(self.cells),
            "legacy_cold_ms": round(legacy * 1e3, 3),
            "new_cold_ms": round(new * 1e3, 3),
            "warm_ms": round(sum(c.warm_s for c in ok) * 1e3, 3),
            "cold_speedup": round(legacy / new, 2) if new > 0 else 0.0,
            "divergent_cells": self.divergent_cells,
            "failed_cells": self.failures,
        }

    def to_json(self) -> dict:
        return {
            "schema": "deflection-provision/1",
            "parallelism": self.parallelism,
            "repeats": self.repeats,
            "totals": self.totals(),
            "workloads": {
                name: {setting: cell.to_dict()
                       for setting, cell in row.items()}
                for name, row in self.items()
            },
        }

    def write_json(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=False)
            fh.write("\n")
