"""Run-matrix helpers shared by the test suite and the benchmarks.

``run_workload`` executes one workload under one policy setting through
the *full* pipeline — compile, instrument, link, serialize, parse, load,
RDD, verify, rewrite, execute — and returns the deterministic cycle
account.  ``overhead_matrix`` sweeps the paper's five policy settings
and computes overhead percentages relative to the baseline (the pure
loader, as in §VI-B).

Compiled objects are memoised: the same (source, policies) pair is
compiled once per process.
"""

from __future__ import annotations

import functools
import json
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Union

from ..compiler.frontend import compile_source
from ..core.bootstrap import BootstrapEnclave, RunOutcome
from ..policy.policies import PolicySet
from ..sgx.layout import EnclaveConfig
from ..vm.costmodel import CostModel
from ..vm.interrupts import AexSchedule
from ..workloads import Workload, get_workload

#: The evaluation columns of Table II / Figs 7-9.
PAPER_SETTINGS = ("baseline", "P1", "P1+P2", "P1-P5", "P1-P6")


@dataclass
class BenchResult:
    """One cell of a run matrix."""

    workload: str
    setting: str
    param: int
    steps: int
    cycles: float
    reports: List[int] = field(default_factory=list)
    aex_events: int = 0
    text_bytes: int = 0
    status: str = "ok"
    #: Host wall-clock seconds of the execute phase only (the enclave
    #: run, excluding compile/link/load/verify) — the executor
    #: comparison metric.
    wall_s: float = 0.0

    @property
    def ips(self) -> float:
        """Retired instructions per host wall-clock second."""
        return self.steps / self.wall_s if self.wall_s > 0 else 0.0

    def overhead_vs(self, baseline: "BenchResult") -> float:
        """Relative overhead in percent (cycle account)."""
        return 100.0 * (self.cycles - baseline.cycles) / baseline.cycles

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "setting": self.setting,
            "param": self.param,
            "steps": self.steps,
            "cycles": self.cycles,
            "aex_events": self.aex_events,
            "text_bytes": self.text_bytes,
            "status": self.status,
            "wall_s": round(self.wall_s, 6),
            "ips": round(self.ips, 1),
            "overhead_pct": round(getattr(self, "overhead_pct", 0.0), 4),
        }


@functools.lru_cache(maxsize=256)
def _compile_cached(source: str, label: str) -> bytes:
    return compile_source(source, PolicySet.parse(label)).serialize()


def compile_workload(workload: Union[str, Workload], setting: str,
                     param: Optional[int] = None) -> bytes:
    if isinstance(workload, str):
        workload = get_workload(workload)
    return _compile_cached(workload.source(param), setting)


def run_workload(workload: Union[str, Workload], setting: str,
                 param: Optional[int] = None,
                 aex_schedule: Optional[AexSchedule] = None,
                 cost_model: Optional[CostModel] = None,
                 config: Optional[EnclaveConfig] = None,
                 max_steps: int = 100_000_000,
                 aex_threshold: int = 1000) -> BenchResult:
    """Full-pipeline execution of one workload under one setting."""
    if isinstance(workload, str):
        workload = get_workload(workload)
    policies = PolicySet.parse(setting)
    blob = compile_workload(workload, setting, param)
    boot = BootstrapEnclave(policies=policies, config=config,
                            aex_threshold=aex_threshold)
    boot.receive_binary(blob)
    input_bytes = workload.input_bytes(param)
    if input_bytes:
        boot.receive_userdata(input_bytes)
    t0 = time.perf_counter()
    outcome: RunOutcome = boot.run(aex_schedule=aex_schedule,
                                   cost_model=cost_model,
                                   max_steps=max_steps)
    wall_s = time.perf_counter() - t0
    result = BenchResult(
        workload=workload.name, setting=setting,
        param=param if param is not None else workload.default_param,
        steps=outcome.result.steps if outcome.result else 0,
        cycles=outcome.result.cycles if outcome.result else 0.0,
        reports=list(outcome.reports),
        aex_events=outcome.result.aex_events if outcome.result else 0,
        text_bytes=boot.loaded.code_len,
        status=outcome.status,
        wall_s=wall_s)
    if outcome.status != "ok":
        raise RuntimeError(
            f"{workload.name}/{setting}: {outcome.status} "
            f"({outcome.detail})")
    if result.reports and result.reports[0] != 1:
        raise RuntimeError(
            f"{workload.name}/{setting}: self-check failed "
            f"(reports={result.reports})")
    return result


def overhead_matrix(workload: Union[str, Workload],
                    param: Optional[int] = None,
                    settings=PAPER_SETTINGS,
                    aex_mean_interval: int = 400_000,
                    **kwargs) -> Dict[str, BenchResult]:
    """Run ``workload`` under every setting; attach ``.overhead_pct``.

    The P1-P6 setting runs under a benign AEX schedule (OS timer ticks),
    so the marker path and the AEX accounting are actually exercised.
    The default threshold is sized for benign profiles of the largest
    benchmark runs, as §IV-C prescribes ("set by profiling the enclave
    program in benign environments").  All settings must report
    identical values (differential check).
    """
    results: Dict[str, BenchResult] = {}
    for setting in settings:
        aex = None
        if PolicySet.parse(setting).p6 and aex_mean_interval:
            aex = AexSchedule(aex_mean_interval)
        results[setting] = run_workload(workload, setting, param,
                                        aex_schedule=aex, **kwargs)
    baseline = results.get("baseline")
    reports0 = None
    for setting, result in results.items():
        if reports0 is None:
            reports0 = result.reports
        elif result.reports != reports0:
            raise RuntimeError(
                f"{result.workload}: reports diverge between settings "
                f"({setting}: {result.reports} vs {reports0})")
        result.overhead_pct = (result.overhead_vs(baseline)
                               if baseline and setting != "baseline"
                               else 0.0)
    return results


class RunMatrix(dict):
    """A full ``{workload: {setting: BenchResult}}`` sweep.

    Plain dict plus a machine-readable serialization, so benchmark
    sweeps can be archived (``BENCH_vm.json``) and diffed across
    commits.  ``executor`` records which VM engine produced the numbers
    (see :class:`~repro.vm.costmodel.CostModel.executor`)."""

    def __init__(self, executor: str = "translate"):
        super().__init__()
        self.executor = executor

    @classmethod
    def collect(cls, workloads: Iterable[str],
                settings=PAPER_SETTINGS,
                executor: str = "translate",
                cost_model: Optional[CostModel] = None,
                **kwargs) -> "RunMatrix":
        """Sweep ``workloads`` x ``settings`` under one executor."""
        cm = cost_model or CostModel(executor=executor)
        matrix = cls(executor=cm.executor)
        for name in workloads:
            matrix[name] = overhead_matrix(name, settings=settings,
                                           cost_model=cm, **kwargs)
        return matrix

    @property
    def total_wall_s(self) -> float:
        return sum(r.wall_s for row in self.values()
                   for r in row.values())

    @property
    def total_steps(self) -> int:
        return sum(r.steps for row in self.values()
                   for r in row.values())

    def to_json(self) -> dict:
        """JSON-ready document: per-cell steps/cycles/wall/ips plus
        sweep-level totals."""
        return {
            "schema": "deflection-bench/1",
            "executor": self.executor,
            "totals": {
                "wall_s": round(self.total_wall_s, 6),
                "steps": self.total_steps,
                "ips": round(self.total_steps / self.total_wall_s, 1)
                if self.total_wall_s > 0 else 0.0,
            },
            "workloads": {
                name: {setting: result.to_dict()
                       for setting, result in row.items()}
                for name, row in self.items()
            },
        }

    def write_json(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=False)
            fh.write("\n")
