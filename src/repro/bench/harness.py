"""Run-matrix helpers shared by the test suite and the benchmarks.

``run_workload`` executes one workload under one policy setting through
the *full* pipeline — compile, instrument, link, serialize, parse, load,
RDD, verify, rewrite, execute — and returns the deterministic cycle
account.  ``overhead_matrix`` sweeps the paper's five policy settings
and computes overhead percentages relative to the baseline (the pure
loader, as in §VI-B).

Two layers of amortization keep sweeps fast:

* compiled objects are memoised — the same (source, policies) pair is
  compiled once per process;
* provisioning goes through the process-wide
  :data:`~repro.core.bootstrap.PROVISION_CACHE`, so re-running a cell
  (both-executor comparisons, figure size sweeps over one binary)
  skips RDD + verification + imm rewriting.

``RunMatrix.collect(jobs=N)`` fans the workload × setting cells out to
a ``multiprocessing`` worker pool.  Cells are compiled once in the
parent (the fork inherits the warm compile cache), every cell is
deterministic, and the merge re-assembles rows in sweep order — so the
parallel matrix's cell values (steps, cycles, aex_events, overhead_pct)
are byte-identical to a serial run; only ``wall_s``/``ips`` may differ.
"""

from __future__ import annotations

import functools
import hashlib
import json
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Union

from ..compiler.frontend import compile_source
from ..core.bootstrap import PROVISION_CACHE, BootstrapEnclave, RunOutcome
from ..errors import (
    EnclaveError, EnclaveTeardown, ProtocolError, ReproError,
    RetryBudgetExceeded,
)
from ..policy.policies import PolicySet
from ..sgx.layout import EnclaveConfig
from ..vm.costmodel import CostModel
from ..vm.interrupts import AexSchedule
from ..workloads import Workload, get_workload

#: The evaluation columns of Table II / Figs 7-9.
PAPER_SETTINGS = ("baseline", "P1", "P1+P2", "P1-P5", "P1-P6")

#: Timed repetitions per steady-state cell (minimum wall wins).  The
#: repetitions are bit-identical replays of one warm execution, so
#: their spread is host-scheduler noise, not workload variance.
WARM_REPS = 3


@dataclass
class BenchResult:
    """One cell of a run matrix."""

    workload: str
    setting: str
    param: int
    steps: int
    cycles: float
    reports: List[int] = field(default_factory=list)
    aex_events: int = 0
    text_bytes: int = 0
    status: str = "ok"
    #: Failure reason when ``status != "ok"`` (non-strict sweeps).
    detail: str = ""
    #: Host wall-clock seconds of the execute phase only (the enclave
    #: run, excluding compile/link/load/verify) — the executor
    #: comparison metric.
    wall_s: float = 0.0
    #: Overhead vs the row baseline, attached by ``overhead_matrix``.
    overhead_pct: float = 0.0
    #: Provision-cache hits observed while provisioning this cell.
    provision_cache_hits: int = 0
    #: Chaos-mode counters (``chaos_seed``): attempts repeated after an
    #: injected fault, and enclave rebuilds after injected teardowns.
    retries: int = 0
    recoveries: int = 0
    #: Translating-executor counters for the measured run (chain hops,
    #: IC hits, compiles, invalidations, mean instructions retired per
    #: dispatch); None under the step engine.
    jit: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def ips(self) -> float:
        """Retired instructions per host wall-clock second."""
        return self.steps / self.wall_s if self.wall_s > 0 else 0.0

    def overhead_vs(self, baseline: "BenchResult") -> float:
        """Relative overhead in percent (cycle account)."""
        if baseline.cycles == 0:
            return 0.0
        return 100.0 * (self.cycles - baseline.cycles) / baseline.cycles

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "setting": self.setting,
            "param": self.param,
            "steps": self.steps,
            "cycles": self.cycles,
            "aex_events": self.aex_events,
            "text_bytes": self.text_bytes,
            "status": self.status,
            "detail": self.detail,
            "wall_s": round(self.wall_s, 6),
            "ips": round(self.ips, 1),
            "overhead_pct": round(self.overhead_pct, 4),
            "provision_cache_hits": self.provision_cache_hits,
            "retries": self.retries,
            "recoveries": self.recoveries,
            **({"jit": self.jit} if self.jit is not None else {}),
        }


@functools.lru_cache(maxsize=256)
def _compile_cached(source: str, label: str, light: bool = False) -> bytes:
    return compile_source(source, PolicySet.parse(label),
                          light=light).serialize()


def _chaos_plan_seed(chaos_seed: int, name: str, setting: str,
                     param) -> int:
    """Per-cell fault-plan seed.  Derived with a real hash (not
    ``hash()``, which is salted per process) so serial and pool runs of
    the same sweep inject identical faults."""
    digest = hashlib.sha256(
        f"{chaos_seed}:{name}:{setting}:{param}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def _chaos_gate(boot: BootstrapEnclave, plan, site: str) -> None:
    fault = plan.draw_ecall_fault(site)
    if fault == "teardown":
        boot.enclave.destroy()
        raise EnclaveTeardown(f"injected enclave teardown before {site}")
    if fault == "transient":
        raise EnclaveError(f"injected transient failure before {site}")


def _chaos_cell(boot: BootstrapEnclave, blob: bytes, input_bytes: bytes,
                plan, label: str, **run_kwargs):
    """Provision + run one cell under an injected-fault plan.

    Every attempt redoes the whole provisioning (re-delivery is cheap:
    the undamaged blob is a provision-cache hit), so a teardown can
    never leave a half-provisioned enclave for the next attempt.  The
    delivered blob may be corrupted or truncated in flight; the
    measurement re-check catches whatever the parser/verifier does not.
    No AEX storms are injected here — chaos must not change the cell's
    cycle accounting, only its path to completion.

    An error on an attempt that charged no fault is genuine and
    propagates immediately.  Returns ``(outcome, wall_s, retries,
    recoveries)``; the fault budget bounds the loop, so
    ``max_faults + 2`` attempts provably suffice.
    """
    expected = hashlib.sha256(blob).digest()
    retries = recoveries = 0
    last = None
    for _ in range(plan.max_faults + 2):
        charged = len(plan.injected)
        try:
            if boot.enclave.destroyed:
                boot.recover()
                recoveries += 1
            delivered, _ = plan.mangle_blob(blob)
            _chaos_gate(boot, plan, "receive_binary")
            if boot.receive_binary(delivered) != expected:
                raise ProtocolError(
                    "enclave measured a different binary "
                    "(corrupted delivery)")
            if input_bytes:
                _chaos_gate(boot, plan, "receive_userdata")
                boot.receive_userdata(input_bytes)
            _chaos_gate(boot, plan, "run")
            t0 = time.perf_counter()
            outcome = boot.run(**run_kwargs)
            return outcome, time.perf_counter() - t0, retries, recoveries
        except ReproError as exc:
            if len(plan.injected) == charged:
                raise
            retries += 1
            last = exc
    raise RetryBudgetExceeded(
        f"{label}: chaos retries exhausted "
        f"(last: {type(last).__name__}: {last})") from last


def snapshot_run_state(boot: BootstrapEnclave):
    """Capture everything a warm re-run must rewind: the enclave RAM
    image plus platform AEX bookkeeping.  Take it *after* provisioning
    (and userdata delivery); restore between the untimed warm-up run
    and each measured repetition.  Measurement machinery — it lives
    here rather than on the enclave so the TCB stays benchmark-free."""
    return boot.enclave.space.snapshot_ram(), boot.enclave.hw_aex_count


def restore_run_state(boot: BootstrapEnclave, snap) -> None:
    """Restore a :func:`snapshot_run_state` image in place."""
    boot.enclave.space.restore_ram(snap[0])
    boot.enclave.hw_aex_count = snap[1]


def compile_workload(workload: Union[str, Workload], setting: str,
                     param: Optional[int] = None,
                     light: bool = False) -> bytes:
    if isinstance(workload, str):
        workload = get_workload(workload)
    return _compile_cached(workload.source(param), setting, light)


def run_workload(workload: Union[str, Workload], setting: str,
                 param: Optional[int] = None,
                 aex_schedule: Optional[AexSchedule] = None,
                 cost_model: Optional[CostModel] = None,
                 config: Optional[EnclaveConfig] = None,
                 max_steps: int = 100_000_000,
                 aex_threshold: int = 1000,
                 strict: bool = True,
                 provision_cache: bool = True,
                 chaos_seed: Optional[int] = None,
                 warmup: bool = False,
                 light: bool = False) -> BenchResult:
    """Full-pipeline execution of one workload under one setting.

    ``strict=True`` (the default) raises on any failure — violation,
    fault, rejected binary, failed self-check.  ``strict=False``
    records the failure in ``status``/``detail`` and returns the cell,
    so a sweep survives one bad cell.

    ``warmup=True`` measures *steady state*: the cell executes once
    untimed (populating the translating executor's block cache, chain
    edges and inline caches), the enclave image is restored bit-exact,
    and the timed run repeats the identical execution on the warm CPU.
    Applied uniformly to every executor — the step engine gains
    nothing, the tier-1 translator recoups its small compile cost, the
    tier-2 translator recoups chaining warm-up — so cross-executor
    ratios compare pure execution.  The two runs are bit-identical
    (same steps, cycles, AEX arrivals); ignored under ``chaos_seed``.

    ``chaos_seed`` runs the cell under deterministic fault injection
    (see :mod:`repro.service.faults`): deliveries get corrupted, ECalls
    fail transiently, the enclave gets torn down mid-provisioning — and
    the cell must still converge to the exact same measurement.  The
    extra work is reported in ``retries``/``recoveries``.
    """
    if isinstance(workload, str):
        workload = get_workload(workload)
    effective_param = param if param is not None else \
        workload.default_param
    try:
        policies = PolicySet.parse(setting)
        blob = compile_workload(workload, setting, param, light=light)
        boot = BootstrapEnclave(
            policies=policies, config=config,
            aex_threshold=aex_threshold,
            provision_cache=PROVISION_CACHE if provision_cache else None)
        input_bytes = workload.input_bytes(param)
        retries = recoveries = 0
        if chaos_seed is None:
            boot.receive_binary(blob)
            if input_bytes:
                boot.receive_userdata(input_bytes)
            if warmup:
                # Eager JIT on the priming run: the block cache hits
                # its fixed point in one pass (the lazy threshold
                # otherwise keeps crossing for many runs on stubs born
                # at AEX-resume rips), so the timed runs compile
                # nothing and measure pure warm execution.  Three
                # timed repetitions, minimum wall: the repetitions are
                # bit-identical, so the spread is pure scheduler noise
                # and the minimum is the least-disturbed measurement.
                snap = snapshot_run_state(boot)
                boot.run(aex_schedule=aex_schedule,
                         cost_model=cost_model,
                         max_steps=max_steps, reuse_cpu=True,
                         jit_eager=True)
                wall_s = None
                for rep in range(WARM_REPS):
                    restore_run_state(boot, snap)
                    t0 = time.perf_counter()
                    outcome: RunOutcome = boot.run(
                        aex_schedule=aex_schedule,
                        cost_model=cost_model,
                        max_steps=max_steps, reuse_cpu=True)
                    rep_wall = time.perf_counter() - t0
                    if wall_s is None or rep_wall < wall_s:
                        wall_s = rep_wall
            else:
                t0 = time.perf_counter()
                outcome = boot.run(aex_schedule=aex_schedule,
                                   cost_model=cost_model,
                                   max_steps=max_steps)
                wall_s = time.perf_counter() - t0
        else:
            # Imported lazily: repro.service pulls in this module via
            # the HTTPS simulator, so a top-level import would cycle.
            from ..service.faults import FaultPlan
            plan = FaultPlan(_chaos_plan_seed(
                chaos_seed, workload.name, setting, effective_param))
            outcome, wall_s, retries, recoveries = _chaos_cell(
                boot, blob, input_bytes, plan,
                f"{workload.name}/{setting}",
                aex_schedule=aex_schedule, cost_model=cost_model,
                max_steps=max_steps)
    except ReproError as exc:
        if strict:
            raise
        return BenchResult(workload=workload.name, setting=setting,
                           param=effective_param, steps=0, cycles=0.0,
                           status="error", detail=str(exc))
    result = BenchResult(
        workload=workload.name, setting=setting,
        param=effective_param,
        steps=outcome.result.steps if outcome.result else 0,
        cycles=outcome.result.cycles if outcome.result else 0.0,
        reports=list(outcome.reports),
        aex_events=outcome.result.aex_events if outcome.result else 0,
        text_bytes=boot.loaded.code_len,
        status=outcome.status,
        detail=outcome.detail,
        wall_s=wall_s,
        provision_cache_hits=outcome.provision_cache_hits,
        retries=retries,
        recoveries=recoveries,
        jit=outcome.jit_stats)
    if outcome.status != "ok":
        if strict:
            raise RuntimeError(
                f"{workload.name}/{setting}: {outcome.status} "
                f"({outcome.detail})")
        return result
    if result.reports and result.reports[0] != 1:
        if strict:
            raise RuntimeError(
                f"{workload.name}/{setting}: self-check failed "
                f"(reports={result.reports})")
        result.status = "selfcheck"
        result.detail = f"self-check failed (reports={result.reports})"
    return result


def _cell_schedule(setting: str,
                   aex_mean_interval: int) -> Optional[AexSchedule]:
    """The AEX schedule a cell runs under — P6 cells get benign OS
    timer ticks; one shared helper so serial and parallel sweeps use
    bit-identical schedules."""
    if aex_mean_interval and PolicySet.parse(setting).p6:
        return AexSchedule(aex_mean_interval)
    return None


def attach_overheads(results: Dict[str, BenchResult],
                     strict: bool = True) -> None:
    """Attach ``overhead_pct`` vs the baseline and cross-check reports.

    All settings of one workload must report identical values
    (differential check).  Failed cells are skipped: they keep
    ``overhead_pct == 0.0`` and never poison the divergence check.  In
    non-strict mode a diverging cell is downgraded to
    ``status="divergent"`` instead of raising.
    """
    baseline = results.get("baseline")
    if baseline is not None and not baseline.ok:
        baseline = None
    reports0 = None
    for setting, result in results.items():
        if not result.ok:
            continue
        if reports0 is None:
            reports0 = result.reports
        elif result.reports != reports0:
            message = (f"{result.workload}: reports diverge between "
                       f"settings ({setting}: {result.reports} vs "
                       f"{reports0})")
            if strict:
                raise RuntimeError(message)
            result.status = "divergent"
            result.detail = message
            # A downgraded cell must read like a failed one: drop any
            # overhead attached by an earlier pass over this row.
            result.overhead_pct = 0.0
            continue
        result.overhead_pct = (result.overhead_vs(baseline)
                               if baseline and setting != "baseline"
                               else 0.0)


def overhead_matrix(workload: Union[str, Workload],
                    param: Optional[int] = None,
                    settings=PAPER_SETTINGS,
                    aex_mean_interval: int = 400_000,
                    strict: bool = True,
                    **kwargs) -> Dict[str, BenchResult]:
    """Run ``workload`` under every setting; attach ``.overhead_pct``.

    The P1-P6 setting runs under a benign AEX schedule (OS timer ticks),
    so the marker path and the AEX accounting are actually exercised.
    The default threshold is sized for benign profiles of the largest
    benchmark runs, as §IV-C prescribes ("set by profiling the enclave
    program in benign environments").
    """
    results: Dict[str, BenchResult] = {}
    for setting in settings:
        results[setting] = run_workload(
            workload, setting, param,
            aex_schedule=_cell_schedule(setting, aex_mean_interval),
            strict=strict, **kwargs)
    attach_overheads(results, strict=strict)
    return results


#: Worker-side sweep parameters, set once per pool worker by
#: :func:`_pool_init` (fork inherits the parent's warm compile cache).
_POOL_STATE: dict = {}


def _pool_init(cost_model, aex_mean_interval, strict, provision_cache,
               kwargs) -> None:
    _POOL_STATE.update(cost_model=cost_model,
                       aex_mean_interval=aex_mean_interval,
                       strict=strict, provision_cache=provision_cache,
                       kwargs=kwargs)


def _pool_cell(name: str, setting: str):
    """Run one (workload, setting) cell inside a pool worker.

    Returns ``(result, fresh_cache_entries)`` — the entries this cell
    added to the worker's provision cache, so the parent can absorb
    them (worker processes die with the pool; without the harvest a
    later sweep over the same binaries would re-verify everything).
    """
    state = _POOL_STATE
    before = PROVISION_CACHE.keys() if state["provision_cache"] else None
    result = run_workload(
        name, setting,
        aex_schedule=_cell_schedule(setting,
                                    state["aex_mean_interval"]),
        cost_model=state["cost_model"],
        strict=state["strict"],
        provision_cache=state["provision_cache"],
        **state["kwargs"])
    fresh = (PROVISION_CACHE.export_since(before)
             if before is not None else {})
    return result, fresh


class RunMatrix(dict):
    """A full ``{workload: {setting: BenchResult}}`` sweep.

    Plain dict plus a machine-readable serialization, so benchmark
    sweeps can be archived (``BENCH_vm.json``) and diffed across
    commits.  ``executor`` records which VM engine produced the numbers
    (see :class:`~repro.vm.costmodel.CostModel.executor`);
    ``parallelism`` records the worker-pool size the cells ran under
    (1 = serial)."""

    def __init__(self, executor: str = "translate",
                 parallelism: int = 1):
        super().__init__()
        self.executor = executor
        self.parallelism = parallelism

    @classmethod
    def collect(cls, workloads: Iterable[str],
                settings=PAPER_SETTINGS,
                executor: str = "translate",
                cost_model: Optional[CostModel] = None,
                jobs: int = 1,
                strict: bool = True,
                provision_cache: bool = True,
                aex_mean_interval: int = 400_000,
                **kwargs) -> "RunMatrix":
        """Sweep ``workloads`` × ``settings`` under one executor.

        ``jobs > 1`` dispatches cells to a ``multiprocessing`` pool.
        Every cell is deterministic and rows are merged in sweep order,
        so the parallel matrix's cell values are identical to a serial
        run; only the wall-clock fields differ.  ``strict=False``
        records failed cells (``status``/``detail``) instead of
        aborting the sweep.
        """
        cm = cost_model or CostModel(executor=executor)
        workloads = list(workloads)
        settings = tuple(settings)
        jobs = max(1, int(jobs))
        matrix = cls(executor=cm.executor, parallelism=jobs)
        if jobs == 1:
            for name in workloads:
                matrix[name] = overhead_matrix(
                    name, settings=settings, cost_model=cm,
                    strict=strict, aex_mean_interval=aex_mean_interval,
                    provision_cache=provision_cache, **kwargs)
            return matrix

        tasks = [(name, setting) for name in workloads
                 for setting in settings]
        if not tasks:
            # An empty cell set must not reach the pool —
            # ``Pool(processes=0)`` raises — and the empty matrix must
            # match what the serial path builds: one empty row per
            # workload when ``settings`` is empty, no rows at all when
            # ``workloads`` is.
            for name in workloads:
                matrix[name] = {}
            return matrix
        # Compile every cell in the parent so forked workers inherit a
        # warm compile cache and never duplicate the compile work.
        param = kwargs.get("param")
        for name, setting in tasks:
            try:
                compile_workload(name, setting, param)
            except ReproError:
                if strict:
                    raise
                # the worker re-raises and records the failed cell
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = multiprocessing.get_context()
        with ctx.Pool(processes=min(jobs, len(tasks)),
                      initializer=_pool_init,
                      initargs=(cm, aex_mean_interval, strict,
                                provision_cache, kwargs)) as pool:
            cells = pool.starmap(_pool_cell, tasks)
        by_cell = {}
        for task, (cell, fresh) in zip(tasks, cells):
            if provision_cache:
                PROVISION_CACHE.absorb(fresh)
            by_cell[task] = cell
        for name in workloads:
            row = {setting: by_cell[(name, setting)]
                   for setting in settings}
            attach_overheads(row, strict=strict)
            matrix[name] = row
        return matrix

    @property
    def failures(self) -> List[str]:
        """``workload/setting`` labels of every non-ok cell."""
        return [f"{name}/{setting}"
                for name, row in self.items()
                for setting, result in row.items()
                if not result.ok]

    @property
    def total_wall_s(self) -> float:
        return sum(r.wall_s for row in self.values()
                   for r in row.values())

    @property
    def total_steps(self) -> int:
        return sum(r.steps for row in self.values()
                   for r in row.values())

    def to_json(self) -> dict:
        """JSON-ready document: per-cell steps/cycles/wall/ips plus
        sweep-level totals."""
        return {
            "schema": "deflection-bench/1",
            "executor": self.executor,
            "parallelism": self.parallelism,
            "totals": {
                "wall_s": round(self.total_wall_s, 6),
                "steps": self.total_steps,
                "ips": round(self.total_steps / self.total_wall_s, 1)
                if self.total_wall_s > 0 else 0.0,
                "provision_cache_hits": sum(
                    r.provision_cache_hits for row in self.values()
                    for r in row.values()),
                "retries": sum(r.retries for row in self.values()
                               for r in row.values()),
                "recoveries": sum(r.recoveries for row in self.values()
                                  for r in row.values()),
                "failed_cells": self.failures,
                **self._jit_totals(),
            },
            "workloads": {
                name: {setting: result.to_dict()
                       for setting, result in row.items()}
                for name, row in self.items()
            },
        }

    def _jit_totals(self) -> dict:
        """Sweep-level JIT aggregates (empty under the step engine)."""
        cells = [r.jit for row in self.values() for r in row.values()
                 if r.jit]
        if not cells:
            return {}
        total = {key: sum(c.get(key, 0) for c in cells)
                 for key in ("compiled", "template_hits",
                             "dispatch_calls", "chain_links",
                             "chain_hops", "ic_hits", "ic_misses",
                             "ic_fills", "invalidated_blocks",
                             "severed_edges", "evicted_blocks",
                             "elided_flag_writes", "hoisted_regs")}
        steps = sum(c.get("steps", 0) for c in cells)
        disp = total["dispatch_calls"]
        total["mean_instrs_per_dispatch"] = \
            round(steps / disp, 2) if disp else 0.0
        probes = total["ic_hits"] + total["ic_misses"]
        total["ic_hit_rate"] = \
            round(total["ic_hits"] / probes, 4) if probes else 0.0
        return {"jit": total}

    def write_json(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=False)
            fh.write("\n")
