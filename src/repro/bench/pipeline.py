"""Pipeline throughput/robustness benchmark (``repro bench --pipeline``).

Sweeps the multi-enclave provenance pipeline
(:mod:`repro.service.pipeline`) over a small matrix:

* **topology** — the 3-stage ``filter-score-agg`` chain and the
  4-stage ``stream-map4`` chain;
* **mode** — ``batch`` (one work item end to end) and ``stream``
  (chunked records through long-lived sessions under a bounded
  in-flight window, with per-record channel rekeying);
* **faults** — ``clean`` (honest hosts) and ``chaos`` (a seeded
  :class:`~repro.service.faults.PipelineFaultPlan`: wire mangling,
  transient ECalls, mid-hop teardowns, handoff/chain attacks, stalls,
  quarantines).

Every cell's output is chain-verified (the full provenance chain of
every chunk re-verified against the pipeline input and final output
digests) and compared byte-for-byte against the **unfaulted serial
oracle** — the same verified stages run plainly, chunk by chunk.  A
cell whose run completes but fails either check is downgraded to
``divergent`` and never feeds a baseline.

Metric families, split as the results store expects:

* **deterministic** (zero noise band): link/hop/chunk counts, resume
  and retry counters, rejected-handoff and rejected-chain-attack
  counts, migrations, stalls, discard-reruns, the chain-verified and
  output-identical booleans — all pure functions of the seed;
* **wall clock** (advisory band): total wall seconds, throughput as
  ``records_per_s`` (the one store metric where *higher* is better —
  the gate layer knows), and the p99 per-chunk latency
  ``chunk_p99_s``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..core.bootstrap import ProvisionCache
from ..service.faults import PipelineFaultPlan, _pipeline_data
from ..service.pipeline import (
    PipelineOrchestrator, TOPOLOGIES, serial_oracle, topology_stages,
)

#: Bench document schema tag.
SCHEMA = "deflection-pipeline/1"

#: Fault settings swept per (topology, mode) pair.
FAULT_SETTINGS = ("clean", "chaos")


def _percentile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
    return ordered[index]


def _run_cell(seed: int, topology: str, mode: str, faults: str, *,
              data_len: int, chunk_size: int, window: int,
              rekey_every: Optional[int], checkpoint_every: int,
              cache: ProvisionCache) -> dict:
    stages = topology_stages(topology)
    # NOT hash(): string hashing is per-process randomized and the
    # chaos cells' deterministic counters must replay byte-identically
    # (and identically between the smoke subset and the full matrix).
    trial = sum(f"{topology}/{mode}/{faults}".encode()) % 97
    data = _pipeline_data(trial, length=data_len)
    plan = None
    if faults == "chaos":
        plan = PipelineFaultPlan(
            seed * 1_000_003 + trial * 131 + len(stages))
    orch = PipelineOrchestrator(
        stages, pipeline_id=f"bench-{topology}-{mode}-{faults}",
        topology=topology, seed=seed, fault_plan=plan,
        provision_cache=cache, checkpoint_every=checkpoint_every,
        rekey_every=rekey_every if mode == "stream" else None,
        sleep=None)
    began = time.perf_counter()
    if mode == "stream":
        run = orch.run_streaming(data, chunk_size=chunk_size,
                                 window=window)
        oracle, _ = serial_oracle(stages, data, chunk_size=chunk_size,
                                  provision_cache=cache)
    else:
        run = orch.run(data)
        oracle, _ = serial_oracle(stages, data, provision_cache=cache)
    wall_s = time.perf_counter() - began
    identical = bool(run.ok and run.output == oracle)
    stats = run.stats
    status = run.status
    if status == "ok" and not (run.chain_verified and identical):
        status = "divergent"
    return {
        "topology": topology,
        "mode": mode,
        "faults": faults,
        "status": status,
        "detail": run.detail or run.chain_detail,
        "stages": len(stages),
        "chunks": run.chunks,
        "links": run.counters["links"],
        "chain_verified": bool(run.chain_verified),
        "output_identical": identical,
        "retries": stats.retries,
        "reconnects": stats.reconnects,
        "recoveries": stats.recoveries,
        "resumes": stats.resumes,
        "rollbacks_rejected": stats.rollbacks_rejected,
        "handoffs_rejected": run.counters["handoffs_rejected"],
        "chain_attacks_rejected":
            run.counters["chain_attacks_rejected"],
        "attacks_accepted": run.counters["attacks_accepted"],
        "discard_reruns": run.counters["discard_reruns"],
        "migrations": run.counters["migrations"],
        "stalls": run.counters["stalls"],
        "rekeys": run.counters["rekeys"],
        "max_in_flight": run.max_in_flight,
        "upstream_excess": run.upstream_reruns,
        "wall_s": wall_s,
        "records_per_s": run.chunks / wall_s if wall_s else 0.0,
        "chunk_p99_s": _percentile(run.chunk_latencies, 0.99),
    }


def run_pipeline_bench(seed: int = 2021, *,
                       topologies=TOPOLOGIES,
                       modes=("batch", "stream"),
                       fault_settings=FAULT_SETTINGS,
                       data_len: int = 96,
                       chunk_size: int = 16,
                       window: int = 2,
                       rekey_every: Optional[int] = 64,
                       checkpoint_every: int = 25) -> dict:
    """Run the pipeline bench matrix; JSON-ready document."""
    cache = ProvisionCache()
    began = time.perf_counter()
    cells = []
    for topology in topologies:
        for mode in modes:
            for faults in fault_settings:
                cells.append(_run_cell(
                    seed, topology, mode, faults,
                    data_len=data_len, chunk_size=chunk_size,
                    window=window, rekey_every=rekey_every,
                    checkpoint_every=checkpoint_every, cache=cache))
    bad = [c for c in cells if c["status"] != "ok"]
    return {
        "schema": SCHEMA,
        "seed": seed,
        "status": "ok" if not bad else bad[0]["status"],
        "cells": cells,
        "all_chain_verified": all(c["chain_verified"] for c in cells),
        "all_output_identical": all(c["output_identical"]
                                    for c in cells),
        "wall_s": time.perf_counter() - began,
        "provision_cache": cache.stats(),
    }


def smoke_params() -> dict:
    """Small-matrix parameters for the CI ``pipeline-smoke`` job: one
    topology, both modes, clean hosts only."""
    return {"topologies": ("filter-score-agg",),
            "fault_settings": ("clean",),
            "data_len": 48, "chunk_size": 16}


def format_pipeline_table(doc: dict) -> str:
    """Human-oriented summary table of a pipeline bench document."""
    from .tables import format_table
    rows = []
    for cell in doc["cells"]:
        rows.append([
            f"{cell['topology']}/{cell['mode']}/{cell['faults']}",
            cell["status"],
            "yes" if cell["chain_verified"] else "NO",
            "yes" if cell["output_identical"] else "NO",
            str(cell["resumes"]),
            str(cell["handoffs_rejected"]
                + cell["chain_attacks_rejected"]),
            f"{cell['records_per_s']:.1f}",
            f"{cell['chunk_p99_s'] * 1000:.0f}ms",
        ])
    title = f"pipeline bench (seed {doc['seed']}, status {doc['status']})"
    return format_table(
        title,
        ["cell", "status", "chain", "identical", "resumes",
         "rejected", "rec/s", "chunk p99"],
        rows)
