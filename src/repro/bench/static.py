"""Annotation-full vs annotation-light ablation (static proof tier).

For each (workload, policy setting) cell this sweep compiles the
workload twice — annotation-full (every guard inline) and
annotation-light (provably-safe guards elided, proofs shipped) — runs
both end-to-end through provisioning and execution, and records:

* the deterministic cycle accounts and the overhead each binary pays
  over the unpoliced baseline (the paper's Table II axis);
* static guard-site counts from the analyzer — how many runtime guards
  each binary actually carries, per policy, plus the annotation bytes
  the proofs saved;
* the differential safety checks: the light binary must pass full
  verification (its proof log re-derived in-enclave) and produce
  byte-identical reports to the full binary.

A light cell that fails verification, diverges, or pays *more*
overhead than full is marked failed — the ablation is a correctness
gate as much as a measurement.
"""

from __future__ import annotations

import json
import multiprocessing
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..analysis import analyze_object
from ..compiler.objfile import ObjectFile
from ..errors import ReproError
from ..policy.policies import PolicySet
from ..workloads import get_workload
from .harness import compile_workload, run_workload

#: The guard-bearing settings of the paper matrix (baseline has no
#: guards to elide; P1-P6 adds AEX markers the proof tier leaves
#: untouched, so P1-P5 is the widest interesting column).
STATIC_SETTINGS = ("P1", "P1+P2", "P1-P5")


@dataclass
class StaticResult:
    """One (workload, setting) ablation cell."""

    workload: str
    setting: str
    param: Optional[int] = None
    steps: int = 0
    cycles_full: float = 0.0
    cycles_light: float = 0.0
    #: Overhead over the unpoliced baseline, percent of baseline.
    overhead_full_pct: float = 0.0
    overhead_light_pct: float = 0.0
    #: How much of the full-annotation overhead the proofs removed.
    overhead_cut_pct: float = 0.0
    #: Runtime guard sites (store + rsp + indirect) in each binary.
    guard_sites_full: int = 0
    guard_sites_light: int = 0
    #: Elided sites by proof kind, and the proof-log length.
    elided: Dict[str, int] = field(default_factory=dict)
    proof_entries: int = 0
    text_bytes_full: int = 0
    text_bytes_light: int = 0
    annotation_bytes_saved: int = 0
    #: Differential checks: light verified in-enclave, same reports.
    verified_light: bool = False
    outputs_identical: bool = False
    status: str = "ok"
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "setting": self.setting,
            "param": self.param,
            "steps": self.steps,
            "cycles_full": self.cycles_full,
            "cycles_light": self.cycles_light,
            "overhead_full_pct": round(self.overhead_full_pct, 4),
            "overhead_light_pct": round(self.overhead_light_pct, 4),
            "overhead_cut_pct": round(self.overhead_cut_pct, 4),
            "guard_sites_full": self.guard_sites_full,
            "guard_sites_light": self.guard_sites_light,
            "elided": dict(self.elided),
            "proof_entries": self.proof_entries,
            "text_bytes_full": self.text_bytes_full,
            "text_bytes_light": self.text_bytes_light,
            "annotation_bytes_saved": self.annotation_bytes_saved,
            "verified_light": self.verified_light,
            "outputs_identical": self.outputs_identical,
            "status": self.status,
            "detail": self.detail,
        }


def _guard_sites(report) -> int:
    """Per-site runtime guards in a binary (the shadow prologue/
    epilogue and P6 markers are structural, not elidable sites)."""
    from ..policy.templates import AnnotationKind as K
    guard_kinds = {K.STORE_GUARD, K.RSP_GUARD, K.INDIRECT}
    return sum(count for kind, count in report.annotation_counts.items()
               if kind in guard_kinds)


def measure_static_cell(workload: str, setting: str,
                        param: Optional[int] = None) -> StaticResult:
    """Run the full/light ablation for one cell."""
    effective = param if param is not None \
        else get_workload(workload).default_param
    result = StaticResult(workload=workload, setting=setting,
                          param=effective)
    policies = PolicySet.parse(setting)

    base = run_workload(workload, "baseline", param)
    full = run_workload(workload, setting, param)
    light = run_workload(workload, setting, param, light=True)
    result.verified_light = light.status == "ok"
    # Reports, not steps: the light binary retires fewer instructions
    # by construction (that is the point); its *outputs* must match.
    result.outputs_identical = full.reports == light.reports

    obj_full = ObjectFile.parse(compile_workload(workload, setting,
                                                 param))
    obj_light = ObjectFile.parse(compile_workload(workload, setting,
                                                  param, light=True))
    rep_full = analyze_object(obj_full, policies)
    rep_light = analyze_object(obj_light, policies)

    result.steps = light.steps
    result.cycles_full = full.cycles
    result.cycles_light = light.cycles
    if base.cycles > 0:
        result.overhead_full_pct = \
            100.0 * (full.cycles - base.cycles) / base.cycles
        result.overhead_light_pct = \
            100.0 * (light.cycles - base.cycles) / base.cycles
    over_full = full.cycles - base.cycles
    if over_full > 0:
        result.overhead_cut_pct = \
            100.0 * (full.cycles - light.cycles) / over_full
    result.guard_sites_full = _guard_sites(rep_full)
    result.guard_sites_light = _guard_sites(rep_light)
    result.elided = dict(rep_light.elided_counts)
    result.proof_entries = len(obj_light.proofs)
    result.text_bytes_full = len(obj_full.text)
    result.text_bytes_light = len(obj_light.text)
    result.annotation_bytes_saved = rep_light.annotation_bytes_saved

    if not result.verified_light:
        result.status = "unverified"
        result.detail = light.detail
    elif not result.outputs_identical:
        result.status = "divergent"
        result.detail = (f"light reports {light.reports} != "
                         f"full {full.reports}")
    elif result.cycles_light > result.cycles_full:
        result.status = "slower"
        result.detail = ("annotation-light paid more cycles than "
                         "annotation-full")
    return result


def _safe_static_cell(name: str, setting: str, param,
                      strict: bool) -> StaticResult:
    try:
        return measure_static_cell(name, setting, param=param)
    except (ReproError, KeyError, ValueError) as exc:
        if strict:
            raise
        return StaticResult(workload=name, setting=setting,
                            status="error", detail=str(exc))


#: Worker-side sweep parameters for the fork pool.
_SPOOL_STATE: dict = {}


def _spool_init(param, strict) -> None:
    _SPOOL_STATE.update(param=param, strict=strict)


def _spool_cell(name: str, setting: str) -> StaticResult:
    state = _SPOOL_STATE
    return _safe_static_cell(name, setting, state["param"],
                             state["strict"])


class StaticMatrix(dict):
    """A ``{workload: {setting: StaticResult}}`` ablation sweep with
    the same document conventions as the other BENCH matrices."""

    def __init__(self, parallelism: int = 1):
        super().__init__()
        self.parallelism = parallelism

    @classmethod
    def collect(cls, workloads: Iterable[str],
                settings=STATIC_SETTINGS,
                param: Optional[int] = None,
                jobs: int = 1,
                strict: bool = True) -> "StaticMatrix":
        workloads = list(workloads)
        settings = tuple(settings)
        jobs = max(1, int(jobs))
        matrix = cls(parallelism=jobs)
        tasks = [(name, setting) for name in workloads
                 for setting in settings]
        if jobs == 1 or not tasks:
            cells = [_safe_static_cell(name, setting, param, strict)
                     for name, setting in tasks]
        else:
            # Compile both variants in the parent so forked workers
            # inherit the warm compile cache.
            for name, setting in tasks:
                for light in (False, True):
                    try:
                        compile_workload(name, setting, param,
                                         light=light)
                    except (ReproError, KeyError, ValueError):
                        if strict:
                            raise
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX fallback
                ctx = multiprocessing.get_context()
            with ctx.Pool(processes=min(jobs, len(tasks)),
                          initializer=_spool_init,
                          initargs=(param, strict)) as pool:
                cells = pool.starmap(_spool_cell, tasks)
        for (name, setting), cell in zip(tasks, cells):
            matrix.setdefault(name, {})[setting] = cell
        return matrix

    @property
    def cells(self) -> List[StaticResult]:
        return [cell for row in self.values() for cell in row.values()]

    @property
    def failures(self) -> List[str]:
        return [f"{c.workload}/{c.setting}" for c in self.cells
                if not c.ok]

    def totals(self) -> dict:
        ok = [c for c in self.cells if c.ok]
        sites_full = sum(c.guard_sites_full for c in ok)
        sites_light = sum(c.guard_sites_light for c in ok)
        cuts = [c.overhead_cut_pct for c in ok]
        return {
            "cells": len(self.cells),
            "guard_sites_full": sites_full,
            "guard_sites_light": sites_light,
            "elided_sites": sum(c.proof_entries for c in ok),
            "annotation_bytes_saved": sum(c.annotation_bytes_saved
                                          for c in ok),
            "mean_overhead_cut_pct": round(sum(cuts) / len(cuts), 2)
            if cuts else 0.0,
            "min_overhead_cut_pct": round(min(cuts), 2) if cuts else 0.0,
            "failed_cells": self.failures,
        }

    def to_json(self) -> dict:
        return {
            "schema": "deflection-static/1",
            "parallelism": self.parallelism,
            "totals": self.totals(),
            "workloads": {
                name: {setting: cell.to_dict()
                       for setting, cell in row.items()}
                for name, row in self.items()
            },
        }

    def write_json(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=False)
            fh.write("\n")
