"""Benchmark harness: run matrices, overhead computation, table output."""

from .harness import (
    BenchResult, RunMatrix, attach_overheads, compile_workload,
    run_workload, overhead_matrix, PAPER_SETTINGS,
)
from .tables import format_series, format_table, percent

__all__ = ["BenchResult", "RunMatrix", "attach_overheads",
           "compile_workload", "run_workload",
           "overhead_matrix", "PAPER_SETTINGS",
           "format_series", "format_table", "percent"]
