"""Benchmark harness: run matrices, overhead computation, table output."""

from .harness import (
    BenchResult, RunMatrix, attach_overheads, compile_workload,
    run_workload, overhead_matrix, PAPER_SETTINGS,
)
from .gates import GateReport, evaluate, rolling_baseline
from .provision import ProvisionMatrix, ProvisionResult, measure_cell
from .store import CellKey, Record, ResultsStore, records_from_doc
from .tables import format_series, format_table, percent

__all__ = ["BenchResult", "RunMatrix", "attach_overheads",
           "compile_workload", "run_workload",
           "overhead_matrix", "PAPER_SETTINGS",
           "ProvisionMatrix", "ProvisionResult", "measure_cell",
           "format_series", "format_table", "percent",
           "CellKey", "Record", "ResultsStore", "records_from_doc",
           "GateReport", "evaluate", "rolling_baseline"]
