"""Continuous benchmark results store — the tko-style trajectory.

The ``BENCH_*.json`` documents are point-in-time snapshots: each sweep
overwrites the last, so six PRs of perf work leave no machine-checkable
history and a regression in any hot path lands silently.  This module
is the append-only complement: every bench run — VM run matrices,
provisioning sweeps, checkpoint sweeps, the CI smoke cells — is
*ingested* into a JSONL store, one line per matrix cell, keyed by the
full measurement context::

    (kind, executor, jit tier, workload, setting, param)

plus run metadata (commit, run id, timestamp).  The store never
rewrites history; a new sweep appends a new generation of records, and
the rolling baseline for a cell is the **median of the last K accepted
runs** of that exact key (accepted = the cell completed ``ok``).
:mod:`repro.bench.gates` consumes the ordered record stream and turns
it into improved / flat / regressed classifications with per-metric
noise bands.

Design notes:

* JSONL, not a database: append is a single ``O_APPEND`` write, the
  file diffs cleanly in review, and a truncated tail line (a crashed
  writer) damages one record, not the store.
* Metric *names* encode semantics for the gate layer: deterministic
  metrics (``cycles``, ``steps``, ``aex_events``, byte counts,
  booleans) carry a zero noise band — the simulation is deterministic,
  so any drift is a real behaviour change — while wall-clock metrics
  (``wall_s``, ``*_cold_ms``, ``warm_ms``, ``plain_wall_s``,
  ``overhead_pct@N``) are host noise and get a percentage band.
* One record per cell, not per run: baselines are per-cell, and a cell
  that disappears from later sweeps simply stops generating records
  instead of poisoning run-level comparisons.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from ..errors import ReproError

#: Store line schema tag.
SCHEMA = "deflection-results/1"

#: Every measurement kind the store accepts.  Checked at CellKey
#: construction so a typo'd kind raises :class:`StoreError` instead of
#: silently forking a fresh baseline family nothing ever gates.
KINDS = frozenset({"vm", "provision", "checkpoint", "fleet", "static",
                   "pipeline"})

#: JIT tier per bench executor label (the label, not
#: ``CostModel.executor`` — ``translate-t1`` resolves to the translate
#: engine with chaining off, so only the label still knows the tier).
TIERS = {"step": 0, "translate-t1": 1, "translate": 2}

Metric = Union[int, float, bool]


class StoreError(ReproError):
    """A results-store line could not be parsed or ingested."""


@dataclass(frozen=True)
class CellKey:
    """The measurement context a baseline is rolled over."""

    kind: str                    # one of KINDS
    executor: str                # bench executor label; "" when n/a
    tier: int                    # jit tier; -1 when n/a
    workload: str
    setting: str
    param: Optional[int]

    def __post_init__(self):
        if self.kind not in KINDS:
            raise StoreError(
                f"unknown results-store kind {self.kind!r}; "
                f"known: {sorted(KINDS)}")

    def label(self) -> str:
        """Human-oriented cell label for tables and error messages."""
        bits = [self.kind]
        if self.executor:
            bits.append(self.executor)
        bits.append(f"{self.workload}/{self.setting}")
        if self.param is not None:
            bits.append(str(self.param))
        return ":".join(bits)


@dataclass
class Record:
    """One cell observation — one JSONL line."""

    key: CellKey
    metrics: Dict[str, Metric]
    status: str = "ok"
    commit: str = "unknown"
    run_id: str = ""
    ts: float = 0.0
    detail: str = ""

    @property
    def accepted(self) -> bool:
        """Only clean cells feed the rolling baseline."""
        return self.status == "ok"

    def to_line(self) -> str:
        doc = {
            "schema": SCHEMA,
            "run_id": self.run_id,
            "commit": self.commit,
            "ts": round(self.ts, 3),
            "kind": self.key.kind,
            "executor": self.key.executor,
            "tier": self.key.tier,
            "workload": self.key.workload,
            "setting": self.key.setting,
            "param": self.key.param,
            "status": self.status,
            "metrics": self.metrics,
        }
        if self.detail:
            doc["detail"] = self.detail
        return json.dumps(doc, sort_keys=False)

    @classmethod
    def from_line(cls, line: str, lineno: int = 0) -> "Record":
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            raise StoreError(
                f"results store line {lineno}: not JSON ({exc})") \
                from exc
        if doc.get("schema") != SCHEMA:
            raise StoreError(
                f"results store line {lineno}: schema "
                f"{doc.get('schema')!r}, want {SCHEMA!r}")
        try:
            key = CellKey(kind=doc["kind"], executor=doc["executor"],
                          tier=int(doc["tier"]),
                          workload=doc["workload"],
                          setting=doc["setting"], param=doc["param"])
            return cls(key=key, metrics=dict(doc["metrics"]),
                       status=doc["status"], commit=doc["commit"],
                       run_id=doc["run_id"], ts=float(doc["ts"]),
                       detail=doc.get("detail", ""))
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreError(
                f"results store line {lineno}: missing/invalid field "
                f"({exc})") from exc


class ResultsStore:
    """Append-only JSONL store of :class:`Record` lines.

    File order *is* history order: the last record of a key is its
    latest observation, earlier records are its baseline window.
    """

    def __init__(self, path):
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def append(self, records: Iterable[Record]) -> int:
        records = list(records)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as fh:
            for record in records:
                fh.write(record.to_line() + "\n")
        return len(records)

    def load(self) -> List[Record]:
        if not self.path.exists():
            return []
        records = []
        with open(self.path) as fh:
            for lineno, line in enumerate(fh, 1):
                if line.strip():
                    records.append(Record.from_line(line, lineno))
        return records

    def runs(self) -> List[str]:
        """Distinct run ids, in first-appearance (= history) order."""
        seen: Dict[str, None] = {}
        for record in self.load():
            seen.setdefault(record.run_id, None)
        return list(seen)


def new_run_id(kind: str, commit: str,
               ts: Optional[float] = None) -> str:
    ts = time.time() if ts is None else ts
    return f"{kind}-{commit}-{int(ts * 1000):x}"


# --------------------------------------------------------------------
# Ingest builders: BENCH_* documents -> per-cell records
# --------------------------------------------------------------------

def stamp_run(records: List[Record], commit: str, run_id: str = "",
              ts: Optional[float] = None) -> List[Record]:
    """Stamp one ingest's run metadata onto every record."""
    ts = time.time() if ts is None else ts
    if not run_id:
        kind = records[0].key.kind if records else "run"
        run_id = new_run_id(kind, commit, ts)
    for record in records:
        record.commit = commit
        record.run_id = run_id
        record.ts = ts
    return records


def vm_cell_record(executor_label: str, cell: dict) -> Record:
    """One ``RunMatrix`` cell dict (``BenchResult.to_dict``) as a
    record.  ``cycles``/``steps``/``aex_events``/``overhead_pct`` are
    deterministic (the cost model is simulated); ``wall_s`` is host
    time."""
    key = CellKey(kind="vm", executor=executor_label,
                  tier=TIERS.get(executor_label, -1),
                  workload=cell["workload"], setting=cell["setting"],
                  param=cell.get("param"))
    metrics: Dict[str, Metric] = {
        "cycles": cell["cycles"],
        "steps": cell["steps"],
        "aex_events": cell["aex_events"],
        "text_bytes": cell.get("text_bytes", 0),
        "overhead_pct": cell.get("overhead_pct", 0.0),
        "wall_s": cell.get("wall_s", 0.0),
    }
    return Record(key=key, metrics=metrics,
                  status=cell.get("status", "ok"),
                  detail=cell.get("detail", ""))


def records_from_vm_doc(doc: dict,
                        executor_label: Optional[str] = None
                        ) -> List[Record]:
    """Ingest a ``BENCH_vm.json`` document — either a single-executor
    ``RunMatrix.to_json()`` or the multi-executor comparison wrapper.
    ``executor_label`` overrides the document's executor field for
    single-matrix docs (the tier-1 label is erased by the cost model).
    """
    records = []
    if "executors" in doc:
        for label, sub in doc["executors"].items():
            for row in sub.get("workloads", {}).values():
                for cell in row.values():
                    records.append(vm_cell_record(label, cell))
        return records
    label = executor_label or doc.get("executor", "translate")
    for row in doc.get("workloads", {}).values():
        for cell in row.values():
            records.append(vm_cell_record(label, cell))
    return records


def records_from_smoke_cells(cells: Dict[str, "object"]
                             ) -> List[Record]:
    """Ingest the ``repro bench --smoke`` cells — one
    :class:`~repro.bench.harness.BenchResult` per executor label."""
    return [vm_cell_record(label, result.to_dict())
            for label, result in cells.items()]


def records_from_provision_doc(doc: dict) -> List[Record]:
    """Ingest a ``BENCH_provision.json`` document.  Byte-identity and
    size/instruction counts are deterministic; the stage timings and
    cold/warm totals are wall clock."""
    records = []
    for row in doc.get("workloads", {}).values():
        for cell in row.values():
            key = CellKey(kind="provision", executor="", tier=-1,
                          workload=cell["workload"],
                          setting=cell["setting"],
                          param=cell.get("param"))
            metrics: Dict[str, Metric] = {
                "identical": bool(cell.get("identical", False)),
                "text_bytes": cell.get("text_bytes", 0),
                "instructions": cell.get("instructions", 0),
                "legacy_cold_ms": cell.get("legacy_cold_ms", 0.0),
                "new_cold_ms": cell.get("new_cold_ms", 0.0),
                "warm_ms": cell.get("warm_ms", 0.0),
            }
            records.append(Record(key=key, metrics=metrics,
                                  status=cell.get("status", "ok"),
                                  detail=cell.get("detail", "")))
    return records


def records_from_checkpoint_doc(doc: dict) -> List[Record]:
    """Ingest a ``BENCH_checkpoint.json`` document.  Resume identity,
    rollback rejection, step counts and sealed-chain sizes are
    deterministic; the per-interval overhead is wall clock."""
    records = []
    for cell in doc.get("cells", []):
        resumes = cell.get("resumes", [])
        identical = all(r.get("identical") for r in resumes) \
            and bool(resumes)
        rejected = all(r.get("rollback_rejected") for r in resumes) \
            and bool(resumes)
        status = cell.get("status", "ok")
        if status == "ok" and not (identical and rejected):
            # CheckpointCell.status stays "ok" on a mismatch; the
            # store must not accept such a cell into the baseline.
            status = "divergent"
        metrics: Dict[str, Metric] = {
            "steps": cell.get("steps", 0),
            "resume_identical": identical,
            "rollbacks_rejected": rejected,
            "resume_points": len(resumes),
            "plain_wall_s": cell.get("plain_wall_s", 0.0),
        }
        for point in cell.get("overhead", []):
            every = point["checkpoint_every"]
            metrics[f"chain_bytes@{every}"] = point.get(
                "chain_bytes", 0)
            metrics[f"checkpoints@{every}"] = point.get(
                "checkpoints", 0)
            metrics[f"overhead_pct@{every}"] = point.get(
                "overhead_pct", 0.0)
        key = CellKey(kind="checkpoint", executor="", tier=-1,
                      workload=cell["workload"],
                      setting=cell.get("setting", ""),
                      param=cell.get("param"))
        records.append(Record(key=key, metrics=metrics, status=status,
                              detail=cell.get("detail", "")))
    return records


def records_from_fleet_doc(doc: dict) -> List[Record]:
    """Ingest a ``BENCH_fleet.json`` document.

    One aggregate ``fleet`` cell (the campaign), plus one cell per
    tenant.  Session counts, shed counts, scheduler counters,
    tick-latency percentiles and the zero-lost / migrated booleans are
    deterministic (the supervisor is virtual-time and seeded); total
    wall time, ``sec_per_session`` and the wall-scaled latency
    percentiles are host clock.  Throughput is stored as
    ``sec_per_session`` (lower-is-better), not sessions/sec.
    """
    counters = doc.get("counters", {})
    latency = doc.get("latency_ticks", {})
    latency_s = doc.get("latency_s", {})
    stats = doc.get("stats", {})
    setting = f"d{doc.get('drones', 0)}"
    status = doc.get("status", "ok")
    key = CellKey(kind="fleet", executor="", tier=-1,
                  workload="campaign", setting=setting,
                  param=doc.get("sessions"))
    metrics: Dict[str, Metric] = {
        "zero_lost": bool(doc.get("zero_lost", False)),
        "migrated": counters.get("migrations", 0) > 0,
        "completed": counters.get("completed", 0),
        "shed": counters.get("shed", 0),
        "dispatches": counters.get("dispatches", 0),
        "preemptions": counters.get("preemptions", 0),
        "replacements": counters.get("replacements", 0),
        "rollbacks_rejected": stats.get("rollbacks_rejected", 0),
        "ticks": doc.get("ticks", 0),
        "p50_ticks": latency.get("p50", 0.0),
        "p99_ticks": latency.get("p99", 0.0),
        "wall_s": doc.get("wall_s", 0.0),
        "sec_per_session": doc.get("sec_per_session", 0.0),
        "p50_s": latency_s.get("p50", 0.0),
        "p99_s": latency_s.get("p99", 0.0),
    }
    records = [Record(key=key, metrics=metrics, status=status,
                      detail=";".join(doc.get("corrupt", [])
                                      + doc.get("lost", [])))]
    for tenant, tstats in sorted(doc.get("tenants_stats", {}).items()):
        tkey = CellKey(kind="fleet", executor="", tier=-1,
                       workload="tenant", setting=tenant,
                       param=doc.get("sessions"))
        records.append(Record(key=tkey, metrics={
            "attempts": tstats.get("attempts", 0),
            "retries": tstats.get("retries", 0),
            "fatal_errors": tstats.get("fatal_errors", 0),
            "resumes": tstats.get("resumes", 0),
            "rollbacks_rejected": tstats.get("rollbacks_rejected", 0),
        }, status=status))
    return records


def records_from_static_doc(doc: dict) -> List[Record]:
    """Ingest a ``BENCH_static.json`` document (annotation-full vs
    annotation-light ablation).  Everything is deterministic — cycle
    accounts come from the simulated cost model, guard-site counts from
    the static analyzer — so every metric gates with a zero band.
    ``overhead_light_pct`` (not the cut) is stored: the store is
    uniformly lower-is-better."""
    records = []
    for row in doc.get("workloads", {}).values():
        for cell in row.values():
            key = CellKey(kind="static", executor="", tier=-1,
                          workload=cell["workload"],
                          setting=cell["setting"],
                          param=cell.get("param"))
            metrics: Dict[str, Metric] = {
                "cycles_light": cell.get("cycles_light", 0.0),
                "overhead_light_pct": cell.get("overhead_light_pct",
                                               0.0),
                "residual_guard_sites": cell.get("guard_sites_light",
                                                 0),
                "text_bytes_light": cell.get("text_bytes_light", 0),
                "outputs_identical": bool(cell.get("outputs_identical",
                                                   False)),
                "verified_light": bool(cell.get("verified_light",
                                                False)),
            }
            records.append(Record(key=key, metrics=metrics,
                                  status=cell.get("status", "ok"),
                                  detail=cell.get("detail", "")))
    return records


def records_from_pipeline_doc(doc: dict) -> List[Record]:
    """Ingest a ``BENCH_pipeline.json`` document — one record per
    matrix cell, keyed ``(pipeline, topology, mode-faults)``.

    Link/hop/chunk counts, resume/retry/rejection counters and the
    chain-verified / output-identical booleans are deterministic (pure
    functions of the seed); ``wall_s``, ``records_per_s`` and
    ``chunk_p99_s`` are host clock.  A cell that completed ``ok`` but
    is not both chain-verified and byte-identical to the serial oracle
    is downgraded to ``divergent`` so it never feeds a baseline —
    mirroring the checkpoint ingester's stance that identity failures
    are not acceptable observations."""
    records = []
    for cell in doc.get("cells", []):
        status = cell.get("status", "ok")
        if status == "ok" and not (cell.get("chain_verified")
                                   and cell.get("output_identical")):
            status = "divergent"
        key = CellKey(kind="pipeline", executor="", tier=-1,
                      workload=cell["topology"],
                      setting=f"{cell['mode']}-{cell['faults']}",
                      param=cell.get("chunks"))
        metrics: Dict[str, Metric] = {
            "chain_verified": bool(cell.get("chain_verified", False)),
            "output_identical": bool(cell.get("output_identical",
                                              False)),
            "links": cell.get("links", 0),
            "chunks": cell.get("chunks", 0),
            "stages": cell.get("stages", 0),
            "resumes": cell.get("resumes", 0),
            "retries": cell.get("retries", 0),
            "recoveries": cell.get("recoveries", 0),
            "rollbacks_rejected": cell.get("rollbacks_rejected", 0),
            "handoffs_rejected": cell.get("handoffs_rejected", 0),
            "chain_attacks_rejected": cell.get("chain_attacks_rejected",
                                               0),
            "attacks_accepted": cell.get("attacks_accepted", 0),
            "discard_reruns": cell.get("discard_reruns", 0),
            "migrations": cell.get("migrations", 0),
            "stalls": cell.get("stalls", 0),
            "upstream_excess": cell.get("upstream_excess", 0),
            "wall_s": cell.get("wall_s", 0.0),
            "records_per_s": cell.get("records_per_s", 0.0),
            "chunk_p99_s": cell.get("chunk_p99_s", 0.0),
        }
        records.append(Record(key=key, metrics=metrics, status=status,
                              detail=cell.get("detail", "")))
    return records


#: Document schema -> ingest builder (the multi-executor VM wrapper
#: shares the RunMatrix schema tag, handled inside the builder).
_INGESTERS = {
    "deflection-bench/1": records_from_vm_doc,
    "deflection-provision/1": records_from_provision_doc,
    "deflection-checkpoint-bench/1": records_from_checkpoint_doc,
    "deflection-fleet/1": records_from_fleet_doc,
    "deflection-static/1": records_from_static_doc,
    "deflection-pipeline/1": records_from_pipeline_doc,
}


def records_from_doc(doc: dict, commit: str = "unknown",
                     run_id: str = "", ts: Optional[float] = None,
                     executor_label: Optional[str] = None
                     ) -> List[Record]:
    """Dispatch a BENCH_* document to its ingest builder and stamp the
    run metadata onto every resulting record."""
    schema = doc.get("schema")
    ingest = _INGESTERS.get(schema)
    if ingest is None:
        raise StoreError(f"cannot ingest document schema {schema!r}")
    if ingest is records_from_vm_doc:
        records = records_from_vm_doc(doc, executor_label=executor_label)
    else:
        records = ingest(doc)
    return stamp_run(records, commit, run_id=run_id, ts=ts)


def ingest_document(store: ResultsStore, doc: dict,
                    commit: str = "unknown",
                    executor_label: Optional[str] = None) -> int:
    """Append every cell of ``doc`` to ``store``; returns the count."""
    return store.append(records_from_doc(
        doc, commit=commit, executor_label=executor_label))
