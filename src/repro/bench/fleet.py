"""Fleet throughput/latency benchmark (``repro bench --fleet``).

Drives a :class:`~repro.service.scheduler.FleetScheduler` through a
**seeded open-loop arrival process**: session jobs arrive at
exponentially distributed inter-arrival ticks *regardless of how the
fleet is keeping up* (the arrival clock never waits for completions —
that is what makes the latency percentiles honest under overload;
admission control is what sheds the excess, typed).  The job mix is
mostly short checksum sessions plus every ``long_every``-th a long
checkpointed job run under a preemption quantum, and every drone
starts with a one-shot mid-run kill armed — so the first long job
dispatched provably dies mid-flight, its platform gets a fresh EINIT,
and the sealed chain resumes on the *new* instance: the campaign
always exercises at least one checkpoint migration, and the bench
verifies the migrated session's output byte-for-byte against the
analytic expectation.

Two metric families, split exactly as the results store expects:

* **deterministic** (zero noise band): session counts, shed counts,
  supervision-tick latency percentiles, migration/zero-lost booleans,
  scheduler counters — all pure functions of the seed;
* **wall clock** (advisory band): total wall time, seconds per
  completed session, and wall-scaled latency percentiles.

``sessions_per_sec`` is reported in the document for humans but the
*stored* throughput metric is its reciprocal ``sec_per_session`` —
every numeric store metric is lower-is-better by contract.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional

from ..errors import AdmissionRejected
from ..service.faults import (
    CAMPAIGN_SRC, FLEET_LONG_ROUNDS, FLEET_LONG_SRC,
)
from ..service.fleet import build_fleet
from ..service.scheduler import FleetScheduler, SessionJob

#: Bench document schema tag.
SCHEMA = "deflection-fleet/1"


def _arrival_ticks(rng: random.Random, sessions: int,
                   mean_ticks: float) -> List[int]:
    """Open-loop arrival schedule: cumulative exponential gaps."""
    clock = 0.0
    ticks = []
    for _ in range(sessions):
        clock += rng.expovariate(1.0 / mean_ticks)
        ticks.append(int(clock))
    return ticks


def run_fleet_bench(seed: int = 2021, *,
                    drones: int = 4,
                    sessions: int = 32,
                    tenants: int = 4,
                    arrival_mean_ticks: float = 1.5,
                    long_every: int = 4,
                    checkpoint_every: int = 200,
                    quantum_steps: int = 4000,
                    kill_after_steps: int = 600,
                    tenant_quota: int = 4,
                    max_queue: int = 16,
                    max_ticks: int = 400) -> dict:
    """Run one seeded open-loop fleet campaign; JSON-ready document."""
    fleet = build_fleet(drones)
    scheduler = FleetScheduler(fleet, seed=seed,
                               tenant_quota=tenant_quota,
                               max_queue=max_queue)
    for drone in fleet:
        drone.host.arm_kill(kill_after_steps)
    rng = random.Random(f"fleet-bench:{seed}")
    arrivals = _arrival_ticks(rng, sessions, arrival_mean_ticks)
    expected: Dict[str, int] = {}
    pending_jobs = []
    for index, tick in enumerate(arrivals):
        tenant = f"tenant-{index % tenants}"
        data = bytes((seed + 7 * index + k) % 251
                     for k in range(8 + index % 7))
        long = index % long_every == long_every - 1
        job = SessionJob(
            f"s{index:03d}", tenant,
            FLEET_LONG_SRC if long else CAMPAIGN_SRC, data,
            priority=1 if long else 5,
            checkpoint_every=checkpoint_every if long else None,
            quantum_steps=quantum_steps if long else None)
        expected[job.job_id] = (FLEET_LONG_ROUNDS if long else 1) \
            * sum(data)
        pending_jobs.append((tick, job))

    began = time.perf_counter()
    cursor = 0
    while cursor < len(pending_jobs) or scheduler.pending:
        if scheduler.tick_now >= max_ticks:
            break
        while cursor < len(pending_jobs) and \
                pending_jobs[cursor][0] <= scheduler.tick_now:
            try:
                scheduler.submit(pending_jobs[cursor][1])
            except AdmissionRejected:
                pass   # typed + already recorded by the scheduler
            cursor += 1
        scheduler.tick()
    wall_s = time.perf_counter() - began

    # -- verify every completed session against the analytic result --
    corrupt: List[str] = []
    for job in scheduler.jobs.values():
        if job.state != "done" or not job.outcome.ok:
            continue
        want = expected[job.job_id]
        if job.outcome.reports != [want] or \
                job.plaintexts != [bytes([want % 256])]:
            corrupt.append(job.job_id)
    report = scheduler.report()
    counters = report["counters"]
    lost = report["lost"]
    completed = counters["completed"]
    migrated_jobs = report["migrated_jobs"]
    migration_check = None
    if migrated_jobs:
        first = migrated_jobs[0]
        migration_check = {
            **first,
            "outputs_match": first["job_id"] not in corrupt,
        }
    latency = report["latency_ticks"]
    ticks = report["ticks"]
    tick_s = wall_s / ticks if ticks else 0.0
    status = "ok"
    if corrupt:
        status = "corrupt"
    elif lost:
        status = "lost-sessions"
    elif not migrated_jobs:
        status = "no-migration"
    return {
        "schema": SCHEMA,
        "seed": seed,
        "status": status,
        "drones": drones,
        "sessions": sessions,
        "tenants": tenants,
        "arrival_mean_ticks": arrival_mean_ticks,
        "ticks": ticks,
        "counters": counters,
        "lost": lost,
        "corrupt": corrupt,
        "zero_lost": not lost,
        "shed": report["shed"],
        "latency_ticks": latency,
        "latency_s": {"p50": latency["p50"] * tick_s,
                      "p99": latency["p99"] * tick_s},
        "wall_s": wall_s,
        "sessions_per_sec": completed / wall_s if wall_s else 0.0,
        "sec_per_session": wall_s / completed if completed else 0.0,
        "migration_check": migration_check,
        "migrated_jobs": migrated_jobs,
        "tenants_stats": report["tenants"],
        "stats": report["stats"],
        "drones_detail": report["drones"],
    }


def smoke_params() -> dict:
    """Small-pool parameters for the CI ``fleet-smoke`` job."""
    return {"drones": 3, "sessions": 10, "tenants": 3,
            "long_every": 3, "max_queue": 12, "tenant_quota": 3}


def format_fleet_table(doc: dict) -> str:
    """Human-oriented summary table of a fleet bench document."""
    from .tables import format_table
    counters = doc["counters"]
    lt = doc["latency_ticks"]
    rows = [
        ["sessions submitted", str(doc["sessions"])],
        ["admitted / completed",
         f"{counters['admitted']} / {counters['completed']}"],
        ["shed (typed)", str(counters["shed"])],
        ["lost", str(len(doc["lost"]))],
        ["migrations", str(counters["migrations"])],
        ["preemptions", str(counters["preemptions"])],
        ["replacements / quarantines",
         f"{counters['replacements']} / {counters['quarantines']}"],
        ["rollbacks rejected",
         str(doc["stats"]["rollbacks_rejected"])],
        ["latency ticks p50/p99",
         f"{lt['p50']:g} / {lt['p99']:g}"],
        ["sessions/sec", f"{doc['sessions_per_sec']:.1f}"],
        ["wall", f"{doc['wall_s']:.2f}s over {doc['ticks']} ticks"],
    ]
    title = (f"fleet bench (seed {doc['seed']}, {doc['drones']} drones"
             f", status {doc['status']})")
    return format_table(title, ["metric", "value"], rows)
