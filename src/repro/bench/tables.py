"""Plain-text table/figure rendering for benchmark output."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def percent(value: float, signed: bool = True) -> str:
    sign = "+" if signed and value >= 0 else ""
    return f"{sign}{value:.1f}%"


def format_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned monospace table with a title rule."""
    rendered: List[List[str]] = [[str(cell) for cell in row]
                                 for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    # Joined rows are sum(widths) plus a two-space gap per boundary
    # (one fewer than the column count), and the rule must match.
    row_width = sum(widths) + 2 * (len(widths) - 1)
    lines = [title, "=" * max(len(title), row_width)]
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i]
                           for i in range(len(headers))))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(title: str, x_label: str, xs: Sequence[object],
                  series: dict) -> str:
    """Render figure-style data: one row per x, one column per series."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(title, headers, rows)
