"""Regression gates over the continuous results store.

Given the ordered record stream from
:class:`~repro.bench.store.ResultsStore`, the gate compares each
cell's **latest** observation against its **rolling baseline** — the
median of the last ``window`` accepted (status ``ok``) runs of the
same key — and classifies every metric:

``improved``
    below the baseline by more than the noise band (all store metrics
    are lower-is-better; booleans are good-is-true);
``flat``
    within the band;
``regressed``
    above the baseline by more than the band;
``new``
    no accepted history for this key/metric — nothing to compare, the
    observation simply seeds the baseline for the next run.

Noise bands are per metric *class*, not per cell: deterministic
metrics (cycle accounts, step counts, AEX counts, byte sizes,
booleans) carry a **zero band** — the simulation is deterministic, so
any drift is a real behavioural change and gates hard — while
wall-clock metrics carry a configurable percentage band and are
**advisory** by default (classified and reported, but only failing
the gate under ``gate_wall=True``): CI runners are too noisy for
wall-clock to block merges, yet the trajectory still gets recorded
and rendered.

A latest observation whose status is not ``ok`` is itself a gate
failure (metric ``status``), regardless of history: the store must
never quietly carry a failing cell forward.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .store import CellKey, Record
from .tables import format_table

#: Default rolling-baseline window (accepted runs per cell).
DEFAULT_WINDOW = 5

#: Default wall-clock noise band, percent.
DEFAULT_WALL_BAND = 25.0

#: Wall-clock metric names (exact), plus the ``@``-suffixed families
#: checked by :func:`is_wall_metric`.  Everything else in the store is
#: deterministic and gates with a zero band.
_WALL_METRICS = {"wall_s", "plain_wall_s", "legacy_cold_ms",
                 "new_cold_ms", "warm_ms", "sec_per_session",
                 "p50_s", "p99_s", "records_per_s", "chunk_p99_s"}
_WALL_PREFIXES = ("overhead_pct@",)

#: The store's numeric contract is lower-is-better, and every producer
#: so far honoured it by storing reciprocals (``sec_per_session``).
#: The pipeline bench stores throughput directly, so the gate inverts
#: the comparison sense for exactly these metrics: *dropping* below
#: the baseline band is the regression.
_HIGHER_IS_BETTER = {"records_per_s"}


def is_wall_metric(name: str) -> bool:
    return name in _WALL_METRICS or name.startswith(_WALL_PREFIXES)


def rolling_baseline(values: Sequence[float],
                     window: int = DEFAULT_WINDOW) -> float:
    """Median of the last ``window`` values (history order)."""
    tail = sorted(values[-window:])
    n = len(tail)
    mid = n // 2
    if n % 2:
        return tail[mid]
    return (tail[mid - 1] + tail[mid]) / 2.0


@dataclass
class Delta:
    """One (cell, metric) comparison against the rolling baseline."""

    key: CellKey
    metric: str
    current: Optional[float]
    baseline: Optional[float] = None
    delta_pct: Optional[float] = None
    classification: str = "flat"   # improved | flat | regressed | new
    #: True when a ``regressed`` classification fails the gate
    #: (deterministic metrics, or wall metrics under ``gate_wall``).
    gating: bool = True
    detail: str = ""

    @property
    def blocking(self) -> bool:
        return self.classification == "regressed" and self.gating


@dataclass
class GateReport:
    """Every delta of a gate evaluation plus the verdict."""

    deltas: List[Delta] = field(default_factory=list)
    window: int = DEFAULT_WINDOW
    wall_band_pct: float = DEFAULT_WALL_BAND
    gate_wall: bool = False

    @property
    def regressions(self) -> List[Delta]:
        return [d for d in self.deltas if d.blocking]

    @property
    def advisories(self) -> List[Delta]:
        return [d for d in self.deltas
                if d.classification == "regressed" and not d.gating]

    @property
    def improvements(self) -> List[Delta]:
        return [d for d in self.deltas
                if d.classification == "improved"]

    @property
    def exit_code(self) -> int:
        return 1 if self.regressions else 0

    def counts(self) -> Dict[str, int]:
        counts = {"improved": 0, "flat": 0, "regressed": 0, "new": 0}
        for delta in self.deltas:
            counts[delta.classification] += 1
        return counts

    def render(self, verbose: bool = False) -> str:
        """``format_table`` delta report: regressions, advisories and
        improvements (all rows under ``verbose``), plus a summary."""
        shown = [d for d in self.deltas
                 if verbose or d.classification in ("regressed",
                                                    "improved")]
        lines = []
        if shown:
            def fmt(value):
                if value is None:
                    return "-"
                if isinstance(value, bool):
                    return "yes" if value else "NO"
                if abs(value) >= 1000:
                    return f"{value:,.0f}"
                return f"{value:.4g}"

            rows = [[d.key.label(), d.metric, fmt(d.baseline),
                     fmt(d.current),
                     "-" if d.delta_pct is None
                     else f"{d.delta_pct:+.2f}%",
                     d.classification
                     + ("" if d.gating or d.classification != "regressed"
                        else " (advisory)")]
                    for d in shown]
            lines.append(format_table(
                f"bench gate (baseline = median of last "
                f"{self.window} accepted runs, wall band "
                f"±{self.wall_band_pct:g}%)",
                ["cell", "metric", "baseline", "current", "delta",
                 "class"], rows))
        counts = self.counts()
        lines.append(
            f"gate: {len(self.regressions)} regressed (blocking), "
            f"{len(self.advisories)} advisory, "
            f"{counts['improved']} improved, {counts['flat']} flat, "
            f"{counts['new']} new")
        return "\n".join(lines)


def classify(metric: str, current, baseline,
             wall_band_pct: float = DEFAULT_WALL_BAND) -> Delta:
    """Classify one metric value against its baseline.

    Numeric store metrics are lower-is-better (except the explicit
    :data:`_HIGHER_IS_BETTER` set, where the sense inverts but the
    reported ``delta_pct`` stays the raw signed change); booleans are
    good-is-true.  The baseline of a boolean series is its median as
    0/1, so one historical flake does not flip the expectation.
    """
    band = wall_band_pct if is_wall_metric(metric) else 0.0
    if isinstance(current, bool):
        expected = baseline >= 0.5
        if current and not expected:
            cls = "improved"
        elif not current and expected:
            cls = "regressed"
        elif not current:        # broken, and was already broken
            cls = "regressed"
        else:
            cls = "flat"
        return Delta(key=None, metric=metric, current=current,
                     baseline=expected, classification=cls,
                     gating=True)
    inverted = metric in _HIGHER_IS_BETTER
    if baseline == 0:
        if current == 0:
            cls, pct = "flat", 0.0
        else:
            worse = current > 0
            if inverted:
                worse = not worse
            cls, pct = ("regressed" if worse else "improved"), None
    else:
        pct = 100.0 * (current - baseline) / baseline
        if pct > band:
            cls = "improved" if inverted else "regressed"
        elif pct < -band:
            cls = "regressed" if inverted else "improved"
        else:
            cls = "flat"
    return Delta(key=None, metric=metric, current=current,
                 baseline=baseline, delta_pct=pct, classification=cls,
                 gating=band == 0.0)


def evaluate(records: Sequence[Record],
             window: int = DEFAULT_WINDOW,
             wall_band_pct: float = DEFAULT_WALL_BAND,
             gate_wall: bool = False,
             kinds: Optional[Sequence[str]] = None) -> GateReport:
    """Gate the latest observation of every cell against its rolling
    baseline.  ``records`` must be in history (file) order; ``kinds``
    restricts the evaluation to some record kinds."""
    report = GateReport(window=window, wall_band_pct=wall_band_pct,
                        gate_wall=gate_wall)
    by_key: Dict[CellKey, List[Record]] = {}
    for record in records:
        if kinds and record.key.kind not in kinds:
            continue
        by_key.setdefault(record.key, []).append(record)

    for key, history in by_key.items():
        latest = history[-1]
        prior = [r for r in history[:-1] if r.accepted]
        if not latest.accepted:
            report.deltas.append(Delta(
                key=key, metric="status", current=None,
                classification="regressed", gating=True,
                detail=f"{latest.status}: {latest.detail}"))
            continue
        for metric, current in latest.metrics.items():
            values = [r.metrics[metric] for r in prior[-window:]
                      if metric in r.metrics]
            if not values:
                report.deltas.append(Delta(
                    key=key, metric=metric, current=current,
                    classification="new", gating=False))
                continue
            baseline = rolling_baseline(
                [float(v) for v in values], window)
            delta = classify(metric, current, baseline,
                             wall_band_pct=wall_band_pct)
            delta.key = key
            if not delta.gating and gate_wall:
                delta.gating = True
            report.deltas.append(delta)
    return report


def inject_synthetic_regression(records: Sequence[Record],
                                pct: float) -> List[Record]:
    """Self-test fixture for the gate plumbing: append a synthetic run
    that degrades every numeric metric of each cell's latest accepted
    observation by ``pct`` percent (booleans and statuses untouched).
    Used by tests and the CI ``bench-gate`` job to prove the gate
    actually fires — the store file itself is never modified."""
    latest: Dict[CellKey, Record] = {}
    for record in records:
        if record.accepted:
            latest[record.key] = record
    scaled = []
    for key, record in latest.items():
        metrics = {name: (value if isinstance(value, bool)
                          else value * (1.0 + pct / 100.0))
                   for name, value in record.metrics.items()}
        scaled.append(Record(key=key, metrics=metrics, status="ok",
                             commit=record.commit,
                             run_id=record.run_id + "-synthetic",
                             ts=record.ts))
    return list(records) + scaled
