"""Checkpoint/restore benchmark: resume equivalence + sealing cost.

Two questions, answered per workload over the full registry:

* **Equivalence** — does a run that is torn down at a safe point and
  resumed from its sealed chain produce a byte-identical outcome
  (status, reports, plaintext *and* wire records, cycle account) to the
  uninterrupted run?  Interrupt points are seeded per workload, so the
  sweep is a deterministic property test, not a lucky sample.  Each
  equivalence cell also re-presents the stale ``n-1`` chain and demands
  a :class:`~repro.errors.RollbackError` — an accepted rollback is a
  benchmark *failure*, not a statistic.

* **Overhead** — what does sealing cost?  Each workload runs plain and
  then once per ``checkpoint_every`` setting; the checkpointed runs
  must stay byte-identical while wall-clock overhead, checkpoint count
  and total sealed bytes are recorded.

Small parameters keep the 15-workload sweep interactive; the overhead
*ratios* are what the experiment reports, and those are governed by the
checkpoint interval, not the absolute run length.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.bootstrap import BootstrapEnclave, ProvisionCache, RunOutcome
from ..errors import EnclaveTeardown, ReproError, RollbackError
from ..policy.policies import PolicySet
from ..vm.interrupts import AexSchedule
from ..workloads import get_workload
from .harness import compile_workload

#: Registry parameters small enough for an interactive full sweep.
SMALL_PARAMS = {
    "numeric_sort": 60, "string_sort": 16, "bitfield": 300,
    "fp_emulation": 30, "fourier": 3, "assignment": 2, "idea": 12,
    "huffman": 40, "neural_net": 1, "lu_decomposition": 1,
    "sequence_alignment": 24, "sequence_generation": 600,
    "credit_scoring": 40, "https_handler": 512, "image_filter": 12,
}

#: Checkpoint intervals (instructions) swept by the overhead half.
CHECKPOINT_EVERY = (100, 400, 1600)

#: Fractions of the plain run's step count where the equivalence half
#: injects a teardown (each drawn point is perturbed by a seeded
#: offset, so successive sweeps with different seeds probe different
#: safe points).
INTERRUPT_FRACTIONS = (0.35, 0.8)

#: AEX cadence used by every run in a cell — short enough that most
#: cells take asynchronous exits on *both* sides of the interrupt, so
#: equivalence also covers the checkpointed interrupt-schedule state.
AEX_INTERVAL = 2_000

#: P6 AEX-storm threshold for the bench enclaves.  The cadence above
#: is benign load, not an attack; the default threshold would trip on
#: any run past ~20k instructions and silently truncate the sweep.
AEX_THRESHOLD = 100_000


def outcome_fingerprint(outcome: RunOutcome) -> tuple:
    """Everything observable about a run except wall-clock bookkeeping.

    ``provision_stages`` (host timings), ``provision_cache_hits``,
    ``checkpoints_taken`` and ``resumed_at_step`` legitimately differ
    between an interrupted and an uninterrupted run; everything here
    must not.
    """
    result = outcome.result
    return (
        outcome.status,
        outcome.violation_code,
        outcome.detail,
        tuple(outcome.reports),
        tuple(bytes(d) for d in outcome.sent_plaintext),
        tuple(bytes(d) for d in outcome.sent_wire),
        outcome.observable_cycles,
        (result.steps, result.cycles, result.rip, result.aex_events,
         result.return_value) if result else None,
    )


@dataclass
class OverheadPoint:
    """One (workload, checkpoint_every) overhead measurement."""

    checkpoint_every: int
    wall_s: float
    checkpoints: int
    chain_bytes: int
    overhead_pct: float
    identical: bool

    def to_dict(self) -> dict:
        return {
            "checkpoint_every": self.checkpoint_every,
            "wall_s": round(self.wall_s, 6),
            "checkpoints": self.checkpoints,
            "chain_bytes": self.chain_bytes,
            "overhead_pct": round(self.overhead_pct, 2),
            "identical": self.identical,
        }


@dataclass
class ResumePoint:
    """One interrupted-and-resumed execution of a workload."""

    interrupt_step: int
    resumed_at_step: int
    chain_len: int
    identical: bool
    rollback_rejected: bool

    def to_dict(self) -> dict:
        return {
            "interrupt_step": self.interrupt_step,
            "resumed_at_step": self.resumed_at_step,
            "chain_len": self.chain_len,
            "identical": self.identical,
            "rollback_rejected": self.rollback_rejected,
        }


@dataclass
class CheckpointCell:
    """All checkpoint measurements for one workload."""

    workload: str
    param: int
    setting: str
    steps: int = 0
    plain_wall_s: float = 0.0
    overhead: List[OverheadPoint] = field(default_factory=list)
    resumes: List[ResumePoint] = field(default_factory=list)
    status: str = "ok"
    detail: str = ""

    @property
    def ok(self) -> bool:
        return (self.status == "ok"
                and all(p.identical for p in self.overhead)
                and all(r.identical and r.rollback_rejected
                        for r in self.resumes))

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "param": self.param,
            "setting": self.setting,
            "steps": self.steps,
            "plain_wall_s": round(self.plain_wall_s, 6),
            "overhead": [p.to_dict() for p in self.overhead],
            "resumes": [r.to_dict() for r in self.resumes],
            "status": self.status,
            "detail": self.detail,
        }


def _teardown_at(boot: BootstrapEnclave, at_step: int):
    """Interrupt callable: destroy the enclave at the first safe point
    at or past ``at_step`` — the host's view of a platform teardown."""
    def interrupt(cpu):
        if cpu.steps >= at_step:
            boot.enclave.destroy()
            raise EnclaveTeardown(
                f"bench teardown at safe point {cpu.steps}")
    return interrupt


class _Cell:
    """One workload's provision-once, run-many harness."""

    def __init__(self, name: str, setting: str, param: int,
                 cache: ProvisionCache):
        self.workload = get_workload(name)
        self.param = param
        self.blob = compile_workload(self.workload, setting, param)
        self.input = self.workload.input_bytes(param)
        self.policies = PolicySet.parse(setting)
        self.boot = BootstrapEnclave(policies=self.policies,
                                     aex_threshold=AEX_THRESHOLD,
                                     provision_cache=cache)
        self._provision()

    def _provision(self) -> None:
        self.boot.receive_binary(self.blob)
        if self.input:
            self.boot.receive_userdata(self.input)

    def recover(self) -> None:
        """Post-teardown host recovery: restart + re-provision."""
        self.boot.recover()
        self._provision()

    def run(self, **kwargs) -> Tuple[RunOutcome, float]:
        t0 = time.perf_counter()
        outcome = self.boot.run(aex_schedule=AexSchedule(AEX_INTERVAL),
                                **kwargs)
        return outcome, time.perf_counter() - t0

    def run_resume(self, blobs, **kwargs) -> Tuple[RunOutcome, float]:
        t0 = time.perf_counter()
        outcome = self.boot.resume(
            list(blobs), aex_schedule=AexSchedule(AEX_INTERVAL),
            **kwargs)
        return outcome, time.perf_counter() - t0


def measure_cell(name: str, setting: str, cache: ProvisionCache,
                 param: Optional[int] = None,
                 checkpoint_settings: Sequence[int] = CHECKPOINT_EVERY,
                 fractions: Sequence[float] = INTERRUPT_FRACTIONS,
                 seed: int = 2021) -> CheckpointCell:
    """All checkpoint measurements for one workload (non-raising)."""
    effective = param if param is not None else SMALL_PARAMS.get(
        name, get_workload(name).default_param)
    cell = CheckpointCell(workload=name, param=effective,
                          setting=setting)
    try:
        harness = _Cell(name, setting, effective, cache)
        plain, cell.plain_wall_s = harness.run()
        want = outcome_fingerprint(plain)
        cell.steps = plain.result.steps if plain.result else 0

        for every in checkpoint_settings:
            blobs: List[bytes] = []
            outcome, wall = harness.run(checkpoint_every=every,
                                        checkpoint_sink=blobs.append)
            cell.overhead.append(OverheadPoint(
                checkpoint_every=every,
                wall_s=wall,
                checkpoints=outcome.checkpoints_taken,
                chain_bytes=sum(len(b) for b in blobs),
                overhead_pct=(100.0 * (wall - cell.plain_wall_s)
                              / cell.plain_wall_s
                              if cell.plain_wall_s > 0 else 0.0),
                identical=outcome_fingerprint(outcome) == want))

        rng = random.Random(f"{seed}:{name}:{effective}")
        every = max(25, cell.steps // 40)
        for fraction in fractions:
            at = max(every, int(cell.steps * fraction)
                     + rng.randrange(2 * every))
            if at >= cell.steps:
                at = max(every, cell.steps // 2)
            blobs = []
            try:
                harness.run(checkpoint_every=every,
                            checkpoint_sink=blobs.append,
                            interrupt=_teardown_at(harness.boot, at))
                cell.status = "error"
                cell.detail = f"teardown at {at} never fired"
                break
            except EnclaveTeardown:
                pass
            harness.recover()
            resumed, _ = harness.run_resume(blobs,
                                            checkpoint_every=every)
            point = ResumePoint(
                interrupt_step=at,
                resumed_at_step=resumed.resumed_at_step or 0,
                chain_len=len(blobs),
                identical=outcome_fingerprint(resumed) == want,
                rollback_rejected=False)
            # The stale n-1 chain (a rollback replay) must fail closed.
            harness.boot.enclave.destroy()
            harness.recover()
            try:
                harness.boot.resume(list(blobs[:-1]),
                                    aex_schedule=AexSchedule(AEX_INTERVAL),
                                    checkpoint_every=every)
            except RollbackError:
                point.rollback_rejected = True
            cell.resumes.append(point)
    except ReproError as exc:
        cell.status = "error"
        cell.detail = f"{type(exc).__name__}: {exc}"
    return cell


@dataclass
class CheckpointMatrix:
    """The full sweep: one :class:`CheckpointCell` per workload."""

    cells: List[CheckpointCell]
    total_wall_s: float
    #: Interrupt-point seed the sweep ran under — recorded in the
    #: document so archived runs (and results-store records built from
    #: them) state which deterministic sweep they measured.
    seed: int = 2021

    @classmethod
    def collect(cls, workloads: Sequence[str], setting: str = "P1-P6",
                param: Optional[int] = None,
                checkpoint_settings: Sequence[int] = CHECKPOINT_EVERY,
                seed: int = 2021) -> "CheckpointMatrix":
        t0 = time.perf_counter()
        cache = ProvisionCache()
        cells = [measure_cell(name, setting, cache, param=param,
                              checkpoint_settings=checkpoint_settings,
                              seed=seed)
                 for name in workloads]
        return cls(cells=cells,
                   total_wall_s=time.perf_counter() - t0,
                   seed=seed)

    @property
    def failures(self) -> List[str]:
        return [c.workload for c in self.cells if not c.ok]

    @property
    def resume_mismatches(self) -> List[str]:
        return [c.workload for c in self.cells
                if any(not r.identical for r in c.resumes)]

    @property
    def rollbacks_accepted(self) -> List[str]:
        return [c.workload for c in self.cells
                if any(not r.rollback_rejected for r in c.resumes)]

    def mean_overhead_pct(self) -> Dict[int, float]:
        """Mean relative wall-clock overhead per checkpoint interval."""
        sums: Dict[int, List[float]] = {}
        for cell in self.cells:
            for point in cell.overhead:
                sums.setdefault(point.checkpoint_every,
                                []).append(point.overhead_pct)
        return {every: round(sum(vals) / len(vals), 2)
                for every, vals in sorted(sums.items())}

    def to_json(self) -> dict:
        return {
            "schema": "deflection-checkpoint-bench/1",
            "seed": self.seed,
            "setting": self.cells[0].setting if self.cells else "",
            "checkpoint_settings": [
                p.checkpoint_every
                for p in (self.cells[0].overhead if self.cells else [])],
            "cells": [c.to_dict() for c in self.cells],
            "totals": {
                "workloads": len(self.cells),
                "resume_points": sum(len(c.resumes)
                                     for c in self.cells),
                "resume_mismatches": self.resume_mismatches,
                "rollbacks_accepted": self.rollbacks_accepted,
                "failures": self.failures,
                "mean_overhead_pct": {
                    str(k): v
                    for k, v in self.mean_overhead_pct().items()},
                "total_wall_s": round(self.total_wall_s, 3),
            },
        }
