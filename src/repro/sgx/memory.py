"""Paged address space: ELRANGE plus untrusted outside memory.

The enclave's protected range is backed by one flat bytearray with a
permission byte per 4 KiB page.  Memory outside ELRANGE is demand-
allocated per page and is always readable and writable from enclave code
— but never executable while in enclave mode, matching SGX.

Every write that lands outside ELRANGE is logged in
:attr:`AddressSpace.untrusted_writes`; the attack-corpus tests use this
log to demonstrate that data actually leaks when P1 is switched off.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import MemoryFault

PAGE_SIZE = 4096
PAGE_SHIFT = 12

PERM_R = 1
PERM_W = 2
PERM_X = 4

_U64_MASK = (1 << 64) - 1


def perm_string(perms: int) -> str:
    return ("r" if perms & PERM_R else "-") + \
           ("w" if perms & PERM_W else "-") + \
           ("x" if perms & PERM_X else "-")


class AddressSpace:
    """Flat 64-bit address space with an SGX-style protected range."""

    def __init__(self, enclave_base: int, enclave_size: int):
        if enclave_base % PAGE_SIZE or enclave_size % PAGE_SIZE:
            raise ValueError("ELRANGE must be page aligned")
        self.enclave_base = enclave_base
        self.enclave_size = enclave_size
        self.enclave_end = enclave_base + enclave_size
        self._mem = bytearray(enclave_size)
        self._perms: List[int] = [0] * (enclave_size >> PAGE_SHIFT)
        #: Per-page fast-access masks consumed by the tier-2 translator:
        #: ``_rpage[i]`` is 1 iff page *i* is readable, ``_wpage[i]`` iff
        #: it is writable *and* outside the watched code range (so a
        #: fast-path store can skip the SMC check entirely).  Both are
        #: maintained in place — generated code bakes direct references —
        #: and are sound to bake because :meth:`seal` freezes page
        #: permissions for the life of the enclave (SGXv1 EINIT).
        #: Aligned 8-byte accesses never straddle pages, so one byte per
        #: page suffices.
        self._rpage = bytearray(enclave_size >> PAGE_SHIFT)
        self._wpage = bytearray(enclave_size >> PAGE_SHIFT)
        #: Native-order aligned u64 lane over the enclave backing store
        #: (the translator guards its use on a little-endian host).
        self._mem_q = memoryview(self._mem).cast("Q")
        self._sealed = False
        self._outside: Dict[int, bytearray] = {}
        #: (address, length) log of every store outside ELRANGE.
        self.untrusted_writes: List[Tuple[int, int]] = []
        #: Bumped whenever a store hits the watched code range, so the
        #: VM can invalidate its decoded-instruction cache.
        self.code_version = 0
        self._code_watch = (0, 0)
        #: Dirty-page tracking (checkpoint support).  When enabled,
        #: every write records the 4 KiB pages it touched: enclave
        #: pages as *page indices* (ELRANGE offset >> 12, matching the
        #: single shift the translator's fast-path stores emit) in
        #: :attr:`_dirty`, untrusted pages as absolute page-base
        #: addresses in :attr:`_dirty_outside`.  The two sets are
        #: cleared only via :meth:`drain_dirty`, and the set objects
        #: themselves are never replaced — the translator bakes direct
        #: references to them into generated code.
        self.dirty_tracking = False
        self._dirty = set()
        self._dirty_outside = set()
        #: Write-invalidation hooks: called as ``hook(addr, size)`` for
        #: every store that lands in the watched code range.  A hook that
        #: returns ``False`` is dropped (lets block caches register via
        #: weakref and self-unregister once their CPU is gone).
        self._code_write_hooks = []

    # -- configuration -------------------------------------------------

    def in_enclave(self, addr: int, size: int = 1) -> bool:
        return self.enclave_base <= addr and \
            addr + size <= self.enclave_end

    def set_page_perms(self, addr: int, size: int, perms: int) -> None:
        """Set permissions on enclave pages (only before :meth:`seal`)."""
        if self._sealed:
            raise MemoryFault("page permissions are sealed (SGXv1)", addr)
        if not self.in_enclave(addr, max(size, 1)):
            raise MemoryFault("perms outside ELRANGE", addr)
        if addr % PAGE_SIZE or size % PAGE_SIZE:
            raise MemoryFault("perms must be page aligned", addr)
        first = (addr - self.enclave_base) >> PAGE_SHIFT
        for i in range(first, first + (size >> PAGE_SHIFT)):
            self._perms[i] = perms
        self._refresh_page_masks()

    def _refresh_page_masks(self) -> None:
        """Recompute the per-page fast-access masks *in place*."""
        lo, hi = self._code_watch
        base = self.enclave_base
        for i, perms in enumerate(self._perms):
            self._rpage[i] = 1 if perms & PERM_R else 0
            pstart = base + (i << PAGE_SHIFT)
            watched = lo < pstart + PAGE_SIZE and pstart < hi
            self._wpage[i] = 1 if perms & PERM_W and not watched else 0

    def seal(self) -> None:
        """Freeze page permissions — models EINIT under SGXv1."""
        self._sealed = True

    @property
    def sealed(self) -> bool:
        return self._sealed

    def page_perms(self, addr: int) -> int:
        if self.in_enclave(addr):
            return self._perms[(addr - self.enclave_base) >> PAGE_SHIFT]
        return PERM_R | PERM_W  # untrusted memory: RW, never X in enclave

    def watch_code_range(self, start: int, size: int) -> None:
        """Invalidate the VM's icache when stores hit [start, start+size)."""
        self._code_watch = (start, start + size)
        self._refresh_page_masks()

    def add_code_write_hook(self, hook) -> None:
        """Register ``hook(addr, size)`` for stores into the watched
        code range (the translator's block-invalidation protocol)."""
        self._code_write_hooks.append(hook)

    def invalidate_code_range(self, addr: int, size: int) -> None:
        """Force code-cache invalidation for [addr, addr+size) without
        writing any bytes — the fault injector's SMC chaos knob and the
        hypervisor's post-restore flush both use this to exercise the
        translator's invalidation protocol on demand."""
        self.code_version += 1
        if self._code_write_hooks:
            self._code_write_hooks = [
                h for h in self._code_write_hooks
                if h(addr, max(size, 1)) is not False]

    # -- dirty-page tracking (incremental checkpoints) ------------------

    def track_dirty(self, enabled: bool = True) -> None:
        """Switch dirty-page tracking on (or off).

        Must be enabled *before* any CPU whose translated blocks should
        record their fast-path stores is created: the translator bakes
        the tracking decision into generated code at compile time."""
        self.dirty_tracking = enabled

    def _mark_dirty(self, addr: int, size: int) -> None:
        first = (addr - self.enclave_base) >> PAGE_SHIFT
        last = (addr + max(size, 1) - 1 - self.enclave_base) >> PAGE_SHIFT
        for index in range(first, last + 1):
            self._dirty.add(index)

    def drain_dirty(self):
        """Return ``(enclave_page_indices, outside_page_addrs)``
        dirtied since the last drain (frozen sets) and reset the
        tracking sets *in place* (baked references stay live)."""
        dirty = frozenset(self._dirty)
        outside = frozenset(self._dirty_outside)
        self._dirty.clear()
        self._dirty_outside.clear()
        return dirty, outside

    def snapshot_ram(self) -> bytes:
        """Copy of the full enclave image (text + data + stack).

        Paired with :meth:`restore_ram` for warm re-runs: permissions,
        page masks and ``code_version`` are deliberately *not* part of
        the snapshot — restoring the same bytes under the same
        permissions leaves every translated block valid, which is the
        point."""
        return bytes(self._mem)

    def restore_ram(self, image: bytes) -> None:
        """Restore an image taken by :meth:`snapshot_ram` in place.

        In-place so live ``memoryview``/closure references into the
        buffer (the translator's fast paths) stay valid."""
        if len(image) != len(self._mem):
            raise ValueError("snapshot size mismatch")
        self._mem[:] = image
        self._dirty.clear()
        self._dirty_outside.clear()

    # -- raw access (loader / bootstrap use; no permission checks) -----

    def write_raw(self, addr: int, data: bytes) -> None:
        """Privileged write used by the loader before the enclave runs."""
        if self.in_enclave(addr, len(data)):
            off = addr - self.enclave_base
            self._mem[off:off + len(data)] = data
            if self.dirty_tracking:
                self._mark_dirty(addr, len(data))
        else:
            if self.dirty_tracking and data:
                for i in range(0, len(data) + (addr & (PAGE_SIZE - 1)),
                               PAGE_SIZE):
                    self._dirty_outside.add(
                        (addr + i) & ~(PAGE_SIZE - 1))
            for i, b in enumerate(data):
                self._store_outside_u8(addr + i, b)

    def read_raw(self, addr: int, size: int) -> bytes:
        if self.in_enclave(addr, size):
            off = addr - self.enclave_base
            return bytes(self._mem[off:off + size])
        return bytes(self._load_outside_u8(addr + i) for i in range(size))

    # -- untrusted page helpers ----------------------------------------

    def _outside_page(self, addr: int) -> bytearray:
        page_addr = addr & ~(PAGE_SIZE - 1)
        page = self._outside.get(page_addr)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._outside[page_addr] = page
        return page

    def _load_outside_u8(self, addr: int) -> int:
        return self._outside_page(addr)[addr & (PAGE_SIZE - 1)]

    def _store_outside_u8(self, addr: int, value: int) -> None:
        self._outside_page(addr)[addr & (PAGE_SIZE - 1)] = value & 0xFF

    # -- checked access (the VM's data path) ----------------------------

    def _check(self, addr: int, size: int, perm: int, what: str) -> None:
        if addr < self.enclave_base or addr + size > self.enclave_end:
            # straddling the boundary is a fault; fully outside is RW
            if addr + size > self.enclave_base and addr < self.enclave_end:
                raise MemoryFault(f"{what} straddles ELRANGE boundary", addr)
            if perm & PERM_X:
                raise MemoryFault(
                    f"{what}: execute outside ELRANGE in enclave mode", addr)
            return
        first = (addr - self.enclave_base) >> PAGE_SHIFT
        last = (addr + size - 1 - self.enclave_base) >> PAGE_SHIFT
        for i in range(first, last + 1):
            if self._perms[i] & perm != perm:
                raise MemoryFault(
                    f"{what} at {addr:#x}: page perms "
                    f"{perm_string(self._perms[i])}", addr)

    def load(self, addr: int, size: int) -> int:
        """Load ``size`` bytes little-endian with R permission check."""
        self._check(addr, size, PERM_R, "load")
        if self.in_enclave(addr, size):
            off = addr - self.enclave_base
            return int.from_bytes(self._mem[off:off + size], "little")
        value = 0
        for i in range(size):
            value |= self._load_outside_u8(addr + i) << (8 * i)
        return value

    def store(self, addr: int, value: int, size: int) -> None:
        """Store ``size`` bytes little-endian with W permission check."""
        self._check(addr, size, PERM_W, "store")
        if self.in_enclave(addr, size):
            off = addr - self.enclave_base
            self._mem[off:off + size] = (value & ((1 << (8 * size)) - 1)) \
                .to_bytes(size, "little")
            if self.dirty_tracking:
                self._mark_dirty(addr, size)
            lo, hi = self._code_watch
            if lo < addr + size and addr < hi:
                self.code_version += 1
                if self._code_write_hooks:
                    self._code_write_hooks = [
                        h for h in self._code_write_hooks
                        if h(addr, size) is not False]
        else:
            self.untrusted_writes.append((addr, size))
            if self.dirty_tracking:
                self._dirty_outside.add(addr & ~(PAGE_SIZE - 1))
                self._dirty_outside.add(
                    (addr + size - 1) & ~(PAGE_SIZE - 1))
            for i in range(size):
                self._store_outside_u8(addr + i, (value >> (8 * i)) & 0xFF)

    def load_u64(self, addr: int) -> int:
        return self.load(addr, 8)

    def store_u64(self, addr: int, value: int) -> None:
        self.store(addr, value & _U64_MASK, 8)

    def load_u8(self, addr: int) -> int:
        return self.load(addr, 1)

    def store_u8(self, addr: int, value: int) -> None:
        self.store(addr, value & 0xFF, 1)

    def fetch(self, addr: int, size: int) -> memoryview:
        """Instruction fetch: X permission required, enclave only."""
        self._check(addr, size, PERM_X, "fetch")
        off = addr - self.enclave_base
        return memoryview(self._mem)[off:off + size]

    def check_exec(self, addr: int, size: int) -> None:
        """Raise unless all of [addr, addr+size) is executable."""
        self._check(addr, size, PERM_X, "fetch")

    def read_page(self, page_addr: int) -> bytes:
        """Whole-page read for checkpointing (enclave or untrusted)."""
        if page_addr & (PAGE_SIZE - 1):
            raise MemoryFault("page read must be aligned", page_addr)
        if self.in_enclave(page_addr, PAGE_SIZE):
            off = page_addr - self.enclave_base
            return bytes(self._mem[off:off + PAGE_SIZE])
        return bytes(self._outside_page(page_addr))

    def write_page(self, page_addr: int, data: bytes) -> None:
        """Whole-page restore for checkpointing (privileged path)."""
        if page_addr & (PAGE_SIZE - 1) or len(data) != PAGE_SIZE:
            raise MemoryFault("page write must be one aligned page",
                              page_addr)
        if self.in_enclave(page_addr, PAGE_SIZE):
            off = page_addr - self.enclave_base
            self._mem[off:off + PAGE_SIZE] = data
            if self.dirty_tracking:
                self._dirty.add(off >> PAGE_SHIFT)
            lo, hi = self._code_watch
            if lo < page_addr + PAGE_SIZE and page_addr < hi:
                self.code_version += 1
                if self._code_write_hooks:
                    self._code_write_hooks = [
                        h for h in self._code_write_hooks
                        if h(page_addr, PAGE_SIZE) is not False]
        else:
            self._outside_page(page_addr)[:] = data
            if self.dirty_tracking:
                self._dirty_outside.add(page_addr)

    def enclave_view(self) -> memoryview:
        """Zero-copy view of the whole ELRANGE backing store.

        The VM decodes instructions straight out of this view (after
        permission checks) so fetch does not copy bytes per instruction.
        """
        return memoryview(self._mem)
