"""Simulated Intel SGX substrate.

Models the pieces of SGX that DEFLECTION's design depends on:

* an ELRANGE with per-page R/W/X permissions that are *sealed* at EINIT
  (SGXv1 cannot change page permissions at runtime — the reason target
  code must live on RWX pages and software DEP is needed);
* memory **outside** ELRANGE that enclave code can freely read and write
  (SGX does not stop an enclave writing out — that is the leak P1 exists
  to prevent) but never execute;
* AEX events that dump the register file into the SSA, destroying any
  marker the HyperRace instrumentation placed there;
* enclave measurement (MRENCLAVE), local reports and remote-attestation
  quotes verified through a simulated attestation service.
"""

from .memory import PAGE_SIZE, PERM_R, PERM_W, PERM_X, AddressSpace
from .layout import EnclaveConfig, EnclaveLayout, Region
from .enclave import Enclave
from .quote import Report, Quote, PlatformKey
from .attestation import AttestationService, AttestationReport

__all__ = [
    "PAGE_SIZE", "PERM_R", "PERM_W", "PERM_X", "AddressSpace",
    "EnclaveConfig", "EnclaveLayout", "Region", "Enclave",
    "Report", "Quote", "PlatformKey",
    "AttestationService", "AttestationReport",
]
