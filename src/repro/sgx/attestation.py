"""Simulated attestation service (the paper's IAS).

Platforms provision their attestation public keys; remote parties submit
quotes; the service checks the platform signature and returns an
*attestation report* signed with the service's own well-known key —
exactly the flow of §V-B ("the remote data owner submits the quote to
IAS and obtains an attestation report").
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..errors import AttestationError, AttestationOutage
from ..crypto.sig import SigningKey, VerifyingKey
from .quote import Quote


@dataclass(frozen=True)
class AttestationReport:
    """IAS response: quote status plus the echoed report fields."""

    status: str
    mrenclave: bytes
    report_data: bytes
    signature: bytes

    def serialize(self) -> bytes:
        body = json.dumps({
            "status": self.status,
            "mrenclave": self.mrenclave.hex(),
            "report_data": self.report_data.hex(),
        }, sort_keys=True).encode()
        return len(body).to_bytes(4, "little") + body + self.signature

    @classmethod
    def parse(cls, data: bytes) -> "AttestationReport":
        length = int.from_bytes(data[:4], "little")
        body = data[4:4 + length]
        signature = data[4 + length:]
        fields = json.loads(body)
        return cls(fields["status"], bytes.fromhex(fields["mrenclave"]),
                   bytes.fromhex(fields["report_data"]), signature)

    def signed_body(self) -> bytes:
        return json.dumps({
            "status": self.status,
            "mrenclave": self.mrenclave.hex(),
            "report_data": self.report_data.hex(),
        }, sort_keys=True).encode()


class AttestationService:
    """Registry of trusted platforms + report signing."""

    def __init__(self, seed: bytes = b"ias-service"):
        self._key = SigningKey(seed)
        self._platforms = {}
        self._outage_remaining = 0

    @property
    def verifying_key(self) -> VerifyingKey:
        """The service's well-known report-signing public key."""
        return self._key.verifying_key

    def provision_platform(self, platform_id: bytes,
                           key: VerifyingKey) -> None:
        self._platforms[bytes(platform_id)] = key

    def schedule_outage(self, calls: int = 1) -> None:
        """Fail the next ``calls`` quote verifications with
        :class:`AttestationOutage` — a maintenance window / network
        partition model for resilience testing."""
        self._outage_remaining = max(0, int(calls))

    def verify_quote(self, quote_bytes: bytes) -> AttestationReport:
        """Verify a serialized quote and return a signed report."""
        if self._outage_remaining > 0:
            self._outage_remaining -= 1
            raise AttestationOutage(
                "attestation service unavailable (scheduled outage)")
        quote = Quote.parse(quote_bytes)
        platform_key = self._platforms.get(bytes(quote.platform_id))
        if platform_key is None:
            raise AttestationError("unknown platform")
        ok = platform_key.verify(quote.report.serialize(), quote.signature)
        status = "OK" if ok else "SIGNATURE_INVALID"
        report = AttestationReport(
            status=status,
            mrenclave=quote.report.mrenclave,
            report_data=quote.report.report_data,
            signature=b"")
        signature = self._key.sign(report.signed_body())
        return AttestationReport(report.status, report.mrenclave,
                                 report.report_data, signature)


def check_attestation_report(report: AttestationReport,
                             ias_key: VerifyingKey,
                             expected_mrenclave: bytes) -> None:
    """Client-side validation a data owner performs on an IAS report."""
    if not ias_key.verify(report.signed_body(), report.signature):
        raise AttestationError("attestation report signature invalid")
    if report.status != "OK":
        raise AttestationError(f"quote status {report.status}")
    if report.mrenclave != expected_mrenclave:
        raise AttestationError("MRENCLAVE mismatch: untrusted bootstrap")
