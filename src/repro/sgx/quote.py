"""Enclave reports and attestation quotes.

A :class:`Report` binds the enclave measurement (MRENCLAVE) to 64 bytes
of user data — the bootstrap enclave puts the hash of its ephemeral DH
public key there, binding the secure channel to the attested code, as
RA-TLS does.  A :class:`Quote` is a report signed by the platform's
attestation key (the role of the quoting enclave + EPID key on real SGX).
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import AttestationError
from ..crypto.sig import SigningKey, VerifyingKey

_MR_LEN = 32
_DATA_LEN = 64
_ATTR_LEN = 16


@dataclass(frozen=True)
class Report:
    """EREPORT-style structure."""

    mrenclave: bytes
    attributes: bytes = b"\x00" * _ATTR_LEN
    report_data: bytes = b"\x00" * _DATA_LEN

    def __post_init__(self):
        if len(self.mrenclave) != _MR_LEN:
            raise AttestationError("mrenclave must be 32 bytes")
        if len(self.attributes) != _ATTR_LEN:
            raise AttestationError("attributes must be 16 bytes")
        if len(self.report_data) != _DATA_LEN:
            raise AttestationError("report_data must be 64 bytes")

    def serialize(self) -> bytes:
        return b"RPRT" + self.mrenclave + self.attributes + self.report_data

    @classmethod
    def parse(cls, data: bytes) -> "Report":
        if len(data) != 4 + _MR_LEN + _ATTR_LEN + _DATA_LEN or \
                data[:4] != b"RPRT":
            raise AttestationError("malformed report")
        pos = 4
        mr = data[pos:pos + _MR_LEN]
        pos += _MR_LEN
        attrs = data[pos:pos + _ATTR_LEN]
        pos += _ATTR_LEN
        return cls(mr, attrs, data[pos:])


@dataclass(frozen=True)
class Quote:
    """A report signed by a platform attestation key."""

    report: Report
    platform_id: bytes
    signature: bytes

    def serialize(self) -> bytes:
        body = self.report.serialize()
        return b"QUOT" + struct.pack("<H", len(self.platform_id)) + \
            self.platform_id + struct.pack("<I", len(self.signature)) + \
            self.signature + body

    @classmethod
    def parse(cls, data: bytes) -> "Quote":
        if data[:4] != b"QUOT":
            raise AttestationError("malformed quote")
        pos = 4
        (pid_len,) = struct.unpack_from("<H", data, pos)
        pos += 2
        platform_id = data[pos:pos + pid_len]
        pos += pid_len
        (sig_len,) = struct.unpack_from("<I", data, pos)
        pos += 4
        signature = data[pos:pos + sig_len]
        pos += sig_len
        return cls(Report.parse(data[pos:]), platform_id, signature)


class PlatformKey:
    """The per-platform attestation key, provisioned to the AS.

    Also carries the two durable per-platform facilities a real CPU
    package provides and that survive enclave teardown: the sealing
    fuse (a secret only code on this platform can derive keys from)
    and monotonic counters (the rollback-protection primitive — read
    and bump only, never decrement)."""

    def __init__(self, seed: Optional[bytes] = None):
        self._key = SigningKey(seed)
        self.platform_id = hashlib.sha256(
            b"platform" + self._key.verifying_key.to_bytes()).digest()[:16]
        self._counters: Dict[bytes, int] = {}

    @property
    def verifying_key(self) -> VerifyingKey:
        return self._key.verifying_key

    def quote(self, report: Report) -> Quote:
        signature = self._key.sign(report.serialize())
        return Quote(report, self.platform_id, signature)

    # -- sealing + rollback protection ---------------------------------

    def seal_fuse(self, label: bytes = b"seal-fuse") -> bytes:
        """Per-platform sealing secret (models the SGX fuse key).

        Deterministic for a given platform, so an enclave rebuilt after
        teardown on the *same* platform re-derives the same sealing
        keys; a different platform (different attestation key) cannot.
        """
        return self._key.derive_secret(b"sgx-" + label)

    def counter_read(self, label: bytes) -> int:
        """Current value of the monotonic counter ``label`` (0 if never
        bumped)."""
        return self._counters.get(bytes(label), 0)

    def counter_bump(self, label: bytes) -> int:
        """Increment monotonic counter ``label`` and return the new
        value.  There is deliberately no way to decrement or reset."""
        value = self._counters.get(bytes(label), 0) + 1
        self._counters[bytes(label)] = value
        return value
