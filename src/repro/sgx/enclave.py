"""Enclave lifecycle: build, measure, initialize, ECall/OCall gates.

The measurement protocol mirrors SGX: an ECREATE record, an EADD record
per page-aligned region (address offset + permissions), and EEXTEND
records for measured content.  The bootstrap enclave extends its own
(public) implementation image, so two enclaves running the same consumer
code and layout produce the same MRENCLAVE — which is what the data
owner's attestation check pins.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Callable, Dict, Iterable

from ..errors import EnclaveError, EnclaveTeardown
from .layout import EnclaveConfig, EnclaveLayout
from .memory import AddressSpace
from .quote import PlatformKey, Quote, Report

_STATE_BUILDING = "building"
_STATE_INITIALIZED = "initialized"
_STATE_DESTROYED = "destroyed"


class Enclave:
    """One simulated enclave instance on one simulated platform."""

    def __init__(self, config: EnclaveConfig = None,
                 platform: PlatformKey = None):
        self.config = config or EnclaveConfig()
        self.platform = platform or PlatformKey(b"default-platform")
        self.layout = EnclaveLayout.build(self.config)
        self.space = AddressSpace(self.layout.base, self.layout.size)
        self.layout.apply(self.space)
        self._state = _STATE_BUILDING
        self._measurement = hashlib.sha256()
        self._measurement.update(
            b"ECREATE" + struct.pack("<QQ", self.layout.base,
                                     self.layout.size))
        for region in self.layout.regions.values():
            self._measurement.update(
                b"EADD" + struct.pack(
                    "<QQB", region.start - self.layout.base,
                    region.size, region.perms))
        self._mrenclave = b""
        self._ecalls: Dict[str, Callable] = {}
        self._ocalls: Dict[str, Callable] = {}
        #: Hardware AEX event counter (incremented by the VM).
        self.hw_aex_count = 0

    # -- build phase ------------------------------------------------------

    def extend(self, data: bytes) -> None:
        """EEXTEND: fold measured content into MRENCLAVE."""
        if self._state != _STATE_BUILDING:
            raise EnclaveError("extend after EINIT")
        self._measurement.update(b"EEXTEND" + hashlib.sha256(data).digest())

    def load_bootstrap_image(self, image: bytes) -> None:
        """Place and measure the public bootstrap implementation image."""
        region = self.layout.regions["bootstrap"]
        if len(image) > region.size:
            raise EnclaveError("bootstrap image exceeds its region")
        self.space.write_raw(region.start, image)
        self.extend(image)

    def einit(self) -> None:
        """Finalize measurement and seal page permissions (SGXv1)."""
        if self._state != _STATE_BUILDING:
            raise EnclaveError("EINIT twice")
        self._mrenclave = self._measurement.digest()
        self.space.seal()
        self._state = _STATE_INITIALIZED

    def destroy(self) -> None:
        """Tear the enclave down (EREMOVE: EPC reclaimed, power event,
        host kill).  All volatile state is lost; every further ECall
        raises :class:`EnclaveTeardown` until a fresh enclave is built
        and EINIT'd."""
        self._state = _STATE_DESTROYED

    @property
    def destroyed(self) -> bool:
        return self._state == _STATE_DESTROYED

    # -- identity ----------------------------------------------------------

    @property
    def mrenclave(self) -> bytes:
        if self._state == _STATE_DESTROYED:
            raise EnclaveTeardown("enclave torn down; re-EINIT required")
        if self._state != _STATE_INITIALIZED:
            raise EnclaveError("enclave not initialized")
        return self._mrenclave

    def create_report(self, report_data: bytes = b"") -> Report:
        data = report_data.ljust(64, b"\x00")
        if len(data) != 64:
            raise EnclaveError("report_data longer than 64 bytes")
        return Report(self.mrenclave, report_data=data)

    def get_quote(self, report_data: bytes = b"") -> Quote:
        return self.platform.quote(self.create_report(report_data))

    # -- ECall / OCall gates -------------------------------------------------

    def register_ecall(self, name: str, handler: Callable) -> None:
        """Define one entry in the EDL-style ECall table."""
        self._ecalls[name] = handler

    def register_ocall(self, name: str, handler: Callable) -> None:
        """Define one allowed OCall with its (wrapped) host handler."""
        self._ocalls[name] = handler

    @property
    def ecall_names(self) -> Iterable[str]:
        return tuple(sorted(self._ecalls))

    @property
    def ocall_names(self) -> Iterable[str]:
        return tuple(sorted(self._ocalls))

    def ecall(self, name: str, *args, **kwargs):
        """Enter the enclave through a defined ECall (P0 gate)."""
        if self._state == _STATE_DESTROYED:
            raise EnclaveTeardown(
                "ECall into a torn-down enclave; re-EINIT required")
        if self._state != _STATE_INITIALIZED:
            raise EnclaveError("ECall before EINIT")
        handler = self._ecalls.get(name)
        if handler is None:
            raise EnclaveError(f"undefined ECall {name!r} (P0)")
        return handler(*args, **kwargs)

    def ocall(self, name: str, *args, **kwargs):
        """Leave the enclave through a defined OCall (P0 gate)."""
        handler = self._ocalls.get(name)
        if handler is None:
            raise EnclaveError(f"OCall {name!r} not allowed by manifest (P0)")
        return handler(*args, **kwargs)
