"""Enclave memory layout used by the bootstrap enclave's loader.

Mirrors §V-B of the paper: a reserved shadow-stack area, an indirect-
branch-target area (here a byte map, one byte per code byte), RWX pages
for the dynamically loaded service binary (an SGXv1 constraint), guard
pages around every stack, and the SSA/TCS/TLS critical region that policy
P3 protects.

Region order (low to high addresses)::

    bootstrap | TCS/SSA/TLS | # | shadow stack | # | branch map |
    code (RWX) | # | stack | # | heap

``#`` are no-permission guard pages.  The *critical range* checked by the
P3 annotation spans from the TCS page up to the start of the code pages,
so it also covers the shadow stack and the branch map — loader-owned
structures that target code must never write (annotation code, which is
verified, is exempt).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..errors import LoaderError
from .memory import PAGE_SIZE, PERM_R, PERM_W, PERM_X, AddressSpace

#: Default ELRANGE base, far from null and from typical host addresses.
DEFAULT_ENCLAVE_BASE = 0x0000_7000_0000_0000


def _page_round(n: int) -> int:
    return (n + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)


@dataclass(frozen=True)
class EnclaveConfig:
    """Sizes (bytes) of the loader-managed enclave regions.

    Defaults are deliberately small — the simulator is exercised with
    kilobyte-scale binaries; benchmarks scale them up as needed.  The
    paper's defaults (96 MB enclave: 1 MB shadow stack, 1 MB branch
    targets, 28 MB code, 64 MB data) are available via
    :meth:`paper_scale`.
    """

    bootstrap_size: int = 48 * PAGE_SIZE
    code_size: int = 64 * PAGE_SIZE
    stack_size: int = 16 * PAGE_SIZE
    heap_size: int = 256 * PAGE_SIZE
    shadow_size: int = 16 * PAGE_SIZE
    base: int = DEFAULT_ENCLAVE_BASE
    #: TCS count: hardware threads the enclave admits (§VII extension).
    #: Each thread gets its own TCS/SSA/TLS pages, a stack slice and a
    #: shadow-stack slice.
    num_threads: int = 1

    @classmethod
    def paper_scale(cls) -> "EnclaveConfig":
        mb = 1024 * 1024
        return cls(bootstrap_size=2 * mb, code_size=28 * mb,
                   stack_size=4 * mb, heap_size=64 * mb, shadow_size=1 * mb)


@dataclass(frozen=True)
class Region:
    """One contiguous, page-aligned enclave region."""

    name: str
    start: int
    size: int
    perms: int

    @property
    def end(self) -> int:
        return self.start + self.size

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end


@dataclass
class EnclaveLayout:
    """Computed addresses of every region and special cell.

    The zero-argument properties address thread 0 (the single-threaded
    case); the ``*_of(tid)`` methods address any TCS slot.
    """

    base: int
    size: int
    regions: Dict[str, Region] = field(default_factory=dict)
    num_threads: int = 1

    # -- construction ---------------------------------------------------

    @classmethod
    def build(cls, config: EnclaveConfig) -> "EnclaveLayout":
        for name in ("bootstrap_size", "code_size", "stack_size",
                     "heap_size", "shadow_size"):
            value = getattr(config, name)
            if value <= 0 or value % PAGE_SIZE:
                raise LoaderError(f"{name} must be a positive page multiple")
        layout = cls(base=config.base, size=0,
                     num_threads=config.num_threads)
        cursor = config.base

        def add(name: str, size: int, perms: int) -> Region:
            nonlocal cursor
            region = Region(name, cursor, _page_round(size), perms)
            layout.regions[name] = region
            cursor = region.end
            return region

        if config.num_threads < 1:
            raise LoaderError("num_threads must be >= 1")
        if config.stack_size // config.num_threads < 2 * PAGE_SIZE:
            raise LoaderError("stack region too small for thread count")
        rw = PERM_R | PERM_W
        add("bootstrap", config.bootstrap_size, PERM_R | PERM_X)
        # per-thread TCS, SSA, TLS pages
        add("critical", 3 * PAGE_SIZE * config.num_threads, rw)
        add("guard0", PAGE_SIZE, 0)
        add("shadow", config.shadow_size, rw)
        add("guard1", PAGE_SIZE, 0)
        add("branch_map", config.code_size, rw)
        add("code", config.code_size, PERM_R | PERM_W | PERM_X)
        add("guard2", PAGE_SIZE, 0)
        add("stack", config.stack_size, rw)
        add("guard3", PAGE_SIZE, 0)
        add("heap", config.heap_size, rw)
        layout.size = cursor - config.base
        return layout

    # -- named accessors -------------------------------------------------

    def __getattr__(self, name: str) -> Region:
        try:
            return self.regions[name]
        except KeyError:
            raise AttributeError(name) from None

    @property
    def el_lo(self) -> int:
        return self.base

    @property
    def el_hi(self) -> int:
        return self.base + self.size

    def tcs_addr_of(self, tid: int) -> int:
        self._check_tid(tid)
        return self.regions["critical"].start + tid * 3 * PAGE_SIZE

    def ssa_addr_of(self, tid: int) -> int:
        return self.tcs_addr_of(tid) + PAGE_SIZE

    def tls_addr_of(self, tid: int) -> int:
        return self.tcs_addr_of(tid) + 2 * PAGE_SIZE

    def _check_tid(self, tid: int) -> None:
        if not 0 <= tid < self.num_threads:
            raise LoaderError(f"bad thread id {tid}")

    @property
    def tcs_addr(self) -> int:
        return self.tcs_addr_of(0)

    @property
    def ssa_addr(self) -> int:
        return self.ssa_addr_of(0)

    @property
    def tls_addr(self) -> int:
        return self.tls_addr_of(0)

    @property
    def ssa_marker_addr(self) -> int:
        """The HyperRace marker cell: the RAX slot of the SSA GPR dump,
        so any AEX register dump clobbers it."""
        return self.ssa_addr

    @property
    def aex_count_cell(self) -> int:
        """Software AEX counter maintained by the P6 annotation."""
        return self.tls_addr + 0x100

    @property
    def ssp_cell(self) -> int:
        """Cell holding the current shadow-stack pointer."""
        return self.regions["shadow"].start

    @property
    def ss_base(self) -> int:
        """First usable shadow-stack entry slot."""
        return self.regions["shadow"].start + 8

    @property
    def ss_top(self) -> int:
        return self.regions["shadow"].end

    # -- per-thread slices (§VII multi-threading extension) ---------------

    def stack_slice(self, tid: int):
        """Per-thread stack slice [lo, hi); RSP starts at hi."""
        self._check_tid(tid)
        stack = self.regions["stack"]
        slice_size = stack.size // self.num_threads
        lo = stack.start + tid * slice_size
        return lo, lo + slice_size

    def initial_rsp_of(self, tid: int) -> int:
        return self.stack_slice(tid)[1]

    def shadow_slice_base(self, tid: int) -> int:
        """Initial register-held shadow-stack pointer for thread ``tid``
        (the MT-safe P5 variant keeps the pointer in R13)."""
        self._check_tid(tid)
        shadow = self.regions["shadow"]
        usable = shadow.size - 8
        slice_size = (usable // self.num_threads) & ~7
        return shadow.start + 8 + tid * slice_size

    @property
    def crit_lo(self) -> int:
        """P3 exclusion range: critical region through the branch map."""
        return self.regions["critical"].start

    @property
    def crit_hi(self) -> int:
        return self.regions["code"].start

    @property
    def initial_rsp(self) -> int:
        return self.regions["stack"].end

    # -- application -----------------------------------------------------

    def apply(self, space: AddressSpace) -> None:
        """Program every region's page permissions into ``space``."""
        for region in self.regions.values():
            space.set_page_perms(region.start, region.size, region.perms)
        space.watch_code_range(self.regions["code"].start,
                               self.regions["code"].size)

    def region_of(self, addr: int) -> str:
        for region in self.regions.values():
            if region.contains(addr):
                return region.name
        return "outside"
