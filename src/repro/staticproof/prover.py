"""Link-time re-derivation of the static proof log.

The producer never ships a proof it has not already checked the way the
enclave will: this module builds a *synthetic* enclave image (the text
patched with synthetic-but-layout-faithful relocation addresses), runs
the same recursive-descent disassembly, and feeds every proof entry
through the very :class:`repro.core.proofcheck.ProofChecker` the
in-enclave verifier uses.  A proof that fails here raises
:class:`~repro.errors.CompileError` — better a build break on the
producer's machine than a provisioning rejection in the enclave.

The synthetic layout preserves every property the checker consumes:
the stack band has whole guard pages on both sides inside
``[store_lo, store_hi)``, data/bss sit above the code pages (as the
real loader places them on the heap), and code offsets translate to
addresses by the same ``code_base`` rebase.  Because the checker's
verdict depends only on those relations — never on absolute numbers —
passing here implies passing in the enclave.
"""

from __future__ import annotations

from typing import Dict

from ..core.proofcheck import ProofChecker
from ..core.rdd import recursive_descent
from ..errors import CompileError, VerificationError
from ..sgx.memory import PAGE_SIZE


def _page_round(n: int) -> int:
    return (n + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)


def synthetic_bases(obj) -> Dict[str, int]:
    """Section base addresses + checker value map for a fake enclave
    shaped like the real layout: code, guard, stack, guard, data."""
    store_lo = PAGE_SIZE
    code_base = 16 * PAGE_SIZE
    stack_lo = code_base + _page_round(len(obj.text)) + PAGE_SIZE
    stack_hi = stack_lo + 16 * PAGE_SIZE
    data_base = stack_hi + PAGE_SIZE
    bss_base = data_base + _page_round(len(obj.data) + 8)
    store_hi = bss_base + _page_round(obj.bss_size + 8) + 64 * PAGE_SIZE
    return {"store_lo": store_lo, "store_hi": store_hi,
            # build_value_map aliases, so the dict slots straight into
            # PolicyVerifier.verify_code(values=...) as enclave bounds
            "p1_lo": store_lo, "p1_hi": store_hi,
            "stack_lo": stack_lo, "stack_hi": stack_hi,
            "code_base": code_base, "data_base": data_base,
            "bss_base": bss_base}


def synthetic_image(obj):
    """``(patched_text, bases, entry_off, target_offs)`` — the object's
    text with every relocation resolved against the synthetic layout.
    Lets offline consumers (the link-time prover, ``objdump --stats``)
    run the real verifier/checker without an enclave."""
    from ..compiler.objfile import SEC_BSS, SEC_DATA, SEC_TEXT

    bases = synthetic_bases(obj)
    section_base = {SEC_TEXT: bases["code_base"],
                    SEC_DATA: bases["data_base"],
                    SEC_BSS: bases["bss_base"]}
    text = bytearray(obj.text)
    for reloc in obj.relocations:
        sym = obj.symbol(reloc.symbol)
        addr = section_base[sym.section] + sym.offset + reloc.addend
        text[reloc.offset:reloc.offset + 8] = addr.to_bytes(8, "little")
    entry_off = obj.symbol(obj.entry).offset
    target_offs = sorted(obj.symbol(name).offset
                         for name in obj.branch_targets)
    return bytes(text), bases, entry_off, target_offs


def prove_object(obj) -> None:
    """Re-derive every entry of ``obj.proofs``; raise ``CompileError``
    on the first one the in-enclave checker would reject.

    Sites the recursive descent never reaches (elided stores in dead
    prelude functions) are *pruned* from the log rather than checked:
    the in-enclave verifier only walks discovered instructions, so it
    neither demands a guard there nor accepts a proof naming them (a
    stale entry fails verification)."""
    if not obj.proofs:
        return
    text, bases, entry_off, target_offs = synthetic_image(obj)
    code = recursive_descent(text, entry_off, target_offs)
    obj.proofs = [entry for entry in obj.proofs
                  if entry[0] in code.index_of]
    checker = ProofChecker(code, bases, target_offs, entry_off)
    for site, kind, def_off in obj.proofs:
        try:
            checker.check(site, kind, def_off)
        except VerificationError as exc:
            raise CompileError(
                f"annotation-light elision is not provable: {exc}; "
                f"recompile annotation-full or keep the guard") from exc
