"""Static proof tier: prove P1–P5 obligations offline, elide guards.

The untrusted producer's side of the proof-carrying-binary contract:

* :mod:`.eligibility` — IR-level predicates the instrumentation passes
  use in annotation-light mode to pick guard sites whose obligation is
  statically provable (RBP-frame stores, prologue/post-call RSP steps,
  constant-address global stores, constant indirect-branch targets);
* :mod:`.prover` — link-time re-derivation of every emitted proof with
  the *in-enclave* checker over a synthetic relocation of the object,
  so an unprovable elision breaks the build instead of the provisioning.

The consumer half lives in :mod:`repro.core.proofcheck`, inside the
TCB; nothing in this package is trusted by the enclave.
"""

from .eligibility import (
    constant_def, elidable_cfi_target, elidable_const_store,
    elidable_rsp_step, elidable_stack_store, frame_discipline_ok,
)
from .prover import prove_object, synthetic_bases, synthetic_image

__all__ = [
    "constant_def", "elidable_cfi_target", "elidable_const_store",
    "elidable_rsp_step", "elidable_stack_store", "frame_discipline_ok",
    "prove_object", "synthetic_bases", "synthetic_image",
]
