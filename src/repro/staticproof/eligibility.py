"""IR-level elision eligibility for the annotation-light mode.

These predicates run inside the instrumentation passes, over the
pre-assembly item streams, and decide which guard sites the producer
*attempts* to elide.  They deliberately mirror the in-enclave rules of
:mod:`repro.core.proofcheck` — being conservative here only costs a
runtime guard; being optimistic costs a :class:`CompileError` when the
link-time prover re-derives the proofs and one fails.  Nothing here is
trusted: the enclave re-checks every elision from delivered bytes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.proofcheck import MAX_STEP
from ..isa.instructions import (
    COND_JUMPS, Instruction, Mem, Op, SymbolRef, _REG_DST_OPS,
    INDIRECT_BRANCH_OPS, NO_FALLTHROUGH_OPS, STORE_OPS,
)
from ..isa.registers import RBP, RSP

#: Ops the checker's straight-line span walk tolerates between a
#: constant definition and its use (plus register writes to other
#: registers, which are checked separately).
_SPAN_SAFE = frozenset({Op.PUSH_R, Op.PUSH_I, Op.CMP_RR, Op.CMP_RI,
                        Op.TEST_RR, Op.NOP})

_BRANCH_OPS = frozenset(COND_JUMPS) | NO_FALLTHROUGH_OPS | \
    INDIRECT_BRANCH_OPS | frozenset({Op.CALL, Op.CALL_R})


def frame_discipline_ok(all_items) -> bool:
    """Whole-program mirror of the checker's frame-discipline scan.

    When False, stack-store and RSP-step elision is disabled outright
    (the in-enclave checker would reject every such proof), but
    const-address and CFI elision — which do not rely on the stack
    invariant — stay available.
    """
    instrs = [it for it in all_items if isinstance(it, Instruction)]
    for i, ins in enumerate(instrs):
        if ins.op not in _REG_DST_OPS:
            continue
        dst = ins.operands[0]
        if dst == RBP:
            if ins.op == Op.MOV_RR and ins.operands[1] == RSP:
                continue
            if ins.op == Op.POP_R and i + 1 < len(instrs) and \
                    instrs[i + 1].op == Op.RET:
                continue
            return False
        if dst == RSP:
            if ins.op == Op.MOV_RR and ins.operands[1] == RBP:
                continue
            if ins.op in (Op.SUB_RI, Op.ADD_RI) and \
                    0 <= ins.operands[1] <= MAX_STEP:
                continue
            return False
    return True


def elidable_stack_store(item: Instruction) -> bool:
    """RBP-relative store within the guard band: provable as K_STACK
    whenever the function has the canonical probing prologue (checked
    structurally by the prover; MiniC codegen always emits it)."""
    mem = item.operands[0]
    return isinstance(mem, Mem) and mem.base == RBP and \
        mem.index is None and abs(mem.disp) <= MAX_STEP


def elidable_rsp_step(items: List, index: int) -> bool:
    """SUB/ADD RSP by an aligned sub-page constant, in a position the
    checker accepts: a prologue ``PUSH RBP; MOV RBP, RSP; SUB`` or a
    post-call ``CALL; ADD`` (both probe the stack just before the
    step).  ``items`` is the unit's current item list."""
    ins = items[index]
    k = ins.operands[1]
    if not (isinstance(k, int) and 0 <= k <= MAX_STEP and k % 8 == 0):
        return False
    prev = _prev_instrs(items, index, 2)
    if ins.op == Op.ADD_RI:
        return len(prev) >= 1 and prev[0].op in (Op.CALL, Op.CALL_R)
    return (len(prev) == 2 and
            prev[0].op == Op.MOV_RR and
            tuple(prev[0].operands) == (RBP, RSP) and
            prev[1].op == Op.PUSH_R and prev[1].operands[0] == RBP)


def _prev_instrs(items: List, index: int, count: int) -> List:
    """The ``count`` instructions preceding ``items[index]``, nearest
    first; stops early at a label definition (a potential branch-in
    point breaks the probing-adjacency argument)."""
    out = []
    j = index - 1
    while j >= 0 and len(out) < count:
        if not isinstance(items[j], Instruction):
            break
        out.append(items[j])
        j -= 1
    return out


def constant_def(items: List, index: int, reg: int,
                 store_guarded=None) -> Optional[int]:
    """Index of a ``MOV reg, SymbolRef`` that provably still defines
    ``reg`` at ``items[index]``, or None.

    The backward walk enforces the checker's straight-line span rule:
    no label (branch-in point), no control transfer, no clobber of
    ``reg``, and every other instruction either writes a different
    register or is span-safe.  ``store_guarded`` — when given — is a
    predicate telling whether an intervening store will carry a runtime
    guard (guard code contains labels and jumps, which would break the
    span at assembly time)."""
    j = index - 1
    while j >= 0:
        item = items[j]
        if not isinstance(item, Instruction):
            return None                     # label: control can enter
        if item.op in _BRANCH_OPS:
            return None
        if item.op in _REG_DST_OPS and item.operands[0] == reg:
            if item.op == Op.MOV_RI and \
                    isinstance(item.operands[1], SymbolRef):
                return j
            return None                     # clobbered by non-constant
        if item.op in _REG_DST_OPS and item.operands[0] == RSP:
            return None                     # would grow a P2 guard mid-span
        if item.op in STORE_OPS:
            if store_guarded is not None and store_guarded(item):
                return None
        elif item.op not in _SPAN_SAFE and item.op not in _REG_DST_OPS:
            return None
        j -= 1
    return None


def elidable_const_store(items: List, index: int, data_symbols,
                         store_guarded=None) -> Optional[int]:
    """Index of the defining ``MOV reg, SymbolRef(global)`` when the
    store at ``index`` targets a compile-time-constant in-enclave
    address, else None.  Only direct ``[reg + disp]`` stores to data/bss
    symbols qualify; indexed addressing stays guarded."""
    mem = items[index].operands[0]
    if not isinstance(mem, Mem) or mem.index is not None or \
            mem.base in (RBP, RSP) or not 0 <= mem.disp <= MAX_STEP:
        return None
    di = constant_def(items, index, mem.base, store_guarded)
    if di is None:
        return None
    ref = items[di].operands[1]
    if ref.name not in data_symbols or ref.addend != 0:
        return None
    return di


def elidable_cfi_target(items: List, index: int, func_symbols,
                        store_guarded=None) -> Optional[int]:
    """Index of the defining ``MOV reg, SymbolRef(function)`` for the
    indirect branch at ``index``, else None.  The symbol lands on the
    trusted branch-target list precisely because this MOV makes it
    address-taken.  ``store_guarded`` is conservative here: the CFI pass
    runs before the store pass, so when store guards are enabled any
    store in the span must be assumed guarded (span-breaking)."""
    reg = items[index].operands[0]
    di = constant_def(items, index, reg, store_guarded)
    if di is None:
        return None
    ref = items[di].operands[1]
    if ref.name not in func_symbols or ref.addend != 0:
        return None
    return di
