"""DX86 instruction set: opcodes, operand signatures, instruction objects.

Each opcode has a fixed operand *signature* and therefore a fixed encoded
length.  Signatures (encoded sizes in bytes, after the 1-byte opcode):

====== ================================================= =====
sig    operands                                          bytes
====== ================================================= =====
``''``     none                                          0
``r``      one register                                  1
``rr``     two registers (dst, src)                      2
``ri64``   register + 64-bit immediate                   9
``ri32``   register + signed 32-bit immediate            5
``rm``     register + memory operand                     8
``mr``     memory operand + register                     8
``mi32``   memory operand + signed 32-bit immediate      11
``rel32``  signed 32-bit branch displacement             4
``i8``     8-bit immediate                               1
``i16``    16-bit immediate                              2
``i32``    signed 32-bit immediate                       4
====== ================================================= =====

``rel32`` displacements are relative to the address of the *next*
instruction, exactly as on x86.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from .registers import RSP


class Op:
    """Opcode namespace (plain ints for dispatch speed)."""

    NOP = 0x00
    HLT = 0x01
    TRAP = 0x02

    MOV_RR = 0x10
    MOV_RI = 0x11
    MOV_RM = 0x12
    MOV_MR = 0x13
    MOV_MI = 0x14
    LEA = 0x15
    LDB = 0x16
    STB = 0x17

    ADD_RR = 0x20
    SUB_RR = 0x21
    IMUL_RR = 0x22
    AND_RR = 0x23
    OR_RR = 0x24
    XOR_RR = 0x25
    SHL_RR = 0x26
    SHR_RR = 0x27
    SAR_RR = 0x28
    DIV_RR = 0x29
    MOD_RR = 0x2A
    NEG = 0x2B
    NOT = 0x2C

    ADD_RI = 0x30
    SUB_RI = 0x31
    IMUL_RI = 0x32
    AND_RI = 0x33
    OR_RI = 0x34
    XOR_RI = 0x35
    SHL_RI = 0x36
    SHR_RI = 0x37
    SAR_RI = 0x38
    DIV_RI = 0x39
    MOD_RI = 0x3A

    CMP_RR = 0x40
    CMP_RI = 0x41
    TEST_RR = 0x42

    JMP = 0x50
    JMP_R = 0x51
    JE = 0x58
    JNE = 0x59
    JL = 0x5A
    JLE = 0x5B
    JG = 0x5C
    JGE = 0x5D
    JB = 0x5E
    JBE = 0x5F
    JA = 0x60
    JAE = 0x61

    CALL = 0x70
    CALL_R = 0x71
    RET = 0x72
    PUSH_R = 0x73
    PUSH_I = 0x74
    POP_R = 0x75

    SVC = 0x80


@dataclass(frozen=True)
class Mem:
    """A ``[base + index*scale + disp]`` memory operand."""

    base: Optional[int] = None
    index: Optional[int] = None
    scale: int = 1
    disp: int = 0

    def __post_init__(self):
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"bad scale {self.scale}")


@dataclass(frozen=True)
class Label:
    """A symbolic branch target, resolved by the assembler."""

    name: str


@dataclass(frozen=True)
class LabelDef:
    """Defines a label at the current position in an assembly stream."""

    name: str


@dataclass(frozen=True)
class SymbolRef:
    """A 64-bit immediate that refers to a symbol (emits a relocation)."""

    name: str
    addend: int = 0


Operand = Union[int, Mem, Label, SymbolRef]

_SIG_SIZES = {
    "": 0, "r": 1, "rr": 2, "ri64": 9, "ri32": 5,
    "rm": 8, "mr": 8, "mi32": 11, "rel32": 4,
    "i8": 1, "i16": 2, "i32": 4,
}


@dataclass(frozen=True)
class InstrSpec:
    """Static description of one opcode."""

    code: int
    name: str
    sig: str

    @property
    def length(self) -> int:
        return 1 + _SIG_SIZES[self.sig]


def _specs() -> dict:
    table = [
        (Op.NOP, "nop", ""), (Op.HLT, "hlt", ""), (Op.TRAP, "trap", "i8"),
        (Op.MOV_RR, "mov", "rr"), (Op.MOV_RI, "mov", "ri64"),
        (Op.MOV_RM, "mov", "rm"), (Op.MOV_MR, "mov", "mr"),
        (Op.MOV_MI, "mov", "mi32"), (Op.LEA, "lea", "rm"),
        (Op.LDB, "ldb", "rm"), (Op.STB, "stb", "mr"),
        (Op.ADD_RR, "add", "rr"), (Op.SUB_RR, "sub", "rr"),
        (Op.IMUL_RR, "imul", "rr"), (Op.AND_RR, "and", "rr"),
        (Op.OR_RR, "or", "rr"), (Op.XOR_RR, "xor", "rr"),
        (Op.SHL_RR, "shl", "rr"), (Op.SHR_RR, "shr", "rr"),
        (Op.SAR_RR, "sar", "rr"), (Op.DIV_RR, "div", "rr"),
        (Op.MOD_RR, "mod", "rr"), (Op.NEG, "neg", "r"),
        (Op.NOT, "not", "r"),
        (Op.ADD_RI, "add", "ri32"), (Op.SUB_RI, "sub", "ri32"),
        (Op.IMUL_RI, "imul", "ri32"), (Op.AND_RI, "and", "ri32"),
        (Op.OR_RI, "or", "ri32"), (Op.XOR_RI, "xor", "ri32"),
        (Op.SHL_RI, "shl", "ri32"), (Op.SHR_RI, "shr", "ri32"),
        (Op.SAR_RI, "sar", "ri32"), (Op.DIV_RI, "div", "ri32"),
        (Op.MOD_RI, "mod", "ri32"),
        (Op.CMP_RR, "cmp", "rr"), (Op.CMP_RI, "cmp", "ri32"),
        (Op.TEST_RR, "test", "rr"),
        (Op.JMP, "jmp", "rel32"), (Op.JMP_R, "jmp", "r"),
        (Op.JE, "je", "rel32"), (Op.JNE, "jne", "rel32"),
        (Op.JL, "jl", "rel32"), (Op.JLE, "jle", "rel32"),
        (Op.JG, "jg", "rel32"), (Op.JGE, "jge", "rel32"),
        (Op.JB, "jb", "rel32"), (Op.JBE, "jbe", "rel32"),
        (Op.JA, "ja", "rel32"), (Op.JAE, "jae", "rel32"),
        (Op.CALL, "call", "rel32"), (Op.CALL_R, "call", "r"),
        (Op.RET, "ret", ""), (Op.PUSH_R, "push", "r"),
        (Op.PUSH_I, "push", "i32"), (Op.POP_R, "pop", "r"),
        (Op.SVC, "svc", "i16"),
    ]
    return {code: InstrSpec(code, name, sig) for code, name, sig in table}


SPECS = _specs()

#: Conditional jump opcodes and their flag predicates (see vm/cpu.py).
COND_JUMPS = frozenset({
    Op.JE, Op.JNE, Op.JL, Op.JLE, Op.JG, Op.JGE,
    Op.JB, Op.JBE, Op.JA, Op.JAE,
})

STORE_OPS = frozenset({Op.MOV_MR, Op.MOV_MI, Op.STB})
LOAD_OPS = frozenset({Op.MOV_RM, Op.LDB})
INDIRECT_BRANCH_OPS = frozenset({Op.JMP_R, Op.CALL_R})

#: Opcodes that end fall-through execution (basic-block terminators that
#: do not continue to the next instruction).
NO_FALLTHROUGH_OPS = frozenset({Op.JMP, Op.JMP_R, Op.RET, Op.HLT, Op.TRAP})

#: Opcodes that end a *superblock* for the translating executor: every
#: control transfer plus the escape points (SVC, HLT, TRAP) where the VM
#: must materialize architectural state for the dispatch loop.
BLOCK_TERMINATORS = NO_FALLTHROUGH_OPS | COND_JUMPS | \
    frozenset({Op.CALL, Op.CALL_R, Op.SVC})

#: Flag-defining opcodes — the only writers of the three architectural
#: condition booleans (``f_eq``/``f_lt_s``/``f_lt_u``).
FLAG_SETTER_OPS = frozenset({Op.CMP_RR, Op.CMP_RI, Op.TEST_RR})

#: Flag-observing opcodes (readers).  HLT/SVC/AEX also *expose* flags by
#: materializing them into architectural state, but those escape points
#: are modelled separately (they are not FLAG_NEUTRAL either).
FLAG_OBSERVER_OPS = COND_JUMPS

#: Opcodes that neither read nor write flags, cannot fault and cannot
#: escape the VM (no memory access, no control transfer, no service
#: call).  Across a run of these, a pending flag state can be elided or
#: deferred: no architectural observation point — fault frame, SSA dump,
#: SVC handler, run exit — can fire in between.  Shared by the RDD
#: liveness pass and the tier-2 translator so both sides of the
#: verifier/VM contract classify identically.
FLAG_NEUTRAL_OPS = frozenset({
    Op.NOP, Op.MOV_RR, Op.MOV_RI, Op.LEA, Op.NEG, Op.NOT,
    Op.ADD_RR, Op.SUB_RR, Op.IMUL_RR, Op.AND_RR, Op.OR_RR, Op.XOR_RR,
    Op.SHL_RR, Op.SHR_RR, Op.SAR_RR,
    Op.ADD_RI, Op.SUB_RI, Op.IMUL_RI, Op.AND_RI, Op.OR_RI, Op.XOR_RI,
    Op.SHL_RI, Op.SHR_RI, Op.SAR_RI,
})

#: ALU opcodes whose first operand is a written destination register.
_REG_DST_OPS = frozenset({
    Op.MOV_RR, Op.MOV_RI, Op.MOV_RM, Op.LEA, Op.LDB,
    Op.ADD_RR, Op.SUB_RR, Op.IMUL_RR, Op.AND_RR, Op.OR_RR, Op.XOR_RR,
    Op.SHL_RR, Op.SHR_RR, Op.SAR_RR, Op.DIV_RR, Op.MOD_RR,
    Op.NEG, Op.NOT,
    Op.ADD_RI, Op.SUB_RI, Op.IMUL_RI, Op.AND_RI, Op.OR_RI, Op.XOR_RI,
    Op.SHL_RI, Op.SHR_RI, Op.SAR_RI, Op.DIV_RI, Op.MOD_RI,
    Op.POP_R,
})


class Instruction:
    """One DX86 instruction: an opcode plus an operand tuple.

    Before assembly, ``rel32`` operands may be :class:`Label` and ``ri64``
    immediates may be :class:`SymbolRef`; after decoding they are plain
    ints.
    """

    __slots__ = ("op", "operands")

    def __init__(self, op: int, *operands: Operand):
        self.op = op
        self.operands = operands

    @property
    def spec(self) -> InstrSpec:
        return SPECS[self.op]

    @property
    def length(self) -> int:
        return SPECS[self.op].length

    def __eq__(self, other):
        return (isinstance(other, Instruction)
                and self.op == other.op and self.operands == other.operands)

    def __hash__(self):
        return hash((self.op, self.operands))

    def __repr__(self):
        from .disassembler import format_instruction
        return f"<{format_instruction(self)}>"


def instr_length(op: int) -> int:
    """Encoded length in bytes of opcode ``op``."""
    return SPECS[op].length


def is_store(instr: Instruction) -> bool:
    """True if ``instr`` explicitly writes memory through a Mem operand."""
    return instr.op in STORE_OPS


def is_load(instr: Instruction) -> bool:
    return instr.op in LOAD_OPS


def is_indirect_branch(instr: Instruction) -> bool:
    return instr.op in INDIRECT_BRANCH_OPS


def is_cond_jump(instr: Instruction) -> bool:
    return instr.op in COND_JUMPS


def writes_rsp_explicitly(instr: Instruction) -> bool:
    """True if ``instr`` writes RSP through its destination register.

    PUSH/POP/CALL/RET adjust RSP *implicitly*; those are covered by the
    loader's guard pages (policy P2's second half), not by annotations.
    POP into RSP counts as explicit.
    """
    if instr.op in _REG_DST_OPS and instr.operands:
        dst = instr.operands[0]
        return isinstance(dst, int) and dst == RSP
    return False
