"""Register file definition for DX86.

Sixteen 64-bit general-purpose registers with x86-64 numbering.  R13, R14
and R15 are *reserved for security annotations*: the MiniC compiler never
allocates them, so annotation code can use them as scratch without the
save/restore push/pop pair of the paper's Fig. 5 (see DESIGN.md §2 for why
this variant is used).
"""

from __future__ import annotations

RAX = 0
RCX = 1
RDX = 2
RBX = 3
RSP = 4
RBP = 5
RSI = 6
RDI = 7
R8 = 8
R9 = 9
R10 = 10
R11 = 11
R12 = 12
R13 = 13
R14 = 14
R15 = 15

REG_COUNT = 16

REG_NAMES = (
    "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
)

#: Registers the compiler must never allocate: annotation scratch space.
RESERVED_REGS = frozenset({R13, R14, R15})

#: Registers usable as expression temporaries by the code generator.
ALLOCATABLE_REGS = (RAX, RCX, RDX, RBX, RSI, RDI, R8, R9, R10, R11, R12)


def reg_name(index: int) -> str:
    """Return the assembly name of register ``index``."""
    if not 0 <= index < REG_COUNT:
        raise ValueError(f"bad register index {index}")
    return REG_NAMES[index]
