"""DX86: the simulated 64-bit ISA used throughout the reproduction.

DX86 stands in for x86-64 (see DESIGN.md §2).  It keeps the properties the
DEFLECTION mechanism depends on:

* a binary, byte-addressed encoding (annotations are verified on bytes);
* x86-like registers including ``RSP``/``RBP`` with push/pop semantics;
* ``[base + index*scale + disp]`` memory operands;
* direct and *indirect* calls/jumps, conditional branches on flags;
* 64-bit immediates in ``MOV r, imm64`` — the slots the in-enclave
  immediate rewriter patches.

Unlike x86 the encoding is fixed-length *per opcode*, which keeps the
clipped disassembler small — the same motivation the paper cites for
stripping Capstone down ("diet mode").
"""

from .registers import (
    RAX, RBX, RCX, RDX, RSI, RDI, RSP, RBP,
    R8, R9, R10, R11, R12, R13, R14, R15,
    REG_NAMES, REG_COUNT, RESERVED_REGS, reg_name,
)
from .instructions import (
    Op, Instruction, Mem, Label, LabelDef, SymbolRef,
    SPECS, instr_length, is_store, is_load, writes_rsp_explicitly,
    is_indirect_branch, is_cond_jump, COND_JUMPS,
)
from .encoding import encode_instruction, decode_instruction
from .assembler import assemble, AssembledCode, Relocation
from .disassembler import disassemble_linear, format_instruction

__all__ = [
    "RAX", "RBX", "RCX", "RDX", "RSI", "RDI", "RSP", "RBP",
    "R8", "R9", "R10", "R11", "R12", "R13", "R14", "R15",
    "REG_NAMES", "REG_COUNT", "RESERVED_REGS", "reg_name",
    "Op", "Instruction", "Mem", "Label", "LabelDef", "SymbolRef",
    "SPECS", "instr_length", "is_store", "is_load",
    "writes_rsp_explicitly", "is_indirect_branch", "is_cond_jump",
    "COND_JUMPS",
    "encode_instruction", "decode_instruction",
    "assemble", "AssembledCode", "Relocation",
    "disassemble_linear", "format_instruction",
]
