"""Binary encoder/decoder for DX86 instructions.

The encoding is deliberately simple — fixed length per opcode — but it is
a real byte-level format: relocations and the in-enclave immediate
rewriter patch bytes inside encoded instructions, and the verifier
pattern-matches decoded bytes, mirroring how DEFLECTION works on x86
machine code.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from ..errors import EncodingError
from .instructions import BLOCK_TERMINATORS, Instruction, Mem, SPECS
from .registers import REG_COUNT

_U64_MASK = (1 << 64) - 1
_I32_MIN, _I32_MAX = -(1 << 31), (1 << 31) - 1

#: Byte offset of the 64-bit immediate inside an encoded ``MOV r, imm64``
#: (opcode byte + register byte).  Used by relocation application and the
#: in-enclave immediate rewriter.
MOV_RI_IMM_OFFSET = 2

_NONE_REG = 0xFF


def _check_reg(value, what: str) -> int:
    if not isinstance(value, int) or not 0 <= value < REG_COUNT:
        raise EncodingError(f"bad {what} register operand: {value!r}")
    return value


def _encode_mem(mem) -> bytes:
    if not isinstance(mem, Mem):
        raise EncodingError(f"expected memory operand, got {mem!r}")
    base = _NONE_REG if mem.base is None else _check_reg(mem.base, "base")
    index = _NONE_REG if mem.index is None else _check_reg(mem.index, "index")
    if not _I32_MIN <= mem.disp <= _I32_MAX:
        raise EncodingError(f"displacement out of range: {mem.disp:#x}")
    return struct.pack("<BBBi", base, index, mem.scale, mem.disp)


def _decode_mem(buf, pos: int) -> Mem:
    base, index, scale, disp = struct.unpack_from("<BBBi", buf, pos)
    if scale not in (1, 2, 4, 8):
        raise EncodingError(f"bad scale {scale} at {pos:#x}")
    base_r = None if base == _NONE_REG else base
    index_r = None if index == _NONE_REG else index
    if base_r is not None and base_r >= REG_COUNT:
        raise EncodingError(f"bad base register {base} at {pos:#x}")
    if index_r is not None and index_r >= REG_COUNT:
        raise EncodingError(f"bad index register {index} at {pos:#x}")
    return Mem(base_r, index_r, scale, disp)


def _i32(value, what: str) -> bytes:
    if not isinstance(value, int) or not _I32_MIN <= value <= _I32_MAX:
        raise EncodingError(f"{what} out of signed 32-bit range: {value!r}")
    return struct.pack("<i", value)


def encode_instruction(instr: Instruction) -> bytes:
    """Encode one instruction; all operands must be concrete.

    Raises :class:`EncodingError` on symbolic operands (labels/symbols
    must be resolved by the assembler first) or out-of-range values.
    """
    spec = SPECS.get(instr.op)
    if spec is None:
        raise EncodingError(f"unknown opcode {instr.op:#x}")
    sig = spec.sig
    ops = instr.operands
    out = bytearray([instr.op])
    try:
        if sig == "":
            pass
        elif sig == "r":
            out.append(_check_reg(ops[0], "dst"))
        elif sig == "rr":
            out.append(_check_reg(ops[0], "dst"))
            out.append(_check_reg(ops[1], "src"))
        elif sig == "ri64":
            out.append(_check_reg(ops[0], "dst"))
            imm = ops[1]
            if not isinstance(imm, int):
                raise EncodingError(f"unresolved imm64 operand: {imm!r}")
            out += struct.pack("<Q", imm & _U64_MASK)
        elif sig == "ri32":
            out.append(_check_reg(ops[0], "dst"))
            out += _i32(ops[1], "imm32")
        elif sig == "rm":
            out.append(_check_reg(ops[0], "dst"))
            out += _encode_mem(ops[1])
        elif sig == "mr":
            out += _encode_mem(ops[0])
            out.append(_check_reg(ops[1], "src"))
        elif sig == "mi32":
            out += _encode_mem(ops[0])
            out += _i32(ops[1], "imm32")
        elif sig == "rel32":
            out += _i32(ops[0], "rel32")
        elif sig == "i8":
            val = ops[0]
            if not isinstance(val, int) or not 0 <= val <= 0xFF:
                raise EncodingError(f"imm8 out of range: {val!r}")
            out.append(val)
        elif sig == "i16":
            val = ops[0]
            if not isinstance(val, int) or not 0 <= val <= 0xFFFF:
                raise EncodingError(f"imm16 out of range: {val!r}")
            out += struct.pack("<H", val)
        elif sig == "i32":
            out += _i32(ops[0], "imm32")
        else:  # pragma: no cover - table is closed
            raise EncodingError(f"unhandled signature {sig!r}")
    except IndexError:
        raise EncodingError(
            f"{spec.name}: expected operands for signature {sig!r}, "
            f"got {ops!r}") from None
    if len(out) != spec.length:
        raise EncodingError(
            f"{spec.name}: encoded {len(out)} bytes, spec says {spec.length}")
    return bytes(out)


def decode_instruction(buf, pos: int = 0) -> Tuple[Instruction, int]:
    """Decode one instruction at ``buf[pos:]``.

    Returns ``(instruction, length)``.  Raises :class:`EncodingError` on an
    unknown opcode or truncated/ill-formed bytes — the condition the
    verifier treats as "undecodable, reject".
    """
    if pos >= len(buf):
        raise EncodingError(f"decode past end of buffer at {pos:#x}")
    op = buf[pos]
    spec = SPECS.get(op)
    if spec is None:
        raise EncodingError(f"unknown opcode {op:#x} at {pos:#x}")
    if pos + spec.length > len(buf):
        raise EncodingError(f"truncated {spec.name} at {pos:#x}")
    sig = spec.sig
    p = pos + 1
    if sig == "":
        operands = ()
    elif sig == "r":
        operands = (_check_reg(buf[p], "reg"),)
    elif sig == "rr":
        operands = (_check_reg(buf[p], "dst"), _check_reg(buf[p + 1], "src"))
    elif sig == "ri64":
        operands = (_check_reg(buf[p], "dst"),
                    struct.unpack_from("<Q", buf, p + 1)[0])
    elif sig == "ri32":
        operands = (_check_reg(buf[p], "dst"),
                    struct.unpack_from("<i", buf, p + 1)[0])
    elif sig == "rm":
        operands = (_check_reg(buf[p], "dst"), _decode_mem(buf, p + 1))
    elif sig == "mr":
        operands = (_decode_mem(buf, p), _check_reg(buf[p + 7], "src"))
    elif sig == "mi32":
        operands = (_decode_mem(buf, p),
                    struct.unpack_from("<i", buf, p + 7)[0])
    elif sig == "rel32":
        operands = (struct.unpack_from("<i", buf, p)[0],)
    elif sig == "i8":
        operands = (buf[p],)
    elif sig == "i16":
        operands = (struct.unpack_from("<H", buf, p)[0],)
    elif sig == "i32":
        operands = (struct.unpack_from("<i", buf, p)[0],)
    else:  # pragma: no cover - table is closed
        raise EncodingError(f"unhandled signature {sig!r}")
    return Instruction(op, *operands), spec.length


# -- fused stream decoding ---------------------------------------------------
#
# ``decode_instruction`` pays a dict probe, a signature-string if-chain
# and a ``struct.unpack_from`` format parse on every call.  Bulk
# consumers (the recursive-descent disassembler decodes every reachable
# instruction of every delivered binary) instead index ``DECODE_TABLE``
# by the opcode byte and call a per-opcode closure with the signature
# dispatch already resolved and the struct codecs prebound.  The
# closures enforce exactly the same rejections as ``decode_instruction``
# (bad registers, bad scales) and the table carries the fixed length, so
# callers can bounds-check before decoding instead of catching
# truncation mid-parse.  Each closure also reports whether the
# instruction touches one of the annotation-reserved registers
# (R13–R15, see ``registers.RESERVED_REGS``) — the register values are
# already in locals during decoding, so the flag is nearly free here and
# saves the verifier a full per-instruction operand walk.

#: Signature ids carried in ``DECODE_TABLE`` so stream consumers can
#: classify operands (e.g. find register uses) without touching SPECS.
SIG_IDS = {sig: i for i, sig in enumerate((
    "", "r", "rr", "ri64", "ri32", "rm", "mr", "mi32",
    "rel32", "i8", "i16", "i32"))}


def _build_decode_table():
    unpack_q = struct.Struct("<Q").unpack_from
    unpack_i = struct.Struct("<i").unpack_from
    unpack_h = struct.Struct("<H").unpack_from
    unpack_mem = struct.Struct("<BBBi").unpack_from
    none_reg, nregs = _NONE_REG, REG_COUNT

    # Decoded Mem operands repeat heavily (annotation bodies reuse a
    # handful of [reg] shapes), and frozen-dataclass construction is the
    # single hottest step of a bulk decode — memoize on the raw field
    # tuple the unpacker allocates anyway.  Mem is immutable, so sharing
    # instances is safe.  Cached alongside: the reserved-register flag.
    mem_cache = {}

    def fast_mem(buf, pos):
        key = unpack_mem(buf, pos)
        hit = mem_cache.get(key)
        if hit is not None:
            return hit
        base, index, scale, disp = key
        if scale not in (1, 2, 4, 8):
            raise EncodingError(f"bad scale {scale} at {pos:#x}")
        if base == none_reg:
            base = None
        elif base >= nregs:
            raise EncodingError(f"bad base register {base} at {pos:#x}")
        if index == none_reg:
            index = None
        elif index >= nregs:
            raise EncodingError(
                f"bad index register {index} at {pos:#x}")
        hit = (Mem(base, index, scale, disp),
               (base is not None and base >= 13) or
               (index is not None and index >= 13))
        if len(mem_cache) >= 4096:
            mem_cache.clear()
        mem_cache[key] = hit
        return hit

    def reg(value, pos):
        if value >= nregs:
            raise EncodingError(f"bad register operand at {pos:#x}")
        return value

    def make(op, sig):
        if sig == "":
            bare = (Instruction(op), False)
            return lambda buf, p: bare

        if sig == "r":
            def d_r(buf, p):
                a = reg(buf[p + 1], p)
                return Instruction(op, a), a >= 13
            return d_r
        if sig == "rr":
            def d_rr(buf, p):
                a = reg(buf[p + 1], p)
                b = reg(buf[p + 2], p)
                return Instruction(op, a, b), a >= 13 or b >= 13
            return d_rr
        if sig == "ri64":
            def d_ri64(buf, p):
                a = reg(buf[p + 1], p)
                return (Instruction(op, a, unpack_q(buf, p + 2)[0]),
                        a >= 13)
            return d_ri64
        if sig == "ri32":
            def d_ri32(buf, p):
                a = reg(buf[p + 1], p)
                return (Instruction(op, a, unpack_i(buf, p + 2)[0]),
                        a >= 13)
            return d_ri32
        if sig == "rm":
            def d_rm(buf, p):
                a = reg(buf[p + 1], p)
                mem, mres = fast_mem(buf, p + 2)
                return Instruction(op, a, mem), a >= 13 or mres
            return d_rm
        if sig == "mr":
            def d_mr(buf, p):
                mem, mres = fast_mem(buf, p + 1)
                b = reg(buf[p + 8], p)
                return Instruction(op, mem, b), b >= 13 or mres
            return d_mr
        if sig == "mi32":
            def d_mi32(buf, p):
                mem, mres = fast_mem(buf, p + 1)
                return (Instruction(op, mem, unpack_i(buf, p + 8)[0]),
                        mres)
            return d_mi32
        if sig == "rel32":
            return lambda buf, p: (
                Instruction(op, unpack_i(buf, p + 1)[0]), False)
        if sig == "i8":
            return lambda buf, p: (Instruction(op, buf[p + 1]), False)
        if sig == "i16":
            return lambda buf, p: (
                Instruction(op, unpack_h(buf, p + 1)[0]), False)
        if sig == "i32":
            return lambda buf, p: (
                Instruction(op, unpack_i(buf, p + 1)[0]), False)
        raise AssertionError(sig)  # pragma: no cover - table is closed

    table = [None] * 256
    for op, spec in SPECS.items():
        table[op] = (spec.length, SIG_IDS[spec.sig], make(op, spec.sig))
    return table


#: ``DECODE_TABLE[opcode] -> (length, sig_id, decode)`` or ``None`` for
#: an unknown opcode; ``decode(buf, pos)`` returns
#: ``(Instruction, uses_reserved_reg)`` (``pos`` is the opcode byte's
#: offset; the flag is true when any register operand — including
#: memory base/index — is in ``RESERVED_REGS``).
DECODE_TABLE = _build_decode_table()

#: Parallel-array view of ``DECODE_TABLE`` for the tightest loops:
#: per-opcode length (0 for unknown opcodes) and decode closure
#: (``None`` for unknown) without the tuple indirection.
DECODE_LEN = [entry[0] if entry else 0 for entry in DECODE_TABLE]
DECODE_FN = [entry[2] if entry else None for entry in DECODE_TABLE]


def decode_block(buf, pos: int = 0,
                 max_instrs: int = 64) -> List[Tuple[Instruction, int]]:
    """Decode a straight-line superblock starting at ``buf[pos:]``.

    Decodes until (and including) the first block terminator — any
    control transfer, ``SVC``, ``HLT`` or ``TRAP`` — or until
    ``max_instrs`` instructions.  Returns ``[(instruction, length), …]``;
    raises :class:`EncodingError` if the *first* instruction is
    undecodable (callers truncate the block when a later one is)."""
    out: List[Tuple[Instruction, int]] = []
    while len(out) < max_instrs:
        try:
            instr, length = decode_instruction(buf, pos)
        except EncodingError:
            if not out:
                raise
            break
        out.append((instr, length))
        pos += length
        if instr.op in BLOCK_TERMINATORS:
            break
    return out
