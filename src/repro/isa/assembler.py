"""Two-pass assembler: symbolic instruction streams -> machine code.

The assembler resolves :class:`Label` branch targets to rel32
displacements and turns :class:`SymbolRef` 64-bit immediates into
ABS64 relocation entries (patched later by the linker/loader), exactly
the information the paper's "relocatable file" carries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Union

from ..errors import AssemblerError
from .encoding import MOV_RI_IMM_OFFSET, encode_instruction
from .instructions import Instruction, Label, LabelDef, SymbolRef, SPECS, Op

_I32_MIN, _I32_MAX = -(1 << 31), (1 << 31) - 1

AsmItem = Union[Instruction, LabelDef]


@dataclass(frozen=True)
class Relocation:
    """An ABS64 relocation: write ``address_of(symbol) + addend`` into the
    8 bytes at ``offset`` of the text section."""

    offset: int
    symbol: str
    addend: int = 0


@dataclass
class AssembledCode:
    """Result of assembling one instruction stream."""

    code: bytes
    labels: Dict[str, int]
    relocations: List[Relocation]
    instr_offsets: List[int]


def assemble(items: Iterable[AsmItem]) -> AssembledCode:
    """Assemble ``items`` into machine code.

    Raises :class:`AssemblerError` on duplicate or undefined labels and on
    branch displacements that do not fit in rel32.
    """
    items = list(items)
    labels: Dict[str, int] = {}
    offsets: List[int] = []
    pos = 0
    for item in items:
        if isinstance(item, LabelDef):
            if item.name in labels:
                raise AssemblerError(f"duplicate label {item.name!r}")
            labels[item.name] = pos
        elif isinstance(item, Instruction):
            offsets.append(pos)
            pos += SPECS[item.op].length
        else:
            raise AssemblerError(f"bad assembly item {item!r}")

    out = bytearray()
    relocations: List[Relocation] = []
    instr_offsets: List[int] = []
    for item in items:
        if isinstance(item, LabelDef):
            continue
        off = len(out)
        instr_offsets.append(off)
        instr = item
        spec = SPECS[instr.op]
        if spec.sig == "rel32" and isinstance(instr.operands[0], Label):
            target = instr.operands[0].name
            if target not in labels:
                raise AssemblerError(f"undefined label {target!r}")
            disp = labels[target] - (off + spec.length)
            if not _I32_MIN <= disp <= _I32_MAX:
                raise AssemblerError(f"branch to {target!r} out of range")
            instr = Instruction(instr.op, disp)
        elif spec.sig == "ri64" and isinstance(instr.operands[1], SymbolRef):
            ref = instr.operands[1]
            relocations.append(
                Relocation(off + MOV_RI_IMM_OFFSET, ref.name, ref.addend))
            instr = Instruction(instr.op, instr.operands[0], 0)
        out += encode_instruction(instr)
    return AssembledCode(bytes(out), labels, relocations, instr_offsets)


def local_label_allocator(prefix: str):
    """Return a callable producing unique local label names.

    Instrumentation passes need fresh labels per annotation; a shared
    counter keeps them unique within one function's stream.
    """
    counter = [0]

    def make(tag: str = "") -> str:
        counter[0] += 1
        return f".{prefix}.{tag}{counter[0]}"

    return make
