"""Linear disassembly and instruction formatting helpers.

The *recursive descent* disassembler — the one inside the TCB — lives in
``repro.core.rdd``; this module provides the shared low-level pieces: a
straight-line decoder and an AT&T-flavoured formatter used in error
messages, dumps and tests.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from .encoding import decode_instruction
from .instructions import Instruction, Mem, Label, SymbolRef, SPECS
from .registers import reg_name


def disassemble_linear(code, start: int = 0,
                       end: Optional[int] = None) \
        -> Iterator[Tuple[int, Instruction]]:
    """Yield ``(offset, instruction)`` pairs, decoding sequentially.

    Stops at ``end`` (default: end of buffer).  Raises
    :class:`~repro.errors.EncodingError` on undecodable bytes.
    """
    pos = start
    limit = len(code) if end is None else end
    while pos < limit:
        instr, length = decode_instruction(code, pos)
        yield pos, instr
        pos += length


def _format_mem(mem: Mem) -> str:
    parts = []
    if mem.base is not None:
        parts.append(f"%{reg_name(mem.base)}")
    if mem.index is not None:
        parts.append(f"%{reg_name(mem.index)}*{mem.scale}")
    inner = " + ".join(parts) if parts else ""
    if mem.disp or not inner:
        sign = "+" if mem.disp >= 0 and inner else ""
        inner = f"{inner} {sign} {mem.disp:#x}".strip() if inner \
            else f"{mem.disp:#x}"
    return f"[{inner}]"


def _format_operand(operand) -> str:
    if isinstance(operand, Mem):
        return _format_mem(operand)
    if isinstance(operand, Label):
        return operand.name
    if isinstance(operand, SymbolRef):
        suffix = f"+{operand.addend:#x}" if operand.addend else ""
        return f"${operand.name}{suffix}"
    if isinstance(operand, int):
        return f"{operand:#x}"
    return repr(operand)


def format_instruction(instr: Instruction) -> str:
    """Render an instruction as readable assembly text."""
    spec = SPECS[instr.op]
    if not instr.operands:
        return spec.name
    sig = spec.sig
    rendered = []
    for i, operand in enumerate(instr.operands):
        if isinstance(operand, int) and sig in ("r", "rr") or \
                (isinstance(operand, int) and sig in ("ri64", "ri32", "rm")
                 and i == 0) or \
                (isinstance(operand, int) and sig == "mr" and i == 1):
            rendered.append(f"%{reg_name(operand)}")
        else:
            rendered.append(_format_operand(operand))
    return f"{spec.name} " + ", ".join(rendered)
