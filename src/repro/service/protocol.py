"""RA-TLS style session establishment (§III-A, §V-B).

The remote party and the bootstrap enclave run a Diffie-Hellman exchange;
the enclave binds its ephemeral public key into the quote's report data;
the party validates the quote through the attestation service and pins
the bootstrap's MRENCLAVE.  Both sides then derive mirrored channel keys
from the shared secret and the handshake transcript.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Optional, Union

from ..core.bootstrap import BootstrapEnclave
from ..crypto.channel import SecureChannel, derive_channel_keys
from ..crypto.dh import DHKeyPair
from ..errors import AttestationError, ProtocolError
from ..sgx.attestation import (
    AttestationService, check_attestation_report,
)


@dataclass
class CCaaSHost:
    """The untrusted platform hosting the bootstrap enclave.

    It relays messages and can observe every byte on the wire — which is
    exactly why everything it relays is encrypted and padded.
    """

    bootstrap: BootstrapEnclave
    attestation_service: AttestationService

    def __post_init__(self):
        platform = self.bootstrap.enclave.platform
        self.attestation_service.provision_platform(
            platform.platform_id, platform.verifying_key)

    # ECall relays -- the only ways into the enclave (P0).
    def ecall_receive_binary(self, blob: bytes, encrypted: bool = True):
        return self.bootstrap.enclave.ecall(
            "ecall_receive_binary", blob, encrypted=encrypted)

    def ecall_receive_userdata(self, data: bytes,
                               encrypted: bool = True):
        return self.bootstrap.enclave.ecall(
            "ecall_receive_userdata", data, encrypted=encrypted)

    def ecall_run(self, **kwargs):
        return self.bootstrap.enclave.ecall("ecall_run", **kwargs)

    def ecall_resume(self, blobs, **kwargs):
        """Relay a sealed checkpoint chain back into the enclave.  The
        host merely stores and forwards the blobs; the enclave
        authenticates them against the platform monotonic counter."""
        return self.bootstrap.enclave.ecall("ecall_resume", blobs,
                                            **kwargs)

    def ecall_ping(self):
        """Cheap liveness probe used by the fleet supervisor: answers
        only when the enclave instance is alive (a torn-down one raises
        at the ECall gate)."""
        return self.bootstrap.enclave.ecall("ecall_ping")

    def ensure_alive(self) -> bool:
        """The operator's recovery path: restart a torn-down bootstrap
        (same platform, same measured image, so the MRENCLAVE pin still
        holds).  Returns True when a recovery actually happened."""
        if self.bootstrap.enclave.destroyed:
            self.bootstrap.recover()
            return True
        return False


def establish_session(host: CCaaSHost, role: str,
                      expected_mrenclave: bytes,
                      party_seed: Optional[bytes] = None,
                      record_size: int = 256,
                      enclave_entropy: Union[bytes, Callable[[], bytes],
                                             None] = None) -> SecureChannel:
    """Run the full attested key agreement for ``role``.

    Returns the *party-side* channel endpoint; the mirrored enclave-side
    endpoint is attached to the bootstrap under ``role``.  Raises
    :class:`AttestationError` if the quote, the IAS report or the
    MRENCLAVE pin fails.

    The enclave-side handshake key is derived from a per-session entropy
    source — by default a fresh random exponent, never from the party's
    seed (a seed-derived enclave key would let a replayed handshake
    reproduce the channel keys).  ``enclave_entropy`` (bytes, or a
    zero-arg callable returning bytes) injects the source for tests.
    As a freshness check, the bootstrap remembers every handshake key it
    ever offered and rejects a repeat: a stale or broken entropy source
    fails loudly instead of silently rekeying an old session.
    """
    party_kp = DHKeyPair(party_seed)

    # Enclave side: fresh per-session key pair, quoted with the channel
    # binding.
    if callable(enclave_entropy):
        enclave_entropy = enclave_entropy()
    enclave_kp = DHKeyPair(enclave_entropy)
    enclave_pub = enclave_kp.public_bytes()
    if enclave_pub in host.bootstrap.handshake_keys:
        raise ProtocolError(
            "enclave handshake key reuse detected "
            "(stale entropy source or replayed handshake)")
    host.bootstrap.handshake_keys.add(enclave_pub)
    binding = hashlib.sha256(
        enclave_kp.public_bytes() + party_kp.public_bytes()).digest()
    quote = host.bootstrap.quote(binding.ljust(64, b"\x00"))

    # Party side: verify quote through the attestation service.
    report = host.attestation_service.verify_quote(quote.serialize())
    check_attestation_report(
        report, host.attestation_service.verifying_key,
        expected_mrenclave)
    if report.report_data[:32] != binding:
        raise AttestationError("channel binding mismatch in report data")

    transcript = enclave_kp.public_bytes() + party_kp.public_bytes() + \
        role.encode()
    party_secret = party_kp.shared_secret(enclave_kp.public)
    enclave_secret = enclave_kp.shared_secret(party_kp.public)

    party_channel = SecureChannel(
        *derive_channel_keys(party_secret, transcript, "client"),
        record_size=record_size)
    enclave_channel = SecureChannel(
        *derive_channel_keys(enclave_secret, transcript, "server"),
        record_size=record_size)
    host.bootstrap.attach_channel(enclave_channel, role)
    return party_channel
