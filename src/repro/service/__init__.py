"""Confidential computing as a service (CCaaS) layer.

Implements the paper's delegation model end to end: an untrusted host
runs the bootstrap enclave; a *code provider* delivers a proprietary
instrumented binary over its own attested channel; a *data owner*
attests the same bootstrap, approves the service-code measurement,
uploads encrypted data and receives encrypted, padded results.  Neither
party sees the other's secret; the host sees neither.
"""

from .protocol import CCaaSHost, establish_session
from .roles import CodeProvider, DataOwner
from .https_sim import HttpsServerSim, LoadGenerator, HttpsLoadResult
from .faults import FaultPlan, FaultyHost, run_campaign
from .resilient import (
    ResilientSession, RetryPolicy, SessionStats, TwoPartyWorkflow,
    classify_error,
)
from .fleet import Drone, FleetHost, build_fleet
from .scheduler import FleetScheduler, SessionJob

__all__ = [
    "CCaaSHost", "establish_session",
    "CodeProvider", "DataOwner",
    "HttpsServerSim", "LoadGenerator", "HttpsLoadResult",
    "FaultPlan", "FaultyHost", "run_campaign",
    "ResilientSession", "RetryPolicy", "SessionStats",
    "TwoPartyWorkflow", "classify_error",
    "Drone", "FleetHost", "build_fleet",
    "FleetScheduler", "SessionJob",
]
