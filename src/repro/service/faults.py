"""Deterministic fault injection at every CCaaS boundary.

DEFLECTION's threat model (§III-A) makes the host adversarial — yet the
happy-path service layer implicitly trusts it to relay bytes faithfully
and keep the enclave alive.  This module supplies the missing adversary:

* :class:`FaultPlan` — a seeded schedule of faults.  Every decision is
  drawn from one ``random.Random`` in call order and charged against a
  fault *budget*, so (a) a campaign driven by the same seed injects
  byte-identical faults, and (b) any retry loop with more attempts than
  the budget provably converges.
* :class:`FaultyHost` — a :class:`~repro.service.protocol.CCaaSHost`
  lookalike that mangles relayed ciphertext (corrupt / truncate /
  duplicate / reorder records), fails ECalls transiently, tears the
  enclave down mid-protocol (forcing re-EINIT and a fresh attested
  session), injects attestation-service outages into the handshake, and
  schedules dense AEX storms under ``ecall_run``.
* :func:`run_campaign` — the scripted chaos campaign behind
  ``repro chaos``: N independent trials of the full two-party flow
  driven through :class:`~repro.service.resilient.TwoPartyWorkflow`,
  with a deterministic JSON-ready report.

The plan mangles *wire images*, not plaintext: every fault a real host
could inject lands on ciphertext records, and detection is exactly what
the channel MAC / sequence numbers / measurement re-check provide.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Optional, Tuple

from ..core.bootstrap import BootstrapEnclave, ProvisionCache
from ..errors import AttestationOutage, EnclaveError, EnclaveTeardown
from ..policy.policies import PolicySet
from ..sgx.attestation import AttestationService
from ..vm.interrupts import AexSchedule
from .protocol import CCaaSHost
from .roles import CodeProvider, DataOwner

#: Wire fault kinds a malicious relay can apply to a record stream.
WIRE_FAULTS = ("corrupt", "truncate", "duplicate", "reorder")


# -- record-stream mutations (each detected by the channel layer) --------

def corrupt_wire(wire: bytes, rng: random.Random) -> bytes:
    """Flip one bit anywhere in the stream -> bad MAC."""
    pos = rng.randrange(len(wire))
    mutated = bytearray(wire)
    mutated[pos] ^= 1 << rng.randrange(8)
    return bytes(mutated)


def truncate_wire(wire: bytes, rng: random.Random,
                  record_len: int) -> bytes:
    """Cut the stream mid-record -> truncated record stream."""
    if len(wire) < 2:
        return b""
    cut = rng.randrange(1, len(wire))
    if cut % record_len == 0:
        cut -= 1
    return wire[:max(1, cut)]


def duplicate_record(wire: bytes, rng: random.Random,
                     record_len: int) -> bytes:
    """Replay one record in place -> sequence-bound MAC fails."""
    records = [wire[off:off + record_len]
               for off in range(0, len(wire), record_len)]
    index = rng.randrange(len(records))
    records.insert(index + 1, records[index])
    return b"".join(records)


def reorder_records(wire: bytes, rng: random.Random,
                    record_len: int) -> bytes:
    """Swap two records -> sequence-bound MAC fails.  Falls back to
    duplication for single-record streams."""
    count = len(wire) // record_len
    if count < 2:
        return duplicate_record(wire, rng, record_len)
    i = rng.randrange(count)
    j = rng.randrange(count - 1)
    if j >= i:
        j += 1
    records = [wire[off:off + record_len]
               for off in range(0, len(wire), record_len)]
    records[i], records[j] = records[j], records[i]
    return b"".join(records)


class FaultPlan:
    """Seeded, budgeted schedule of host faults.

    Probabilities are per-opportunity (per relayed message, per ECall,
    per handshake).  ``max_faults`` caps the total injections per plan:
    once the budget is spent the host behaves honestly, so a resilient
    session with ``max_faults + 2`` retry attempts always converges.
    """

    def __init__(self, seed: int, *,
                 p_wire: float = 0.25,
                 p_transient: float = 0.12,
                 p_teardown: float = 0.10,
                 p_outage: float = 0.15,
                 p_storm: float = 0.25,
                 mid_run: bool = False,
                 p_midrun: float = 0.45,
                 p_chain_corrupt: float = 0.20,
                 p_rollback: float = 0.20,
                 p_smc: float = 0.25,
                 max_faults: int = 8):
        self.seed = seed
        self.p_wire = p_wire
        self.p_transient = p_transient
        self.p_teardown = p_teardown
        self.p_outage = p_outage
        self.p_storm = p_storm
        #: Mid-run fault family (teardown after k instructions,
        #: checkpoint-chain corruption, rollback replay).  Gated behind
        #: a flag — not merely zero probabilities — so plans built
        #: without it draw the exact same random sequence as before the
        #: feature existed (campaign replays stay byte-identical).
        self.mid_run = mid_run
        self.p_midrun = p_midrun
        self.p_chain_corrupt = p_chain_corrupt
        self.p_rollback = p_rollback
        self.p_smc = p_smc
        self.max_faults = max_faults
        self.faults_remaining = max_faults
        #: Ordered log of every injected fault (replay evidence).
        self.injected: List[str] = []
        self._rng = random.Random(seed)

    def _charge(self, label: str) -> None:
        self.faults_remaining -= 1
        self.injected.append(label)

    def _chance(self, p: float) -> bool:
        return self.faults_remaining > 0 and self._rng.random() < p

    # -- draw sites -----------------------------------------------------

    def draw_ecall_fault(self, site: str) -> Optional[str]:
        """One ECall boundary: ``"teardown"``, ``"transient"`` or None."""
        if self._chance(self.p_teardown):
            self._charge(f"teardown@{site}")
            return "teardown"
        if self._chance(self.p_transient):
            self._charge(f"transient@{site}")
            return "transient"
        return None

    def draw_outage(self) -> bool:
        """One attestation-service round trip."""
        if self._chance(self.p_outage):
            self._charge("attestation_outage")
            return True
        return False

    def draw_storm(self) -> Optional[AexSchedule]:
        """One ``ecall_run``: maybe a dense, seeded AEX storm.

        The interval range straddles the P6 threshold on purpose: dense
        storms get trapped as violations (the defense engaging is a
        campaign outcome, not a failure), sparse ones ride through.
        """
        if self._chance(self.p_storm):
            mean = self._rng.randint(4, 90)
            storm_seed = self._rng.randrange(1 << 30)
            self._charge(f"aex_storm(mean={mean})")
            return AexSchedule(mean, jitter=0.3, seed=storm_seed)
        return None

    def draw_midrun_teardown(self) -> Optional[int]:
        """One checkpointed run: maybe tear the enclave down after
        ``k`` more instructions (realized at the next safe point)."""
        if not self.mid_run:
            return None
        if self._chance(self.p_midrun):
            k = self._rng.randint(30, 250)
            self._charge(f"midrun_teardown(k={k})")
            return k
        return None

    def draw_midrun_smc(self) -> Optional[int]:
        """One checkpointed run: maybe force a full code-cache flush
        after ``k`` more instructions (the self-modifying-code chaos
        knob).  The flush severs every chain edge and empties the
        inline caches mid-execution, yet is architecturally invisible
        — the run must retire the exact same steps and cycles.  Drawn
        after the teardown draw so teardown-only replays from earlier
        plans keep their injection points."""
        if not self.mid_run:
            return None
        if self._chance(self.p_smc):
            k = self._rng.randint(30, 250)
            self._charge(f"midrun_smc(k={k})")
            return k
        return None

    def draw_chain_attack(self) -> Optional[str]:
        """One ``ecall_resume``: maybe doctor the relayed chain —
        ``"corrupt"`` (bit-flip a sealed blob) or ``"rollback"``
        (withhold the newest checkpoint, replaying chain ``n-1``).
        Both must be rejected fail-closed by the enclave."""
        if not self.mid_run:
            return None
        if self._chance(self.p_chain_corrupt):
            self._charge("checkpoint_corrupt")
            return "corrupt"
        if self._chance(self.p_rollback):
            self._charge("rollback_replay")
            return "rollback"
        return None

    def mangle_wire(self, wire: bytes,
                    record_len: int) -> Tuple[bytes, Optional[str]]:
        """One relayed message: maybe mutate the record stream."""
        if not wire or not self._chance(self.p_wire):
            return wire, None
        kind = self._rng.choice(WIRE_FAULTS)
        if kind == "corrupt":
            mutated = corrupt_wire(wire, self._rng)
        elif kind == "truncate":
            mutated = truncate_wire(wire, self._rng, record_len)
        elif kind == "duplicate":
            mutated = duplicate_record(wire, self._rng, record_len)
        else:
            mutated = reorder_records(wire, self._rng, record_len)
        self._charge(f"wire_{kind}")
        return mutated, kind

    def mangle_blob(self, blob: bytes) -> Tuple[bytes, Optional[str]]:
        """One plaintext-relayed blob (the bench path has no session
        channel): corrupt or truncate — detected by the measurement
        re-check or the object parser, never silently accepted."""
        if not blob or not self._chance(self.p_wire):
            return blob, None
        if self._rng.random() < 0.5:
            mutated, kind = corrupt_wire(blob, self._rng), "corrupt"
        else:
            cut = self._rng.randrange(1, len(blob))
            mutated, kind = blob[:cut], "truncate"
        self._charge(f"blob_{kind}")
        return mutated, kind


class _FlakyAttestationService:
    """``verify_quote`` proxy that injects plan-driven outages."""

    def __init__(self, service: AttestationService, plan: FaultPlan):
        self._service = service
        self._plan = plan

    @property
    def verifying_key(self):
        return self._service.verifying_key

    def provision_platform(self, platform_id, key) -> None:
        self._service.provision_platform(platform_id, key)

    def verify_quote(self, quote_bytes: bytes):
        if self._plan.draw_outage():
            raise AttestationOutage(
                "injected attestation service outage")
        return self._service.verify_quote(quote_bytes)


class FaultyHost:
    """Adversarial/unreliable :class:`CCaaSHost` wrapper.

    Exposes the exact host surface the parties use — ``bootstrap``,
    ``attestation_service``, the three ECall relays, ``ensure_alive`` —
    and consults the :class:`FaultPlan` at every boundary.  Teardown
    faults genuinely destroy the enclave (subsequent ECalls raise
    :class:`EnclaveTeardown` until someone recovers it); wire faults
    mutate the relayed ciphertext so detection happens where it would in
    production: the enclave-side channel MAC.
    """

    def __init__(self, host: CCaaSHost, plan: FaultPlan,
                 record_size: int = 256):
        self.host = host
        self.plan = plan
        #: On-the-wire record framing: ciphertext body + 32-byte MAC.
        self.record_len = record_size + 32
        self._attestation = _FlakyAttestationService(
            host.attestation_service, plan)

    @property
    def bootstrap(self) -> BootstrapEnclave:
        return self.host.bootstrap

    @property
    def attestation_service(self) -> _FlakyAttestationService:
        return self._attestation

    def ensure_alive(self) -> bool:
        return self.host.ensure_alive()

    def ecall_ping(self):
        """Liveness probes pass through un-mangled: a heartbeat is not
        a relayed message, and drawing plan randomness here would shift
        the injection points of pre-existing campaign replays."""
        return self.host.ecall_ping()

    def _gate(self, site: str) -> None:
        fault = self.plan.draw_ecall_fault(site)
        if fault == "teardown":
            self.host.bootstrap.enclave.destroy()
            raise EnclaveTeardown(
                f"injected enclave teardown before {site}")
        if fault == "transient":
            raise EnclaveError(
                f"injected transient host failure before {site}")

    def ecall_receive_binary(self, blob: bytes, encrypted: bool = True):
        if encrypted:
            blob, _ = self.plan.mangle_wire(blob, self.record_len)
        self._gate("ecall_receive_binary")
        return self.host.ecall_receive_binary(blob, encrypted=encrypted)

    def ecall_receive_userdata(self, data: bytes,
                               encrypted: bool = True):
        if encrypted:
            data, _ = self.plan.mangle_wire(data, self.record_len)
        self._gate("ecall_receive_userdata")
        return self.host.ecall_receive_userdata(data, encrypted=encrypted)

    def _arm_midrun(self, kwargs: dict) -> dict:
        """Maybe schedule a teardown ``k`` instructions into the run,
        realized cooperatively at the next checkpoint safe point (the
        simulator cannot interrupt the VM asynchronously)."""
        if kwargs.get("checkpoint_every") is None or \
                "interrupt" in kwargs:
            return kwargs
        k = self.plan.draw_midrun_teardown()
        k_smc = self.plan.draw_midrun_smc()
        if k is None and k_smc is None:
            return kwargs
        bootstrap = self.host.bootstrap
        start = None
        smc_pending = k_smc is not None

        def interrupt(cpu):
            nonlocal start, smc_pending
            if start is None:
                start = cpu.steps
            if smc_pending and cpu.steps >= start + k_smc:
                # SMC chaos: flush the whole text segment's translated
                # code.  Chains sever, inline caches drop, and the run
                # must still retire bit-identically.
                smc_pending = False
                loaded = bootstrap.loaded
                cpu.space.invalidate_code_range(loaded.code_base,
                                                loaded.code_len)
            if k is not None and cpu.steps >= start + k:
                bootstrap.enclave.destroy()
                raise EnclaveTeardown(
                    f"injected mid-run teardown at step {cpu.steps}")

        kwargs = dict(kwargs)
        kwargs["interrupt"] = interrupt
        return kwargs

    def ecall_run(self, **kwargs):
        self._gate("ecall_run")
        if "aex_schedule" not in kwargs:
            storm = self.plan.draw_storm()
            if storm is not None:
                kwargs["aex_schedule"] = storm
        return self.host.ecall_run(**self._arm_midrun(kwargs))

    def ecall_resume(self, blobs, **kwargs):
        """Relay a checkpoint chain — possibly doctored: a corrupt blob
        or a rollback replay (chain with the newest checkpoint
        withheld).  Detection is enclave-side, exactly where it must
        be: the chain MACs and the platform monotonic counter."""
        self._gate("ecall_resume")
        blobs = list(blobs)
        attack = self.plan.draw_chain_attack()
        if attack == "corrupt" and blobs:
            victim = self.plan._rng.randrange(len(blobs))
            blobs[victim] = corrupt_wire(blobs[victim], self.plan._rng)
        elif attack == "rollback":
            blobs = blobs[:-1]
        return self.host.ecall_resume(blobs, **self._arm_midrun(kwargs))


# -- the scripted chaos campaign (``repro chaos``) -----------------------

#: The campaign's service program: recv -> checksum -> send + report.
CAMPAIGN_SRC = """
char buf[64];
int main() {
    int n = __recv(buf, 64);
    int sum = 0;
    int i;
    for (i = 0; i < n; i++) sum += buf[i];
    buf[0] = sum % 256;
    __send(buf, 1);
    __report(sum);
    return sum;
}
"""

#: Long-running variant for fleet campaigns: same checksum, iterated
#: ``FLEET_LONG_ROUNDS`` times, so the run spans many checkpoint safe
#: points and can be preempted/killed mid-flight and resumed.  Expected
#: report value: ``FLEET_LONG_ROUNDS * sum(data)``.
FLEET_LONG_ROUNDS = 40
FLEET_LONG_SRC = f"""
char buf[64];
int main() {{
    int n = __recv(buf, 64);
    int sum = 0;
    int round;
    int i;
    for (round = 0; round < {FLEET_LONG_ROUNDS}; round++) {{
        for (i = 0; i < n; i++) sum += buf[i];
    }}
    buf[0] = sum % 256;
    __send(buf, 1);
    __report(sum);
    return sum;
}}
"""


def run_campaign(seed: int = 2021, trials: int = 20,
                 data: bytes = bytes(range(16)),
                 aex_threshold: int = 25,
                 max_faults: int = 8,
                 mid_run: bool = False,
                 checkpoint_every: int = 25) -> dict:
    """Run ``trials`` independent faulted two-party flows; return a
    deterministic JSON-ready report.

    With ``mid_run=True`` the runs are checkpointed
    (``checkpoint_every`` instructions per sealed checkpoint) and the
    fault plan additionally tears the enclave down *mid-execution*,
    corrupts relayed checkpoint chains, and replays stale ones — so the
    campaign exercises resume-from-checkpoint recovery and fail-closed
    rollback rejection on top of the boundary faults.

    Each trial gets its own bootstrap, host and seeded
    :class:`FaultPlan`; all trials share one
    :class:`~repro.core.bootstrap.ProvisionCache`, so every re-delivery
    after the first verified provisioning — including re-deliveries
    forced by enclave recoveries — skips RDD/verify/rewrite (recovery is
    cheap by construction).  Trial outcomes are classified as:

    * ``ok`` — completed, result decrypted and cross-checked;
    * ``violation`` — a policy trapped (e.g. P6 detecting an injected
      AEX storm): the defense engaged, never retried;
    * ``corrupt`` — completed but wrong result (must never happen);
    * ``aborted:<Error>`` — a fatal classification or an exhausted
      retry budget surfaced to the caller.
    """
    from .resilient import RetryPolicy, SessionStats, TwoPartyWorkflow

    expected_sum = sum(data)
    expected_plain = bytes([expected_sum % 256])
    cache = ProvisionCache()
    policies = PolicySet.full()
    trial_rows = []
    totals = {"ok": 0, "violation": 0, "fault": 0, "corrupt": 0,
              "aborted": 0, "retries": 0, "reconnects": 0,
              "recoveries": 0, "fatal_errors": 0, "faults_injected": 0,
              "audit_recoveries": 0, "resumes": 0,
              "rollbacks_rejected": 0, "smc_flushes": 0}
    campaign_stats = SessionStats()
    run_kwargs = {"checkpoint_every": checkpoint_every} if mid_run \
        else {}

    for trial in range(trials):
        plan = FaultPlan(seed * 1_000_003 + trial,
                         max_faults=max_faults, mid_run=mid_run)
        boot = BootstrapEnclave(policies=policies,
                                aex_threshold=aex_threshold,
                                provision_cache=cache)
        host = FaultyHost(CCaaSHost(boot, AttestationService()), plan)
        provider = CodeProvider(CAMPAIGN_SRC, policies)
        owner = DataOwner(data=data)
        owner.approved_hashes.append(
            hashlib.sha256(provider.build()).digest())
        workflow = TwoPartyWorkflow(
            host, provider, owner,
            retry=RetryPolicy(max_attempts=max_faults + 2,
                              seed=seed + trial))
        try:
            outcome, plaintext = workflow.execute(**run_kwargs)
            if outcome.ok:
                good = (plaintext == [expected_plain]
                        and outcome.reports == [expected_sum])
                status = "ok" if good else "corrupt"
            else:
                status = outcome.status
        except Exception as exc:  # fatal classes + exhausted budgets
            status = f"aborted:{type(exc).__name__}"
        stats = workflow.combined_stats()
        campaign_stats.merge(stats)
        key = status.split(":", 1)[0]
        totals[key] = totals.get(key, 0) + 1
        totals["faults_injected"] += len(plan.injected)
        totals["smc_flushes"] += sum(
            1 for label in plan.injected
            if label.startswith("midrun_smc"))
        totals["audit_recoveries"] += boot.audit.count("recovered")
        trial_rows.append({
            "trial": trial,
            "status": status,
            "faults": list(plan.injected),
            "retries": stats.retries,
            "reconnects": stats.reconnects,
            "recoveries": stats.recoveries,
            "resumes": stats.resumes,
            "rollbacks_rejected": stats.rollbacks_rejected,
            "audit_chain_ok": boot.audit.verify_chain(),
            "audit_recovered_events": boot.audit.count("recovered"),
        })

    for field in ("retries", "reconnects", "recoveries",
                  "fatal_errors", "resumes", "rollbacks_rejected"):
        totals[field] = getattr(campaign_stats, field)
    totals["unrecovered"] = sum(
        1 for row in trial_rows
        if row["status"] == "aborted:RetryBudgetExceeded")
    return {
        "schema": "deflection-chaos/1",
        "seed": seed,
        "trials": trials,
        "mid_run": mid_run,
        "totals": totals,
        "retried_error_kinds": dict(
            sorted(campaign_stats.retried_kinds.items())),
        "fatal_error_kinds": dict(
            sorted(campaign_stats.fatal_kinds.items())),
        "provision_cache": cache.stats(),
        "trials_detail": trial_rows,
    }


# -- fleet-scoped chaos ---------------------------------------------------

class FleetFaultPlan:
    """Seeded, budgeted chaos against a whole fleet.

    Where :class:`FaultPlan` attacks one host's boundaries,
    this plan attacks the *fleet* between supervision ticks: kill a
    drone (idle teardown, or an armed mid-run kill realized at the
    victim's next checkpointed safe point), storm a subset of drones
    (their next ``n`` heartbeats fail, driving the quarantine path),
    or outage the shared attestation service under load (every
    re-attesting session fleet-wide sees it).  One ``random.Random``
    drawn in tick order plus an event budget keep campaigns
    byte-identical per seed and provably convergent: once the budget
    is spent the fleet heals and the scheduler drains the queue.
    """

    def __init__(self, seed: int, *,
                 p_kill: float = 0.20,
                 p_storm: float = 0.25,
                 p_outage: float = 0.15,
                 max_events: int = 10):
        self.seed = seed
        self.p_kill = p_kill
        self.p_storm = p_storm
        self.p_outage = p_outage
        self.max_events = max_events
        self.events_remaining = max_events
        self.injected: List[str] = []
        self._rng = random.Random(f"fleet:{seed}")

    def _charge(self, label: str) -> None:
        self.events_remaining -= 1
        self.injected.append(label)

    def _chance(self, p: float) -> bool:
        return self.events_remaining > 0 and self._rng.random() < p

    def apply_tick(self, scheduler) -> None:
        """Draw this tick's events against ``scheduler``'s fleet."""
        drones = sorted(scheduler.drones.values(),
                        key=lambda d: d.drone_id)
        if self._chance(self.p_kill):
            victim = self._rng.choice(drones)
            if self._rng.random() < 0.5:
                if not victim.bootstrap.enclave.destroyed:
                    victim.bootstrap.enclave.destroy()
                self._charge(f"kill_idle@{victim.drone_id}")
            else:
                k = self._rng.randint(100, 800)
                victim.host.arm_kill(k)
                self._charge(f"kill_midrun@{victim.drone_id}(k={k})")
        if self._chance(self.p_storm):
            count = self._rng.randint(1, max(1, len(drones) // 2))
            fails = self._rng.randint(2, 5)
            subset = self._rng.sample(drones, count)
            for drone in subset:
                drone.host.fail_pings(fails)
            names = ",".join(d.drone_id for d in subset)
            self._charge(f"storm({names},n={fails})")
        if self._chance(self.p_outage):
            calls = self._rng.randint(1, 3)
            drones[0].attestation.schedule_outage(calls)
            self._charge(f"attestation_outage(calls={calls})")


def run_fleet_campaign(seed: int = 2021, *,
                       drones: int = 4,
                       jobs: int = 12,
                       long_every: int = 4,
                       tenants: int = 3,
                       max_events: int = 10,
                       max_ticks: int = 300,
                       checkpoint_every: int = 200,
                       quantum_steps: int = 4000) -> dict:
    """Drive a fleet through a seeded chaos campaign; JSON-ready report.

    ``jobs`` sessions across ``tenants`` tenants are submitted up
    front (every ``long_every``-th is a long checkpointed job, so the
    kill/preempt/migrate machinery is actually exercised); a
    :class:`FleetFaultPlan` fires between supervision ticks.  The
    invariants the caller (``repro chaos --fleet``) asserts:

    * zero lost sessions — every admitted job reached a terminal state
      within ``max_ticks``;
    * zero corrupt results — every completed job's plaintext and
      report match the analytic expectation;
    * no accepted rollbacks — chain rejections only ever show up as
      ``rollbacks_rejected`` + a from-scratch rerun.
    """
    from .fleet import build_fleet
    from .scheduler import FleetScheduler, SessionJob

    fleet = build_fleet(drones)
    scheduler = FleetScheduler(fleet, seed=seed)
    plan = FleetFaultPlan(seed, max_events=max_events)
    expected = {}
    for index in range(jobs):
        tenant = f"tenant-{index % tenants}"
        data = bytes((seed + index + offset) % 251
                     for offset in range(8 + index % 5))
        long = index % long_every == long_every - 1
        job = SessionJob(
            f"job-{index}", tenant,
            FLEET_LONG_SRC if long else CAMPAIGN_SRC, data,
            priority=1 if long else 5,
            checkpoint_every=checkpoint_every if long else None,
            quantum_steps=quantum_steps if long else None)
        rounds = FLEET_LONG_ROUNDS if long else 1
        expected[job.job_id] = rounds * sum(data)
        scheduler.submit(job)

    ticks = 0
    while scheduler.pending and ticks < max_ticks:
        plan.apply_tick(scheduler)
        scheduler.tick()
        ticks += 1

    corrupt = []
    for job in scheduler.jobs.values():
        if job.state != "done" or not job.outcome.ok:
            continue
        want = expected[job.job_id]
        if job.outcome.reports != [want] or \
                job.plaintexts != [bytes([want % 256])]:
            corrupt.append(job.job_id)
    report = scheduler.report()
    report.update({
        "schema": "deflection-fleet-chaos/1",
        "seed": seed,
        "faults": list(plan.injected),
        "faults_injected": len(plan.injected),
        "corrupt": corrupt,
        "zero_lost": not report["lost"],
    })
    return report


# -- pipeline chaos ------------------------------------------------------

#: Handoff attacks a malicious relay can mount between two stages.
#: ``lose`` drops the sealed handoff entirely (forcing a stale-chain
#: discard-and-rerun of the producer); the rest present doctored bytes
#: or doctored provenance links that chain verification must reject.
HANDOFF_FAULTS = ("corrupt", "lose", "reorder", "truncate",
                  "splice", "replay")


class PipelineFaultPlan:
    """Seeded, budgeted chaos schedule for a multi-enclave pipeline.

    Two layers share one budget discipline:

    * *per-hop host faults* — each stage's :class:`FaultyHost` runs
      under its own derived :class:`FaultPlan` (wire mangling,
      transient ECall failures, teardowns including **mid-run** ones,
      attestation outages).  Storms and checkpoint-chain attacks are
      excluded on purpose: a storm is trapped as a violation (a
      correct outcome, but not a *lost-work recovery* scenario) and a
      doctored chain forces a from-scratch fallback — both would break
      the campaign's "every mid-hop teardown is recovered by resume at
      that hop" invariant that this plan exists to exercise.
    * *pipeline-level events* — drawn from this plan's own RNG:
      handoff attacks between stages (:data:`HANDOFF_FAULTS`), stalled
      stages (a tiny watchdog budget, so the hop blows its deadline
      and must requeue from its sealed chain), and platform
      quarantines (the stage is re-provisioned on a healthy drone and
      the provenance chain spliced with a ``migrated`` link; at most
      one per hop so recovery options are never exhausted by the plan
      itself).
    """

    def __init__(self, seed: int, *,
                 p_handoff: float = 0.45,
                 p_stall: float = 0.25,
                 p_quarantine: float = 0.15,
                 max_events: int = 6,
                 hop_max_faults: int = 4,
                 hop_mid_run: bool = True):
        self.seed = seed
        self.p_handoff = p_handoff
        self.p_stall = p_stall
        self.p_quarantine = p_quarantine
        self.max_events = max_events
        self.events_remaining = max_events
        self.hop_max_faults = hop_max_faults
        self.hop_mid_run = hop_mid_run
        #: Ordered log of every pipeline-level event (replay evidence).
        self.injected: List[str] = []
        self._rng = random.Random(f"pipeline:{seed}")
        self._hop_plans = {}
        self._quarantined_hops = set()

    def _charge(self, label: str) -> None:
        self.events_remaining -= 1
        self.injected.append(label)

    def _chance(self, p: float) -> bool:
        return self.events_remaining > 0 and self._rng.random() < p

    def hop_plan(self, hop: int) -> FaultPlan:
        """The derived per-hop host fault plan (cached per hop)."""
        plan = self._hop_plans.get(hop)
        if plan is None:
            plan = FaultPlan(self.seed * 1_000_003 + hop * 31 + 7,
                             mid_run=self.hop_mid_run,
                             p_storm=0.0,
                             p_chain_corrupt=0.0,
                             p_rollback=0.0,
                             max_faults=self.hop_max_faults)
            self._hop_plans[hop] = plan
        return plan

    def draw_handoff(self, hop: int) -> Optional[str]:
        """One stage handoff: maybe attack it (see
        :data:`HANDOFF_FAULTS`)."""
        if self._chance(self.p_handoff):
            kind = self._rng.choice(HANDOFF_FAULTS)
            self._charge(f"handoff_{kind}@hop{hop}")
            return kind
        return None

    def draw_stall(self, hop: int) -> Optional[int]:
        """One hop execution: maybe a tiny watchdog budget, so the hop
        stalls mid-run and must requeue from its sealed chain."""
        if self._chance(self.p_stall):
            budget = self._rng.randint(40, 120)
            self._charge(f"stall(budget={budget})@hop{hop}")
            return budget
        return None

    def draw_quarantine(self, hop: int) -> bool:
        """One hop execution: maybe quarantine the stage's platform
        (at most once per hop for the whole plan)."""
        if hop in self._quarantined_hops:
            return False
        if self._chance(self.p_quarantine):
            self._quarantined_hops.add(hop)
            self._charge(f"quarantine@hop{hop}")
            return True
        return False

    def all_injected(self) -> List[str]:
        """Pipeline-level events plus every hop plan's host faults."""
        out = list(self.injected)
        for hop in sorted(self._hop_plans):
            out.extend(f"hop{hop}:{label}"
                       for label in self._hop_plans[hop].injected)
        return out


def _pipeline_data(trial: int, length: int = 72) -> bytes:
    """Deterministic per-trial input with uppercase bytes interleaved
    throughout, so the genomics filter stage never emits an empty
    chunk."""
    rng = random.Random(f"pipeline-data:{trial}")
    out = bytearray()
    while len(out) < length:
        out.append(rng.randrange(65, 91))
        out.append(rng.randrange(0, 256))
    return bytes(out[:length])


def _pipeline_trial(seed: int, trial: int, cache: ProvisionCache, *,
                    chunk_size: int, window: int,
                    checkpoint_every: int) -> Tuple[dict, object]:
    """One faulted pipeline flow; returns ``(row, run)``.

    The row contains only deterministic fields (no wall-clock, no
    cache state), so re-running the same trial must serialize
    byte-identically — the campaign's replay invariant.
    """
    from .pipeline import (PipelineOrchestrator, serial_oracle,
                           topology_stages, TOPOLOGIES)
    topology = TOPOLOGIES[trial % len(TOPOLOGIES)]
    mode = "stream" if (trial // len(TOPOLOGIES)) % 2 else "batch"
    stages = topology_stages(topology)
    data = _pipeline_data(trial)
    plan = PipelineFaultPlan(seed * 1_000_003 + trial)
    orch = PipelineOrchestrator(
        stages, pipeline_id=f"chaos-{seed}-t{trial}",
        topology=topology, seed=seed + trial, fault_plan=plan,
        provision_cache=cache, checkpoint_every=checkpoint_every,
        sleep=None)
    if mode == "stream":
        run = orch.run_streaming(data, chunk_size=chunk_size,
                                 window=window)
        oracle, _ = serial_oracle(stages, data, chunk_size=chunk_size,
                                  provision_cache=cache)
    else:
        run = orch.run(data)
        oracle, _ = serial_oracle(stages, data,
                                  provision_cache=cache)
    identical = bool(run.ok and run.output == oracle)
    midrun = sum(1 for label in plan.all_injected()
                 if "midrun_teardown" in label)
    row = {
        "trial": trial,
        "topology": topology,
        "mode": mode,
        "status": run.status,
        "identical": identical,
        "chain_verified": bool(run.chain_verified),
        "chunks": run.chunks,
        "upstream_excess": run.upstream_reruns,
        "output_sha256": hashlib.sha256(run.output).hexdigest(),
        "counters": {k: v for k, v in sorted(run.counters.items())},
        "stats": run.stats.as_dict(),
        "midrun_teardowns": midrun,
        "faults": plan.all_injected(),
    }
    return row, run


def run_pipeline_campaign(seed: int = 2021, trials: int = 6, *,
                          chunk_size: int = 24, window: int = 2,
                          checkpoint_every: int = 25) -> dict:
    """Drive ``trials`` faulted pipelines (alternating topology and
    batch/stream mode) and return a deterministic JSON-ready report.

    Invariants the report asserts (and ``repro chaos --pipeline``
    enforces):

    * **zero lost** — every pipeline completes ``ok`` despite wire
      faults, transient ECall failures, mid-hop teardowns, outages,
      handoff attacks, stalls and quarantines;
    * **zero accepted attacks** — no doctored handoff (corrupt bytes,
      spliced / reordered / truncated / replayed chain) is ever
      accepted by chain verification;
    * **byte-identical** — every chain-verified output equals the
      unfaulted serial oracle's, per trial;
    * **resume-at-hop** — every mid-hop teardown is recovered by
      checkpoint resume at that hop: ``upstream_excess`` (completed
      runs beyond one per hop per chunk, net of explicit
      discard-reruns) is zero everywhere;
    * **byte-identical replay** — re-running trial 0 from the same
      seed serializes to the exact same row.
    """
    from .resilient import SessionStats
    cache = ProvisionCache()
    campaign_stats = SessionStats()
    rows = []
    totals = {
        "ok": 0, "lost": 0, "identical": 0,
        "handoffs_rejected": 0, "chain_attacks_rejected": 0,
        "attacks_accepted": 0, "discard_reruns": 0,
        "migrations": 0, "stalls": 0, "midrun_teardowns": 0,
        "resumes": 0, "upstream_excess": 0, "faults_injected": 0,
    }
    for trial in range(trials):
        row, run = _pipeline_trial(
            seed, trial, cache, chunk_size=chunk_size, window=window,
            checkpoint_every=checkpoint_every)
        rows.append(row)
        campaign_stats.merge(run.stats)
        totals["ok"] += int(run.ok)
        totals["lost"] += int(not run.ok)
        totals["identical"] += int(row["identical"])
        totals["handoffs_rejected"] += \
            run.counters["handoffs_rejected"]
        totals["chain_attacks_rejected"] += \
            run.counters["chain_attacks_rejected"]
        totals["attacks_accepted"] += run.counters["attacks_accepted"]
        totals["discard_reruns"] += run.counters["discard_reruns"]
        totals["migrations"] += run.counters["migrations"]
        totals["stalls"] += run.counters["stalls"]
        totals["midrun_teardowns"] += row["midrun_teardowns"]
        totals["resumes"] += run.stats.resumes
        totals["upstream_excess"] += row["upstream_excess"]
        totals["faults_injected"] += len(row["faults"])
    replay_row, _ = _pipeline_trial(
        seed, 0, ProvisionCache(), chunk_size=chunk_size,
        window=window, checkpoint_every=checkpoint_every)
    import json as _json
    replay_identical = _json.dumps(replay_row, sort_keys=True) == \
        _json.dumps(rows[0], sort_keys=True)
    return {
        "schema": "deflection-pipeline-chaos/1",
        "seed": seed,
        "trials": trials,
        "totals": totals,
        "zero_lost": totals["lost"] == 0,
        "all_identical": totals["identical"] == trials,
        "zero_attacks_accepted": totals["attacks_accepted"] == 0,
        "zero_upstream_excess": totals["upstream_excess"] == 0,
        "replay_identical": replay_identical,
        "retried_error_kinds": dict(
            sorted(campaign_stats.retried_kinds.items())),
        "fatal_error_kinds": dict(
            sorted(campaign_stats.fatal_kinds.items())),
        "provision_cache": cache.stats(),
        "trials_detail": rows,
    }
