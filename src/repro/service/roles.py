"""The two remote parties of the DEFLECTION model.

:class:`CodeProvider` owns a proprietary MiniC service program.  It
compiles and instruments the program with the agreed policy set, attests
the bootstrap, and ships the binary over its encrypted channel — the
data owner never sees the code.

:class:`DataOwner` attests the same bootstrap, learns only the *hash* of
the service binary (which it must approve), uploads sensitive data over
its own channel, and decrypts the padded results.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional

from ..compiler.frontend import CodeGenerator
from ..core.bootstrap import RunOutcome
from ..crypto.channel import SecureChannel
from ..errors import ProtocolError
from ..policy.policies import PolicySet
from .protocol import CCaaSHost, establish_session


@dataclass
class CodeProvider:
    """Service provider with a proprietary program."""

    source: str
    policies: PolicySet
    name: str = "provider"
    entry: str = "main"
    _channel: Optional[SecureChannel] = field(default=None, repr=False)
    binary_hash: bytes = b""

    def build(self) -> bytes:
        """Compile + instrument; returns the serialized object."""
        generator = CodeGenerator(self.policies)
        blob = generator.compile(self.source, entry=self.entry).serialize()
        self.binary_hash = hashlib.sha256(blob).digest()
        return blob

    def connect(self, host: CCaaSHost, expected_mrenclave: bytes,
                seed: bytes = None) -> None:
        self._channel = establish_session(
            host, "provider", expected_mrenclave,
            party_seed=seed or self.name.encode())

    def deliver(self, host: CCaaSHost) -> bytes:
        """Encrypt and upload the binary; returns the enclave-computed
        measurement of the delivered blob."""
        if self._channel is None:
            raise ProtocolError("provider not connected")
        blob = self.build()
        measurement = host.ecall_receive_binary(
            self._channel.seal(blob), encrypted=True)
        if measurement != self.binary_hash:
            raise ProtocolError("enclave reported a different binary hash")
        return measurement


@dataclass
class DataOwner:
    """Remote user with sensitive data."""

    data: bytes
    name: str = "owner"
    #: Service-code hashes this owner is willing to run on her data.
    approved_hashes: List[bytes] = field(default_factory=list)
    _channel: Optional[SecureChannel] = field(default=None, repr=False)

    def connect(self, host: CCaaSHost, expected_mrenclave: bytes,
                seed: bytes = None) -> None:
        self._channel = establish_session(
            host, "owner", expected_mrenclave,
            party_seed=seed or self.name.encode())

    def approve_code(self, measurement: bytes) -> None:
        """§III-A: the data owner already knows the hash of the service
        code; feeding data requires the enclave-reported hash to match."""
        if measurement not in self.approved_hashes:
            raise ProtocolError(
                "service code measurement not approved by data owner")

    def upload(self, host: CCaaSHost) -> int:
        if self._channel is None:
            raise ProtocolError("owner not connected")
        return host.ecall_receive_userdata(
            self._channel.seal(self.data), encrypted=True)

    def decrypt_results(self, outcome: RunOutcome) -> List[bytes]:
        """Open the padded ciphertext records the enclave sent."""
        if self._channel is None:
            raise ProtocolError("owner not connected")
        return [self._channel.open(wire) for wire in outcome.sent_wire]
