"""Fleet scheduler: admission, supervision, dispatch, failover.

The supervisor half of the fleet (see :mod:`repro.service.fleet`).
A :class:`FleetScheduler` owns a pool of drones and a priority queue
of :class:`SessionJob`\\ s — each one full two-party flow (deliver,
approve, upload, run, decrypt) for some tenant — and advances in
discrete supervision **ticks**.  Everything is virtual-time and
seeded: two schedulers built from the same inputs make byte-identical
decisions, which is what lets the fleet bench gate on deterministic
latency percentiles.

Each tick does three passes:

1. **Health.**  Every in-service drone is heartbeat-probed through the
   cheap ``ecall_ping``.  A *destroyed* instance is replaced at once —
   a fresh EINIT on the same platform, so any parked chain stays
   resumable.  An unresponsive-but-alive drone accumulates
   ``consecutive_failures``; at the threshold it is quarantined with
   exponential re-admission backoff (``base * 2**round``, exponent
   clamped), and a failed re-admission probe doubles the backoff — a
   flapping enclave gets exponentially less supervision traffic.
2. **Un-parking.**  Preempted/orphaned jobs pinned to a platform whose
   drone came back are first in line; a pin older than
   ``max_pin_ticks`` is broken by *discarding the chain* and requeueing
   the job for a from-scratch rerun on any healthy drone (counted in
   ``chains_discarded`` — the cross-platform failover cost).
3. **Dispatch.**  Ready drones pull jobs in (priority, FIFO) order.  A
   checkpointed job may only land on a drone whose platform does not
   already own another job's live chain (monotonic counters are
   strictly consecutive per platform — two interleaved chains would
   poison each other).  Long jobs run under a step-quantum that raises
   :class:`~repro.errors.SessionPreempted` at a safe point; the sealed
   chain is harvested from the workflow and the job parks, pinned to
   the platform that sealed it.

Admission is bounded on both axes — global queue depth and per-tenant
in-flight quota — and sheds with a typed
:class:`~repro.errors.AdmissionRejected` instead of queueing
unboundedly.  Every *admitted* job ends in exactly one terminal state
(``done`` or ``aborted:<kind>``); the report's ``lost`` count is the
invariant the chaos campaign asserts to be zero.

Rollback handling stays where PR 5 put it: a chain the enclave rejects
is discarded and the attempt falls back to a full rerun inside
:class:`~repro.service.resilient.TwoPartyWorkflow`; the scheduler only
ever *observes* ``rollbacks_rejected`` — it never re-presents a
rejected chain.
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import (
    AdmissionRejected, AttestationOutage, ProtocolError, ReproError,
    RetryBudgetExceeded, SessionPreempted,
)
from ..policy.policies import PolicySet
from .fleet import Drone, QUARANTINED, READY
from .resilient import RetryPolicy, SessionStats, TwoPartyWorkflow
from .roles import CodeProvider, DataOwner

#: Job terminal states (everything else is in flight).
DONE = "done"


@dataclass
class SessionJob:
    """One tenant session: a two-party flow the fleet must complete.

    ``checkpoint_every`` makes the run checkpointed (and therefore
    preemptible/migratable); ``quantum_steps`` additionally preempts it
    after that many instructions per dispatch, yielding the drone.
    """

    job_id: str
    tenant: str
    source: str
    data: bytes
    priority: int = 5
    checkpoint_every: Optional[int] = None
    quantum_steps: Optional[int] = None
    max_steps: int = 2_000_000

    # -- supervisor-owned state ----------------------------------------
    state: str = "queued"
    submitted_tick: int = 0
    finished_tick: Optional[int] = None
    parked_tick: Optional[int] = None
    dispatches: int = 0
    requeues: int = 0
    preemptions: int = 0
    #: Sealed chain harvested from the last dispatch (platform-bound).
    checkpoints: List[bytes] = field(default_factory=list)
    #: Drone whose platform the chain is sealed for, while parked.
    pinned_drone: Optional[str] = None
    #: EINIT instance that started the current chain — compared against
    #: the instance that finishes the job to detect a migration.
    chain_origin: Optional[str] = None
    #: Every EINIT instance this job ran on, in dispatch order.
    einits: List[str] = field(default_factory=list)
    migrated: bool = False
    result: Optional[Tuple[object, List[bytes]]] = None
    stats: SessionStats = field(default_factory=SessionStats)

    def __post_init__(self):
        if self.quantum_steps is not None \
                and self.checkpoint_every is None:
            raise ValueError(
                "quantum_steps requires checkpoint_every: preemption "
                "without a checkpoint chain would lose the work")
        self._provider_blob: Optional[bytes] = None

    @property
    def terminal(self) -> bool:
        return self.state == DONE or self.state.startswith("aborted:")

    @property
    def outcome(self):
        return self.result[0] if self.result else None

    @property
    def plaintexts(self) -> List[bytes]:
        return self.result[1] if self.result else []

    def parties(self, policies: PolicySet) -> Tuple[CodeProvider,
                                                    DataOwner]:
        """Fresh party objects for one dispatch (sessions are
        per-dispatch; approval is by measurement, computed once)."""
        provider = CodeProvider(self.source, policies,
                                name=f"provider:{self.tenant}")
        if self._provider_blob is None:
            self._provider_blob = provider.build()
        owner = DataOwner(data=self.data, name=f"owner:{self.tenant}")
        owner.approved_hashes.append(
            hashlib.sha256(self._provider_blob).digest())
        return provider, owner


class FleetScheduler:
    """Supervisor loop over a drone pool (see module docstring)."""

    def __init__(self, drones: List[Drone], *,
                 max_queue: int = 32,
                 tenant_quota: int = 4,
                 heartbeat_threshold: int = 3,
                 quarantine_base_ticks: int = 2,
                 quarantine_cap_ticks: int = 32,
                 max_pin_ticks: int = 6,
                 max_requeues: int = 5,
                 retry: Optional[RetryPolicy] = None,
                 seed: int = 2021):
        if not drones:
            raise ValueError("a fleet needs at least one drone")
        self.drones: Dict[str, Drone] = {d.drone_id: d for d in drones}
        self.policies = drones[0].policies
        self.max_queue = max_queue
        self.tenant_quota = tenant_quota
        self.heartbeat_threshold = heartbeat_threshold
        self.quarantine_base_ticks = quarantine_base_ticks
        self.quarantine_cap_ticks = quarantine_cap_ticks
        self.max_pin_ticks = max_pin_ticks
        self.max_requeues = max_requeues
        self.retry = retry or RetryPolicy(max_attempts=3)
        self.seed = seed
        self.tick_now = 0
        self._seq = 0
        self._queue: List[Tuple[int, int, SessionJob]] = []
        self.jobs: Dict[str, SessionJob] = {}
        self.parked: List[SessionJob] = []
        self.shed: List[Dict[str, str]] = []
        self.events: List[Dict[str, object]] = []
        self.counters = {
            "admitted": 0, "completed": 0, "aborted": 0, "shed": 0,
            "dispatches": 0, "preemptions": 0, "requeues": 0,
            "migrations": 0, "quarantines": 0, "readmissions": 0,
            "replacements": 0, "chains_discarded": 0,
        }

    # -- admission ------------------------------------------------------

    def _inflight(self, tenant: str) -> int:
        return sum(1 for job in self.jobs.values()
                   if job.tenant == tenant and not job.terminal)

    def submit(self, job: SessionJob) -> SessionJob:
        """Admit ``job`` or shed it with a typed rejection.

        Shedding is an *answer*, not a loss: the rejection is recorded
        (and counted) before it is raised, so the report can prove that
        every submission was either admitted or explicitly refused.
        """
        reason = None
        if len(self._queue) >= self.max_queue:
            reason = "queue_full"
        elif self._inflight(job.tenant) >= self.tenant_quota:
            reason = "tenant_quota"
        if reason is not None:
            self.counters["shed"] += 1
            self.shed.append({"job_id": job.job_id,
                              "tenant": job.tenant, "reason": reason})
            self._event("shed", job=job.job_id, tenant=job.tenant,
                        reason=reason)
            raise AdmissionRejected(
                f"job {job.job_id} shed ({reason}): tenant "
                f"{job.tenant!r}", reason=reason, tenant=job.tenant)
        job.submitted_tick = self.tick_now
        job.state = "queued"
        self.jobs[job.job_id] = job
        self._push(job)
        self.counters["admitted"] += 1
        self._event("admitted", job=job.job_id, tenant=job.tenant,
                    priority=job.priority)
        return job

    def _push(self, job: SessionJob) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (job.priority, self._seq, job))

    def _event(self, kind: str, **detail) -> None:
        self.events.append({"tick": self.tick_now, "kind": kind,
                            **detail})

    # -- supervision ----------------------------------------------------

    def quarantine_backoff(self, round_index: int) -> int:
        """Re-admission backoff (ticks) before probe ``round_index``.

        Exponent-clamped the same way :meth:`RetryPolicy.delay` is:
        the doubling stops once it saturates the cap, so a drone that
        flaps for the whole campaign cannot push its probe past
        ``quarantine_cap_ticks`` (or overflow the exponent).
        """
        base, cap = self.quarantine_base_ticks, self.quarantine_cap_ticks
        exponent = min(max(round_index, 0), cap.bit_length())
        return min(cap, base * 2 ** exponent)

    def _quarantine(self, drone: Drone) -> None:
        drone.state = QUARANTINED
        backoff = self.quarantine_backoff(drone.quarantine_round)
        drone.quarantine_round += 1
        drone.quarantined_until = self.tick_now + backoff
        self.counters["quarantines"] += 1
        self._event("quarantined", drone=drone.drone_id,
                    backoff_ticks=backoff,
                    round=drone.quarantine_round)

    def _replace(self, drone: Drone, why: str) -> None:
        einit = drone.replace()
        self.counters["replacements"] += 1
        self._event("replaced", drone=drone.drone_id, einit=einit,
                    why=why)

    def _health_pass(self) -> None:
        for drone in self.drones.values():
            if drone.state == QUARANTINED:
                if self.tick_now < drone.quarantined_until:
                    continue
                # Re-admission probe.  A destroyed instance is replaced
                # and re-admitted (the *platform* was never the
                # problem); an alive-but-unresponsive one re-quarantines
                # with doubled backoff.
                if drone.bootstrap.enclave.destroyed:
                    self._replace(drone, "destroyed-in-quarantine")
                if drone.heartbeat():
                    drone.state = READY
                    drone.consecutive_failures = 0
                    self.counters["readmissions"] += 1
                    self._event("readmitted", drone=drone.drone_id)
                else:
                    self._quarantine(drone)
                continue
            if drone.heartbeat():
                drone.consecutive_failures = 0
                continue
            if drone.bootstrap.enclave.destroyed:
                # Hard death is unambiguous: replace now so parked
                # chains (same platform) resume next dispatch pass.
                self._replace(drone, "destroyed")
                continue
            drone.consecutive_failures += 1
            self._event("heartbeat_failed", drone=drone.drone_id,
                        consecutive=drone.consecutive_failures)
            if drone.consecutive_failures >= self.heartbeat_threshold:
                self._quarantine(drone)

    # -- dispatch -------------------------------------------------------

    def _chain_owner(self, drone: Drone) -> Optional[SessionJob]:
        for job in self.parked:
            if job.pinned_drone == drone.drone_id and job.checkpoints:
                return job
        return None

    def _ready_drones(self) -> List[Drone]:
        return [d for d in self.drones.values() if d.state == READY]

    def _unpark_pass(self) -> None:
        for job in list(self.parked):
            drone = self.drones.get(job.pinned_drone or "")
            if drone is not None and drone.state == READY \
                    and not drone.bootstrap.enclave.destroyed:
                continue   # resumable as soon as a dispatch slot opens
            if self.tick_now - (job.parked_tick or 0) \
                    >= self.max_pin_ticks:
                # Cross-platform failover: the chain is sealed to a
                # platform we cannot serve from — discard it (never
                # re-present it elsewhere: that *is* the rollback
                # attack) and rerun from scratch on any healthy drone.
                self.parked.remove(job)
                job.checkpoints = []
                job.chain_origin = None
                job.pinned_drone = None
                job.state = "queued"
                self.counters["chains_discarded"] += 1
                self._event("chain_discarded", job=job.job_id)
                self._requeue(job)

    def _requeue(self, job: SessionJob) -> None:
        job.requeues += 1
        self.counters["requeues"] += 1
        if job.requeues > self.max_requeues:
            self._finish(job, "aborted:Undispatchable")
            return
        job.state = "queued"
        self._push(job)

    def _finish(self, job: SessionJob, state: str) -> None:
        job.state = state
        job.finished_tick = self.tick_now
        if state == DONE:
            self.counters["completed"] += 1
        else:
            self.counters["aborted"] += 1
        self._event("finished", job=job.job_id, state=state,
                    einits=list(job.einits), migrated=job.migrated)

    def _dispatch_pass(self) -> None:
        for drone in self._ready_drones():
            job = None
            # Chain-bound jobs first: the platform just came back and
            # holds the only counters that can accept their chains.
            owner = self._chain_owner(drone)
            if owner is not None:
                job = owner
                self.parked.remove(job)
            else:
                while self._queue:
                    _, _, head = heapq.heappop(self._queue)
                    if head.terminal or head.state != "queued":
                        continue
                    job = head
                    break
                if job is not None and job.checkpoint_every is not None \
                        and self._chain_owner(drone) is not None:
                    # Chain-owner rule: this platform's counters are
                    # reserved for the parked chain — hand the job back.
                    self._push(job)
                    continue
            if job is None:
                continue
            self._dispatch(job, drone)

    def _quantum_interrupt(self, job: SessionJob, drone: Drone):
        if job.quantum_steps is None:
            return None
        quantum = job.quantum_steps
        start = None

        def interrupt(cpu):
            nonlocal start
            if start is None or cpu.steps < start:
                start = cpu.steps
            if cpu.steps - start >= quantum:
                raise SessionPreempted(
                    f"quantum of {quantum} steps expired on "
                    f"{drone.einit_id}")

        return interrupt

    def _dispatch(self, job: SessionJob, drone: Drone) -> None:
        job.state = "running"
        job.dispatches += 1
        job.einits.append(drone.einit_id)
        self.counters["dispatches"] += 1
        resuming = bool(job.checkpoints)
        if resuming and job.chain_origin != drone.einit_id:
            # The chain will be fed to a different EINIT instance than
            # the one that sealed it — if the resume succeeds, that is
            # a checkpoint migration.
            migration_candidate = True
        else:
            migration_candidate = False
        provider, owner = job.parties(self.policies)
        retry = RetryPolicy(
            max_attempts=self.retry.max_attempts,
            base_delay_s=self.retry.base_delay_s,
            max_delay_s=self.retry.max_delay_s,
            backoff=self.retry.backoff, jitter=self.retry.jitter,
            seed=self.seed * 1_000_003 + job.dispatches * 101
            + len(job.job_id))
        workflow = TwoPartyWorkflow(drone.host, provider, owner,
                                    retry=retry, sleep=None)
        run_kwargs: Dict[str, object] = {"max_steps": job.max_steps}
        if job.checkpoint_every is not None:
            run_kwargs["checkpoint_every"] = job.checkpoint_every
        interrupt = self._quantum_interrupt(job, drone)
        if interrupt is not None:
            run_kwargs["interrupt"] = interrupt
        self._event("dispatched", job=job.job_id,
                    drone=drone.drone_id, einit=drone.einit_id,
                    resuming=resuming)
        try:
            result = workflow.execute(
                initial_checkpoints=job.checkpoints or None,
                **run_kwargs)
        except SessionPreempted:
            job.stats.merge(workflow.stats)
            self._park(job, drone, workflow.checkpoints)
            self.counters["preemptions"] += 1
            job.preemptions += 1
            drone.sessions_served += 1
            self._event("preempted", job=job.job_id,
                        drone=drone.drone_id,
                        chain=len(job.checkpoints))
            return
        except RetryBudgetExceeded as exc:
            job.stats.merge(workflow.stats)
            cause = exc.__cause__
            if isinstance(cause, (AttestationOutage, ProtocolError)):
                # Fleet-scoped weather, not this drone's fault.
                self._event("requeued", job=job.job_id,
                            why=type(cause).__name__)
                self._requeue(job)
                return
            # Drone-attributable (teardown / ECall failures): blame it
            # and move the job.  A harvested chain stays pinned to the
            # platform; otherwise the job reruns anywhere.
            drone.consecutive_failures = self.heartbeat_threshold
            if workflow.checkpoints:
                self._park(job, drone, workflow.checkpoints)
                self._event("orphaned", job=job.job_id,
                            drone=drone.drone_id,
                            chain=len(job.checkpoints))
            else:
                self._event("requeued", job=job.job_id,
                            why=type(cause).__name__
                            if cause else "RetryBudgetExceeded")
                self._requeue(job)
            return
        except ReproError as exc:
            # Trust-class verdicts (policy, verification, attestation,
            # rollback surfaced fatal): terminal, never retried.
            job.stats.merge(workflow.stats)
            self._finish(job, f"aborted:{type(exc).__name__}")
            return
        job.stats.merge(workflow.stats)
        drone.sessions_served += 1
        outcome = result[0]
        if migration_candidate \
                and getattr(outcome, "resumed_at_step", None) is not None:
            job.migrated = True
            self.counters["migrations"] += 1
            self._event("migrated", job=job.job_id,
                        origin=job.chain_origin,
                        resumed_on=drone.einit_id,
                        at_step=outcome.resumed_at_step)
        job.result = result
        job.checkpoints = []
        job.pinned_drone = None
        self._finish(job, DONE)

    def _park(self, job: SessionJob, drone: Drone,
              chain: List[bytes]) -> None:
        if chain:
            if job.chain_origin is None or not job.checkpoints:
                job.chain_origin = drone.einit_id
            job.checkpoints = list(chain)
            job.pinned_drone = drone.drone_id
        job.state = "parked"
        job.parked_tick = self.tick_now
        self.parked.append(job)

    # -- the loop -------------------------------------------------------

    @property
    def pending(self) -> List[SessionJob]:
        return [job for job in self.jobs.values() if not job.terminal]

    def tick(self) -> None:
        self.tick_now += 1
        self._health_pass()
        self._unpark_pass()
        self._dispatch_pass()

    def run(self, max_ticks: int = 200) -> bool:
        """Tick until every admitted job is terminal (True) or the
        budget runs out with work still pending (False)."""
        for _ in range(max_ticks):
            if not self.pending:
                return True
            self.tick()
        return not self.pending

    # -- reporting ------------------------------------------------------

    def tenant_stats(self) -> Dict[str, SessionStats]:
        per_tenant: Dict[str, SessionStats] = {}
        for job in self.jobs.values():
            per_tenant.setdefault(job.tenant,
                                  SessionStats()).merge(job.stats)
        return per_tenant

    def report(self) -> dict:
        """Deterministic JSON-ready fleet report."""
        lost = [job.job_id for job in self.jobs.values()
                if not job.terminal]
        latencies = sorted(
            job.finished_tick - job.submitted_tick
            for job in self.jobs.values() if job.state == DONE)
        fleet_stats = SessionStats()
        tenants = {}
        for tenant, stats in sorted(self.tenant_stats().items()):
            fleet_stats.merge(stats)
            tenants[tenant] = stats.as_dict()
        return {
            "schema": "deflection-fleet/1",
            "ticks": self.tick_now,
            "drones": {
                d.drone_id: {
                    "einit": d.einit_id, "state": d.state,
                    "sessions_served": d.sessions_served,
                    "replacements": d.replacements,
                    "quarantine_rounds": d.quarantine_round,
                } for d in self.drones.values()},
            "counters": dict(self.counters),
            "lost": lost,
            "latency_ticks": _percentiles(latencies),
            "tenants": tenants,
            "stats": fleet_stats.as_dict(),
            "shed": list(self.shed),
            "migrated_jobs": [
                {"job_id": job.job_id, "einits": list(job.einits),
                 "resumed_at_step": getattr(job.outcome,
                                            "resumed_at_step", None)}
                for job in self.jobs.values() if job.migrated],
        }


def _percentiles(ordered: List[int]) -> Dict[str, float]:
    if not ordered:
        return {"p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}

    def pct(p: float) -> float:
        index = min(len(ordered) - 1,
                    max(0, int(round(p * (len(ordered) - 1)))))
        return float(ordered[index])

    return {"p50": pct(0.50), "p90": pct(0.90), "p99": pct(0.99),
            "max": float(ordered[-1])}
