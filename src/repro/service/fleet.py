"""Enclave fleet: supervised drones hosting two-party sessions.

The scheduler's worker pool, modeled on autotest's dispatcher split:
the *supervisor* (:class:`~repro.service.scheduler.FleetScheduler`)
owns all state and decisions, the *drones* do the work.  Each
:class:`Drone` is one platform slot — its own
:class:`~repro.sgx.quote.PlatformKey` (so seal fuses and monotonic
counters are genuinely per-platform, exactly the binding PR 5's
checkpoint sealing relies on), a
:class:`~repro.core.bootstrap.BootstrapEnclave` EINIT'd on it, and a
:class:`FleetHost` front door.  All drones share one
:class:`~repro.core.bootstrap.ProvisionCache` and one
:class:`~repro.sgx.attestation.AttestationService`, so re-dispatching
a job to another drone re-verifies its binary as a cache replay.

Two consequences of the platform binding shape the whole design:

* A sealed checkpoint chain can only ever be resumed on an EINIT of
  the same MRENCLAVE *on the same platform* — the seal key embeds the
  platform fuse and the chain head is checked against the platform
  counter.  "Failover via checkpoints" therefore means *replacing the
  enclave instance on the drone's platform* (a fresh EINIT, tracked by
  :attr:`Drone.generation`) and resuming there; moving a chain to a
  different platform is by construction a rollback and is rejected.
  Cross-platform failover discards the chain and reruns from scratch.
* Checkpoint counters are strictly consecutive per platform, so at
  most one checkpointed chain may be in flight per drone at a time —
  the scheduler's chain-owner rule.

Unlike :class:`~repro.service.protocol.CCaaSHost`, a
:class:`FleetHost` does **not** auto-recover a torn-down enclave
inside the session retry loop (``ensure_alive`` is a no-op): in a
fleet, deciding *where* a job runs next is the supervisor's call, not
the session's.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.bootstrap import BootstrapEnclave, ProvisionCache
from ..errors import EnclaveTeardown
from ..policy.policies import PolicySet
from ..sgx.attestation import AttestationService
from ..sgx.quote import PlatformKey
from .protocol import CCaaSHost

#: Drone states the supervisor moves a drone through.
READY = "ready"
QUARANTINED = "quarantined"


class FleetHost(CCaaSHost):
    """Host front door for one drone, with fleet-grade fault hooks.

    ``ensure_alive`` never recovers: a dead enclave stays dead until
    the supervisor decides to replace it (see module docstring).  The
    two chaos hooks mirror :class:`~repro.service.faults.FaultyHost`
    mechanics at fleet granularity:

    * :meth:`fail_pings` makes the next ``n`` heartbeats raise — an
      unresponsive-but-alive drone (an AEX storm, a wedged host
      thread), the signal that drives quarantine;
    * :meth:`arm_kill` schedules a one-shot teardown ``k`` instructions
      into the next *checkpointed* run, realized cooperatively at a
      safe point — the mid-fleet drone kill that drives failover.
    """

    def __init__(self, bootstrap: BootstrapEnclave,
                 attestation_service: AttestationService):
        super().__init__(bootstrap, attestation_service)
        self._pings_to_fail = 0
        self._kill_after_steps: Optional[int] = None

    def ensure_alive(self) -> bool:
        return False

    # -- chaos hooks ----------------------------------------------------

    def fail_pings(self, n: int) -> None:
        self._pings_to_fail += n

    def arm_kill(self, after_steps: int) -> None:
        self._kill_after_steps = after_steps

    @property
    def kill_armed(self) -> bool:
        return self._kill_after_steps is not None

    def ecall_ping(self):
        if self._pings_to_fail > 0:
            self._pings_to_fail -= 1
            raise EnclaveTeardown("drone unresponsive (injected storm)")
        return super().ecall_ping()

    def _arm(self, kwargs: dict) -> dict:
        """Compose the armed kill into the run's interrupt hook (after
        any scheduler-installed quantum closure, so a kill that lands
        inside a quantum still fires)."""
        if self._kill_after_steps is None or \
                kwargs.get("checkpoint_every") is None:
            return kwargs
        k = self._kill_after_steps
        self._kill_after_steps = None
        enclave_ref = self.bootstrap
        inner = kwargs.get("interrupt")
        start = None

        def interrupt(cpu):
            nonlocal start
            if inner is not None:
                inner(cpu)
            if start is None or cpu.steps < start:
                start = cpu.steps
            if cpu.steps - start >= k:
                enclave_ref.enclave.destroy()
                raise EnclaveTeardown(
                    f"drone killed mid-run at step {cpu.steps}")

        kwargs = dict(kwargs)
        kwargs["interrupt"] = interrupt
        return kwargs

    def ecall_run(self, **kwargs):
        return super().ecall_run(**self._arm(kwargs))

    def ecall_resume(self, blobs, **kwargs):
        return super().ecall_resume(blobs, **self._arm(kwargs))


class Drone:
    """One supervised platform slot of the fleet."""

    def __init__(self, drone_id: str, *,
                 policies: Optional[PolicySet] = None,
                 provision_cache: Optional[ProvisionCache] = None,
                 attestation: Optional[AttestationService] = None,
                 aex_threshold: int = 50):
        self.drone_id = drone_id
        self.policies = policies if policies is not None \
            else PolicySet.full()
        self.aex_threshold = aex_threshold
        #: The drone's own platform: seal fuse + monotonic counters.
        self.platform = PlatformKey(f"fleet-platform:{drone_id}".encode())
        self.attestation = attestation or AttestationService()
        self.cache = provision_cache
        self.bootstrap = BootstrapEnclave(
            policies=self.policies, platform=self.platform,
            aex_threshold=aex_threshold,
            provision_cache=provision_cache)
        self.host = FleetHost(self.bootstrap, self.attestation)
        #: EINIT generation — bumps on every instance replacement, so
        #: ``einit_id`` names one concrete enclave instance and a
        #: migrated session can prove it resumed on a different one.
        self.generation = 0
        self.state = READY
        self.consecutive_failures = 0
        #: How many times this drone has been quarantined; the
        #: re-admission backoff doubles with it.
        self.quarantine_round = 0
        self.quarantined_until = 0
        self.sessions_served = 0
        self.replacements = 0

    @property
    def einit_id(self) -> str:
        return f"{self.drone_id}#e{self.generation}"

    @property
    def mrenclave(self) -> bytes:
        return self.bootstrap.enclave.mrenclave

    def heartbeat(self) -> bool:
        """One supervision probe.  True iff the drone answered and the
        answer carries the expected measured identity (a replaced
        instance lying about its measurement would fail here before it
        ever failed an attested handshake)."""
        try:
            answer = self.host.ecall_ping()
            return answer["mrenclave"] == \
                self.bootstrap.enclave.mrenclave.hex()
        except Exception:
            return False

    def replace(self) -> str:
        """Fresh EINIT on the same platform (same MRENCLAVE, same seal
        fuse, same monotonic counters — parked chains stay resumable).
        Returns the new ``einit_id``."""
        if not self.bootstrap.enclave.destroyed:
            self.bootstrap.enclave.destroy()
        self.bootstrap.recover(reason="fleet-replace")
        self.generation += 1
        self.replacements += 1
        self.consecutive_failures = 0
        return self.einit_id


def build_fleet(n: int, *,
                policies: Optional[PolicySet] = None,
                aex_threshold: int = 50) -> List[Drone]:
    """``n`` drones sharing one provision cache and one attestation
    service (shared verifier state is what makes re-dispatch cheap and
    an attestation outage a *fleet-wide* event, as in §III-A)."""
    cache = ProvisionCache()
    attestation = AttestationService()
    return [Drone(f"drone-{i}", policies=policies,
                  provision_cache=cache, attestation=attestation,
                  aex_threshold=aex_threshold)
            for i in range(n)]
