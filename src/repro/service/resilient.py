"""Resilient CCaaS sessions: retry what is transient, refuse what is not.

The DEFLECTION protocol's failure classes split cleanly in two.  A host
can drop or mangle records, an enclave can be torn down by the platform,
the attestation service can have an outage — all *transient*: the remedy
is to re-attest, re-establish the RA-TLS session and idempotently
re-deliver (the measurement is re-checked; with a
:class:`~repro.core.bootstrap.ProvisionCache` the re-verification is a
cache hit).  A policy violation, a rejected binary or a failed MRENCLAVE
pin is a *trust* failure: retrying one would retry the attack, so those
abort immediately, always.

:func:`classify_error` encodes the split; :class:`RetryPolicy` bounds
and deterministically paces the retries; :class:`ResilientSession`
wraps one remote party; :class:`TwoPartyWorkflow` runs the whole
provider + owner flow end to end under fault injection.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import (
    AttestationError, AttestationOutage, DeadlineExceeded, EnclaveError,
    PolicyViolation, ProtocolError, ProvenanceError, ReproError,
    RetryBudgetExceeded, RollbackError, VerificationError,
)

#: Error classes a resilient session retries after re-establishing the
#: session.  :class:`AttestationOutage` subclasses ``AttestationError``
#: but is the service being *unreachable*, not the quote being bad.
TRANSIENT = (AttestationOutage, ProtocolError, EnclaveError)

#: Error classes that must never be retried: the failure is a verdict
#: (violation, rejected binary, broken trust chain), not bad luck.
#: :class:`RollbackError` is the checkpoint layer's trust verdict —
#: blindly retrying a resume would re-present host-chosen state; a
#: caller that wants availability must *discard the chain* and restart
#: from scratch (what :class:`TwoPartyWorkflow` does explicitly).
#: :class:`DeadlineExceeded` is a budget verdict: only resuming with a
#: larger budget can make progress, so the retry loop must not spin.
#: :class:`ProvenanceError` is the pipeline layer's trust verdict: a
#: handoff whose chain failed verification must be re-presented with
#: *different* evidence (or the producing hop rerun), never retried
#: blindly with the same rejected chain.
FATAL = (PolicyViolation, VerificationError, AttestationError,
         RollbackError, DeadlineExceeded, ProvenanceError)


def classify_error(exc: BaseException) -> str:
    """``"transient"`` (re-establish + retry) or ``"fatal"`` (abort).

    Checked most-specific first: an :class:`AttestationOutage` is
    transient even though its parent class is fatal.  Unknown errors
    default to fatal — retrying what we cannot classify is how retry
    loops turn bugs into livelock.
    """
    if isinstance(exc, RetryBudgetExceeded):
        return "fatal"
    if isinstance(exc, TRANSIENT):
        return "transient"
    if isinstance(exc, FATAL):
        return "fatal"
    return "fatal"


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    ``delay(n)`` is a pure function of the policy (including ``seed``),
    so two sessions configured identically back off identically —
    campaigns replay byte-for-byte.
    """

    max_attempts: int = 6
    base_delay_s: float = 0.005
    max_delay_s: float = 0.08
    backoff: float = 2.0
    jitter: float = 0.25
    seed: int = 2021

    def delay(self, retry_index: int) -> float:
        """Backoff before retry number ``retry_index`` (0-based).

        The exponent is clamped at the point where the raw backoff
        saturates ``max_delay_s``: ``backoff ** retry_index`` grows
        fast enough that a misconfigured ``max_attempts`` (or a caller
        probing large indexes directly) would otherwise overflow to
        ``inf`` before the ``min`` clamp ever sees the value.
        """
        base, growth = self.base_delay_s, self.backoff
        if base <= 0.0:
            raw = 0.0
        elif growth <= 1.0:
            raw = min(self.max_delay_s, base * growth ** retry_index)
        else:
            saturation = math.log(max(self.max_delay_s, base) / base,
                                  growth)
            exponent = min(retry_index, math.ceil(saturation))
            raw = min(self.max_delay_s, base * growth ** exponent)
        spread = random.Random(f"{self.seed}:{retry_index}").random()
        return raw * (1.0 + self.jitter * (2.0 * spread - 1.0))


@dataclass
class SessionStats:
    """Counters a resilient flow accumulates (merged into reports)."""

    attempts: int = 0
    retries: int = 0
    reconnects: int = 0
    recoveries: int = 0
    fatal_errors: int = 0
    #: Runs continued from a sealed checkpoint instead of from scratch.
    resumes: int = 0
    #: Checkpoint chains the enclave refused (corrupt / stale / replay);
    #: each one forced a discard-and-restart, never a blind retry.
    rollbacks_rejected: int = 0
    #: Streaming chunks completed (pipeline sessions; 0 elsewhere).
    chunks: int = 0
    slept_s: float = 0.0
    retried_kinds: Dict[str, int] = field(default_factory=dict)
    fatal_kinds: Dict[str, int] = field(default_factory=dict)

    def merge(self, other: "SessionStats") -> "SessionStats":
        """Fold ``other``'s counters into this one; returns ``self``.

        The single way counters combine anywhere in the service layer —
        two-party workflows merging their per-session stats, the chaos
        report totalling a campaign, the fleet aggregating per tenant —
        so a new counter added to the dataclass is aggregated
        everywhere by construction instead of by remembering N call
        sites.
        """
        self.attempts += other.attempts
        self.retries += other.retries
        self.reconnects += other.reconnects
        self.recoveries += other.recoveries
        self.fatal_errors += other.fatal_errors
        self.resumes += other.resumes
        self.rollbacks_rejected += other.rollbacks_rejected
        self.chunks += other.chunks
        self.slept_s += other.slept_s
        for kind, count in other.retried_kinds.items():
            self.retried_kinds[kind] = \
                self.retried_kinds.get(kind, 0) + count
        for kind, count in other.fatal_kinds.items():
            self.fatal_kinds[kind] = \
                self.fatal_kinds.get(kind, 0) + count
        return self

    def note(self, exc: BaseException, outcome: str) -> None:
        kinds = self.retried_kinds if outcome == "transient" \
            else self.fatal_kinds
        name = type(exc).__name__
        kinds[name] = kinds.get(name, 0) + 1

    def as_dict(self) -> dict:
        return {
            "attempts": self.attempts,
            "retries": self.retries,
            "reconnects": self.reconnects,
            "recoveries": self.recoveries,
            "fatal_errors": self.fatal_errors,
            "resumes": self.resumes,
            "rollbacks_rejected": self.rollbacks_rejected,
            "chunks": self.chunks,
            "retried_kinds": dict(sorted(self.retried_kinds.items())),
            "fatal_kinds": dict(sorted(self.fatal_kinds.items())),
        }


class ResilientSession:
    """One remote party's attested session, with automatic recovery.

    Wraps a :class:`~repro.service.roles.CodeProvider` or
    :class:`~repro.service.roles.DataOwner`.  :meth:`perform` runs an
    operation under the retry policy: a transient failure tears the
    session state down, asks the host to restart a torn-down enclave
    (``ensure_alive`` — same platform and image, so the MRENCLAVE pin
    still holds), re-runs the attested handshake, and tries again.  A
    fatal failure propagates on the first occurrence, always.
    """

    def __init__(self, party, host, expected_mrenclave: bytes,
                 retry: Optional[RetryPolicy] = None,
                 sleep: Optional[Callable[[float], None]] = time.sleep,
                 stats: Optional[SessionStats] = None):
        self.party = party
        self.host = host
        self.expected_mrenclave = expected_mrenclave
        self.retry = retry or RetryPolicy()
        self.stats = stats if stats is not None else SessionStats()
        self._sleep = sleep
        self._connected = False
        self._ever_connected = False

    def invalidate(self) -> None:
        """Forget the session; the next operation re-attests first."""
        self._connected = False

    def ensure_connected(self) -> None:
        if self.host.ensure_alive():
            self.stats.recoveries += 1
        if self._connected:
            return
        self.party.connect(self.host, self.expected_mrenclave)
        if self._ever_connected:
            self.stats.reconnects += 1
        self._connected = True
        self._ever_connected = True

    def backoff(self, retry_index: int) -> None:
        delay = self.retry.delay(retry_index)
        self.stats.slept_s += delay
        if self._sleep is not None:
            self._sleep(delay)

    def perform(self, label: str, op: Callable[[], object]):
        """Run ``op`` to completion under the retry policy."""
        last: Optional[BaseException] = None
        for attempt in range(self.retry.max_attempts):
            if attempt:
                self.backoff(attempt - 1)
            try:
                self.ensure_connected()
                self.stats.attempts += 1
                return op()
            except ReproError as exc:
                verdict = classify_error(exc)
                self.stats.note(exc, verdict)
                if verdict == "fatal":
                    self.stats.fatal_errors += 1
                    raise
                self.stats.retries += 1
                self.invalidate()
                last = exc
        raise RetryBudgetExceeded(
            f"{label}: {self.retry.max_attempts} attempts exhausted "
            f"(last: {type(last).__name__}: {last})") from last


class TwoPartyWorkflow:
    """The full §III-A flow — deliver, approve, upload, run, decrypt —
    hardened against a faulty host.

    Delivery and upload each run under their party's resilient session.
    The run loop adds one more recovery layer: if ``ecall_run`` fails
    transiently (teardown mid-protocol, injected ECall failure), the
    workflow re-establishes both sessions and *re-provisions* — the
    binary is re-delivered (measurement re-checked by the provider, hash
    re-approved by the owner; the provision cache turns re-verification
    into a replay) and the data re-uploaded — then retries the run.
    Policy violations are run *outcomes*, not exceptions: the defense
    engaged, nothing is retried.
    """

    def __init__(self, host, provider, owner,
                 retry: Optional[RetryPolicy] = None,
                 sleep: Optional[Callable[[float], None]] = time.sleep):
        self.host = host
        self.provider = provider
        self.owner = owner
        self.retry = retry or RetryPolicy()
        #: Run-level counters (re-provision retries, resumes...); the
        #: per-party counters live on each session and the public
        #: :attr:`stats` view merges all three.
        self.run_stats = SessionStats()
        #: Sealed chain of the latest (or in-flight) checkpointed run;
        #: survives a raised :class:`DeadlineExceeded` /
        #: :class:`SessionPreempted` so a scheduler can harvest it and
        #: resume the job elsewhere.
        self.checkpoints: List[bytes] = []
        mrenclave = host.bootstrap.mrenclave
        self.provider_session = ResilientSession(
            provider, host, mrenclave, retry=self.retry, sleep=sleep)
        self.owner_session = ResilientSession(
            owner, host, mrenclave, retry=self.retry, sleep=sleep)

    @property
    def stats(self) -> SessionStats:
        """Merged view over run-level + both per-party counters."""
        return self.combined_stats()

    def combined_stats(self) -> SessionStats:
        return SessionStats().merge(self.run_stats) \
            .merge(self.provider_session.stats) \
            .merge(self.owner_session.stats)

    def provision(self) -> bytes:
        """Deliver + approve + upload; returns the approved measurement.

        Idempotent by construction: the enclave re-measures the blob on
        every delivery, the provider compares that measurement against
        its own hash, and the data owner re-approves it before any data
        moves — a corrupted or substituted re-delivery can never
        silently replace an approved binary.
        """
        measurement = self.provider_session.perform(
            "deliver", lambda: self.provider.deliver(self.host))
        self.owner.approve_code(measurement)
        self.owner_session.perform(
            "upload", lambda: self.owner.upload(self.host))
        return measurement

    def execute(self, initial_checkpoints: Optional[List[bytes]] = None,
                **run_kwargs) -> Tuple[object, List[bytes]]:
        """Run the whole flow; returns ``(outcome, plaintexts)``.

        ``plaintexts`` are the decrypted result records when the run
        completed (``outcome.ok``), else empty.

        With ``checkpoint_every=N`` in ``run_kwargs``, the workflow
        stores every sealed checkpoint the enclave emits (on
        :attr:`checkpoints`, so the chain survives even when the run
        raises) and switches its teardown recovery from
        re-run-from-scratch to resume-from-latest-checkpoint: after
        re-attesting and re-provisioning, the stored chain goes back
        in through ``ecall_resume`` and only the tail of the
        computation re-runs.  ``initial_checkpoints`` seeds that chain
        before the first attempt — a scheduler migrating a preempted
        job onto another EINIT of the same MRENCLAVE passes the chain
        harvested from the previous drone here.  If the enclave
        rejects the chain (:class:`RollbackError` — corrupted, stale,
        or replayed by the host), the chain is *discarded* and that
        attempt falls back to a full re-run: the trust decision stays
        fail-closed inside the enclave, while the workflow keeps its
        availability by paying the from-scratch cost.  Rejected chains
        are counted in ``stats.rollbacks_rejected`` and are never
        blindly re-presented.
        """
        self.provision()
        self.checkpoints = list(initial_checkpoints or [])
        checkpoints = self.checkpoints
        if run_kwargs.get("checkpoint_every") is not None:
            run_kwargs = dict(run_kwargs)
            run_kwargs["checkpoint_sink"] = checkpoints.append
        last: Optional[BaseException] = None
        for attempt in range(self.retry.max_attempts):
            if attempt:
                self.owner_session.backoff(attempt - 1)
            try:
                self.run_stats.attempts += 1
                if checkpoints:
                    try:
                        outcome = self.host.ecall_resume(
                            list(checkpoints), **run_kwargs)
                        self.run_stats.resumes += 1
                    except RollbackError as exc:
                        self.run_stats.note(exc, "fatal")
                        self.run_stats.rollbacks_rejected += 1
                        checkpoints.clear()
                        outcome = self.host.ecall_run(**run_kwargs)
                else:
                    outcome = self.host.ecall_run(**run_kwargs)
            except ReproError as exc:
                verdict = classify_error(exc)
                self.run_stats.note(exc, verdict)
                if verdict == "fatal":
                    self.run_stats.fatal_errors += 1
                    raise
                self.run_stats.retries += 1
                # Transient run failure: the enclave may have lost its
                # provisioned state entirely.  Re-establish everything.
                self.provider_session.invalidate()
                self.owner_session.invalidate()
                self.provision()
                last = exc
                continue
            plaintexts = self.owner.decrypt_results(outcome) \
                if outcome.ok else []
            return outcome, plaintexts
        raise RetryBudgetExceeded(
            f"run: {self.retry.max_attempts} attempts exhausted "
            f"(last: {type(last).__name__}: {last})") from last
