"""HTTPS server simulation (Fig. 10).

The *data path* is real: the in-enclave request handler
(``workloads.https_app``) is compiled, verified and executed in the VM,
and its deterministic cycle account is measured at two response sizes to
fit a per-request/per-byte service-time line — separately for the
baseline and the instrumented (P1-P6) server, so the instrumentation
overhead in the figure comes from actual annotated execution.

The *concurrency* dimension is a closed-loop discrete-event simulation
in the style of the paper's Siege run: C clients with zero think time, a
bounded in-enclave worker pool (SGX enclaves have a fixed TCS budget),
FIFO queueing.  Response time stays flat while C is below the pool size
and grows linearly past it — the knee Fig. 10 shows between 75 and 150
connections.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Callable, Optional

from ..core.bootstrap import PROVISION_CACHE, BootstrapEnclave
from ..policy.policies import PolicySet
from ..workloads.https_app import request_bytes
from ..workloads.registry import get_workload
from ..bench.harness import compile_workload


@dataclass
class HttpsLoadResult:
    concurrency: int
    completed: int
    throughput_rps: float
    mean_response_ms: float
    p95_response_ms: float


class HttpsServerSim:
    """Measured service-time model for the in-enclave HTTPS server."""

    #: calibration sizes for the linear fit
    _FIT_SIZES = (512, 4096)

    def __init__(self, policies: PolicySet = None,
                 cpu_ghz: float = 3.7,
                 session_fixed_us: float = 120.0,
                 buf_size: int = 8192):
        self.policies = policies if policies is not None \
            else PolicySet.full()
        self.cpu_ghz = cpu_ghz
        self.session_fixed_us = session_fixed_us
        self.buf_size = buf_size
        workload = get_workload("https_handler")
        blob = compile_workload(workload, self.policies.label, buf_size)
        # Re-serving the one verified handler across sim instances is
        # the provision cache's textbook case: the second server with
        # the same (blob, policies, config) skips RDD/verify/rewrite.
        self._boot = BootstrapEnclave(policies=self.policies,
                                      provision_cache=PROVISION_CACHE)
        self._boot.receive_binary(blob)
        c_small = self._measure_cycles(self._FIT_SIZES[0])
        c_large = self._measure_cycles(self._FIT_SIZES[1])
        self.cycles_per_byte = (c_large - c_small) / \
            (self._FIT_SIZES[1] - self._FIT_SIZES[0])
        self.cycles_fixed = c_small - \
            self.cycles_per_byte * self._FIT_SIZES[0]

    def _measure_cycles(self, size: int) -> float:
        self._boot.receive_userdata(request_bytes(size))
        outcome = self._boot.run()
        if not outcome.ok or outcome.reports[0] != 1:
            raise RuntimeError(f"handler failed: {outcome.detail}")
        return outcome.result.cycles

    def service_time_us(self, size: int) -> float:
        """Per-request service time for a ``size``-byte response."""
        cycles = self.cycles_fixed + self.cycles_per_byte * size
        return self.session_fixed_us + cycles / (self.cpu_ghz * 1000.0)


class LoadGenerator:
    """Closed-loop load generator + bounded-worker server queue."""

    def __init__(self, service_time_us: Callable[[int], float],
                 workers: int = 96, seed: int = 2021,
                 jitter: float = 0.05):
        self.service_time_us = service_time_us
        self.workers = workers
        self.jitter = jitter
        self._rng = random.Random(seed)

    def run(self, concurrency: int, response_size: int = 4096,
            max_requests: int = 4000) -> HttpsLoadResult:
        """Simulate ``concurrency`` clients until ``max_requests``
        responses complete; returns aggregate latency/throughput."""
        base_us = self.service_time_us(response_size)
        busy = 0
        queue = []          # arrival times of queued requests
        events = []         # (time_us, kind); kind: completion arrival
        latencies = []
        completed = 0
        now = 0.0

        def service() -> float:
            spread = 1.0 + self._rng.uniform(-self.jitter, self.jitter)
            return base_us * spread

        # all clients fire at t=0 (staggered by microseconds)
        for i in range(concurrency):
            heapq.heappush(events, (i * 1.0, "arrival", i * 1.0))
        while events and completed < max_requests:
            now, kind, stamp = heapq.heappop(events)
            if kind == "arrival":
                if busy < self.workers:
                    busy += 1
                    heapq.heappush(events,
                                   (now + service(), "done", stamp))
                else:
                    queue.append(stamp)
            else:  # completion
                latencies.append(now - stamp)
                completed += 1
                # the client immediately issues its next request
                heapq.heappush(events, (now, "arrival", now))
                if queue:
                    next_stamp = queue.pop(0)
                    heapq.heappush(events,
                                   (now + service(), "done", next_stamp))
                else:
                    busy -= 1
        duration_s = now / 1e6 if now else 1.0
        latencies.sort()
        mean_ms = sum(latencies) / len(latencies) / 1000.0
        p95_ms = latencies[int(0.95 * (len(latencies) - 1))] / 1000.0
        return HttpsLoadResult(
            concurrency=concurrency,
            completed=completed,
            throughput_rps=completed / duration_s,
            mean_response_ms=mean_ms,
            p95_response_ms=p95_ms)
