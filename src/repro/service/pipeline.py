"""Fault-tolerant multi-enclave provenance pipelines.

All fifteen workloads are single-enclave request/response; this module
chains *verified enclaves* — a genomics filter feeding a credit scorer
feeding an aggregator — with the trust question a real deployment
must answer at every hop: why should stage ``k`` accept these bytes?

The answer is the cross-enclave provenance chain
(:mod:`repro.core.provenance`): every completed hop appends an
HMAC-chained link binding the producing enclave's MRENCLAVE, its
verifier fingerprint (including the static-proof tier), its audit-chain
head, and the hop's input/output digests.  The consumer verifies the
*full upstream chain* before accepting input and fails closed on any
break, splice, reorder, stale epoch or digest discontinuity.

Robustness is layered on the existing resilience stack rather than
reinvented:

* per-hop transient retry — each stage runs its own
  :class:`~repro.service.resilient.TwoPartyWorkflow` under a
  :class:`~repro.service.resilient.RetryPolicy`;
* mid-hop teardown recovery — runs are checkpointed, so a teardown at
  hop ``k`` resumes *at hop k* from the sealed chain; downstream hops
  never re-run upstream work (the per-hop audit logs prove it:
  exactly one ``run_completed`` per upstream hop);
* stale-chain discard-and-rerun — a lost/rolled-back handoff bumps the
  producing hop's *epoch* and truncates the chain before rerunning, so
  the old output can never be re-presented (the discarded link still
  MAC-verifies at its old position; the epoch is what kills it);
* per-hop watchdog deadlines with typed triage — a blown deadline is a
  *requeue* (resume under a larger budget); repeated stalls escalate
  to :class:`~repro.errors.PipelineStalled`; violations are *blame*
  (:class:`~repro.errors.HopFailed`, fail closed at that hop);
* graceful degradation — a stage whose platform is quarantined (retry
  budget exhausted, or the chaos plan forcing it) is re-provisioned on
  a healthy drone and the chain spliced with an explicit ``migrated``
  link; the provision cache makes the re-verification a replay.

Streaming sessions run chunked records through the same long-lived
attested sessions: per-chunk P0 entropy budgets (every ``ecall_run``
resets the output budget), a bounded in-flight window (backpressure,
not unbounded buffering), chunk-level resume, and optional
:class:`~repro.crypto.channel.SecureChannel` rekeying every N records
— so throughput (records/s) becomes a first-class metric next to
latency.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..core.bootstrap import BootstrapEnclave, P0Config, ProvisionCache
from ..core.checkpoint import Watchdog
from ..core.provenance import (
    ProvenanceChain, ProvenanceLink, chain_key, remac_links,
    verify_links,
)
from ..errors import (
    DeadlineExceeded, EnclaveTeardown, HopFailed, PipelineStalled,
    ProvenanceError, RetryBudgetExceeded,
)
from ..policy.policies import PolicySet
from ..sgx.attestation import AttestationService
from ..sgx.quote import PlatformKey
from .protocol import CCaaSHost
from .resilient import RetryPolicy, SessionStats, TwoPartyWorkflow
from .roles import CodeProvider, DataOwner


@dataclass
class PipelineStage:
    """One verified enclave stage: a named MiniC service program."""

    name: str
    source: str
    policies: Optional[PolicySet] = None

    def policy_set(self) -> PolicySet:
        return self.policies if self.policies is not None \
            else PolicySet.full()


# -- the pipeline topologies ---------------------------------------------

#: Genomics filter: keep the uppercase-letter bytes (the FASTA-like
#: alphabet), drop everything else.  Output length varies per input.
FILTER_SRC = """
char buf[128];
char out[128];
int main() {
    int n = __recv(buf, 128);
    int m = 0;
    int i;
    for (i = 0; i < n; i++) {
        if (buf[i] >= 65) {
            if (buf[i] <= 90) { out[m] = buf[i]; m = m + 1; }
        }
    }
    __send(out, m);
    __report(m);
    return m;
}
"""

#: Credit scorer: rolling polynomial score per record byte (mod a
#: prime, so every output byte is a deterministic function of the
#: whole prefix).
SCORER_SRC = """
char buf[128];
int main() {
    int n = __recv(buf, 128);
    int acc = 0;
    int i;
    for (i = 0; i < n; i++) {
        int v = buf[i];
        if (v < 0) v = v + 256;
        acc = (acc * 31 + v) % 251;
        buf[i] = acc;
    }
    __send(buf, n);
    __report(acc);
    return acc;
}
"""

#: Aggregator: 4-byte digest (sum lo/hi, max, count) of the scores.
AGGREGATOR_SRC = """
char buf[128];
char out[4];
int main() {
    int n = __recv(buf, 128);
    int sum = 0;
    int mx = 0;
    int i;
    for (i = 0; i < n; i++) {
        int v = buf[i];
        if (v < 0) v = v + 256;
        sum = sum + v;
        if (v > mx) mx = v;
    }
    out[0] = sum % 256;
    out[1] = (sum / 256) % 256;
    out[2] = mx;
    out[3] = n % 256;
    __send(out, 4);
    __report(sum);
    return sum;
}
"""


def _map_stage_src(mul: int, add: int) -> str:
    """Length-preserving byte map ``v -> (v*mul + add) % 256`` —
    building block of the 4-stage streaming topology."""
    return f"""
char buf[128];
int main() {{
    int n = __recv(buf, 128);
    int acc = 0;
    int i;
    for (i = 0; i < n; i++) {{
        int v = buf[i];
        if (v < 0) v = v + 256;
        v = (v * {mul} + {add}) % 256;
        buf[i] = v;
        acc = acc + v;
    }}
    __send(buf, n);
    __report(acc % 65536);
    return acc;
}}
"""


def topology_stages(name: str) -> List[PipelineStage]:
    """The named pipeline topologies the bench and chaos layers sweep."""
    if name == "filter-score-agg":
        return [PipelineStage("genomics-filter", FILTER_SRC),
                PipelineStage("credit-scorer", SCORER_SRC),
                PipelineStage("aggregator", AGGREGATOR_SRC)]
    if name == "stream-map4":
        params = [(3, 7), (5, 11), (7, 13), (9, 17)]
        return [PipelineStage(f"map{i}-x{m}p{a}", _map_stage_src(m, a))
                for i, (m, a) in enumerate(params)]
    raise KeyError(f"unknown pipeline topology {name!r}")


TOPOLOGIES = ("filter-score-agg", "stream-map4")


#: Compiled-blob cache: stage sources are tiny but recompiling one per
#: chunk per trial would dominate every campaign; the enclave still
#: re-measures every delivery (and the provision cache still decides
#: independently whether to re-verify).
_BLOB_CACHE: Dict[Tuple[str, str], bytes] = {}


class _CachedProvider(CodeProvider):
    """``CodeProvider`` whose compile step is memoized per (source,
    policy set).  Delivery semantics are unchanged — the measurement
    re-check still runs on every (re-)delivery."""

    def build(self) -> bytes:
        key = (self.source, self.policies.describe())
        blob = _BLOB_CACHE.get(key)
        if blob is None:
            blob = super().build()
            _BLOB_CACHE[key] = blob
        self.binary_hash = hashlib.sha256(blob).digest()
        return blob


class _StageRuntime:
    """One stage's live enclave + two-party workflow on one platform."""

    def __init__(self, stage: PipelineStage, hop: int, *,
                 seed: int, retry: RetryPolicy,
                 cache: ProvisionCache, record_size: int,
                 chunk_budget: Optional[int],
                 aex_threshold: int,
                 platform_seed: bytes,
                 fault_plan=None,
                 sleep: Optional[Callable[[float], None]] = None):
        policies = stage.policy_set()
        p0 = P0Config(record_size=record_size)
        if chunk_budget is not None:
            p0 = P0Config(max_output_bytes=chunk_budget,
                          record_size=record_size)
        # Each runtime gets its own platform: seal keys (and therefore
        # checkpoints) are platform-bound, which is exactly what makes
        # migration semantics honest — a harvested chain cannot follow
        # the job to a new drone.
        self.boot = BootstrapEnclave(policies=policies, p0=p0,
                                     platform=PlatformKey(platform_seed),
                                     aex_threshold=aex_threshold,
                                     provision_cache=cache)
        host = CCaaSHost(self.boot, AttestationService())
        if fault_plan is not None:
            from .faults import FaultyHost
            host = FaultyHost(host, fault_plan.hop_plan(hop),
                              record_size=record_size)
            self.hop_plan = host.plan
        else:
            self.hop_plan = None
        self.host = host
        self.provider = _CachedProvider(
            stage.source, policies, name=f"provider-{stage.name}")
        self.owner = DataOwner(
            data=b"", name=f"owner-{stage.name}",
            approved_hashes=[hashlib.sha256(
                self.provider.build()).digest()])
        self.workflow = TwoPartyWorkflow(host, self.provider,
                                         self.owner, retry=retry,
                                         sleep=sleep)
        #: Successful ``execute`` completions on *this* enclave — the
        #: expected ``run_completed`` audit count (see
        #: :meth:`PipelineOrchestrator._finalize`).
        self.expected_runs = 0

    @property
    def platform_id(self) -> str:
        return self.boot.enclave.platform.platform_id.hex()

    def verifier_digest(self) -> str:
        return hashlib.sha256(
            repr(self.boot.verifier.fingerprint()).encode()).hexdigest()


@dataclass
class HopRecord:
    """Per-hop ledger of one pipeline run."""

    hop: int
    stage: str
    stats: SessionStats = field(default_factory=SessionStats)
    runs: int = 0                  # completed executions (all chunks)
    audit_runs: int = 0            # run_completed events on the enclave
    expected_runs: int = 0         # what audit_runs must equal
    stalls: int = 0
    migrations: int = 0
    discard_reruns: int = 0
    boundary_teardowns: int = 0
    wall_s: float = 0.0
    #: Stats of workflows retired by a migration (merged at finalize).
    archived: SessionStats = field(default_factory=SessionStats)

    def as_dict(self) -> dict:
        return {
            "hop": self.hop, "stage": self.stage,
            "runs": self.runs, "audit_runs": self.audit_runs,
            "expected_runs": self.expected_runs,
            "stalls": self.stalls, "migrations": self.migrations,
            "discard_reruns": self.discard_reruns,
            "boundary_teardowns": self.boundary_teardowns,
            "stats": self.stats.as_dict(),
        }


@dataclass
class PipelineRun:
    """Result of one pipeline execution (batch or streaming)."""

    pipeline_id: str
    topology: str
    mode: str                      # "batch" | "stream"
    status: str = "ok"             # ok | blame@s | abort@s | stalled@s
    detail: str = ""
    output: bytes = b""
    reports: List[int] = field(default_factory=list)
    hops: List[HopRecord] = field(default_factory=list)
    #: Every provenance link, in chunk-major order.
    links: List[ProvenanceLink] = field(default_factory=list)
    #: chunk index -> that chunk's full link chain (-1 for batch).
    chains: Dict[int, List[ProvenanceLink]] = field(default_factory=dict)
    chunks: int = 0
    chunk_latencies: List[float] = field(default_factory=list)
    max_in_flight: int = 0
    wall_s: float = 0.0
    chain_verified: bool = False
    chain_detail: str = ""
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def stats(self) -> SessionStats:
        """One merged ledger over every hop (the satellite contract:
        :meth:`SessionStats.merge` is the single aggregation path, so
        merge order cannot matter)."""
        merged = SessionStats()
        for record in self.hops:
            merged.merge(record.stats)
        return merged

    @property
    def upstream_reruns(self) -> int:
        """``run_completed`` events beyond what resumes + legitimate
        discard-reruns explain — must be zero: downstream recovery
        never re-runs upstream work."""
        return sum(max(0, r.audit_runs - r.expected_runs)
                   for r in self.hops)

    def records_per_s(self) -> float:
        return self.chunks / self.wall_s if self.wall_s else 0.0


def _flip_bit(data: bytes, rng) -> bytes:
    if not data:
        return data
    pos = rng.randrange(len(data))
    out = bytearray(data)
    out[pos] ^= 1 << rng.randrange(8)
    return bytes(out)


def _doctor_links(links: List[ProvenanceLink], attack: str,
                  chain: ProvenanceChain, rng) -> List[ProvenanceLink]:
    """The host's chain attacks.  Every one must be rejected by
    :func:`verify_links`; returning the input unchanged means the
    attack had no material to work with (caller treats it as a no-op).
    """
    if attack == "truncate" and links:
        return links[:-1]
    if attack == "reorder" and len(links) >= 2:
        doctored = list(links)
        i = rng.randrange(len(doctored) - 1)
        doctored[i], doctored[i + 1] = doctored[i + 1], doctored[i]
        return doctored
    if attack == "splice" and links:
        foreign = hashlib.sha256(b"foreign-pipeline-key").digest()
        return remac_links(foreign, chain.pipeline_id, links)
    if attack == "replay":
        if chain.discarded and links and \
                chain.discarded[-1].hop == links[-1].hop:
            # The stale link occupies the same chain position as its
            # replacement, so its MAC still verifies — only the epoch
            # check can (and must) reject it.
            return links[:-1] + [chain.discarded[-1]]
        if links:
            return links + [links[0]]
    return links


class PipelineOrchestrator:
    """Run N verified enclave stages as a provenance-chained pipeline."""

    def __init__(self, stages: List[PipelineStage], *,
                 pipeline_id: str = "pipeline",
                 topology: str = "custom",
                 seed: int = 2021,
                 secret: Optional[bytes] = None,
                 retry: Optional[RetryPolicy] = None,
                 checkpoint_every: int = 25,
                 watchdog_steps: Optional[int] = None,
                 record_size: int = 256,
                 chunk_budget: Optional[int] = None,
                 aex_threshold: int = 25,
                 fault_plan=None,
                 provision_cache: Optional[ProvisionCache] = None,
                 sleep: Optional[Callable[[float], None]] = None,
                 max_stalls: int = 3,
                 max_migrations: int = 2,
                 rekey_every: Optional[int] = None,
                 interrupt_at: Optional[Dict[int, int]] = None,
                 teardown_before: Optional[Set[int]] = None,
                 raise_errors: bool = False):
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        self.stages = list(stages)
        self.pipeline_id = pipeline_id
        self.topology = topology
        self.seed = seed
        self.secret = secret if secret is not None else hashlib.sha256(
            f"deflection-pipeline-secret:{seed}".encode()).digest()
        self.checkpoint_every = checkpoint_every
        self.watchdog_steps = watchdog_steps
        self.record_size = record_size
        self.chunk_budget = chunk_budget
        self.aex_threshold = aex_threshold
        self.fault_plan = fault_plan
        self.cache = provision_cache if provision_cache is not None \
            else ProvisionCache()
        self._sleep = sleep
        self.max_stalls = max_stalls
        self.max_migrations = max_migrations
        self.rekey_every = rekey_every
        self.interrupt_at = dict(interrupt_at or {})
        self.teardown_before = set(teardown_before or ())
        self.raise_errors = raise_errors
        if retry is None:
            attempts = 6
            if fault_plan is not None:
                attempts = fault_plan.hop_max_faults + 2
            retry = RetryPolicy(max_attempts=attempts, seed=seed)
        self.retry = retry
        self.runtimes = [
            _StageRuntime(stage, hop, seed=seed, retry=retry,
                          cache=self.cache, record_size=record_size,
                          chunk_budget=chunk_budget,
                          aex_threshold=aex_threshold,
                          platform_seed=self._platform_seed(hop, 0),
                          fault_plan=fault_plan, sleep=sleep)
            for hop, stage in enumerate(self.stages)]
        self.hops = [HopRecord(hop, stage.name)
                     for hop, stage in enumerate(self.stages)]
        #: (chunk, hop) -> rerun epoch; bumped by discard-and-rerun.
        self.epochs: Dict[Tuple[int, int], int] = {}
        #: (chunk, hop) -> the verified input bytes of that hop — what
        #: a discard-and-rerun re-feeds the producer.
        self._inputs: Dict[Tuple[int, int], bytes] = {}
        self._interrupts_fired: Set[int] = set()
        self._teardowns_fired: Set[int] = set()
        self._last_outcome = None
        self.counters: Dict[str, int] = {
            "links": 0, "handoffs_rejected": 0,
            "chain_attacks_rejected": 0, "attacks_accepted": 0,
            "discard_reruns": 0, "migrations": 0, "stalls": 0,
            "rekeys": 0, "boundary_teardowns": 0,
        }

    def _platform_seed(self, hop: int, generation: int) -> bytes:
        return (f"pipeline-platform:{self.pipeline_id}:{self.seed}:"
                f"hop{hop}:gen{generation}").encode()

    # -- chain helpers ----------------------------------------------------

    def _chain_id(self, chunk: int) -> str:
        if chunk < 0:
            return self.pipeline_id
        return f"{self.pipeline_id}/chunk{chunk}"

    def _new_chain(self, chunk: int) -> ProvenanceChain:
        cid = self._chain_id(chunk)
        return ProvenanceChain(key=chain_key(self.secret, cid),
                               pipeline_id=cid)

    def _epochs_for(self, chunk: int) -> Dict[int, int]:
        return {h: self.epochs.get((chunk, h), 0)
                for h in range(len(self.stages))}

    # -- recovery paths ---------------------------------------------------

    def _migrate(self, hop: int, reason: str,
                 chain: ProvenanceChain, chunk: int,
                 data: bytes) -> None:
        """Quarantine the stage's platform and re-provision the hop on
        a healthy drone.  Same MRENCLAVE, same provision cache — the
        re-verification is a replay — but the seal key is
        platform-bound, so any harvested checkpoints die with the old
        drone (the hop reruns from scratch; upstream hops are
        untouched).  The chain gains an explicit ``migrated`` link."""
        record = self.hops[hop]
        old = self.runtimes[hop]
        record.archived.merge(old.workflow.combined_stats())
        stage = self.stages[hop]
        fresh = _StageRuntime(
            stage, hop, seed=self.seed, retry=self.retry,
            cache=self.cache, record_size=self.record_size,
            chunk_budget=self.chunk_budget,
            aex_threshold=self.aex_threshold,
            platform_seed=self._platform_seed(
                hop, record.migrations + 1),
            fault_plan=None, sleep=self._sleep)
        self.runtimes[hop] = fresh
        record.migrations += 1
        self.counters["migrations"] += 1
        chain.append(
            hop=hop, stage=stage.name, kind="migrated",
            mrenclave=fresh.boot.mrenclave.hex(),
            verifier=fresh.verifier_digest(),
            audit_head=fresh.boot.audit.head.hex(),
            input_digest=hashlib.sha256(data).hexdigest(),
            output_digest="", chunk=chunk,
            epoch=self.epochs.get((chunk, hop), 0),
            detail=f"{old.platform_id[:12]} -> "
                   f"{fresh.platform_id[:12]}: {reason}")

    def _scripted_interrupt(self, hop: int):
        """Test hook: one-shot mid-hop teardown after N steps."""
        steps = self.interrupt_at.get(hop)
        if steps is None or hop in self._interrupts_fired:
            return None

        def interrupt(cpu):
            if hop in self._interrupts_fired:
                return
            if cpu.steps >= steps:
                self._interrupts_fired.add(hop)
                self.runtimes[hop].boot.enclave.destroy()
                raise EnclaveTeardown(
                    f"scripted mid-hop teardown at hop {hop}, "
                    f"step {cpu.steps}")
        return interrupt

    # -- the per-hop engine -----------------------------------------------

    def _execute_hop(self, hop: int, data: bytes, chunk: int,
                     chain: ProvenanceChain) -> bytes:
        stage = self.stages[hop]
        record = self.hops[hop]
        if hop in self.teardown_before and \
                hop not in self._teardowns_fired:
            # Hop-boundary teardown: the platform killed the enclave
            # between hops.  Nothing mid-run is lost; the workflow's
            # ensure_alive + re-attest + cached re-provision recovers.
            self._teardowns_fired.add(hop)
            if not self.runtimes[hop].boot.enclave.destroyed:
                self.runtimes[hop].boot.enclave.destroy()
            record.boundary_teardowns += 1
            self.counters["boundary_teardowns"] += 1
        stall_budget = None
        if self.fault_plan is not None:
            stall_budget = self.fault_plan.draw_stall(hop)
            if self.fault_plan.draw_quarantine(hop):
                self._migrate(hop, "chaos quarantine", chain, chunk,
                              data)
        budget = stall_budget or self.watchdog_steps
        checkpoints: Optional[List[bytes]] = None
        stalls_here = 0
        began = perf_counter()
        while True:
            rt = self.runtimes[hop]
            rt.owner.data = data
            kwargs = {"checkpoint_every": self.checkpoint_every}
            if budget is not None:
                kwargs["watchdog"] = Watchdog(max_steps=budget)
            interrupt = self._scripted_interrupt(hop)
            if interrupt is not None:
                kwargs["interrupt"] = interrupt
            try:
                outcome, plaintexts = rt.workflow.execute(
                    initial_checkpoints=checkpoints, **kwargs)
            except DeadlineExceeded as exc:
                record.stalls += 1
                self.counters["stalls"] += 1
                stalls_here += 1
                checkpoints = list(exc.checkpoint) \
                    or list(rt.workflow.checkpoints)
                if stalls_here > self.max_stalls:
                    raise PipelineStalled(
                        f"stage {stage.name} (hop {hop}) stalled "
                        f"{stalls_here} times: {exc}", hop=hop,
                        stage=stage.name, checkpoints=checkpoints) \
                        from exc
                # Requeue: resume from the sealed chain under a larger
                # budget (an injected stall just drops the deadline).
                budget = None if stall_budget is not None \
                    else budget * 4
                continue
            except RetryBudgetExceeded as exc:
                if record.migrations >= self.max_migrations:
                    raise HopFailed(
                        f"stage {stage.name} (hop {hop}) failed on "
                        f"{record.migrations + 1} platforms: {exc}",
                        hop=hop, stage=stage.name, triage="abort") \
                        from exc
                self._migrate(hop, f"retry budget exhausted: {exc}",
                              chain, chunk, data)
                # Seal keys are platform-bound: the harvested chain
                # cannot follow the job to the new drone.
                checkpoints = None
                continue
            break
        rt.expected_runs += 1
        record.runs += 1
        record.wall_s += perf_counter() - began
        self._last_outcome = outcome
        if outcome.status != "ok":
            raise HopFailed(
                f"stage {stage.name} (hop {hop}) ended "
                f"{outcome.status}: {outcome.detail}", hop=hop,
                stage=stage.name, triage="blame")
        output = b"".join(plaintexts)
        record.stats.chunks += 1
        chain.append(
            hop=hop, stage=stage.name, kind="hop",
            mrenclave=rt.boot.mrenclave.hex(),
            verifier=rt.verifier_digest(),
            audit_head=rt.boot.audit.head.hex(),
            input_digest=hashlib.sha256(data).hexdigest(),
            output_digest=hashlib.sha256(output).hexdigest(),
            chunk=chunk, epoch=self.epochs.get((chunk, hop), 0))
        self.counters["links"] += 1
        return output

    # -- handoff acceptance -----------------------------------------------

    def _accept_handoff(self, hop: int, payload: bytes,
                        chain: ProvenanceChain, chunk: int) -> bytes:
        """Consumer-side gate before hop ``hop`` runs: verify the full
        upstream chain against the presented bytes.  The fault plan may
        lose the handoff (stale-chain discard-and-rerun of the
        producer), corrupt the presented bytes, or doctor the presented
        links — every attack must be rejected, after which the honest
        copy is re-presented and must verify."""
        plan = self.fault_plan
        attack = plan.draw_handoff(hop) if plan is not None else None
        if attack == "lose":
            producer = hop - 1
            chain.truncate_from(producer)
            key = (chunk, producer)
            self.epochs[key] = self.epochs.get(key, 0) + 1
            self.counters["discard_reruns"] += 1
            self.hops[producer].discard_reruns += 1
            payload = self._execute_hop(
                producer, self._inputs[(chunk, producer)], chunk,
                chain)
            attack = None
        presented, links = payload, list(chain.links)
        if attack == "corrupt":
            presented = _flip_bit(payload, plan._rng)
            if presented == payload:
                attack = None
        elif attack is not None:
            links = _doctor_links(links, attack, chain, plan._rng)
            if links == list(chain.links):
                attack = None
        epochs = self._epochs_for(chunk)
        digest = hashlib.sha256(presented).hexdigest()
        try:
            verify_links(chain.key, chain.pipeline_id, links,
                         expect_hops=hop, expect_chunk=chunk,
                         expect_epochs=epochs, final_digest=digest)
        except ProvenanceError:
            if attack is None:
                raise          # genuine corruption — fail closed
            if attack == "corrupt":
                self.counters["handoffs_rejected"] += 1
            else:
                self.counters["chain_attacks_rejected"] += 1
            # The honest re-presentation must verify, or the pipeline
            # is genuinely broken.
            verify_links(chain.key, chain.pipeline_id,
                         list(chain.links), expect_hops=hop,
                         expect_chunk=chunk, expect_epochs=epochs,
                         final_digest=hashlib.sha256(
                             payload).hexdigest())
            return payload
        if attack is not None:
            # A doctored presentation passed verification — the
            # fail-closed property is broken.  Must never happen.
            self.counters["attacks_accepted"] += 1
        return payload

    # -- one work item through every hop ----------------------------------

    def _run_item(self, data: bytes, chunk: int,
                  chain: ProvenanceChain) -> bytes:
        payload = data
        for hop in range(len(self.stages)):
            if hop > 0:
                payload = self._accept_handoff(hop, payload, chain,
                                               chunk)
            self._inputs[(chunk, hop)] = payload
            payload = self._execute_hop(hop, payload, chunk, chain)
        return payload

    def _arm_rekey(self) -> None:
        if not self.rekey_every:
            return
        for rt in self.runtimes:
            channels = [rt.provider._channel, rt.owner._channel]
            channels.extend(rt.boot.channels.values())
            for channel in channels:
                if channel is not None and channel.rekey_after is None:
                    channel.rekey_after = self.rekey_every

    # -- public entry points ----------------------------------------------

    def run(self, data: bytes) -> PipelineRun:
        """Batch mode: one work item through every hop."""
        run = PipelineRun(self.pipeline_id, self.topology, "batch")
        began = perf_counter()
        chain = self._new_chain(-1)
        try:
            output = self._run_item(data, -1, chain)
            run.output = output
            run.reports = list(self._last_outcome.reports)
            run.chunks = 1
            run.chunk_latencies = [perf_counter() - began]
        except (HopFailed, PipelineStalled) as exc:
            self._note_failure(run, exc)
            if self.raise_errors:
                self._finalize(run, {-1: chain}, {}, began)
                raise
        run.wall_s = perf_counter() - began
        self._finalize(run, {-1: chain},
                       {-1: (data, run.output)} if run.ok else {},
                       began)
        return run

    def run_streaming(self, data: bytes, *, chunk_size: int = 32,
                      window: int = 2) -> PipelineRun:
        """Streaming mode: chunked records through long-lived attested
        sessions, a bounded in-flight window, per-chunk provenance
        chains and per-chunk P0 budgets."""
        run = PipelineRun(self.pipeline_id, self.topology, "stream")
        began = perf_counter()
        pieces = [data[i:i + chunk_size]
                  for i in range(0, len(data), chunk_size)] or [b""]
        n = len(self.stages)
        queues = [deque() for _ in range(n)]
        chains: Dict[int, ProvenanceChain] = {}
        results: Dict[int, bytes] = {}
        latencies: Dict[int, float] = {}
        next_feed = 0
        in_flight = 0
        try:
            while len(results) < len(pieces):
                while next_feed < len(pieces) and in_flight < window:
                    chains[next_feed] = self._new_chain(next_feed)
                    queues[0].append((next_feed, pieces[next_feed]))
                    in_flight += 1
                    run.max_in_flight = max(run.max_in_flight,
                                            in_flight)
                    next_feed += 1
                # Deepest stage first: drain downstream work before
                # admitting more — the window is backpressure, not a
                # buffer.
                for hop in reversed(range(n)):
                    if not queues[hop]:
                        continue
                    index, payload = queues[hop].popleft()
                    t0 = perf_counter()
                    if hop > 0:
                        payload = self._accept_handoff(
                            hop, payload, chains[index], index)
                    self._inputs[(index, hop)] = payload
                    payload = self._execute_hop(hop, payload, index,
                                                chains[index])
                    latencies[index] = latencies.get(index, 0.0) \
                        + (perf_counter() - t0)
                    if hop + 1 < n:
                        queues[hop + 1].append((index, payload))
                    else:
                        results[index] = payload
                        run.reports.extend(
                            self._last_outcome.reports)
                        in_flight -= 1
                    break
                self._arm_rekey()
        except (HopFailed, PipelineStalled) as exc:
            self._note_failure(run, exc)
            if self.raise_errors:
                self._finalize(run, chains, {}, began)
                raise
        if run.ok:
            run.output = b"".join(results[i]
                                  for i in range(len(pieces)))
            run.chunks = len(pieces)
            run.chunk_latencies = [latencies[i]
                                   for i in sorted(latencies)]
        run.wall_s = perf_counter() - began
        inputs_outputs = {i: (pieces[i], results[i])
                          for i in results} if run.ok else {}
        self._finalize(run, chains, inputs_outputs, began)
        return run

    # -- bookkeeping ------------------------------------------------------

    def _note_failure(self, run: PipelineRun, exc) -> None:
        if isinstance(exc, PipelineStalled):
            run.status = f"stalled@{exc.stage}"
        else:
            run.status = f"{exc.triage}@{exc.stage}"
        run.detail = str(exc)

    def _finalize(self, run: PipelineRun,
                  chains: Dict[int, ProvenanceChain],
                  inputs_outputs: Dict[int, Tuple[bytes, bytes]],
                  began: float) -> None:
        for chunk in sorted(chains):
            links = list(chains[chunk].links)
            run.chains[chunk] = links
            run.links.extend(links)
        for hop, (rt, record) in enumerate(zip(self.runtimes,
                                               self.hops)):
            record.stats = SessionStats(
                chunks=record.stats.chunks).merge(record.archived) \
                .merge(rt.workflow.combined_stats())
            record.audit_runs = rt.boot.audit.count("run_completed")
            record.expected_runs = rt.expected_runs
        run.hops = list(self.hops)
        self.counters["rekeys"] = sum(
            channel.rekeys
            for rt in self.runtimes
            for channel in [rt.provider._channel, rt.owner._channel,
                            *rt.boot.channels.values()]
            if channel is not None)
        run.counters = dict(self.counters)
        if run.ok and inputs_outputs:
            try:
                for chunk, (item_in, item_out) in \
                        sorted(inputs_outputs.items()):
                    chain = chains[chunk]
                    verify_links(
                        chain.key, chain.pipeline_id,
                        list(chain.links),
                        expect_hops=len(self.stages),
                        expect_chunk=chunk,
                        expect_epochs=self._epochs_for(chunk),
                        input_digest=hashlib.sha256(
                            item_in).hexdigest(),
                        final_digest=hashlib.sha256(
                            item_out).hexdigest())
                run.chain_verified = True
            except ProvenanceError as exc:
                run.chain_verified = False
                run.chain_detail = str(exc)


def serial_oracle(stages: List[PipelineStage], data: bytes, *,
                  chunk_size: Optional[int] = None,
                  chunk_budget: Optional[int] = None,
                  record_size: int = 256,
                  aex_threshold: int = 25,
                  provision_cache: Optional[ProvisionCache] = None
                  ) -> Tuple[bytes, List[int]]:
    """The unfaulted serial oracle: the same verified stages run
    plainly (no sessions, no faults, no checkpoints), chunk by chunk.
    A chain-verified pipeline output must be byte-identical to this."""
    cache = provision_cache if provision_cache is not None \
        else ProvisionCache()
    boots = []
    for stage in stages:
        policies = stage.policy_set()
        p0 = P0Config(record_size=record_size)
        if chunk_budget is not None:
            p0 = P0Config(max_output_bytes=chunk_budget,
                          record_size=record_size)
        boot = BootstrapEnclave(policies=policies, p0=p0,
                                aex_threshold=aex_threshold,
                                provision_cache=cache)
        provider = _CachedProvider(stage.source, policies)
        boot.receive_binary(provider.build())
        boots.append(boot)
    pieces = [data] if chunk_size is None else \
        [data[i:i + chunk_size]
         for i in range(0, len(data), chunk_size)] or [b""]
    outputs: List[bytes] = []
    reports: List[int] = []
    for piece in pieces:
        payload = piece
        for boot in boots:
            boot.receive_userdata(payload)
            outcome = boot.run()
            if outcome.status != "ok":
                raise HopFailed(
                    f"oracle stage ended {outcome.status}: "
                    f"{outcome.detail}", triage="blame")
            payload = b"".join(outcome.sent_plaintext)
        outputs.append(payload)
        reports.extend(outcome.reports)
    return b"".join(outputs), reports
