"""Workload registry."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional


@dataclass(frozen=True)
class Workload:
    """One runnable MiniC program with its input recipe.

    ``make_source`` builds the source for a parameter value (most
    kernels bake the size in as a constant global); ``make_input``
    produces the bytes staged for ``__recv``.  The first ``__report``
    value is 1 iff the kernel's internal self-check passed.
    """

    name: str
    make_source: Callable[[int], str]
    default_param: int
    make_input: Optional[Callable[[int], bytes]] = None
    description: str = ""

    def source(self, param: Optional[int] = None) -> str:
        return self.make_source(param if param is not None
                                else self.default_param)

    def input_bytes(self, param: Optional[int] = None) -> bytes:
        if self.make_input is None:
            return b""
        return self.make_input(param if param is not None
                               else self.default_param)


WORKLOADS: Dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    if workload.name in WORKLOADS:
        raise ValueError(f"duplicate workload {workload.name!r}")
    WORKLOADS[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(WORKLOADS)}") \
            from None
