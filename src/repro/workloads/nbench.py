"""The ten nBench-suite kernels of Table II, in MiniC.

Each kernel mirrors the character of its nBench namesake — the property
that drives which policy dominates its overhead (store density for P1,
indirect calls for P5, basic-block length for P6):

* NUMERIC SORT — heapsort, store/load heavy with short blocks;
* STRING SORT — byte-wise compares and moves through a string pool;
* BITFIELD — read-modify-write bit operations;
* FP EMULATION — software arithmetic (Newton iterations), register
  bound, few stores — the paper's cheapest kernel;
* FOURIER — fixed-point trig series, call + arithmetic bound;
* ASSIGNMENT — cost-matrix reduction with comparator *function
  pointers* — the paper's worst case for P5/P6;
* IDEA — the IDEA cipher's mul-mod-65537 lattice;
* HUFFMAN — tree build + bit-level encode/decode round trip;
* NEURAL NET — fixed-point MLP forward/backprop;
* LU DECOMPOSITION — fixed-point Doolittle factorization + residual.

Every kernel self-checks (first ``__report`` is 1 on success) and
reports a content checksum, so instrumentation-induced miscompiles are
caught both absolutely and differentially across policy settings.
"""

from __future__ import annotations

from .registry import Workload, register


def _tpl(template: str, **tokens: int):
    def make(param: int) -> str:
        source = template
        values = dict(tokens)
        values["N"] = param
        for key, value in values.items():
            source = source.replace(f"@{key}@", str(value))
        return source
    return make


# ---------------------------------------------------------------------------
# NUMERIC SORT
# ---------------------------------------------------------------------------

_NUMERIC_SORT = r"""
int arr[@N@];

int siftdown(int n, int start) {
    int root = start;
    while (root * 2 + 1 < n) {
        int child = root * 2 + 1;
        if (child + 1 < n && arr[child] < arr[child + 1]) child = child + 1;
        if (arr[root] < arr[child]) {
            int t = arr[root]; arr[root] = arr[child]; arr[child] = t;
            root = child;
        } else {
            return 0;
        }
    }
    return 0;
}

int main() {
    int n = @N@;
    int i;
    int sum = 0;
    srand(42);
    for (i = 0; i < n; i++) { arr[i] = rand() % 100000; sum += arr[i]; }
    for (i = n / 2 - 1; i >= 0; i--) siftdown(n, i);
    int end = n - 1;
    while (end > 0) {
        int t = arr[end]; arr[end] = arr[0]; arr[0] = t;
        siftdown(end, 0);
        end--;
    }
    int ok = 1;
    int sum2 = arr[0];
    for (i = 1; i < n; i++) {
        sum2 += arr[i];
        if (arr[i - 1] > arr[i]) ok = 0;
    }
    if (sum2 != sum) ok = 0;
    __report(ok);
    __report((arr[0] + arr[n - 1] * 3 + sum) & 1073741823);
    return ok;
}
"""

register(Workload("numeric_sort", _tpl(_NUMERIC_SORT), 400,
                  description="heapsort of N pseudo-random ints"))


# ---------------------------------------------------------------------------
# STRING SORT
# ---------------------------------------------------------------------------

_STRING_SORT = r"""
char pool[@POOLSZ@];
int offs[@N@];

int main() {
    int n = @N@;
    int i, j;
    srand(7);
    int cursor = 0;
    for (i = 0; i < n; i++) {
        offs[i] = cursor;
        int len = 4 + rand() % 12;
        for (j = 0; j < len; j++) {
            pool[cursor] = 97 + rand() % 26;
            cursor++;
        }
        pool[cursor] = 0;
        cursor++;
    }
    for (i = 1; i < n; i++) {
        int key = offs[i];
        j = i - 1;
        while (j >= 0 && strcmp(&pool[offs[j]], &pool[key]) > 0) {
            offs[j + 1] = offs[j];
            j--;
        }
        offs[j + 1] = key;
    }
    int ok = 1;
    int check = 0;
    for (i = 1; i < n; i++)
        if (strcmp(&pool[offs[i - 1]], &pool[offs[i]]) > 0) ok = 0;
    for (i = 0; i < n; i++)
        check = (check * 31 + pool[offs[i]] + strlen(&pool[offs[i]]))
                & 1048575;
    __report(ok);
    __report(check);
    return ok;
}
"""


def _string_sort_source(n: int) -> str:
    return _STRING_SORT.replace("@N@", str(n)) \
        .replace("@POOLSZ@", str(n * 18))


register(Workload("string_sort", _string_sort_source, 64,
                  description="insertion sort of N strings by strcmp"))


# ---------------------------------------------------------------------------
# BITFIELD
# ---------------------------------------------------------------------------

_BITFIELD = r"""
int bitmap[@WORDS@];

int setbit(int idx) {
    bitmap[idx / 64] = bitmap[idx / 64] | (1 << (idx % 64));
    return 0;
}

int clearbit(int idx) {
    bitmap[idx / 64] = bitmap[idx / 64] & ~(1 << (idx % 64));
    return 0;
}

int testbit(int idx) {
    return (bitmap[idx / 64] >> (idx % 64)) & 1;
}

int popcount_word(int w) {
    int count = 0;
    while (w) { count++; w = w & (w - 1); }
    return count;
}

int main() {
    int words = @WORDS@;
    int ops = @N@;
    int bits = words * 64;
    int i;
    srand(99);
    for (i = 0; i < words; i++) bitmap[i] = 0;
    int toggles = 0;
    for (i = 0; i < ops; i++) {
        int idx = rand() % bits;
        int kind = rand() % 3;
        if (kind == 0) setbit(idx);
        else if (kind == 1) clearbit(idx);
        else {
            if (testbit(idx)) clearbit(idx); else setbit(idx);
            toggles++;
        }
    }
    int count = 0;
    int count2 = 0;
    for (i = 0; i < bits; i++) count += testbit(i);
    for (i = 0; i < words; i++) count2 += popcount_word(bitmap[i]);
    __report(count == count2);
    __report((count * 131 + toggles) & 1073741823);
    return count;
}
"""

register(Workload("bitfield", _tpl(_BITFIELD, WORDS=32), 2500,
                  description="N random set/clear/toggle bit operations"))


# ---------------------------------------------------------------------------
# FP EMULATION (software arithmetic, register bound)
# ---------------------------------------------------------------------------

_FP_EMULATION = r"""
int fsqrt(int x) {
    if (x < 2) return x;
    int guess = x;
    int i;
    for (i = 0; i < 20; i++) guess = (guess + x / guess) / 2;
    return guess;
}

int fexp_q16(int x) {
    // e^x in Q16.16 via 12-term series, all in registers
    int q = 65536;
    int term = q;
    int acc = q;
    int k;
    for (k = 1; k <= 12; k++) {
        term = (term * x) / q / k;
        acc += term;
    }
    return acc;
}

int main() {
    int loops = @N@;
    int i;
    int acc = 0;
    int ok = 1;
    for (i = 1; i <= loops; i++) {
        int r = fsqrt(i * i);
        if (r < i - 1 || r > i + 1) ok = 0;
        int e = fexp_q16((i % 3) * 16384);
        acc = (acc + r * 7 + e) & 1073741823;
    }
    __report(ok);
    __report(acc);
    return ok;
}
"""

register(Workload("fp_emulation", _tpl(_FP_EMULATION), 260,
                  description="software sqrt/exp emulation, "
                              "register-bound"))


# ---------------------------------------------------------------------------
# FOURIER (fixed-point trig series)
# ---------------------------------------------------------------------------

_FOURIER = r"""
int Q = 65536;
int PI_Q = 205887;   // pi in Q16.16

int fmul(int a, int b) { return (a * b) / 65536; }

int tsin(int x) {
    // normalize to [-pi, pi]
    while (x > PI_Q) x -= 2 * PI_Q;
    while (x < -PI_Q) x += 2 * PI_Q;
    int x2 = fmul(x, x);
    int term = x;
    int acc = x;
    term = -fmul(term, x2) / 6;   acc += term;
    term = -fmul(term, x2) / 20;  acc += term;
    term = -fmul(term, x2) / 42;  acc += term;
    term = -fmul(term, x2) / 72;  acc += term;
    return acc;
}

int tcos(int x) { return tsin(x + PI_Q / 2); }

// f(t) = (t/pi)^2 over [-pi, pi]; trapezoid integration of f*cos(k t)
int coefficient(int k, int steps) {
    int a = -PI_Q;
    int h = (2 * PI_Q) / steps;
    int acc = 0;
    int s;
    for (s = 0; s <= steps; s++) {
        int t = a + h * s;
        int ft = fmul(fmul(t, t), 65536 / 10);
        int v = fmul(ft, tcos(k * t));
        if (s == 0 || s == steps) v = v / 2;
        acc += v;
    }
    return fmul(acc, h) / 65536;
}

int main() {
    int ncoef = @N@;
    int k;
    int acc = 0;
    int ok = 1;
    int prev_mag = 2147483647;
    for (k = 1; k <= ncoef; k++) {
        int c = coefficient(k, 36);
        acc = (acc + c * k) & 1073741823;
    }
    // sanity: sin/cos identity at a few points
    for (k = 0; k < 8; k++) {
        int x = (k * PI_Q) / 5 - PI_Q;
        int s = tsin(x);
        int c = tcos(x);
        int one = fmul(s, s) + fmul(c, c);
        if (one < 63500 || one > 67500) ok = 0;
    }
    __report(ok);
    __report(acc);
    return ok;
}
"""

register(Workload("fourier", _tpl(_FOURIER), 14,
                  description="N Fourier coefficients by fixed-point "
                              "series integration"))


# ---------------------------------------------------------------------------
# ASSIGNMENT (function-pointer heavy)
# ---------------------------------------------------------------------------

_ASSIGNMENT = r"""
int cost[@DIM@ * @DIM@];
int rowsel[@DIM@];
int colused[@DIM@];

int lt(int a, int b) { if (a < b) return 1; return 0; }
int gt(int a, int b) { if (a > b) return 1; return 0; }

int extreme_in_row(int r, int n, int (*cmp)(int, int)) {
    int best = cost[r * n];
    int j;
    for (j = 1; j < n; j++)
        if (cmp(cost[r * n + j], best)) best = cost[r * n + j];
    return best;
}

int extreme_in_col(int c, int n, int (*cmp)(int, int)) {
    int best = cost[c];
    int i;
    for (i = 1; i < n; i++)
        if (cmp(cost[i * n + c], best)) best = cost[i * n + c];
    return best;
}

int main() {
    int n = @DIM@;
    int rounds = @N@;
    int round;
    int total = 0;
    int ok = 1;
    srand(1234);
    for (round = 0; round < rounds; round++) {
        int i, j;
        for (i = 0; i < n * n; i++) cost[i] = rand() % 1000;
        // row reduction through the comparator pointer
        for (i = 0; i < n; i++) {
            int m = extreme_in_row(i, n, &lt);
            for (j = 0; j < n; j++) cost[i * n + j] -= m;
        }
        // column reduction
        for (j = 0; j < n; j++) {
            int m = extreme_in_col(j, n, &lt);
            for (i = 0; i < n; i++) cost[i * n + j] -= m;
        }
        // every row/col must now contain a zero
        for (i = 0; i < n; i++)
            if (extreme_in_row(i, n, &lt) != 0) ok = 0;
        for (j = 0; j < n; j++)
            if (extreme_in_col(j, n, &lt) != 0) ok = 0;
        // greedy assignment on the reduced matrix
        for (j = 0; j < n; j++) colused[j] = 0;
        int assigned = 0;
        for (i = 0; i < n; i++) {
            int bj = -1;
            int bv = 2147483647;
            for (j = 0; j < n; j++)
                if (!colused[j] && lt(cost[i * n + j], bv)) {
                    bv = cost[i * n + j];
                    bj = j;
                }
            rowsel[i] = bj;
            colused[bj] = 1;
            assigned += bv;
        }
        int mx = extreme_in_row(0, n, &gt);
        total = (total + assigned * 13 + mx) & 1073741823;
    }
    __report(ok);
    __report(total);
    return ok;
}
"""

register(Workload("assignment", _tpl(_ASSIGNMENT, DIM=12), 16,
                  description="N rounds of cost-matrix reduction with "
                              "comparator function pointers"))


# ---------------------------------------------------------------------------
# IDEA cipher
# ---------------------------------------------------------------------------

_IDEA = r"""
int keys[52];
int blocks[@N@ * 4];

int mulmod(int a, int b) {
    if (a == 0) a = 65536;
    if (b == 0) b = 65536;
    int p = (a * b) % 65537;
    if (p == 65536) return 0;
    return p;
}

int encrypt_block(int base) {
    int x1 = blocks[base];
    int x2 = blocks[base + 1];
    int x3 = blocks[base + 2];
    int x4 = blocks[base + 3];
    int r;
    for (r = 0; r < 8; r++) {
        int k = r * 6;
        x1 = mulmod(x1, keys[k]);
        x2 = (x2 + keys[k + 1]) % 65536;
        x3 = (x3 + keys[k + 2]) % 65536;
        x4 = mulmod(x4, keys[k + 3]);
        int t1 = x1 ^ x3;
        int t2 = x2 ^ x4;
        t1 = mulmod(t1, keys[k + 4]);
        t2 = (t1 + t2) % 65536;
        t2 = mulmod(t2, keys[k + 5]);
        t1 = (t1 + t2) % 65536;
        x1 = x1 ^ t2;
        x3 = x3 ^ t2;
        x2 = x2 ^ t1;
        x4 = x4 ^ t1;
        int tmp = x2; x2 = x3; x3 = tmp;
    }
    blocks[base] = mulmod(x1, keys[48]);
    blocks[base + 1] = (x3 + keys[49]) % 65536;
    blocks[base + 2] = (x2 + keys[50]) % 65536;
    blocks[base + 3] = mulmod(x4, keys[51]);
    return 0;
}

int main() {
    int nblocks = @N@;
    int i;
    srand(2718);
    for (i = 0; i < 52; i++) keys[i] = rand() % 65536;
    int insum = 0;
    for (i = 0; i < nblocks * 4; i++) {
        blocks[i] = rand() % 65536;
        insum = (insum + blocks[i]) & 1073741823;
    }
    for (i = 0; i < nblocks; i++) encrypt_block(i * 4);
    int outsum = 0;
    int inrange = 1;
    for (i = 0; i < nblocks * 4; i++) {
        outsum = (outsum * 17 + blocks[i]) & 1073741823;
        if (blocks[i] < 0 || blocks[i] > 65535) inrange = 0;
    }
    __report(inrange);
    __report(outsum ^ insum);
    return inrange;
}
"""

register(Workload("idea", _tpl(_IDEA), 130,
                  description="IDEA encryption of N 64-bit blocks"))


# ---------------------------------------------------------------------------
# HUFFMAN (tree build + encode/decode round trip)
# ---------------------------------------------------------------------------

_HUFFMAN = r"""
int freq[64];
int left[64];
int right[64];
int active[64];
int codelen[32];
char text[@N@];
char decoded[@N@];
char bits[@N@ * 12];

int main() {
    int n = @N@;
    int i;
    srand(555);
    // skewed symbol distribution over 16 letters
    for (i = 0; i < n; i++) {
        int r = rand() % 100;
        int sym;
        if (r < 40) sym = 0;
        else if (r < 62) sym = 1;
        else if (r < 75) sym = 2;
        else sym = 3 + rand() % 13;
        text[i] = sym;
    }
    int nsym = 16;
    for (i = 0; i < 64; i++) { freq[i] = 0; active[i] = 0; left[i] = -1; right[i] = -1; }
    for (i = 0; i < n; i++) freq[text[i]]++;
    for (i = 0; i < nsym; i++) { freq[i]++; active[i] = 1; }
    int nodes = nsym;
    int remaining = nsym;
    while (remaining > 1) {
        int a = -1; int b = -1;
        for (i = 0; i < nodes; i++) {
            if (!active[i]) continue;
            if (a == -1 || freq[i] < freq[a]) { b = a; a = i; }
            else if (b == -1 || freq[i] < freq[b]) b = i;
        }
        active[a] = 0;
        active[b] = 0;
        left[nodes] = a;
        right[nodes] = b;
        freq[nodes] = freq[a] + freq[b];
        active[nodes] = 1;
        nodes++;
        remaining--;
    }
    int root = nodes - 1;
    // code lengths by walking up; codes assigned canonically by depth
    for (i = 0; i < nsym; i++) codelen[i] = 0;
    // compute depth of each leaf with an explicit stack
    int stack[64];
    int depth[64];
    int sp = 0;
    stack[sp] = root; depth[sp] = 0; sp++;
    while (sp > 0) {
        sp--;
        int node = stack[sp];
        int d = depth[sp];
        if (node < nsym) { codelen[node] = d; continue; }
        stack[sp] = left[node]; depth[sp] = d + 1; sp++;
        stack[sp] = right[node]; depth[sp] = d + 1; sp++;
    }
    // Kraft sum must be exactly 1 (scaled by 1<<16)
    int kraft = 0;
    for (i = 0; i < nsym; i++) kraft += 65536 >> codelen[i];
    int ok = kraft == 65536;
    // encode: emit path bits by walking the tree per symbol
    int nbits = 0;
    int s;
    for (s = 0; s < n; s++) {
        int sym = text[s];
        // find path root->leaf: walk down choosing side containing sym
        int node = root;
        while (node >= nsym) {
            // does the left subtree contain sym?
            int found = 0;
            int sp2 = 0;
            stack[sp2] = left[node]; sp2++;
            while (sp2 > 0) {
                sp2--;
                int x = stack[sp2];
                if (x == sym) { found = 1; break; }
                if (x >= nsym) {
                    stack[sp2] = left[x]; sp2++;
                    stack[sp2] = right[x]; sp2++;
                }
            }
            if (found) { bits[nbits] = 0; nbits++; node = left[node]; }
            else { bits[nbits] = 1; nbits++; node = right[node]; }
        }
    }
    // decode and compare
    int pos = 0;
    int outn = 0;
    while (pos < nbits) {
        int node = root;
        while (node >= nsym) {
            if (bits[pos]) node = right[node]; else node = left[node];
            pos++;
        }
        decoded[outn] = node;
        outn++;
    }
    if (outn != n) ok = 0;
    for (i = 0; i < n; i++) if (decoded[i] != text[i]) ok = 0;
    __report(ok);
    __report((nbits * 7 + kraft) & 1073741823);
    return ok;
}
"""

register(Workload("huffman", _tpl(_HUFFMAN), 160,
                  description="Huffman tree build + encode/decode of N "
                              "symbols"))


# ---------------------------------------------------------------------------
# NEURAL NET (fixed-point MLP backprop)
# ---------------------------------------------------------------------------

_NEURAL_NET = r"""
int w1[8 * 6];
int w2[6 * 4];
int hid[6];
int out[4];
int delta_o[4];
int delta_h[6];
int pattern[8];
int target[4];

int Q = 4096;   // Q12 fixed point

int clampq(int x) {
    if (x > 16 * 4096) return 16 * 4096;
    if (x < -16 * 4096) return -16 * 4096;
    return x;
}

int sigmoid(int x) {
    // piecewise-linear sigmoid approximation in Q12
    x = clampq(x);
    if (x <= -4 * 4096) return 0;
    if (x >= 4 * 4096) return 4096;
    return 2048 + x / 8;
}

int forward() {
    int j, k;
    for (j = 0; j < 6; j++) {
        int acc = 0;
        for (k = 0; k < 8; k++) acc += (pattern[k] * w1[k * 6 + j]) / 4096;
        hid[j] = sigmoid(acc);
    }
    for (j = 0; j < 4; j++) {
        int acc = 0;
        for (k = 0; k < 6; k++) acc += (hid[k] * w2[k * 4 + j]) / 4096;
        out[j] = sigmoid(acc);
    }
    return 0;
}

int make_pattern(int p) {
    int k;
    for (k = 0; k < 8; k++) pattern[k] = ((p * 37 + k * 17) % 8) * 512;
    for (k = 0; k < 4; k++) target[k] = ((p + k) % 2) * 4096;
    return 0;
}

int loss_for(int npat) {
    int p, j;
    int loss = 0;
    for (p = 0; p < npat; p++) {
        make_pattern(p);
        forward();
        for (j = 0; j < 4; j++) {
            int e = out[j] - target[j];
            loss += (e * e) / 4096;
        }
    }
    return loss;
}

int main() {
    int npat = @PATTERNS@;
    int epochs = @N@;
    int i, j, k, p, e;
    srand(31415);
    for (i = 0; i < 48; i++) w1[i] = rand() % 2048 - 1024;
    for (i = 0; i < 24; i++) w2[i] = rand() % 2048 - 1024;
    int loss0 = loss_for(npat);
    for (e = 0; e < epochs; e++) {
        for (p = 0; p < npat; p++) {
            make_pattern(p);
            forward();
            for (j = 0; j < 4; j++) {
                int err = target[j] - out[j];
                delta_o[j] = err / 4;
            }
            for (k = 0; k < 6; k++) {
                int acc = 0;
                for (j = 0; j < 4; j++) acc += (delta_o[j] * w2[k * 4 + j]) / 4096;
                delta_h[k] = acc / 4;
            }
            for (k = 0; k < 6; k++)
                for (j = 0; j < 4; j++)
                    w2[k * 4 + j] = clampq(w2[k * 4 + j] + (hid[k] * delta_o[j]) / 16384);
            for (k = 0; k < 8; k++)
                for (j = 0; j < 6; j++)
                    w1[k * 6 + j] = clampq(w1[k * 6 + j] + (pattern[k] * delta_h[j]) / 16384);
        }
    }
    int loss1 = loss_for(npat);
    __report(loss1 <= loss0);
    int check = 0;
    for (i = 0; i < 24; i++) check = (check * 13 + w2[i]) & 1073741823;
    __report(check);
    return loss1 <= loss0;
}
"""

register(Workload("neural_net", _tpl(_NEURAL_NET, PATTERNS=16), 8,
                  description="N epochs of fixed-point MLP backprop"))


# ---------------------------------------------------------------------------
# LU DECOMPOSITION (fixed point, with residual self-check)
# ---------------------------------------------------------------------------

_LU_DECOMPOSITION = r"""
int a[@DIM@ * @DIM@];
int lu[@DIM@ * @DIM@];
int b[@DIM@];
int y[@DIM@];
int x[@DIM@];

int Q = 65536;

int fmul(int p, int q) { return (p * q) / 65536; }
int fdiv(int p, int q) { return (p * 65536) / q; }

int main() {
    int n = @DIM@;
    int rounds = @N@;
    int round;
    int ok = 1;
    int check = 0;
    srand(1618);
    for (round = 0; round < rounds; round++) {
        int i, j, k;
        // diagonally dominant matrix in Q16.16
        for (i = 0; i < n; i++) {
            int rowsum = 0;
            for (j = 0; j < n; j++) {
                if (i != j) {
                    a[i * n + j] = (rand() % 2000 - 1000) * 16;
                    rowsum += abs(a[i * n + j]);
                }
            }
            a[i * n + i] = rowsum + 65536 + (rand() % 1000) * 16;
            b[i] = (rand() % 4000 - 2000) * 16;
        }
        for (i = 0; i < n * n; i++) lu[i] = a[i];
        // Doolittle, no pivoting needed (diagonal dominance)
        for (k = 0; k < n; k++) {
            for (i = k + 1; i < n; i++) {
                int m = fdiv(lu[i * n + k], lu[k * n + k]);
                lu[i * n + k] = m;
                for (j = k + 1; j < n; j++)
                    lu[i * n + j] -= fmul(m, lu[k * n + j]);
            }
        }
        // solve L y = b, U x = y
        for (i = 0; i < n; i++) {
            int acc = b[i];
            int jj;
            for (jj = 0; jj < i; jj++) acc -= fmul(lu[i * n + jj], y[jj]);
            y[i] = acc;
        }
        for (i = n - 1; i >= 0; i--) {
            int acc = y[i];
            int jj;
            for (jj = i + 1; jj < n; jj++) acc -= fmul(lu[i * n + jj], x[jj]);
            x[i] = fdiv(acc, lu[i * n + i]);
        }
        // residual || A x - b || must be small
        for (i = 0; i < n; i++) {
            int acc = 0;
            for (j = 0; j < n; j++) acc += fmul(a[i * n + j], x[j]);
            int r = abs(acc - b[i]);
            if (r > 4096) ok = 0;
        }
        check = (check * 29 + abs(x[0]) + abs(x[n - 1])) & 1073741823;
    }
    __report(ok);
    __report(check);
    return ok;
}
"""

register(Workload("lu_decomposition", _tpl(_LU_DECOMPOSITION, DIM=12), 8,
                  description="N rounds of fixed-point LU factorization "
                              "with residual check"))

#: Table II's row order.
NBENCH_ORDER = [
    "numeric_sort", "string_sort", "bitfield", "fp_emulation",
    "fourier", "assignment", "idea", "huffman", "neural_net",
    "lu_decomposition",
]
