"""Sensitive genome-data analysis workloads (Fig. 7 and Fig. 8).

* ``sequence_alignment`` — Needleman-Wunsch global alignment with a
  rolling two-row DP (time O(N^2), memory O(N)); the sequences arrive
  through ``__recv`` exactly as user data enters the paper's enclave.
* ``sequence_generation`` — produces N nucleotides of synthetic FASTA
  sequence and streams them out through the padded ``__send`` wrapper.

The FASTA inputs are synthetic stand-ins for the paper's 1000 Genomes
sequences — alignment cost depends only on sequence length.
"""

from __future__ import annotations

import random

from .registry import Workload, register

_ALIGNMENT = r"""
char seqa[@N@];
char seqb[@N@];
int prev[@N@ + 1];
int curr[@N@ + 1];

int main() {
    int n = @N@;
    int i, j;
    int got = __recv(seqa, n);
    got += __recv(seqb, n);
    int gap = -2;
    int match = 1;
    int mismatch = -1;
    for (j = 0; j <= n; j++) prev[j] = j * gap;
    for (i = 1; i <= n; i++) {
        curr[0] = i * gap;
        for (j = 1; j <= n; j++) {
            int m;
            if (seqa[i - 1] == seqb[j - 1]) m = prev[j - 1] + match;
            else m = prev[j - 1] + mismatch;
            int up = prev[j] + gap;
            int lf = curr[j - 1] + gap;
            if (up > m) m = up;
            if (lf > m) m = lf;
            curr[j] = m;
        }
        for (j = 0; j <= n; j++) prev[j] = curr[j];
    }
    int score = prev[n];
    int ok = 1;
    if (got != 2 * n) ok = 0;
    if (score > n * match) ok = 0;
    if (score < 2 * n * gap) ok = 0;
    __report(ok);
    __report(score & 1073741823);
    return score;
}
"""


def _alignment_input(n: int) -> bytes:
    rng = random.Random(0xDA7A ^ n)
    alphabet = b"ACGT"
    return bytes(rng.choice(alphabet) for _ in range(2 * n))


register(Workload(
    "sequence_alignment",
    lambda n: _ALIGNMENT.replace("@N@", str(n)),
    128,
    make_input=_alignment_input,
    description="Needleman-Wunsch alignment of two N-base sequences"))


_GENERATION = r"""
char buf[1024];

int main() {
    int total = @N@;
    int chunk = 1024;
    srand(77);
    int produced = 0;
    int gc = 0;
    while (produced < total) {
        int m = chunk;
        if (total - produced < m) m = total - produced;
        int i;
        for (i = 0; i < m; i++) {
            int r = rand() % 4;
            int c;
            if (r == 0) c = 65;
            else if (r == 1) c = 67;
            else if (r == 2) c = 71;
            else c = 84;
            if (c == 67 || c == 71) gc++;
            buf[i] = c;
        }
        __send(buf, m);
        produced += m;
    }
    __report(produced == total);
    __report(gc);
    return gc;
}
"""

register(Workload(
    "sequence_generation",
    lambda n: _GENERATION.replace("@N@", str(n)),
    4096,
    description="generate and stream N synthetic nucleotides"))
