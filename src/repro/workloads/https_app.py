"""In-enclave HTTPS request handler (Fig. 10 / Fig. 11).

The handler receives a request (an 8-byte little-endian response size),
materializes the document, copies it into the response buffer while
folding a checksum (the data-path work a TLS record layer performs) and
streams it out through ``__send``.  The HTTPS *server* simulation
(``repro.service.https_sim``) measures this handler's cycles in the VM
at two sizes and fits the per-request/per-byte service-time model used
by the load generator.
"""

from __future__ import annotations

import struct

from .registry import Workload, register

_HANDLER = r"""
char reqbuf[16];
char doc[@BUF@];
char resp[@BUF@];

int main() {
    int got = __recv(reqbuf, 8);
    int size = 0;
    int i;
    for (i = 7; i >= 0; i--) size = size * 256 + reqbuf[i];
    if (size > @BUF@) size = @BUF@;
    // server-side document content (deterministic)
    for (i = 0; i < size; i++) doc[i] = (i * 31 + 7) % 256;
    // data path: copy + running MAC-ish checksum
    int sum = 0;
    for (i = 0; i < size; i++) {
        resp[i] = doc[i];
        sum = (sum * 131 + doc[i]) & 1073741823;
    }
    __send(resp, size);
    __report(got == 8);
    __report(sum);
    return sum;
}
"""


def _handler_source(buf_size: int) -> str:
    return _HANDLER.replace("@BUF@", str(buf_size))


def request_bytes(response_size: int) -> bytes:
    """Wire format of one request."""
    return struct.pack("<Q", response_size)


register(Workload(
    "https_handler",
    _handler_source,
    8192,
    make_input=lambda n: request_bytes(n),
    description="HTTPS request handler: recv size, build+send response"))
