"""Privacy-preserving image editing (the intro's motivating service).

A proprietary filter pipeline over a user's private image: 3x3 box
blur, mean thresholding and a histogram reduction.  The image enters
through ``__recv`` and the processed image leaves through the padded
``__send`` wrapper.  Self-check: the histogram masses and the binarized
pixel counts must be conserved.
"""

from __future__ import annotations

import random

from .registry import Workload, register

_IMAGE_FILTER = r"""
char img[@N@ * @N@];
char blur[@N@ * @N@];
int hist[16];

int main() {
    int n = @N@;
    int i, j;
    int got = __recv(img, n * n);
    // 3x3 box blur (clamped borders)
    for (i = 0; i < n; i++) {
        for (j = 0; j < n; j++) {
            int acc = 0;
            int cnt = 0;
            int di;
            for (di = -1; di <= 1; di++) {
                int dj;
                for (dj = -1; dj <= 1; dj++) {
                    int y = i + di;
                    int x = j + dj;
                    if (y >= 0 && y < n && x >= 0 && x < n) {
                        acc += img[y * n + x];
                        cnt++;
                    }
                }
            }
            blur[i * n + j] = acc / cnt;
        }
    }
    // histogram of the blurred image (16 bins)
    for (i = 0; i < 16; i++) hist[i] = 0;
    int total = 0;
    for (i = 0; i < n * n; i++) {
        hist[blur[i] / 16]++;
        total += blur[i];
    }
    int mean = total / (n * n);
    // threshold at the mean
    int white = 0;
    for (i = 0; i < n * n; i++) {
        if (blur[i] >= mean) { blur[i] = 255; white++; }
        else blur[i] = 0;
    }
    int mass = 0;
    for (i = 0; i < 16; i++) mass += hist[i];
    int ok = 1;
    if (got != n * n) ok = 0;
    if (mass != n * n) ok = 0;
    if (white < 0 || white > n * n) ok = 0;
    __send(blur, n * n);
    __report(ok);
    __report(white);
    int check = 0;
    for (i = 0; i < 16; i++) check = (check * 31 + hist[i]) & 1073741823;
    __report(check);
    return white;
}
"""


def _image_input(n: int) -> bytes:
    rng = random.Random(0x1BA6E ^ n)
    # blobby synthetic image: two bright squares on a dark background
    pixels = bytearray(rng.randrange(0, 60) for _ in range(n * n))
    for cy, cx in ((n // 4, n // 4), (2 * n // 3, 2 * n // 3)):
        for dy in range(-n // 6, n // 6):
            for dx in range(-n // 6, n // 6):
                y, x = cy + dy, cx + dx
                if 0 <= y < n and 0 <= x < n:
                    pixels[y * n + x] = 180 + rng.randrange(0, 60)
    return bytes(pixels)


register(Workload(
    "image_filter",
    lambda n: _IMAGE_FILTER.replace("@N@", str(n)),
    24,
    make_input=_image_input,
    description="blur + threshold + histogram over an NxN private image"))
