"""MiniC workloads for every experiment in the paper.

* :mod:`nbench`   — the ten nBench-suite kernels of Table II;
* :mod:`genomics` — Needleman-Wunsch alignment (Fig 7) and sequence
  generation (Fig 8) on synthetic FASTA data;
* :mod:`credit`   — the BP-neural-network credit scorer (Fig 9);
* :mod:`https_app` — the in-enclave HTTPS request handler (Fig 10/11);
* :mod:`imaging`  — the intro's image-editing service (extension).

Each workload is MiniC source compiled by the untrusted producer; every
kernel self-checks its result and reports ``1`` as its first
``__report`` value, so a policy setting that broke semantics is caught
immediately, and all settings must report identical values
(differential checking across instrumentation levels).
"""

from .registry import Workload, WORKLOADS, get_workload
from . import nbench, genomics, credit, https_app, imaging  # noqa: F401

__all__ = ["Workload", "WORKLOADS", "get_workload"]
