"""Personal credit-score analysis (Fig. 9).

A BP-neural-network credit scorer in the spirit of [51]: an 8-6-1
fixed-point MLP is trained on a small synthetic transaction history,
then scores N applicant records (the paper's x-axis is the number of
records scored, 1000..100K on their testbed; scaled down here).  The
self-check verifies that training separates the synthetic classes
better than chance.
"""

from __future__ import annotations

from .registry import Workload, register

_CREDIT = r"""
int w1[8 * 6];
int w2[6];
int hid[6];
int feat[8];

int clampq(int x) {
    if (x > 16 * 4096) return 16 * 4096;
    if (x < -16 * 4096) return -16 * 4096;
    return x;
}

int sigmoid(int x) {
    x = clampq(x);
    if (x <= -4 * 4096) return 0;
    if (x >= 4 * 4096) return 4096;
    return 2048 + x / 8;
}

// synthetic applicant: 8 features in Q12 from a per-record seed
int make_features(int seed) {
    int k;
    int s = seed;
    for (k = 0; k < 8; k++) {
        s = (s * 1103515245 + 12345) & 2147483647;
        feat[k] = (s % 4096) - 2048;
    }
    // ground truth: creditworthy iff weighted feature sum positive
    int truth = feat[0] * 3 + feat[1] * 2 - feat[2] * 2 + feat[3]
        - feat[4] + feat[5] - feat[6] + feat[7];
    if (truth > 0) return 1;
    return 0;
}

int score(int seed) {
    int label = make_features(seed);
    int j, k;
    for (j = 0; j < 6; j++) {
        int acc = 0;
        for (k = 0; k < 8; k++) acc += (feat[k] * w1[k * 6 + j]) / 4096;
        hid[j] = sigmoid(acc);
    }
    int acc = 0;
    for (k = 0; k < 6; k++) acc += (hid[k] * w2[k]) / 4096;
    // returns confidence in Q12 plus the ground truth in bit 16
    return sigmoid(acc) + label * 65536;
}

int main() {
    int records = @N@;
    int i, j, k, e;
    srand(90210);
    for (i = 0; i < 48; i++) w1[i] = rand() % 2048 - 1024;
    for (i = 0; i < 6; i++) w2[i] = rand() % 2048 - 1024;
    // train on 32 labelled records, 30 epochs of backprop deltas
    for (e = 0; e < 30; e++) {
        for (i = 0; i < 32; i++) {
            int both = score(i * 7919);
            int label = both / 65536;
            int conf = both % 65536;
            int err = label * 4096 - conf;
            for (k = 0; k < 6; k++)
                w2[k] = clampq(w2[k] + (hid[k] * err) / 8192);
            for (k = 0; k < 8; k++)
                for (j = 0; j < 6; j++) {
                    int dh = ((err * w2[j]) / 4096) / 4;
                    w1[k * 6 + j] = clampq(
                        w1[k * 6 + j] + (feat[k] * dh) / 32768);
                }
        }
    }
    // score the applicant records
    int approved = 0;
    int correct = 0;
    int check = 0;
    for (i = 0; i < records; i++) {
        int both = score(1000000 + i * 104729);
        int label = both / 65536;
        int conf = both % 65536;
        int decision = conf > 2048;
        approved += decision;
        if (decision == label) correct++;
        check = (check * 33 + conf) & 1073741823;
    }
    // self-check: the trained model must beat chance clearly
    __report(correct * 2 > records);
    __report(approved);
    __report(check);
    return approved;
}
"""

register(Workload(
    "credit_scoring",
    lambda n: _CREDIT.replace("@N@", str(n)),
    500,
    description="BP-network credit scoring of N applicant records"))
