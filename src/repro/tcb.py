"""TCB accounting: measure this repository's code-consumer size.

The paper's headline TCB claim (§VI-A) is that the in-enclave consumer
is ~2 kLoC (loader < 600 LoC, verifier < 700 LoC) plus a clipped
disassembler, vastly smaller than libOS runtimes.  This module counts
the equivalent components of this repository so Table I can carry
*measured* numbers for the DEFLECTION row.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List

_PKG = Path(__file__).parent


def count_loc(paths: Iterable[Path]) -> int:
    """Count non-blank, non-comment source lines."""
    total = 0
    for path in paths:
        in_docstring = False
        for line in path.read_text().splitlines():
            stripped = line.strip()
            if not stripped:
                continue
            if in_docstring:
                if stripped.endswith('"""') or stripped.endswith("'''"):
                    in_docstring = False
                continue
            if stripped.startswith(('"""', "'''")):
                quote = stripped[:3]
                body = stripped[3:]
                if not (body.endswith(quote) and len(body) >= 3) and \
                        not (len(stripped) > 3 and
                             stripped.endswith(quote)):
                    in_docstring = True
                continue
            if stripped.startswith("#"):
                continue
            total += 1
    return total


@dataclass(frozen=True)
class TcbComponentMeasurement:
    name: str
    files: tuple
    loc: int

    @property
    def kloc(self) -> float:
        return self.loc / 1000.0


def _files(*relative: str) -> List[Path]:
    return [_PKG / rel for rel in relative]


def consumer_inventory() -> Dict[str, TcbComponentMeasurement]:
    """Measured DEFLECTION TCB components of this repository,
    mirroring the paper's Table I row structure."""
    groups = {
        "Loader/Verifier": _files(
            "core/loader.py", "core/rewriter.py", "core/verifier.py",
            "core/rdd.py", "core/bootstrap.py", "core/proofcheck.py",
            "policy/templates.py", "policy/magic.py",
            "policy/policies.py"),
        "RA/Encryption": _files(
            "crypto/chacha.py", "crypto/dh.py", "crypto/hkdf.py",
            "crypto/sig.py", "crypto/channel.py",
            "sgx/quote.py", "sgx/attestation.py"),
        "Disassembler base": _files(
            "isa/encoding.py", "isa/instructions.py",
            "isa/disassembler.py", "isa/registers.py"),
        "Shim libc": _files("compiler/prelude.py"),
        "Other dependencies": _files(
            "sgx/memory.py", "sgx/layout.py", "sgx/enclave.py",
            "vm/cpu.py", "vm/costmodel.py", "vm/interrupts.py"),
    }
    out = {}
    for name, files in groups.items():
        out[name] = TcbComponentMeasurement(
            name, tuple(str(f.relative_to(_PKG)) for f in files),
            count_loc(files))
    return out


def verifier_core_loc() -> Dict[str, int]:
    """The paper's fine-grained claim: loader <600 LoC, verifier <700."""
    return {
        "loader": count_loc(_files("core/loader.py", "core/rewriter.py")),
        "verifier": count_loc(_files("core/verifier.py", "core/rdd.py")),
    }
