"""Round-robin thread scheduler for multi-threaded enclaves (§VII).

SGX admits as many hardware threads as the enclave has TCS pages; this
scheduler interleaves N :class:`~repro.vm.cpu.CPU` contexts over the
shared address space in fixed instruction quanta — a deterministic
stand-in for SMT/preemptive scheduling that still exhibits the hazards
the paper discusses (shared memory, per-thread stacks, TOCTOU on any
CFI metadata kept in memory rather than registers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import ReproError
from .cpu import CPU


@dataclass
class ThreadState:
    """Scheduler-visible state of one thread."""

    tid: int
    cpu: CPU
    status: str = "runnable"     # runnable | halted | violation | fault
    detail: str = ""

    @property
    def done(self) -> bool:
        return self.status != "runnable"


class RoundRobinScheduler:
    """Deterministic instruction-quantum round robin."""

    def __init__(self, cpus: List[CPU], quantum: int = 500):
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.threads = [ThreadState(tid, cpu)
                        for tid, cpu in enumerate(cpus)]
        self.quantum = quantum

    def run(self, max_steps_per_thread: int = 50_000_000) -> \
            List[ThreadState]:
        """Interleave all threads until each halts or dies.

        A fault or policy violation stops only the offending thread
        (the bootstrap decides what to do about the others); every
        other thread keeps running.
        """
        remaining = sum(1 for t in self.threads if not t.done)
        while remaining:
            progressed = False
            for thread in self.threads:
                if thread.done:
                    continue
                progressed = True
                try:
                    thread.cpu.run(max_steps=max_steps_per_thread,
                                   slice_steps=self.quantum)
                except ReproError as exc:
                    from ..errors import PolicyViolation
                    thread.status = ("violation"
                                     if isinstance(exc, PolicyViolation)
                                     else "fault")
                    thread.detail = str(exc)
                    thread.violation_code = getattr(exc, "code", 0)
                else:
                    if thread.cpu.halted:
                        thread.status = "halted"
            remaining = sum(1 for t in self.threads if not t.done)
            if not progressed:  # pragma: no cover - defensive
                break
        return self.threads

    @property
    def total_steps(self) -> int:
        return sum(t.cpu.steps for t in self.threads)

    @property
    def total_cycles(self) -> float:
        return sum(t.cpu.cycles for t in self.threads)
