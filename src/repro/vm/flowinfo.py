"""Whole-program flow facts derived from the verified stream.

These analyses feed the executors, not the verifier: nothing here can
accept or reject a binary, so the module lives with the VM rather than
in the consumer TCB.  Today that is the flag-liveness fixpoint the
tier-2 translator consults at chain edges.
"""

from __future__ import annotations

from typing import List

from ..isa.instructions import FLAG_NEUTRAL_OPS, FLAG_SETTER_OPS, Op


def flag_liveness(code) -> frozenset:
    """Offsets whose incoming flag state is provably dead.

    Backward greatest-fixpoint dataflow over the decoded stream: the
    flags are *dead on entry* to an instruction when every execution
    path from it overwrites them (``CMP``/``TEST``) before anything can
    observe them.  Conditional jumps read the flags; any op outside
    :data:`~repro.isa.instructions.FLAG_NEUTRAL_OPS` may fault or
    escape the enclave, and a fault frame snapshots the flags — both
    count as observations.  Direct ``JMP`` transfers the question to
    its target; flag-neutral ops defer to their fall-through.

    The tier-2 translator consults the result when deciding whether a
    chain predecessor may skip materializing lazily-tracked flags at a
    chain edge: an edge into a dead-on-entry leader can never leak a
    stale or missing flag state.  The set is computed once per binary
    on the verified stream (a :class:`repro.core.rdd.DisassembledCode`),
    so the translator's block-local analysis gets a whole-program veto
    for free.
    """
    stream = code.stream
    n = len(stream)

    # Node kinds: dead[i] is constant True (setters), constant False
    # (observers and fault-capable ops), or inherited from the single
    # successor (flag-neutral fall-through, direct JMP target).
    # preds[j] holds the nodes inheriting from j, so a node flips at
    # most once and the backward propagation is linear in edges.
    dead = [False] * n
    preds: List[List[int]] = [[] for _ in range(n)]
    for i in range(n):
        op = stream[i][1].op
        if op in FLAG_SETTER_OPS:
            dead[i] = True
        elif op in FLAG_NEUTRAL_OPS or op == Op.JMP:
            # Inherit from the single successor; a target outside the
            # decoded stream (the frontier) stays live.  Everything
            # else — COND_JUMPS and fault-capable ops — is a constant-
            # False observer.
            j = code.index_of.get(code.targets[i] if op == Op.JMP
                                  else code.end_of(i))
            if j is not None:
                dead[i] = True            # optimistic; fixpoint lowers
                preds[j].append(i)

    worklist = [i for i in range(n) if not dead[i]]
    while worklist:
        j = worklist.pop()
        for i in preds[j]:
            if dead[i]:
                dead[i] = False
                worklist.append(i)
    return frozenset(stream[i][0] for i in range(n) if dead[i])
