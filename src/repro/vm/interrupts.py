"""AEX (asynchronous exit) injection schedules.

Real enclaves suffer AEXes from timer interrupts, IPIs and page faults;
a controlled-channel attacker *induces* them at high frequency.  The
schedule abstracts both: a benign environment produces sparse AEXes, an
attack scenario produces dense ones, and P6's threshold separates the
two (§IV-B, P6).
"""

from __future__ import annotations

import random


class AexSchedule:
    """Yields instruction counts between consecutive AEX events.

    ``mean_interval`` is the average number of executed instructions
    between AEXes; ``jitter`` (0..1) adds seeded uniform noise so tests
    stay deterministic.  ``mean_interval=0`` disables AEX injection.
    """

    def __init__(self, mean_interval: int, jitter: float = 0.3,
                 seed: int = 2021):
        if mean_interval < 0:
            raise ValueError("mean_interval must be >= 0")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be within [0, 1] (got {jitter})")
        self.mean_interval = mean_interval
        self.jitter = jitter
        self._seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> None:
        """Rewind the jitter stream to its initial state.

        A warmed re-run (JIT steady-state measurement) must see the
        exact same AEX arrival sequence as a cold run, or the two stop
        being bit-comparable."""
        self._rng = random.Random(self._seed)

    @classmethod
    def disabled(cls) -> "AexSchedule":
        return cls(0)

    @classmethod
    def benign(cls, seed: int = 2021) -> "AexSchedule":
        """OS timer ticks: an AEX every ~400k instructions."""
        return cls(400_000, seed=seed)

    @classmethod
    def attack(cls, seed: int = 2021) -> "AexSchedule":
        """Controlled-channel style interrupt storm."""
        return cls(2_000, seed=seed)

    @property
    def enabled(self) -> bool:
        return self.mean_interval > 0

    def next_interval(self) -> int:
        if not self.mean_interval:
            return 0
        if not self.jitter:
            return self.mean_interval
        spread = int(self.mean_interval * self.jitter)
        return max(1, self.mean_interval +
                   self._rng.randint(-spread, spread))


class AexTimer:
    """Countdown to the next AEX, shared by both VM executors.

    The single-step engine debits one instruction at a time and fires
    when the countdown reaches zero; the translating executor debits a
    whole superblock at once, using :meth:`fires_within` to decide when
    an interrupt would land *inside* a block (in which case it replays
    the block through the single-step path so the SSA dump shows the
    exact architectural mid-block state)."""

    __slots__ = ("schedule", "countdown")

    def __init__(self, schedule: AexSchedule):
        self.schedule = schedule
        self.countdown = (schedule.next_interval()
                          if schedule.enabled else 0)

    @property
    def enabled(self) -> bool:
        return self.schedule.enabled

    def tick(self) -> bool:
        """Retire one instruction; True means fire an AEX now."""
        self.countdown -= 1
        return self.countdown <= 0

    def fires_within(self, n: int) -> bool:
        """Would an AEX land while executing ``n`` more instructions?"""
        return self.countdown <= n

    def debit(self, n: int) -> None:
        """Retire ``n`` instructions known not to trigger an AEX."""
        self.countdown -= n

    def rearm(self) -> None:
        self.countdown = self.schedule.next_interval()
